"""APNA-as-a-Service (paper Section VIII-E).

An upstream ISP offers APNA accountability and privacy to a *downstream
AS* that has not deployed APNA itself.  "A downstream AS can be viewed as
a connection-sharing device that provides APNA connections to its hosts"
— so the deployment composes directly out of the Section VII-B machinery:
the downstream AS's border infrastructure is a NAT-mode access point
subscribed to the upstream ISP, and the downstream hosts are its clients.

The benefit quantified in E5/E10: hosts of a small customer AS gain the
upstream provider's (much larger) anonymity set, because their EphIDs are
issued by — and attribute to — the upstream AID.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .ap import ApClientNode, NatAccessPoint

if TYPE_CHECKING:
    from ..core.autonomous_system import ApnaAutonomousSystem


class DownstreamAs:
    """A non-APNA customer AS consuming APNA-as-a-Service upstream."""

    def __init__(
        self,
        downstream_aid: int,
        upstream: "ApnaAutonomousSystem",
        *,
        name: str | None = None,
        latency: float = 0.005,
    ) -> None:
        self.downstream_aid = downstream_aid
        self.upstream = upstream
        node_name = name or f"downstream-as{downstream_aid}"
        # The downstream AS's border device is a NAT-mode AP: the ISP can
        # verify all packets it emits, which is the deployment restriction
        # the paper states ("the ISP needs to be able to verify all
        # packets that are originating from the downstream ASes").
        self.border = upstream.attach_host(
            node_name, node_cls=NatAccessPoint, latency=latency
        )
        self.hosts: dict[str, ApClientNode] = {}

    def bootstrap(self) -> None:
        """Authenticate the downstream border device to the upstream ISP."""
        self.border.bootstrap()

    def attach_host(self, name: str) -> ApClientNode:
        """Attach a downstream host; it authenticates to its own AS
        (the AP-client bootstrap), not to the upstream ISP."""
        client = self.border.register_client(name)
        self.hosts[name] = client
        return client

    @property
    def anonymity_set_hint(self) -> int:
        """Hosts an observer must consider behind any one upstream EphID:
        every host of the upstream AS plus all AaaS-attached hosts."""
        return len(self.upstream.hostdb) + len(self.hosts)
