"""Connection-sharing devices (paper Section VII-B).

Two modes are implemented:

* **Bridge mode** — the AP is a transparent L2-style bridge.  Clients
  authenticate directly to the AS; the bridge learns which client owns
  which EphID from the *source* EphIDs of outgoing frames (the analogue
  of MAC-address learning) and forwards inbound frames accordingly.

* **NAT mode** — the AP is a host to the AS and plays RS, MS, router and
  accountability agent for its clients: it negotiates per-client shared
  keys, proxies EphID requests using the client-supplied public keys,
  keeps the ``EphID_info`` list mapping EphIDs to clients, verifies and
  *replaces* the MAC on outgoing packets with its own kHA MAC, and can
  identify (and block) the client behind a misbehaving EphID.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Callable

from ..core import framing
from ..core.autonomous_system import ApnaHostNode
from ..core.errors import ApnaError, MacError
from ..core.keys import EphIdKeyPair
from ..core.session import ConnectionRequest, OwnedEphId, Session, SessionError
from ..crypto.cmac import Cmac
from ..netsim import Node
from ..wire.apna import ApnaHeader, ApnaPacket, Endpoint
from ..wire.transport import PROTO_DATA, TransportHeader, build_segment, split_segment

if TYPE_CHECKING:
    from ..core.autonomous_system import ApnaAutonomousSystem
    from ..core.certs import EphIdCertificate


class BridgeAccessPoint(Node):
    """Transparent bridge: relays frames, learns EphID -> client port."""

    def __init__(self, name: str, assembly: "ApnaAutonomousSystem") -> None:
        super().__init__(name)
        self.assembly = assembly
        self._table: dict[bytes, str] = {}  # src EphID -> client node name
        self.flooded = 0

    @classmethod
    def attach(cls, assembly: "ApnaAutonomousSystem", name: str, *, latency: float = 0.001) -> "BridgeAccessPoint":
        bridge = cls(name, assembly)
        assembly.network.add_node(bridge)
        assembly.network.connect(assembly.node, bridge, latency=latency)
        assembly._host_node_names.add(name)
        return bridge

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        uplink = self.assembly.node.name
        packet = ApnaPacket.from_wire(
            frame_bytes, with_nonce=self.assembly.config.replay_protection
        )
        if from_node == uplink:
            # Inbound: forward by learned destination EphID, else flood.
            target = self._table.get(packet.header.dst_ephid)
            if target is not None:
                self.send(target, frame_bytes)
            else:
                self.flooded += 1
                for neighbor in self.neighbors:
                    if neighbor != uplink:
                        self.send(neighbor, frame_bytes)
        else:
            # Outbound: learn the client's source EphID, relay upstream.
            self._table[packet.header.src_ephid] = from_node
            self.send(uplink, frame_bytes)

    @property
    def learned(self) -> int:
        return len(self._table)


# ---------------------------------------------------------------------------
# NAT mode
# ---------------------------------------------------------------------------

# Local control protocol on the client<->AP links (the "inside the cafe"
# protocol; plays the role DHCP/802.1X play today).  Every message ends
# with an 8-byte CMAC under the client<->AP shared key.
LC_EPHID_REQ = 0x01
LC_EPHID_REP = 0x02
LC_DATA = 0x03

_LC_MAC_SIZE = 8


def _lc_seal(mac: Cmac, msg_type: int, body: bytes) -> bytes:
    head = bytes([msg_type]) + body
    return head + mac.tag(head, _LC_MAC_SIZE)


def _lc_open(mac: Cmac, frame_bytes: bytes) -> tuple[int, bytes]:
    if len(frame_bytes) < 1 + _LC_MAC_SIZE:
        raise MacError("local control frame too short")
    head, tag = frame_bytes[:-_LC_MAC_SIZE], frame_bytes[-_LC_MAC_SIZE:]
    if mac.tag(head, _LC_MAC_SIZE) != tag:
        raise MacError("local control frame failed authentication")
    return head[0], head[1:]


class NatAccessPoint(ApnaHostNode):
    """NAT-mode AP: one AS subscriber fronting many internal clients."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._clients: dict[str, Cmac] = {}  # client node name -> shared key MAC
        self.ephid_info: dict[bytes, str] = {}  # EphID -> client node name
        self._pending_client_ephid: list[tuple[str, int]] = []  # (client, req id)
        self.relayed_out = 0
        self.relayed_in = 0
        self.rejected_frames = 0
        self.blocked_clients: set[str] = set()

    # -- as RS: client bootstrap (shared-key establishment) --

    def register_client(self, name: str, *, latency: float = 0.0005) -> "ApClientNode":
        """Authenticate a client into the AP's internal network."""
        shared_key = self.assembly.rng.read(16)
        client = ApClientNode(name, self, shared_key)
        self.assembly.network.add_node(client)
        self.assembly.network.connect(self, client, latency=latency)
        self._clients[name] = Cmac(shared_key)
        return client

    # -- as MS: proxied EphID issuance --

    def _proxy_ephid_request(
        self, client_name: str, request_id: int, dh_public: bytes, sig_public: bytes, flags: int
    ) -> None:
        sealed = self.stack.build_ephid_request_for(dh_public, sig_public, flags)
        self._pending_client_ephid.append((client_name, request_id))
        assert self.stack.control_ephid is not None and self.stack.ms_cert is not None
        packet = self.stack.make_packet(
            self.stack.control_ephid,
            Endpoint(self.assembly.aid, self.stack.ms_cert.ephid),
            framing.frame(framing.PT_CONTROL_REQ, sealed),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)

    # -- frame handling (both sides) --

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        if from_node in self._clients:
            self._handle_client_frame(frame_bytes, from_node)
        else:
            self._handle_uplink_frame(frame_bytes, from_node)

    def _handle_client_frame(self, frame_bytes: bytes, client_name: str) -> None:
        mac = self._clients[client_name]
        try:
            msg_type, body = _lc_open(mac, frame_bytes)
        except MacError:
            self.rejected_frames += 1
            return
        if client_name in self.blocked_clients:
            self.rejected_frames += 1
            return
        if msg_type == LC_EPHID_REQ:
            (request_id,) = struct.unpack_from(">I", body)
            dh_public = body[4:36]
            sig_public = body[36:68]
            flags = body[68]
            self._proxy_ephid_request(client_name, request_id, dh_public, sig_public, flags)
        elif msg_type == LC_DATA:
            self._relay_out(body, client_name)

    def _relay_out(self, apna_bytes: bytes, client_name: str) -> None:
        """The AP-as-router egress: verify ownership, re-MAC, forward."""
        packet = ApnaPacket.from_wire(
            apna_bytes, with_nonce=self.assembly.config.replay_protection
        )
        owner = self.ephid_info.get(packet.header.src_ephid)
        if owner != client_name:
            self.rejected_frames += 1
            return
        # Replace the client's MAC with the AP's kHA MAC (Section VII-B:
        # "the AP replaces the MAC using its shared key with the AS").
        assert self.stack._packet_mac is not None
        new_mac = self.stack._packet_mac.tag(
            packet.mac_input(), self.assembly.config.packet_mac_size
        )
        remacked = ApnaPacket(packet.header.with_mac(new_mac), packet.payload)
        self.relayed_out += 1
        self.send(self.assembly.node.name, remacked.to_wire())

    def _handle_uplink_frame(self, frame_bytes: bytes, from_node: str) -> None:
        packet = ApnaPacket.from_wire(
            frame_bytes, with_nonce=self.assembly.config.replay_protection
        )
        payload_type, body = framing.unframe(packet.payload)
        if payload_type == framing.PT_CONTROL_REP:
            self._on_proxied_reply(body)
            return
        client_name = self.ephid_info.get(packet.header.dst_ephid)
        if client_name is not None:
            mac = self._clients[client_name]
            self.relayed_in += 1
            self.send(client_name, _lc_seal(mac, LC_DATA, frame_bytes))
            return
        # Not a client EphID: it is for the AP itself (its own stack).
        super().handle_frame(frame_bytes, from_node=from_node)

    def _on_proxied_reply(self, sealed: bytes) -> None:
        if not self._pending_client_ephid:
            return
        client_name, request_id = self._pending_client_ephid.pop(0)
        cert = self.stack.accept_ephid_reply_cert(sealed)
        # Track the binding: the AP cannot decrypt EphIDs (they contain
        # *its* HID under the AS key), so it keeps the EphID_info list.
        self.ephid_info[cert.ephid] = client_name
        mac = self._clients[client_name]
        body = struct.pack(">I", request_id) + cert.pack()
        self.send(client_name, _lc_seal(mac, LC_EPHID_REP, body))

    # -- as accountability agent for its clients --

    def identify(self, ephid: bytes) -> str | None:
        """Which client is behind this EphID (the AS holds *us* accountable)."""
        return self.ephid_info.get(ephid)

    def block_client(self, name: str) -> None:
        self.blocked_clients.add(name)


class ApClientNode(Node):
    """A device behind a NAT-mode AP (laptop in the cafe).

    It generates its own EphID key pairs (so the AP never learns session
    keys — data privacy holds against the AP) and authenticates frames to
    the AP with their shared key.
    """

    def __init__(self, name: str, ap: NatAccessPoint, shared_key: bytes) -> None:
        super().__init__(name)
        self.ap = ap
        self._mac = Cmac(shared_key)
        self.owned: dict[bytes, OwnedEphId] = {}
        self.sessions: dict[tuple[bytes, bytes], Session] = {}
        self._pending: dict[int, tuple[EphIdKeyPair, Callable | None]] = {}
        self._next_request = 1
        self.inbox: list[tuple[Session, TransportHeader, bytes]] = []

    @property
    def aid(self) -> int:
        return self.ap.assembly.aid

    # -- EphID acquisition through the AP --

    def acquire_ephid(self, callback: Callable[[OwnedEphId], None] | None = None, flags: int = 0) -> None:
        keypair = EphIdKeyPair.generate(self.ap.assembly.rng)
        request_id = self._next_request
        self._next_request += 1
        self._pending[request_id] = (keypair, callback)
        body = (
            struct.pack(">I", request_id)
            + keypair.exchange.public
            + keypair.signing.public
            + bytes([flags])
        )
        self.send(self.ap.name, _lc_seal(self._mac, LC_EPHID_REQ, body))

    # -- data path --

    def _make_packet(self, src: OwnedEphId, dst: Endpoint, payload: bytes) -> ApnaPacket:
        nonce = None
        if self.ap.assembly.config.replay_protection:
            nonce = self.frames_sent + 1
        header = ApnaHeader(
            src_aid=self.aid,
            src_ephid=src.ephid,
            dst_ephid=dst.ephid,
            dst_aid=dst.aid,
            nonce=nonce,
        )
        # MAC with the client<->AP key; the AP re-MACs with its kHA.
        mac = self._mac.tag(
            header.mac_input(payload), self.ap.assembly.config.packet_mac_size
        )
        return ApnaPacket(header.with_mac(mac), payload)

    def connect(
        self,
        peer_cert: "EphIdCertificate",
        src_owned: OwnedEphId,
        *,
        early_data: bytes = b"",
        src_port: int = 0,
        dst_port: int = 0,
    ) -> Session:
        session = Session(src_owned, peer_cert, scheme=self.ap.assembly.config.aead_scheme)
        self.sessions[(src_owned.ephid, peer_cert.ephid)] = session
        sealed_early = b""
        if early_data:
            segment = build_segment(
                TransportHeader(src_port, dst_port, proto=PROTO_DATA), early_data
            )
            sealed_early = session.seal(segment)
        request = ConnectionRequest(cert=src_owned.cert, early_data=sealed_early)
        packet = self._make_packet(
            src_owned,
            Endpoint(peer_cert.aid, peer_cert.ephid),
            framing.frame(framing.PT_CONN_REQUEST, request.pack()),
        )
        self.send(self.ap.name, _lc_seal(self._mac, LC_DATA, packet.to_wire()))
        return session

    def send_data(self, session: Session, data: bytes, *, src_port: int = 0, dst_port: int = 0) -> None:
        segment = build_segment(
            TransportHeader(src_port, dst_port, proto=PROTO_DATA), data
        )
        local = self.owned.get(session.local.ephid)
        if local is None:
            raise ApnaError("session source EphID is not owned by this client")
        packet = self._make_packet(
            local,
            Endpoint(session.peer_cert.aid, session.peer_cert.ephid),
            framing.frame(framing.PT_DATA, session.seal(segment)),
        )
        self.send(self.ap.name, _lc_seal(self._mac, LC_DATA, packet.to_wire()))

    # -- receive path --

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        msg_type, body = _lc_open(self._mac, frame_bytes)
        if msg_type == LC_EPHID_REP:
            self._on_ephid_reply(body)
        elif msg_type == LC_DATA:
            self._on_apna(body)

    def _on_ephid_reply(self, body: bytes) -> None:
        from ..core.certs import EphIdCertificate

        (request_id,) = struct.unpack_from(">I", body)
        cert = EphIdCertificate.parse(body[4:])
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        keypair, callback = pending
        if cert.dh_public != keypair.exchange.public:
            return  # not our keys: the AP substituted them
        owned = OwnedEphId(cert=cert, keypair=keypair)
        self.owned[owned.ephid] = owned
        if callback is not None:
            callback(owned)

    def _on_apna(self, apna_bytes: bytes) -> None:
        packet = ApnaPacket.from_wire(
            apna_bytes, with_nonce=self.ap.assembly.config.replay_protection
        )
        payload_type, body = framing.unframe(packet.payload)
        if payload_type == framing.PT_DATA:
            session = self.sessions.get(
                (packet.header.dst_ephid, packet.header.src_ephid)
            )
            if session is None:
                return
            try:
                segment = session.open(body)
            except SessionError:
                return
            transport, data = split_segment(segment)
            self.inbox.append((session, transport, data))
        elif payload_type == framing.PT_CONN_REQUEST:
            request = ConnectionRequest.parse(body)
            local = self.owned.get(packet.header.dst_ephid)
            if local is None:
                return
            session = Session(local, request.cert, scheme=self.ap.assembly.config.aead_scheme)
            self.sessions[(local.ephid, request.cert.ephid)] = session
            if request.early_data:
                try:
                    segment = session.open(request.early_data)
                except SessionError:
                    return
                transport, data = split_segment(segment)
                self.inbox.append((session, transport, data))
