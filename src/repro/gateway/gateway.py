"""The APNA gateway (paper Section VII-D): IPv4 <-> APNA translation.

A gateway lets unmodified IPv4 hosts use an APNA network.  It is itself a
full APNA host; as a translator it maintains the flow mappings the paper
describes:

* **outbound**: each new IPv4 5-tuple flow gets its own source EphID and
  an APNA session toward the destination's certificate (learned from DNS
  replies, exactly the inspection trick of Section VII-D, or configured
  statically);
* **inbound**: each APNA flow maps to a unique *virtual endpoint* — an
  address drawn from private space — so that two APNA flows can never
  collapse onto the same IPv4 5-tuple at the legacy host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.autonomous_system import ApnaHostNode
from ..core.certs import EphIdCertificate
from ..core.session import Session
from ..netsim import Node
from ..wire.ipv4 import HEADER_SIZE as IPV4_HEADER_SIZE
from ..wire.ipv4 import Ipv4Header, PROTO_UDP, int_to_ip
from ..wire.transport import TransportHeader, build_segment, split_segment

if TYPE_CHECKING:
    from .server import DnsZone  # pragma: no cover
    from ..dns.records import DnsRecord

#: First address of the virtual-endpoint pool (10.64.0.0/10, per the
#: paper's "randomly drawn from a private address space").
_VIRTUAL_POOL_START = 0x0A40_0001

FlowTuple = tuple[int, int, int, int]  # src_ip, dst_ip, src_port, dst_port


class LegacyHostNode(Node):
    """An unmodified IPv4 host behind an APNA gateway."""

    def __init__(self, name: str, ip: int, gateway_name: str) -> None:
        super().__init__(name)
        self.ip = ip
        self.gateway_name = gateway_name
        self.inbox: list[tuple[Ipv4Header, TransportHeader, bytes]] = []
        self._responders: dict[int, callable] = {}

    def send_ipv4(self, dst_ip: int, data: bytes, *, src_port: int, dst_port: int) -> None:
        segment = build_segment(TransportHeader(src_port, dst_port), data)
        header = Ipv4Header(
            src=self.ip,
            dst=dst_ip,
            protocol=PROTO_UDP,
            total_length=IPV4_HEADER_SIZE + len(segment),
        )
        self.send(self.gateway_name, header.pack() + segment)

    def serve(self, port: int, responder) -> None:
        """``responder(data) -> bytes`` answers requests arriving on ``port``."""
        self._responders[port] = responder

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        header = Ipv4Header.parse(frame_bytes)
        transport, data = split_segment(frame_bytes[IPV4_HEADER_SIZE:])
        self.inbox.append((header, transport, data))
        responder = self._responders.get(transport.dst_port)
        if responder is not None:
            self.send_ipv4(
                header.src,
                responder(data),
                src_port=transport.dst_port,
                dst_port=transport.src_port,
            )


class ApnaGateway(ApnaHostNode):
    """An APNA host that translates for a pool of legacy IPv4 hosts."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._legacy_by_ip: dict[int, str] = {}
        self._legacy_names: set[str] = set()
        self._ip_to_cert: dict[int, EphIdCertificate] = {}
        self._flow_out: dict[FlowTuple, Session] = {}
        self._flow_back: dict[tuple[bytes, bytes], FlowTuple] = {}
        self._virtual_by_ip: dict[int, tuple[Session, int, int]] = {}
        self._virtual_by_session: dict[tuple[bytes, bytes], int] = {}
        self._next_virtual = _VIRTUAL_POOL_START
        self.translated_out = 0
        self.translated_in = 0
        self.unmapped_drops = 0

    # -- legacy side wiring --

    def add_legacy_host(self, name: str, ip: int, *, latency: float = 0.0005) -> LegacyHostNode:
        host = LegacyHostNode(name, ip, self.name)
        self.assembly.network.add_node(host)
        self.assembly.network.connect(self, host, latency=latency)
        self._legacy_by_ip[ip] = name
        self._legacy_names.add(name)
        return host

    def learn_mapping(self, ip: int, cert: EphIdCertificate) -> None:
        """Record destination-IP -> certificate (the DNS-reply inspection)."""
        self._ip_to_cert[ip] = cert

    def learn_from_dns_record(self, record: "DnsRecord") -> None:
        if record.ipv4_hint:
            self.learn_mapping(record.ipv4_hint, record.cert)

    # -- exposing a legacy server to the APNA side --

    def expose_service(self, port: int, legacy_ip: int) -> None:
        """APNA traffic arriving on ``port`` is translated toward the
        legacy server at ``legacy_ip`` via a virtual endpoint."""
        self.listen(port, self._service_handler(port, legacy_ip))

    def _service_handler(self, port: int, legacy_ip: int):
        def handler(session: Session, transport: TransportHeader, data: bytes) -> None:
            key = (session.local.ephid, session.peer_cert.ephid)
            virtual_ip = self._virtual_by_session.get(key)
            if virtual_ip is None:
                virtual_ip = self._allocate_virtual()
                self._virtual_by_session[key] = virtual_ip
                self._virtual_by_ip[virtual_ip] = (
                    session,
                    transport.src_port,
                    transport.dst_port,
                )
            legacy_name = self._legacy_by_ip.get(legacy_ip)
            if legacy_name is None:
                self.unmapped_drops += 1
                return
            segment = build_segment(
                TransportHeader(transport.src_port, transport.dst_port), data
            )
            header = Ipv4Header(
                src=virtual_ip,
                dst=legacy_ip,
                protocol=PROTO_UDP,
                total_length=IPV4_HEADER_SIZE + len(segment),
            )
            self.translated_in += 1
            self.send(legacy_name, header.pack() + segment)

        return handler

    def _allocate_virtual(self) -> int:
        ip = self._next_virtual
        self._next_virtual += 1
        return ip

    # -- frame handling: legacy frames vs APNA frames --

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        if from_node in self._legacy_names:
            self._handle_legacy_frame(frame_bytes)
        else:
            super().handle_frame(frame_bytes, from_node=from_node)

    def _handle_legacy_frame(self, frame_bytes: bytes) -> None:
        header = Ipv4Header.parse(frame_bytes)
        transport, data = split_segment(frame_bytes[IPV4_HEADER_SIZE:])
        virtual = self._virtual_by_ip.get(header.dst)
        if virtual is not None:
            # A legacy server answering an APNA client via its virtual
            # endpoint: ship it back through the mapped session.
            session, peer_port, our_port = virtual
            self.translated_out += 1
            self.send_data(
                session, data, src_port=our_port, dst_port=peer_port
            )
            return
        flow: FlowTuple = (header.src, header.dst, transport.src_port, transport.dst_port)
        session = self._flow_out.get(flow)
        if session is not None:
            self.translated_out += 1
            self.send_data(
                session, data, src_port=transport.src_port, dst_port=transport.dst_port
            )
            return
        cert = self._ip_to_cert.get(header.dst)
        if cert is None:
            # "the host needs to statically configure the mapping" — and
            # it has not, so the flow cannot be translated.
            self.unmapped_drops += 1
            return
        # New outbound flow: fresh EphID, session, 0-RTT data.
        session = self.connect(
            cert,
            early_data=data,
            src_port=transport.src_port,
            dst_port=transport.dst_port,
            on_accept=self._rebind(flow),
        )
        self.translated_out += 1
        self._flow_out[flow] = session
        self._flow_back[(session.local.ephid, cert.ephid)] = flow

    def _rebind(self, flow: FlowTuple):
        """When a receive-only destination answers with a serving EphID,
        move the flow onto the serving session."""

        def on_accept(session: Session) -> None:
            self._flow_out[flow] = session
            self._flow_back[(session.local.ephid, session.peer_cert.ephid)] = flow

        return on_accept

    # -- APNA data toward legacy clients --

    def _dispatch_segment(self, session: Session, transport: TransportHeader, data: bytes) -> None:
        key = (session.local.ephid, session.peer_cert.ephid)
        flow = self._flow_back.get(key)
        if flow is None:
            super()._dispatch_segment(session, transport, data)
            return
        src_ip, dst_ip, src_port, dst_port = flow
        legacy_name = self._legacy_by_ip.get(src_ip)
        if legacy_name is None:
            self.unmapped_drops += 1
            return
        segment = build_segment(
            TransportHeader(dst_port, src_port), data
        )
        header = Ipv4Header(
            src=dst_ip,
            dst=src_ip,
            protocol=PROTO_UDP,
            total_length=IPV4_HEADER_SIZE + len(segment),
        )
        self.translated_in += 1
        self.send(legacy_name, header.pack() + segment)

    def describe_flows(self) -> list[str]:
        """Human-readable flow table (for the examples)."""
        lines = []
        for (src_ip, dst_ip, sport, dport), session in self._flow_out.items():
            lines.append(
                f"{int_to_ip(src_ip)}:{sport} -> {int_to_ip(dst_ip)}:{dport}"
                f"  via EphID {session.local.ephid.hex()[:8]}…"
            )
        return lines
