"""Deployment adapters: gateways, connection-sharing devices and
APNA-as-a-Service (paper Sections VII-B, VII-D and VIII-E)."""

from .aas import DownstreamAs
from .ap import ApClientNode, BridgeAccessPoint, NatAccessPoint
from .gateway import ApnaGateway, LegacyHostNode

__all__ = [
    "ApClientNode",
    "ApnaGateway",
    "BridgeAccessPoint",
    "DownstreamAs",
    "LegacyHostNode",
    "NatAccessPoint",
]
