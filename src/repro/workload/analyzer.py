"""Trace analysis: the statistics Section V-A3 extracts from its trace.

"We identify 1,266,598 unique hosts generating a peak rate of 3,888
active HTTP(S) sessions per second."  The analyzer computes unique-host
counts and the peak per-second new-session rate from a (synthetic)
trace, plus the concurrency profile used by the revocation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceStats:
    total_flows: int
    unique_hosts: int
    peak_sessions_per_second: int
    peak_second: float
    https_flows: int
    mean_duration: float
    p98_duration: float

    def summary(self) -> str:
        return (
            f"{self.total_flows:,} flows from {self.unique_hosts:,} hosts; "
            f"peak {self.peak_sessions_per_second:,} new sessions/s at "
            f"t={self.peak_second:,.0f}s; 98th pct duration "
            f"{self.p98_duration:,.0f}s"
        )


def analyze(trace: dict[str, np.ndarray], *, duration: float | None = None) -> TraceStats:
    """Compute the Section V-A3 statistics over a column-oriented trace."""
    starts = trace["start"]
    if len(starts) == 0:
        return TraceStats(0, 0, 0, 0.0, 0, 0.0, 0.0)
    horizon = duration if duration is not None else float(starts.max()) + 1.0
    per_second = np.bincount(
        starts.astype(np.int64), minlength=int(horizon) + 1
    )
    peak_idx = int(per_second.argmax())
    durations = trace["duration"]
    return TraceStats(
        total_flows=int(len(starts)),
        unique_hosts=int(len(np.unique(trace["host_id"]))),
        peak_sessions_per_second=int(per_second[peak_idx]),
        peak_second=float(peak_idx),
        https_flows=int(trace["is_https"].sum()),
        mean_duration=float(durations.mean()),
        p98_duration=float(np.percentile(durations, 98)),
    )


def concurrent_flows(trace: dict[str, np.ndarray], at: float) -> int:
    """Flows active at time ``at`` (started, not yet ended)."""
    starts = trace["start"]
    ends = starts + trace["duration"]
    return int(((starts <= at) & (ends > at)).sum())


def ephid_demand_per_second(
    trace: dict[str, np.ndarray], *, horizon: float
) -> np.ndarray:
    """Per-second EphID issuance demand under per-flow EphIDs: exactly the
    new-session rate (every new flow needs a fresh EphID)."""
    starts = trace["start"]
    return np.bincount(starts.astype(np.int64), minlength=int(horizon) + 1)
