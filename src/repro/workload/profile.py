"""Traffic profiles: bind Section V flow traces to a built world.

The experiments used to hand-roll the same loop — attach clients and
servers, acquire a serving EphID, iterate a trace, connect, run — for
every topology.  A :class:`TrafficProfile` packages that whole pipeline
behind one call::

    >>> from repro import scenarios
    >>> from repro.workload import TrafficProfile
    >>> world = scenarios.build("chain:3", seed=1)
    >>> report = TrafficProfile(clients=4, servers=2, max_flows=200).drive(world)
    >>> report.payloads_delivered == report.sessions_opened
    True

Flow arrivals come from :class:`~repro.workload.flows.TraceGenerator`
(the paper's diurnal/dragonfly-tortoise trace shape); the trace's span is
compressed into ``window`` seconds of virtual time so even a 24 h trace
drives a short deterministic simulation.  Thousands of sessions across
arbitrary topologies are one call: crank ``trace``/``max_flows`` up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from .flows import TraceConfig, TraceGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..topology import World

__all__ = ["TrafficProfile", "TrafficReport"]


def _ref_list(refs: object, *, default: object) -> list[object]:
    """Normalize an AS-ref option: None -> [default]; a single ref (str,
    AID, AS object) -> one-element list; otherwise list(refs).  A bare
    string must not be iterated character by character."""
    if refs is None:
        return [default]
    if isinstance(refs, (str, int)):
        return [refs]
    try:
        return list(refs)
    except TypeError:
        return [refs]


@dataclass
class TrafficReport:
    """What happened when a profile drove a world."""

    flows_offered: int
    sessions_opened: int
    payloads_delivered: int
    responses_received: int
    clients: int
    servers: int
    sim_time: float
    events: int
    by_server: dict[str, int] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """Delivered first-flight payloads over offered flows."""
        if not self.flows_offered:
            return 1.0
        return self.payloads_delivered / self.flows_offered


@dataclass
class TrafficProfile:
    """A declarative multi-flow workload for any :class:`World`.

    Clients home on ``client_at`` ASes (default: the world's first AS)
    and servers on ``server_at`` (default: the last AS), round-robin when
    several are given.  Each trace flow becomes one APNA session: the
    mapped client connects to a server's published EphID certificate with
    the request as 0-RTT early data, at the flow's (time-compressed)
    arrival instant.
    """

    trace: TraceConfig = field(
        default_factory=lambda: TraceConfig(hosts=64, duration=600.0)
    )
    clients: int = 4
    servers: int = 2
    #: AS refs (name/AID/AS object) — a single ref or a sequence of them.
    client_at: object | Sequence[object] | None = None
    server_at: object | Sequence[object] | None = None
    max_flows: int | None = 1_000
    #: Virtual seconds the trace's time axis is compressed into.
    window: float = 2.0
    #: Flow arrivals are grouped into bursts of this many and launched at
    #: the group's first arrival instant, so border routers with
    #: ``forwarding_batch_size > 1`` actually see burst-sized packet
    #: trains (the paper's §V-B data plane regime).  1 = one event per
    #: flow at its own trace instant.
    burst: int = 1
    payload: bytes = b"GET / HTTP/1.1"
    #: Echo a response for each delivered request.
    respond: bool = True
    port: int = 80
    #: Generate the trace lazily (:meth:`TraceGenerator.iter_arrays`)
    #: and interleave generation with simulation, one time slice at a
    #: time — memory stays bounded by one slice however long the trace.
    #: The chunked draw scheme differs from the one-shot generator's,
    #: so a streamed run is statistically (not bit-) identical to the
    #: default materialising run at equal seeds.
    stream: bool = False
    #: Trace seconds per streamed slice (only with ``stream=True``).
    stream_chunk: float = 3_600.0
    #: Attached host names are ``<prefix>-c<i>`` / ``<prefix>-s<j>``.
    #: Re-driving the same world auto-bumps the prefix (``traffic2``, ...)
    #: so each run gets a fresh, non-colliding set of endpoints.
    host_prefix: str = "traffic"

    def drive(self, world: "World") -> TrafficReport:
        """Attach the endpoints, replay the trace, drain the simulator."""
        if self.clients < 1 or self.servers < 1:
            raise ValueError("a traffic profile needs >=1 client and >=1 server")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")

        client_ases = [
            world.asys(ref)
            for ref in _ref_list(self.client_at, default=world.ases[0])
        ]
        server_ases = [
            world.asys(ref)
            for ref in _ref_list(self.server_at, default=world.ases[-1])
        ]
        prefix = self.host_prefix
        generation = 2
        while any(
            f"{prefix}-{kind}{k}" in world.hosts
            for kind, count in (("c", self.clients), ("s", self.servers))
            for k in range(count)
        ):
            prefix = f"{self.host_prefix}{generation}"
            generation += 1

        # One batched route recomputation for all endpoints (the default
        # would rerun all-pairs Dijkstra per host).
        clients = [
            world.attach_host(
                f"{prefix}-c{i}",
                at=client_ases[i % len(client_ases)],
                recompute_routes=False,
            )
            for i in range(self.clients)
        ]
        servers = [
            world.attach_host(
                f"{prefix}-s{j}",
                at=server_ases[j % len(server_ases)],
                recompute_routes=False,
            )
            for j in range(self.servers)
        ]
        world.network.compute_routes()

        delivered_by_server: dict[str, int] = {s.name: 0 for s in servers}

        def _serve(server):
            def handler(session, transport, data):
                delivered_by_server[server.name] += 1
                if self.respond:
                    server.send_data(
                        session, b"OK " + data, dst_port=transport.src_port
                    )

            return handler

        server_certs = []
        for server in servers:
            server.listen(self.port, _serve(server))
            server_certs.append(server.acquire_ephid_direct().cert)

        scale = self.window / self.trace.duration
        opened = {"count": 0}
        scheduler = world.network.scheduler

        if self.stream:
            n, events = self._drive_stream(
                world, clients, server_certs, scheduler, scale, opened
            )
        else:
            columns = TraceGenerator(self.trace).generate_arrays()
            starts = columns["start"]
            host_ids = columns["host_id"]
            n = len(starts)
            if self.max_flows is not None:
                n = min(n, self.max_flows)

            def _launch(index: int) -> None:
                client = clients[int(host_ids[index]) % len(clients)]
                cert = server_certs[index % len(server_certs)]
                client.connect(cert, early_data=self.payload, dst_port=self.port)
                opened["count"] += 1

            for group_start in range(0, n, self.burst):
                when = scheduler.now + float(starts[group_start]) * scale
                for index in range(group_start, min(group_start + self.burst, n)):
                    scheduler.schedule_at(when, _launch, index)
            events = world.run()

        return TrafficReport(
            flows_offered=n,
            sessions_opened=opened["count"],
            payloads_delivered=sum(delivered_by_server.values()),
            responses_received=sum(len(c.inbox) for c in clients),
            clients=len(clients),
            servers=len(servers),
            sim_time=world.network.now,
            events=events,
            by_server=delivered_by_server,
        )

    def _drive_stream(
        self, world, clients, server_certs, scheduler, scale, opened
    ) -> "tuple[int, int]":
        """Streamed replay: schedule one trace slice, simulate it, repeat.

        The scheduler never holds more than one slice's launches, so an
        arbitrarily long trace drives the world in bounded memory.
        Bursts group within a slice (a burst never straddles slices).
        Returns ``(flows_offered, events)``.
        """

        def _launch(host_id: int, index: int) -> None:
            client = clients[host_id % len(clients)]
            cert = server_certs[index % len(server_certs)]
            client.connect(cert, early_data=self.payload, dst_port=self.port)
            opened["count"] += 1

        base = scheduler.now
        offered = 0
        events = 0
        slice_end = 0.0
        generator = TraceGenerator(self.trace)
        for columns in generator.iter_arrays(chunk_duration=self.stream_chunk):
            slice_end = min(slice_end + self.stream_chunk, self.trace.duration)
            starts = columns["start"]
            host_ids = columns["host_id"]
            n = len(starts)
            if self.max_flows is not None:
                n = min(n, self.max_flows - offered)
            for group_start in range(0, n, self.burst):
                when = base + float(starts[group_start]) * scale
                for index in range(group_start, min(group_start + self.burst, n)):
                    scheduler.schedule_at(
                        when,
                        _launch,
                        int(host_ids[index]),
                        offered + index,
                    )
            offered += n
            # Drain this slice before generating the next: launches are
            # all at or before the slice boundary's virtual instant.
            events += world.run_until(base + slice_end * scale)
            if self.max_flows is not None and offered >= self.max_flows:
                break
        events += world.run()
        return offered, events
