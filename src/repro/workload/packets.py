"""Packet workloads for the forwarding experiments (paper Fig. 8).

Builds pools of *valid* APNA packets (real EphIDs, real MACs) at the
paper's five sizes — 128, 256, 512, 1024 and 1518 bytes — plus matching
plain-IPv4 packets for the baseline comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.autonomous_system import ApnaAutonomousSystem
from ..core.session import OwnedEphId
from ..wire.apna import Endpoint, HEADER_SIZE, HEADER_SIZE_WITH_NONCE
from ..wire.ipv4 import HEADER_SIZE as IPV4_HEADER_SIZE
from ..wire.ipv4 import Ipv4Header, PROTO_UDP

#: The packet sizes of Fig. 8.
PAPER_PACKET_SIZES = (128, 256, 512, 1024, 1518)


@dataclass
class PacketPool:
    """Pre-built packets of one size, ready for a forwarding loop."""

    size: int
    apna_packets: list  # list[ApnaPacket]
    wire_frames: list[bytes]


def build_apna_pool(
    assembly: ApnaAutonomousSystem,
    hosts: list,
    *,
    size: int,
    count: int,
    dst_aid: int = 65000,
) -> PacketPool:
    """Valid egress packets of ``size`` bytes total (header + payload).

    Hosts must be bootstrapped members of ``assembly``; packets rotate
    over the hosts (and one EphID each) so the router's per-host MAC
    cache behaves as in steady state.
    """
    header_size = (
        HEADER_SIZE_WITH_NONCE if assembly.config.replay_protection else HEADER_SIZE
    )
    if size < header_size + 1:
        raise ValueError(f"packet size {size} smaller than the APNA header")
    payload = bytes(size - header_size)
    owned: list[tuple[object, OwnedEphId]] = [
        (host, host.acquire_ephid_direct()) for host in hosts
    ]
    dst = Endpoint(dst_aid, bytes(16))
    packets = []
    for i in range(count):
        host, ephid = owned[i % len(owned)]
        packets.append(host.stack.make_packet(ephid.ephid, dst, payload))
    return PacketPool(
        size=size, apna_packets=packets, wire_frames=[p.to_wire() for p in packets]
    )


def build_ipv4_pool(*, size: int, count: int, dst_base: int = 0xC0A80000) -> PacketPool:
    """Plain IPv4 packets of ``size`` bytes for the baseline router."""
    if size < IPV4_HEADER_SIZE:
        raise ValueError(f"packet size {size} smaller than the IPv4 header")
    body = bytes(size - IPV4_HEADER_SIZE)
    frames = []
    for i in range(count):
        header = Ipv4Header(
            src=0x0A000001 + i % 251,
            dst=dst_base + i % 4096,
            protocol=PROTO_UDP,
            total_length=size,
        )
        frames.append(header.pack() + body)
    return PacketPool(size=size, apna_packets=[], wire_frames=frames)
