"""Synthetic HTTP(S) flow-trace generation (substitute for the paper's
proprietary 24-hour national-research-network trace, Section V-A3).

The paper's experiment consumes exactly two statistics from its trace:
the number of unique hosts (1,266,598) and the peak rate of new HTTP(S)
sessions (3,888/second).  The generator reproduces a trace with the same
*shape* at a configurable scale:

* flow arrivals follow a diurnal (sinusoidal) intensity profile,
* flow durations follow the dragonfly/tortoise mixture of Brownlee &
  Claffy (the paper's [11]): overwhelmingly short flows — 98% under 15
  minutes — with a heavy Pareto tail,
* per-host activity is skewed (a few heavy hitters, many light users).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Per-host peak intensity implied by the paper's numbers:
#: 3,888 sessions/s over 1,266,598 hosts.
PAPER_HOSTS = 1_266_598
PAPER_PEAK_RATE = 3_888.0
_PAPER_PEAK_PER_HOST = PAPER_PEAK_RATE / PAPER_HOSTS


@dataclass(frozen=True)
class FlowRecord:
    """One flow in the trace (mirrors the paper's trace entries)."""

    start: float
    duration: float
    host_id: int
    is_https: bool

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class TraceConfig:
    hosts: int = 12_666  # 1% of the paper's host count by default
    duration: float = 86_400.0  # 24 hours
    #: Peak new-session intensity per host per second; the default keeps
    #: the paper's per-host intensity so peak rate scales with `hosts`.
    peak_per_host: float = _PAPER_PEAK_PER_HOST
    #: Fraction of flows that are HTTPS (paper: 74M of 178M entries).
    https_fraction: float = 74 / 178
    #: Fraction of long-lived "tortoise" flows.
    tortoise_fraction: float = 0.02
    seed: int = 20161003  # the paper's arXiv date


class TraceGenerator:
    """Generates time-sorted :class:`FlowRecord` streams."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def _intensity(self, t: np.ndarray) -> np.ndarray:
        """Diurnal profile: trough at 04:00, peak at 16:00 local time."""
        day_phase = 2 * np.pi * (t / 86_400.0 - 16.0 / 24.0)
        return 0.55 + 0.45 * np.cos(day_phase)

    def arrival_times(self) -> np.ndarray:
        """Flow start times via thinning of a homogeneous Poisson process."""
        cfg = self.config
        peak_rate = cfg.peak_per_host * cfg.hosts
        expected = peak_rate * cfg.duration  # upper bound before thinning
        n_candidates = self._rng.poisson(expected)
        candidates = self._rng.uniform(0.0, cfg.duration, size=n_candidates)
        keep = self._rng.uniform(size=n_candidates) < self._intensity(candidates)
        return np.sort(candidates[keep])

    def durations(self, n: int) -> np.ndarray:
        """Dragonfly/tortoise mixture, calibrated to ~98% under 15 min."""
        cfg = self.config
        is_tortoise = self._rng.uniform(size=n) < cfg.tortoise_fraction
        # Dragonflies: lognormal, median ~8 s, sigma wide but bounded.
        dragonflies = self._rng.lognormal(mean=np.log(8.0), sigma=1.6, size=n)
        # Tortoises: Pareto tail starting at 15 minutes.
        tortoises = 900.0 * (1.0 + self._rng.pareto(1.2, size=n))
        return np.where(is_tortoise, tortoises, np.minimum(dragonflies, 890.0))

    def hosts_for(self, n: int) -> np.ndarray:
        """Skewed host activity via a Zipf-like draw over the host space."""
        cfg = self.config
        ranks = self._rng.zipf(1.2, size=n)
        return (ranks + self._rng.integers(0, cfg.hosts, size=n)) % cfg.hosts

    def generate(self) -> Iterator[FlowRecord]:
        """The full time-sorted trace."""
        starts = self.arrival_times()
        n = len(starts)
        durations = self.durations(n)
        hosts = self.hosts_for(n)
        https = self._rng.uniform(size=n) < self.config.https_fraction
        for i in range(n):
            yield FlowRecord(
                start=float(starts[i]),
                duration=float(durations[i]),
                host_id=int(hosts[i]),
                is_https=bool(https[i]),
            )

    def generate_arrays(self) -> dict[str, np.ndarray]:
        """Column-oriented trace (what the analyzer consumes; much faster
        than materialising per-row records for large traces)."""
        starts = self.arrival_times()
        n = len(starts)
        return {
            "start": starts,
            "duration": self.durations(n),
            "host_id": self.hosts_for(n),
            "is_https": self._rng.uniform(size=n) < self.config.https_fraction,
        }
