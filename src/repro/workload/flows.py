"""Synthetic HTTP(S) flow-trace generation (substitute for the paper's
proprietary 24-hour national-research-network trace, Section V-A3).

The paper's experiment consumes exactly two statistics from its trace:
the number of unique hosts (1,266,598) and the peak rate of new HTTP(S)
sessions (3,888/second).  The generator reproduces a trace with the same
*shape* at a configurable scale:

* flow arrivals follow a diurnal (sinusoidal) intensity profile,
* flow durations follow the dragonfly/tortoise mixture of Brownlee &
  Claffy (the paper's [11]): overwhelmingly short flows — 98% under 15
  minutes — with a heavy Pareto tail,
* per-host activity is skewed (a few heavy hitters, many light users).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Per-host peak intensity implied by the paper's numbers:
#: 3,888 sessions/s over 1,266,598 hosts.
PAPER_HOSTS = 1_266_598
PAPER_PEAK_RATE = 3_888.0
_PAPER_PEAK_PER_HOST = PAPER_PEAK_RATE / PAPER_HOSTS


@dataclass(frozen=True)
class FlowRecord:
    """One flow in the trace (mirrors the paper's trace entries)."""

    start: float
    duration: float
    host_id: int
    is_https: bool

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class TraceConfig:
    hosts: int = 12_666  # 1% of the paper's host count by default
    duration: float = 86_400.0  # 24 hours
    #: Peak new-session intensity per host per second; the default keeps
    #: the paper's per-host intensity so peak rate scales with `hosts`.
    peak_per_host: float = _PAPER_PEAK_PER_HOST
    #: Fraction of flows that are HTTPS (paper: 74M of 178M entries).
    https_fraction: float = 74 / 178
    #: Fraction of long-lived "tortoise" flows.
    tortoise_fraction: float = 0.02
    seed: int = 20161003  # the paper's arXiv date


class TraceGenerator:
    """Generates time-sorted :class:`FlowRecord` streams."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()
        self._rng = np.random.default_rng(self.config.seed)

    def _intensity(self, t: np.ndarray) -> np.ndarray:
        """Diurnal profile: trough at 04:00, peak at 16:00 local time."""
        day_phase = 2 * np.pi * (t / 86_400.0 - 16.0 / 24.0)
        return 0.55 + 0.45 * np.cos(day_phase)

    def arrival_times(self) -> np.ndarray:
        """Flow start times via thinning of a homogeneous Poisson process."""
        cfg = self.config
        peak_rate = cfg.peak_per_host * cfg.hosts
        expected = peak_rate * cfg.duration  # upper bound before thinning
        n_candidates = self._rng.poisson(expected)
        candidates = self._rng.uniform(0.0, cfg.duration, size=n_candidates)
        keep = self._rng.uniform(size=n_candidates) < self._intensity(candidates)
        return np.sort(candidates[keep])

    def durations(self, n: int) -> np.ndarray:
        """Dragonfly/tortoise mixture, calibrated to ~98% under 15 min."""
        return self._durations_with(self._rng, n)

    def _durations_with(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cfg = self.config
        is_tortoise = rng.uniform(size=n) < cfg.tortoise_fraction
        # Dragonflies: lognormal, median ~8 s, sigma wide but bounded.
        dragonflies = rng.lognormal(mean=np.log(8.0), sigma=1.6, size=n)
        # Tortoises: Pareto tail starting at 15 minutes.
        tortoises = 900.0 * (1.0 + rng.pareto(1.2, size=n))
        return np.where(is_tortoise, tortoises, np.minimum(dragonflies, 890.0))

    def hosts_for(self, n: int) -> np.ndarray:
        """Skewed host activity via a Zipf-like draw over the host space."""
        return self._hosts_with(self._rng, n)

    def _hosts_with(self, rng: np.random.Generator, n: int) -> np.ndarray:
        cfg = self.config
        ranks = rng.zipf(1.2, size=n)
        return (ranks + rng.integers(0, cfg.hosts, size=n)) % cfg.hosts

    def generate(self) -> Iterator[FlowRecord]:
        """The full time-sorted trace."""
        starts = self.arrival_times()
        n = len(starts)
        durations = self.durations(n)
        hosts = self.hosts_for(n)
        https = self._rng.uniform(size=n) < self.config.https_fraction
        for i in range(n):
            yield FlowRecord(
                start=float(starts[i]),
                duration=float(durations[i]),
                host_id=int(hosts[i]),
                is_https=bool(https[i]),
            )

    def generate_arrays(self) -> dict[str, np.ndarray]:
        """Column-oriented trace (what the analyzer consumes; much faster
        than materialising per-row records for large traces)."""
        starts = self.arrival_times()
        n = len(starts)
        return {
            "start": starts,
            "duration": self.durations(n),
            "host_id": self.hosts_for(n),
            "is_https": self._rng.uniform(size=n) < self.config.https_fraction,
        }

    def iter_arrays(
        self, *, chunk_duration: float = 3_600.0
    ) -> "Iterator[dict[str, np.ndarray]]":
        """Lazily yield column chunks over consecutive time slices.

        The streaming counterpart of :meth:`generate_arrays` for traces
        too large to materialise: each chunk covers ``chunk_duration``
        trace seconds and is drawn from its own ``(seed, chunk_index)``
        generator, so chunk ``k`` is reproducible without generating
        chunks ``0..k-1`` and memory stays bounded by one slice whatever
        the total trace size.  Starts are sorted within each slice and
        slices are consecutive, so the concatenated stream is globally
        time-sorted.  (The draw scheme differs from the one-shot
        generator's, so the streamed trace is statistically — not
        bit- — identical to :meth:`generate_arrays` at equal seeds.)
        """
        if chunk_duration <= 0:
            raise ValueError(f"chunk_duration must be positive, got {chunk_duration}")
        cfg = self.config
        peak_rate = cfg.peak_per_host * cfg.hosts
        chunk_index = 0
        slice_start = 0.0
        while slice_start < cfg.duration:
            slice_end = min(slice_start + chunk_duration, cfg.duration)
            rng = np.random.default_rng((cfg.seed, chunk_index))
            expected = peak_rate * (slice_end - slice_start)
            n_candidates = rng.poisson(expected)
            candidates = rng.uniform(slice_start, slice_end, size=n_candidates)
            keep = rng.uniform(size=n_candidates) < self._intensity(candidates)
            starts = np.sort(candidates[keep])
            n = len(starts)
            yield {
                "start": starts,
                "duration": self._durations_with(rng, n),
                "host_id": self._hosts_with(rng, n),
                "is_https": rng.uniform(size=n) < cfg.https_fraction,
            }
            slice_start = slice_end
            chunk_index += 1

    def stream(
        self, *, chunk_duration: float = 3_600.0
    ) -> Iterator[FlowRecord]:
        """Lazy, globally time-sorted :class:`FlowRecord` stream (the
        per-row view of :meth:`iter_arrays`; same chunked draw scheme)."""
        for columns in self.iter_arrays(chunk_duration=chunk_duration):
            starts = columns["start"]
            durations = columns["duration"]
            hosts = columns["host_id"]
            https = columns["is_https"]
            for i in range(len(starts)):
                yield FlowRecord(
                    start=float(starts[i]),
                    duration=float(durations[i]),
                    host_id=int(hosts[i]),
                    is_https=bool(https[i]),
                )
