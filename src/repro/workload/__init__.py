"""Workload substrate: synthetic traces (Section V-A3's proprietary trace
substitute), packet pools for the Fig. 8 forwarding experiments, and
traffic profiles that replay traces against a built
:class:`~repro.topology.World`."""

from .analyzer import TraceStats, analyze, concurrent_flows, ephid_demand_per_second
from .flows import (
    PAPER_HOSTS,
    PAPER_PEAK_RATE,
    FlowRecord,
    TraceConfig,
    TraceGenerator,
)
from .packets import PAPER_PACKET_SIZES, PacketPool, build_apna_pool, build_ipv4_pool
from .profile import TrafficProfile, TrafficReport

__all__ = [
    "PAPER_HOSTS",
    "PAPER_PACKET_SIZES",
    "PAPER_PEAK_RATE",
    "FlowRecord",
    "PacketPool",
    "TraceConfig",
    "TraceGenerator",
    "TraceStats",
    "TrafficProfile",
    "TrafficReport",
    "analyze",
    "build_apna_pool",
    "build_ipv4_pool",
    "concurrent_flows",
    "ephid_demand_per_second",
]
