"""Convenience builders for simulated APNA "internets".

Every example, test and experiment needs the same scaffolding: a trust
anchor, an RPKI directory, ASes wired through the simulator and a few
bootstrapped hosts.  These builders package that set-up behind one call so
that downstream users can get to the interesting part — EphIDs, sessions,
shutoffs — in three lines.

* :func:`build_two_as_internet` — the canonical two-AS world of Fig. 1.
* :func:`build_as_chain` — a linear chain (source, transits, destination),
  the topology of the Section VIII-C path-validation experiments.
* :func:`build_as_star` — one transit hub with stub leaves.
* :func:`build_transit_stub` — a small Internet-like hierarchy: a meshed
  transit core with stub ASes hanging off each transit.

>>> world = build_two_as_internet(seed=7)
>>> alice = world.attach_host("alice", side="a")
>>> bob = world.attach_host("bob", side="b")
>>> server_ephid = bob.acquire_ephid_direct()
>>> session = alice.connect(server_ephid.cert, early_data=b"hi")
>>> world.network.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .core.autonomous_system import ApnaAutonomousSystem, ApnaHostNode
from .core.config import ApnaConfig
from .core.rpki import RpkiDirectory, TrustAnchor
from .crypto.rng import DeterministicRng, Rng
from .netsim import Network


@dataclass
class TwoAsWorld:
    """A two-AS simulated internet with its trust infrastructure.

    Attributes mirror the entities of the paper's Fig. 1: two ASes (each an
    assembled Registry Service, Management Service, Border Router and
    Accountability Agent), the network between them, and the RPKI trust
    anchor both rely on to verify each other's certificates.
    """

    network: Network
    rng: Rng
    anchor: TrustAnchor
    rpki: RpkiDirectory
    as_a: ApnaAutonomousSystem
    as_b: ApnaAutonomousSystem
    config: ApnaConfig
    hosts: dict[str, ApnaHostNode] = field(default_factory=dict)

    def attach_host(self, name: str, *, side: str = "a", latency: float = 0.001) -> ApnaHostNode:
        """Attach and bootstrap a host on AS ``a`` or ``b``.

        The host is bootstrapped (Fig. 2) and routes are recomputed so it is
        immediately able to acquire EphIDs and open sessions.
        """
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        autonomous_system = self.as_a if side == "a" else self.as_b
        host = autonomous_system.attach_host(name, latency=latency)
        host.bootstrap()
        self.network.compute_routes()
        self.hosts[name] = host
        return host


def build_two_as_internet(
    *,
    seed: int | str = 0,
    aid_a: int = 100,
    aid_b: int = 200,
    latency: float = 0.020,
    bandwidth: float = 1e10,
    config: ApnaConfig | None = None,
) -> TwoAsWorld:
    """Build the canonical two-AS world used throughout the examples.

    Parameters
    ----------
    seed:
        Seed for the deterministic RNG; equal seeds give bit-identical
        worlds (keys, EphIDs, traffic), which keeps examples reproducible.
    aid_a, aid_b:
        AS identifiers (the AID of the paper's ``AID:EphID`` tuple).
    latency:
        One-way inter-AS link latency in seconds.
    bandwidth:
        Inter-AS link bandwidth in bits per second.
    config:
        Optional :class:`~repro.core.config.ApnaConfig` shared by both ASes.
    """
    rng = DeterministicRng(seed)
    network = Network()
    config = config or ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    as_a = ApnaAutonomousSystem(aid_a, network, rpki, anchor, config=config, rng=rng)
    as_b = ApnaAutonomousSystem(aid_b, network, rpki, anchor, config=config, rng=rng)
    as_a.connect_to(as_b, latency=latency, bandwidth=bandwidth)
    network.compute_routes()
    return TwoAsWorld(
        network=network,
        rng=rng,
        anchor=anchor,
        rpki=rpki,
        as_a=as_a,
        as_b=as_b,
        config=config,
    )


@dataclass
class MultiAsWorld:
    """An arbitrary multi-AS simulated internet."""

    network: Network
    rng: Rng
    anchor: TrustAnchor
    rpki: RpkiDirectory
    ases: list[ApnaAutonomousSystem]
    config: ApnaConfig
    hosts: dict[str, ApnaHostNode] = field(default_factory=dict)

    def as_by_aid(self, aid: int) -> ApnaAutonomousSystem:
        for autonomous_system in self.ases:
            if autonomous_system.aid == aid:
                return autonomous_system
        raise KeyError(f"no AS with AID {aid}")

    def attach_host(
        self, name: str, aid: int, *, latency: float = 0.001
    ) -> ApnaHostNode:
        """Attach and bootstrap a host on the AS with the given AID."""
        host = self.as_by_aid(aid).attach_host(name, latency=latency)
        host.bootstrap()
        self.network.compute_routes()
        self.hosts[name] = host
        return host

    def as_path(self, src_aid: int, dst_aid: int) -> list[int]:
        """The AID sequence packets take from ``src_aid`` to ``dst_aid``."""
        names = self.network.path(f"AS{src_aid}", f"AS{dst_aid}")
        return [int(name[2:]) for name in names]


class _WorldFoundation:
    """Shared bring-up for the multi-AS builders."""

    def __init__(self, seed: int | str, config: ApnaConfig | None) -> None:
        self.rng = DeterministicRng(seed)
        self.network = Network()
        self.config = config or ApnaConfig()
        self.anchor = TrustAnchor(self.rng)
        self.rpki = RpkiDirectory(
            self.anchor.public_key, self.network.scheduler.clock()
        )

    def make_as(self, aid: int) -> ApnaAutonomousSystem:
        return ApnaAutonomousSystem(
            aid, self.network, self.rpki, self.anchor, config=self.config, rng=self.rng
        )

    def finish(self, ases: list[ApnaAutonomousSystem]) -> MultiAsWorld:
        self.network.compute_routes()
        return MultiAsWorld(
            network=self.network,
            rng=self.rng,
            anchor=self.anchor,
            rpki=self.rpki,
            ases=ases,
            config=self.config,
        )


def build_as_chain(
    n_ases: int,
    *,
    seed: int | str = 0,
    latency: float = 0.010,
    bandwidth: float = 1e10,
    first_aid: int = 100,
    aid_step: int = 100,
    config: ApnaConfig | None = None,
) -> MultiAsWorld:
    """A linear AS chain: AID 100 — 200 — 300 — ...

    Traffic between the end ASes traverses every AS in between, which is
    the worst case for path-validation overhead (Section VIII-C).
    """
    if n_ases < 2:
        raise ValueError("a chain needs at least two ASes")
    foundation = _WorldFoundation(seed, config)
    ases = [foundation.make_as(first_aid + i * aid_step) for i in range(n_ases)]
    for left, right in zip(ases, ases[1:]):
        left.connect_to(right, latency=latency, bandwidth=bandwidth)
    return foundation.finish(ases)


def build_as_star(
    n_leaves: int,
    *,
    seed: int | str = 0,
    latency: float = 0.010,
    bandwidth: float = 1e10,
    hub_aid: int = 1,
    first_leaf_aid: int = 100,
    config: ApnaConfig | None = None,
) -> MultiAsWorld:
    """One transit hub with ``n_leaves`` stub ASes.

    The hub is ``ases[0]``.  Every leaf-to-leaf path crosses the hub,
    making this the canonical topology for transit-AS experiments
    (e.g. an on-path shutoff issued by the hub).
    """
    if n_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    foundation = _WorldFoundation(seed, config)
    hub = foundation.make_as(hub_aid)
    ases = [hub]
    for i in range(n_leaves):
        leaf = foundation.make_as(first_leaf_aid + i * 100)
        hub.connect_to(leaf, latency=latency, bandwidth=bandwidth)
        ases.append(leaf)
    return foundation.finish(ases)


def build_transit_stub(
    n_transits: int,
    stubs_per_transit: int,
    *,
    seed: int | str = 0,
    core_latency: float = 0.005,
    edge_latency: float = 0.015,
    bandwidth: float = 1e10,
    config: ApnaConfig | None = None,
) -> MultiAsWorld:
    """A two-tier Internet: a full-mesh transit core with stub ASes.

    Transit ASes get AIDs 1..n; stub ASes get ``100 * transit + k``.
    ``ases`` lists transits first, then stubs grouped by their provider.
    This is the scale model of "APNA-as-a-Service" deployments
    (Section VIII-E): small stub ASes gain privacy by mixing their
    customers into a large upstream's anonymity set.
    """
    if n_transits < 1:
        raise ValueError("need at least one transit AS")
    if stubs_per_transit < 0:
        raise ValueError("stubs_per_transit must be non-negative")
    foundation = _WorldFoundation(seed, config)
    transits = [foundation.make_as(i + 1) for i in range(n_transits)]
    for i, left in enumerate(transits):
        for right in transits[i + 1 :]:
            left.connect_to(right, latency=core_latency, bandwidth=bandwidth)
    stubs = []
    for tier_index, transit in enumerate(transits, start=1):
        for k in range(stubs_per_transit):
            stub = foundation.make_as(100 * tier_index + k)
            transit.connect_to(stub, latency=edge_latency, bandwidth=bandwidth)
            stubs.append(stub)
    return foundation.finish(transits + stubs)
