"""Deprecated per-shape world builders (compatibility shims).

This module predates the unified scenario API and is kept for one
release so existing imports keep working.  New code should use:

* :class:`repro.topology.WorldBuilder` / :class:`repro.topology.TopologySpec`
  to declare arbitrary topologies,
* :mod:`repro.scenarios` for the named presets that replace these
  builders one-for-one:

  ====================================  ==============================
  old                                   new
  ====================================  ==============================
  ``build_two_as_internet(seed=7)``     ``scenarios.build("fig1", seed=7)``
  ``build_as_chain(4)``                 ``scenarios.build("chain:4")``
  ``build_as_star(3)``                  ``scenarios.build("star:3")``
  ``build_transit_stub(3, 2)``          ``scenarios.build("transit-stub:3x2")``
  ``world.attach_host(n, side="a")``    ``world.attach_host(n, at="a")``
  ``world.attach_host(n, aid)``         ``world.attach_host(n, at=aid)``
  ====================================  ==============================

Every entry point below emits a :class:`DeprecationWarning` and returns
a :class:`~repro.topology.World` subclass, so isinstance checks and the
old attribute surface (``as_a``/``as_b``, ``ases``, ``as_by_aid``,
``as_path``, ``side=``/positional-AID ``attach_host``) keep working.
"""

from __future__ import annotations

import warnings

from .core.autonomous_system import ApnaAutonomousSystem, ApnaHostNode
from .core.config import ApnaConfig
from .core.rpki import RpkiDirectory, TrustAnchor
from .crypto.rng import Rng
from .netsim import Network
from .topology import TopologySpec, World

__all__ = [
    "MultiAsWorld",
    "TwoAsWorld",
    "build_as_chain",
    "build_as_star",
    "build_transit_stub",
    "build_two_as_internet",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.topology / repro.scenarios)",
        DeprecationWarning,
        stacklevel=3,
    )


class TwoAsWorld(World):
    """Deprecated: the pre-redesign two-AS world (now a :class:`World`).

    Kept so ``isinstance(world, TwoAsWorld)`` and the ``side="a"|"b"``
    addressing of existing code keep working for one release.
    """

    def __init__(
        self,
        network: Network,
        rng: Rng,
        anchor: TrustAnchor,
        rpki: RpkiDirectory,
        as_a: ApnaAutonomousSystem,
        as_b: ApnaAutonomousSystem,
        config: ApnaConfig,
        hosts: dict[str, ApnaHostNode] | None = None,
    ) -> None:
        _deprecated("TwoAsWorld", "World.from_spec(TopologySpec.fig1(), ...)")
        super().__init__(
            network=network,
            rng=rng,
            anchor=anchor,
            rpki=rpki,
            config=config,
            ases=[as_a, as_b],
            names={"a": as_a, "b": as_b},
        )
        if hosts:
            self.hosts.update(hosts)

    @classmethod
    def _adopt(cls, world: World) -> "TwoAsWorld":
        shim = cls.__new__(cls)
        shim.__dict__.update(world.__dict__)
        return shim

    def attach_host(
        self, name: str, *, side: str | None = None, at=None, **kwargs
    ) -> ApnaHostNode:
        """Attach a host; accepts the legacy ``side="a"|"b"`` keyword."""
        if side is not None:
            if at is not None:
                raise ValueError("pass either side= or at=, not both")
            if side not in ("a", "b"):
                raise ValueError(f"side must be 'a' or 'b', got {side!r}")
            at = side
        return super().attach_host(name, at=at if at is not None else "a", **kwargs)


class MultiAsWorld(World):
    """Deprecated: the pre-redesign N-AS world (now a :class:`World`)."""

    def __init__(
        self,
        network: Network,
        rng: Rng,
        anchor: TrustAnchor,
        rpki: RpkiDirectory,
        ases: list[ApnaAutonomousSystem],
        config: ApnaConfig,
        hosts: dict[str, ApnaHostNode] | None = None,
    ) -> None:
        _deprecated("MultiAsWorld", "World.from_spec(...)")
        super().__init__(
            network=network,
            rng=rng,
            anchor=anchor,
            rpki=rpki,
            config=config,
            ases=list(ases),
        )
        if hosts:
            self.hosts.update(hosts)

    @classmethod
    def _adopt(cls, world: World) -> "MultiAsWorld":
        shim = cls.__new__(cls)
        shim.__dict__.update(world.__dict__)
        return shim

    def attach_host(self, name: str, aid: int | None = None, *, at=None, **kwargs) -> ApnaHostNode:
        """Attach a host; accepts the legacy positional-AID addressing."""
        if aid is not None and at is not None:
            raise ValueError("pass either the positional aid or at=, not both")
        return super().attach_host(name, at=at if at is not None else aid, **kwargs)


def build_two_as_internet(
    *,
    seed: int | str = 0,
    aid_a: int = 100,
    aid_b: int = 200,
    latency: float = 0.020,
    bandwidth: float = 1e10,
    config: ApnaConfig | None = None,
) -> TwoAsWorld:
    """Deprecated: build the canonical two-AS world of Fig. 1.

    Use ``scenarios.build("fig1", seed=...)`` or
    ``World.from_spec(TopologySpec.fig1(...), seed=...)`` instead.
    """
    _deprecated("build_two_as_internet()", 'scenarios.build("fig1")')
    spec = TopologySpec.fig1(
        aid_a=aid_a, aid_b=aid_b, latency=latency, bandwidth=bandwidth
    )
    return TwoAsWorld._adopt(World.from_spec(spec, seed=seed, config=config))


def build_as_chain(
    n_ases: int,
    *,
    seed: int | str = 0,
    latency: float = 0.010,
    bandwidth: float = 1e10,
    first_aid: int = 100,
    aid_step: int = 100,
    config: ApnaConfig | None = None,
) -> MultiAsWorld:
    """Deprecated: a linear AS chain.  Use ``scenarios.build("chain:N")``."""
    _deprecated("build_as_chain()", 'scenarios.build("chain:N")')
    if n_ases < 2:
        raise ValueError("a chain needs at least two ASes")
    spec = TopologySpec.chain(
        n_ases,
        first_aid=first_aid,
        aid_step=aid_step,
        latency=latency,
        bandwidth=bandwidth,
    )
    return MultiAsWorld._adopt(World.from_spec(spec, seed=seed, config=config))


def build_as_star(
    n_leaves: int,
    *,
    seed: int | str = 0,
    latency: float = 0.010,
    bandwidth: float = 1e10,
    hub_aid: int = 1,
    first_leaf_aid: int = 100,
    config: ApnaConfig | None = None,
) -> MultiAsWorld:
    """Deprecated: a hub-and-leaves star.  Use ``scenarios.build("star:N")``."""
    _deprecated("build_as_star()", 'scenarios.build("star:N")')
    if n_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    spec = TopologySpec.star(
        n_leaves,
        hub_aid=hub_aid,
        first_leaf_aid=first_leaf_aid,
        latency=latency,
        bandwidth=bandwidth,
    )
    return MultiAsWorld._adopt(World.from_spec(spec, seed=seed, config=config))


def build_transit_stub(
    n_transits: int,
    stubs_per_transit: int,
    *,
    seed: int | str = 0,
    core_latency: float = 0.005,
    edge_latency: float = 0.015,
    bandwidth: float = 1e10,
    config: ApnaConfig | None = None,
) -> MultiAsWorld:
    """Deprecated: transit-stub hierarchy.  Use ``scenarios.build("transit-stub:TxS")``."""
    _deprecated("build_transit_stub()", 'scenarios.build("transit-stub:TxS")')
    if n_transits < 1:
        raise ValueError("need at least one transit AS")
    if stubs_per_transit < 0:
        raise ValueError("stubs_per_transit must be non-negative")
    spec = TopologySpec.transit_stub(
        n_transits,
        stubs_per_transit,
        core_latency=core_latency,
        edge_latency=edge_latency,
        bandwidth=bandwidth,
    )
    return MultiAsWorld._adopt(World.from_spec(spec, seed=seed, config=config))
