"""Multi-process sharding of the APNA data plane and MS (paper §V-A3).

The paper's performance numbers come from share-nothing process
parallelism: four MS processes with "no coordination", and a DPDK border
router whose verdicts are computed per burst.  This package combines the
two — persistent worker processes, each owning the state for an HID
range, fed one burst-sized batch of packed wire frames per IPC message:

* :mod:`~repro.sharding.plan` — HID -> shard ownership and the
  IV-residue trick that lets a dispatcher route without decrypting;
* :mod:`~repro.sharding.wire` — the binary pipe protocol (bursts in,
  verdict vectors out; revocation/registration control frames between);
* :mod:`~repro.sharding.worker` — the worker process: a real
  :class:`~repro.core.border_router.BorderRouter` over process-local
  sharded state;
* :mod:`~repro.sharding.pool` — :class:`ShardedDataPlane`, the
  dispatcher, plus the generic :class:`ShardProcessPool`;
* :mod:`~repro.sharding.issuance` — E1's share-nothing MS measurement
  on the same scaffolding.

Enable it deployment-wide with ``ApnaConfig(forwarding_shards=N)`` (plus
a burst size) or ``WorldBuilder(...).sharding(N, batch_size=64)``.
"""

from .issuance import run_issuance_shards, split_requests
from .plan import ShardPlan
from .pool import ShardError, ShardProcessPool, ShardedDataPlane
from .worker import ShardHostView, ShardSpec, ShardState, data_plane_worker

__all__ = [
    "ShardError",
    "ShardHostView",
    "ShardPlan",
    "ShardProcessPool",
    "ShardSpec",
    "ShardState",
    "ShardedDataPlane",
    "data_plane_worker",
    "run_issuance_shards",
    "split_requests",
]
