"""Multi-process sharding of the APNA data plane and MS (paper §V-A3).

The paper's performance numbers come from share-nothing process
parallelism: four MS processes with "no coordination", and a DPDK border
router whose verdicts are computed per burst.  This package combines the
two — persistent worker processes, each owning the state for an HID
range, fed one burst-sized batch of packed wire frames per IPC message:

* :mod:`~repro.sharding.plan` — HID -> shard ownership and the keyed
  IV -> shard map that lets a dispatcher route without decrypting *and*
  without leaking: EphID IVs are pinned at issuance so that
  ``CMAC_kR(iv) % nshards`` (under the AS-internal routing key ``kR``)
  lands on the owner shard, so the clear IV bytes carry no cross-EphID
  linkage an observer could check.  The original unkeyed residue map
  (``iv % nshards``) survives only as ``mode="residue"`` for
  bit-compatibility — it leaks ``log2(nshards)`` linkage bits and must
  not be deployed;
* :mod:`~repro.sharding.wire` — the binary pipe protocol (bursts in,
  verdict vectors out; revocation/registration control frames between;
  full-state resync frames for restarted workers);
* :mod:`~repro.sharding.worker` — the worker process: a real
  :class:`~repro.core.border_router.BorderRouter` over process-local
  sharded state;
* :mod:`~repro.sharding.pool` — :class:`ShardedDataPlane`, the
  dispatcher, plus the generic :class:`ShardProcessPool`;
* :mod:`~repro.sharding.supervisor` — crash/hang detection, restart
  with state resync, and the degradation decision;
* :mod:`~repro.sharding.issuance` — E1's share-nothing MS measurement
  on the same scaffolding.

Enable it deployment-wide with ``ApnaConfig(forwarding_shards=N)`` (plus
a burst size) or ``WorldBuilder(...).sharding(N, batch_size=64)``.

Fault model & recovery semantics
--------------------------------

The plane assumes workers can die (OOM kill, segfault, operator
``kill -9``) or hang (stuck lock, unbounded syscall) at any moment, and
that a pipe can deliver an error frame or garbage instead of a reply.
Every reply wait is bounded (``ApnaConfig.shard_reply_timeout``): a dead
worker surfaces immediately as pipe EOF, a hung one as a timeout.  What
happens next, in order:

1. **Drop-and-count, never guess.**  Every verdict the failed worker
   still owes — across all in-flight bursts — is answered with
   ``Action.DROP`` / ``DropReason.SHARD_FAILURE`` and tallied in
   ``stats()`` (``shard-failure``, ``dropped_bursts``,
   ``dropped_packets``).  Verdicts for packets the failure did not touch
   are exact; no reply is ever paired with the wrong burst (each restart
   replaces the pipe, discarding any stale queued replies).

2. **Restart with resync.**  The worker is respawned from a *bare* spec
   and the authoritative AS state is replayed into it in one
   ``MSG_RESYNC`` frame before traffic resumes.  What survives exactly:
   the shard's owned host records and MAC keys, the replicated live-HID
   view, and the revocation list — all reread from the AS's own
   ``HostDatabase`` / ``RevocationList`` at restart time, so even an
   update whose control broadcast died mid-send arrives via the resync.
   What does not survive: the shard's **replay-filter history** (packets
   first seen up to one rotation window before the crash may pass once
   more — the same bounded two-window horizon the filter itself
   guarantees, restarted) and the shard's **verdict counters** (the
   supervision ledger in ``stats()`` keeps its own).  Restart attempts
   back off exponentially (``shard_restart_backoff``, capped) and each
   shard has a lifetime budget of ``shard_max_restarts`` attempts.

3. **Degrade, don't refuse.**  A shard that exhausts its budget ends the
   pooled plane: with ``shard_degraded_fallback=True`` (default) the
   plane falls back to a single in-process
   :class:`~repro.core.border_router.BorderRouter` over the
   authoritative state and keeps serving exact verdicts — ``stats()``
   then reports ``degraded: 1`` and per-shard counters are gone.  With
   the fallback disabled (or when the plane was built without an
   authoritative state source), the plane *poisons* itself exactly as
   the unsupervised iteration did: every later call raises
   :class:`ShardError` rather than risk mispaired verdicts.

:mod:`repro.faults` drives every one of these paths deterministically;
``tests/test_sharding_faults.py`` pins the semantics.
"""

from .issuance import run_issuance_shards, split_requests
from .plan import ShardPlan
from .pool import ShardError, ShardProcessPool, ShardTimeout, ShardedDataPlane
from .supervisor import ShardStateSource, ShardSupervisor, SupervisorPolicy
from .worker import ShardHostView, ShardSpec, ShardState, data_plane_worker

__all__ = [
    "ShardError",
    "ShardHostView",
    "ShardPlan",
    "ShardProcessPool",
    "ShardSpec",
    "ShardState",
    "ShardStateSource",
    "ShardSupervisor",
    "ShardTimeout",
    "ShardedDataPlane",
    "SupervisorPolicy",
    "data_plane_worker",
    "run_issuance_shards",
    "split_requests",
]
