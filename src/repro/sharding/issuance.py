"""Sharded Management-Service issuance (paper §V-A3's 4-process setup).

The paper's MS throughput number comes from four share-nothing
processes; E1 reproduces it.  This module runs that measurement on the
same :class:`~repro.sharding.pool.ShardProcessPool` scaffolding the
sharded data plane uses, replacing E1's former private fork-``Pool``.

Request distribution is exact: ``split_requests`` spreads the remainder
of a non-divisible load over the first workers instead of silently
truncating it, so a rate computed over the *full* request count is
measured over workers that actually issued the full request count.
"""

from __future__ import annotations

import struct
import traceback

from . import wire
from .pool import ShardProcessPool

_JOB = struct.Struct(">BII")  # kind, requests, seed
_RESULT = struct.Struct(">BId")  # kind, requests done, elapsed seconds
_KIND_JOB = 1
_KIND_RESULT = 2


def split_requests(requests: int, workers: int) -> "list[int]":
    """Split ``requests`` into at most ``workers`` positive chunks that
    sum exactly to ``requests`` (remainder spread over the first chunks)."""
    if requests < 1:
        raise ValueError(f"requests must be positive, got {requests}")
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    base, remainder = divmod(requests, workers)
    counts = [base + (1 if i < remainder else 0) for i in range(workers)]
    return [count for count in counts if count > 0]


def issuance_worker(conn, worker_index: int) -> None:
    """Worker main: time full-path (Fig. 3) issuance loops on request.

    The import is deferred so the module stays importable without the
    experiments package loaded (and to keep the e1 <-> sharding import
    edge one-directional at module-load time).
    """
    from ..experiments.e1_ms_performance import measure_issuance_rate

    while True:
        try:
            # Worker request loop: blocking forever *is* the contract —
            # the parent's EOF (pool teardown) wakes it; the bounded
            # side of the wait lives in run_issuance_shards' recv.
            msg = conn.recv_bytes()  # audit: allow(bounded-wait)
        except (EOFError, OSError):
            break
        if not msg or msg[0] != _KIND_JOB:
            break
        try:
            _, requests, seed = _JOB.unpack(msg)
            elapsed = measure_issuance_rate(requests, seed=seed)
        # Nothing is swallowed: the traceback ships home as a MSG_ERROR
        # frame and ShardProcessPool.recv_bytes re-raises it as ShardError.
        except Exception:  # audit: allow(silent-except)
            conn.send_bytes(wire.encode_error(traceback.format_exc()))
            continue
        conn.send_bytes(_RESULT.pack(_KIND_RESULT, requests, elapsed))
    conn.close()


#: Default bound on one MS worker's whole timed issuance loop.  Generous
#: — the loop builds a world and issues tens of thousands of EphIDs, all
#: local CPU work — but finite, so one wedged worker fails the run as
#: :class:`~repro.sharding.pool.ShardTimeout` instead of blocking E1
#: forever.
DEFAULT_REPLY_TIMEOUT = 600.0


def run_issuance_shards(
    counts: "list[int]",
    *,
    seed_base: int = 100,
    reply_timeout: "float | None" = DEFAULT_REPLY_TIMEOUT,
) -> "list[tuple[int, float]]":
    """Run one timed issuance loop per worker, share-nothing.

    Each worker builds an independent MS world (seeded ``seed_base + i``)
    and times only its issuance loop, exactly as the paper's 4-process
    measurement does.  Returns ``(requests_done, elapsed_seconds)`` per
    worker.  A worker that sends no result within ``reply_timeout``
    seconds raises :class:`~repro.sharding.pool.ShardTimeout`
    (``None`` restores the old unbounded wait); teardown then reaps the
    hung process.
    """
    pool = ShardProcessPool(
        issuance_worker, list(range(len(counts))), name="apna-ms"
    )
    try:
        for i, count in enumerate(counts):
            pool.send_bytes(i, _JOB.pack(_KIND_JOB, count, seed_base + i))
        results = []
        for i in range(len(counts)):
            msg = pool.recv_bytes(i, timeout=reply_timeout)
            _, done, elapsed = _RESULT.unpack(msg)
            results.append((done, elapsed))
        return results
    finally:
        pool.close(stop_msg=b"\x00")
