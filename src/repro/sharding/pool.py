"""The sharded data plane: persistent worker shards fed burst-sized batches.

:class:`ShardProcessPool` is the process scaffolding — N long-lived
workers, one duplex pipe each, binary messages only.  On top of it,
:class:`ShardedDataPlane` is the paper's §V-A3 share-nothing scale-out
applied to the border router: a dispatcher that

* routes each packed wire frame to a shard by the source EphID's clear
  IV residue (no crypto on the dispatch path — see
  :mod:`repro.sharding.plan`),
* short-circuits transit packets itself (forwarding by destination AID
  needs no per-host state at all, Section IV-D3),
* ships one message per shard per burst, and
* merges the per-shard verdict vectors back into arrival order.

Equivalence bar: the merged verdicts are element-for-element identical
to the single-process
:meth:`~repro.core.border_router.BorderRouter.process_batch` loop, and
the summed shard counters match the single router's counters
(``tests/test_sharding_equivalence.py`` fuzzes both under both crypto
backends).  One qualification: replay detection is a Bloom filter, and
each shard owns its own — inserts are partitioned across N filters
instead of hashed into one, so Bloom *false positives* (and rotation
counts) can differ from the single-filter plane.  Every true verdict is
identical; the divergence is confined to the filter's engineered FP
rate (sized by ``replay_filter_bits``), and sharding only ever lowers
it.  The perf bar — shards stacking on top of the burst loop's
amortisation, super-linear against the scalar loop — is measured by
``benchmarks/bench_sharding.py``.

Failure bar: the plane is *self-healing*.  Every reply wait is bounded,
a dead or hung worker is restarted and resynced from the authoritative
AS state (:mod:`repro.sharding.supervisor`), verdicts owed by a failed
worker are dropped-and-counted (never guessed), and a shard that cannot
be revived degrades the plane to an in-process border router instead of
refusing traffic.  The package docstring's fault-model section states
exactly what survives a restart; ``tests/test_sharding_faults.py``
drives every path with deterministic :mod:`repro.faults` storms.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from typing import Callable, Sequence

from ..core.border_router import (
    Action,
    BorderRouter,
    DropReason,
    InterVerdicts,
    Verdict,
)
from ..core.ephid import CIPHERTEXT_SIZE, IV_SIZE, EphIdCodec
from ..core.errors import ApnaError
from ..core.replay_filter import RotatingReplayFilter
from ..wire.apna import (
    AID_SIZE,
    EPHID_SIZE,
    HEADER_SIZE,
    HEADER_SIZE_WITH_NONCE,
    ApnaPacket,
)
from . import wire
from .plan import ShardPlan
from .supervisor import ShardStateSource, ShardSupervisor, SupervisorPolicy
from .worker import ShardSpec, _SettableClock, data_plane_worker

__all__ = [
    "ShardError",
    "ShardTimeout",
    "ShardProcessPool",
    "ShardedDataPlane",
]

#: Wire offsets into a packed APNA header, derived from the canonical
#: Fig. 7 / Fig. 6 layout constants: the source EphID's clear IV sits
#: after the source AID and the EphID ciphertext; the destination AID
#: after both EphIDs.
_SRC_IV = slice(
    AID_SIZE + CIPHERTEXT_SIZE, AID_SIZE + CIPHERTEXT_SIZE + IV_SIZE
)
_DST_AID = slice(AID_SIZE + 2 * EPHID_SIZE, 2 * AID_SIZE + 2 * EPHID_SIZE)
_MIN_FRAME = HEADER_SIZE
_MIN_FRAME_WITH_NONCE = HEADER_SIZE_WITH_NONCE

#: The synthetic verdict a packet gets when its worker shard failed
#: before replying: the packet is dropped and accounted, never given a
#: guessed verdict.
_SHARD_FAILURE = Verdict(Action.DROP, reason=DropReason.SHARD_FAILURE)


class ShardError(ApnaError):
    """A worker shard failed; the message carries the cause and, where
    known, :attr:`shard` names the failing worker."""

    def __init__(self, message: str, *, shard: "int | None" = None) -> None:
        super().__init__(message)
        self.shard = shard


class ShardTimeout(ShardError):
    """No reply within the bounded wait: the worker is hung (or died
    without closing its pipe — practically impossible, but covered)."""


def _default_start_method() -> str:
    # fork is cheap and inherits the loaded interpreter; fall back to
    # spawn where fork is unavailable (the specs are plain picklable
    # data and the worker entry points are module-level, so both work).
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardProcessPool:
    """N persistent worker processes speaking framed bytes over pipes.

    Generic scaffolding shared by the data plane and the sharded MS
    issuance runner (:mod:`repro.sharding.issuance`): it only spawns,
    addresses, *restarts* and tears down workers — message semantics
    belong to the caller.  Workers are daemonic, so an abandoned pool
    cannot outlive the interpreter even if :meth:`close` is never
    called.

    Failure handling at this layer is purely translation: raw
    ``EOFError``/``BrokenPipeError``/``OSError`` from ``Connection``
    calls become :class:`ShardError` carrying the shard index and a
    liveness hint (``exitcode``), and a bounded :meth:`recv_bytes` wait
    that expires becomes :class:`ShardTimeout`.  *Reacting* to failures
    (restart, resync, degrade) is the supervisor's job.
    """

    def __init__(
        self,
        worker: Callable,
        specs: Sequence,
        *,
        name: str = "shard",
        start_method: "str | None" = None,
    ) -> None:
        if not specs:
            raise ValueError("a pool needs at least one worker spec")
        self._ctx = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._worker = worker
        self._name = name
        self._procs = []
        self._conns = []
        self._closed = False
        for i, spec in enumerate(specs):
            proc, conn = self._spawn(i, spec)
            self._procs.append(proc)
            self._conns.append(conn)

    def _spawn(self, index: int, spec):
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=self._worker,
            args=(child, spec),
            daemon=True,
            name=f"{self._name}-{index}",
        )
        proc.start()
        child.close()
        return proc, parent

    def __len__(self) -> int:
        return len(self._procs)

    def _failure(self, shard: int, what: str) -> str:
        proc = self._procs[shard]
        if proc.is_alive():
            hint = "worker alive but unresponsive"
        else:
            hint = f"worker dead (exitcode {proc.exitcode})"
        return f"shard {shard}: {what} — {hint}"

    def send_bytes(self, shard: int, msg: bytes) -> None:
        if self._closed:
            raise ShardError("pool is closed")
        try:
            self._conns[shard].send_bytes(msg)
        except (BrokenPipeError, EOFError, OSError, ValueError) as exc:
            raise ShardError(
                self._failure(shard, f"send failed ({exc!r})"), shard=shard
            ) from exc

    def recv_bytes(self, shard: int, *, timeout: "float | None" = None) -> bytes:
        """One reply from ``shard``, waiting at most ``timeout`` seconds.

        ``timeout=None`` blocks forever (the pre-supervision behaviour;
        still wakes on pipe EOF when the worker dies).  A worker-sent
        error frame is raised as :class:`ShardError` here so no caller
        can mistake it for a payload.
        """
        if self._closed:
            raise ShardError("pool is closed")
        conn = self._conns[shard]
        try:
            if timeout is not None and not conn.poll(timeout):
                raise ShardTimeout(
                    self._failure(shard, f"no reply within {timeout:g}s"),
                    shard=shard,
                )
            msg = conn.recv_bytes()
        except ShardTimeout:
            raise
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise ShardError(
                self._failure(shard, f"reply pipe failed ({exc!r})"),
                shard=shard,
            ) from exc
        if msg and msg[0] == wire.MSG_ERROR:
            raise ShardError(wire.decode_error(msg), shard=shard)
        return msg

    def broadcast(self, msg: bytes) -> None:
        for shard in range(len(self._conns)):
            self.send_bytes(shard, msg)

    def is_alive(self, shard: int) -> bool:
        return self._procs[shard].is_alive()

    def worker(self, shard: int):
        """The current :class:`multiprocessing.Process` in a slot (its
        identity changes on restart — fault injection keys on that)."""
        return self._procs[shard]

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one worker and reap it (fault injection / teardown)."""
        proc = self._procs[shard]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)

    def discard_worker(self, shard: int) -> None:
        """Tear a slot fully down — pipe *and* process — without
        spawning a replacement.

        For abandoning a half-respawned worker (e.g. a restart whose
        resync failed): unlike :meth:`kill_worker`, which leaves the
        pipe open so the dispatcher can observe the EOF, this releases
        every resource the slot holds; the slot stays addressable and a
        later :meth:`restart` gives it a fresh process and pipe.
        """
        try:
            self._conns[shard].close()
        except (OSError, ValueError):
            pass
        self.kill_worker(shard)

    def restart(self, shard: int, spec) -> None:
        """Replace one worker slot with a freshly spawned process.

        The old pipe is closed and the old process escalated through
        ``terminate`` → ``kill``; the new worker starts from ``spec``
        with a brand-new pipe, so no stale reply can leak into the new
        stream.
        """
        if self._closed:
            raise ShardError("pool is closed")
        old_proc = self._procs[shard]
        try:
            self._conns[shard].close()
        except OSError:
            pass
        if old_proc.is_alive():
            old_proc.terminate()
            old_proc.join(timeout=1.0)
        if old_proc.is_alive():
            old_proc.kill()
            old_proc.join(timeout=5.0)
        proc, conn = self._spawn(shard, spec)
        self._procs[shard] = proc
        self._conns[shard] = conn

    @staticmethod
    def _send_best_effort(conn, msg: bytes) -> None:
        """A stop message must never block ``close()``: a hung worker
        with a full pipe would otherwise wedge teardown forever, so the
        fd goes non-blocking for the attempt and any failure (including
        a partial write — the pipe is being abandoned) is ignored."""
        try:
            fd = conn.fileno()
            os.set_blocking(fd, False)
        except (OSError, ValueError):
            return
        try:
            conn.send_bytes(msg)
        except (BlockingIOError, BrokenPipeError, OSError, ValueError):
            pass
        finally:
            try:
                os.set_blocking(fd, True)
            except OSError:
                pass

    def close(self, *, stop_msg: "bytes | None" = None) -> None:
        """Stop every worker without ever blocking on one.

        Best-effort non-blocking stop message, then ``join`` →
        ``terminate`` → ``kill`` escalation with bounded waits at each
        step, so no zombie worker survives a test run — not even one
        wedged with a full pipe.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                if stop_msg is not None:
                    self._send_best_effort(conn, stop_msg)
                conn.close()
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)

    @property
    def closed(self) -> bool:
        return self._closed


class _Ticket:
    """One in-flight burst: pre-filled dispatcher verdicts plus the
    per-shard reply slots still owed by workers."""

    __slots__ = ("verdicts", "pending")

    def __init__(self, size: int) -> None:
        self.verdicts: "list[Verdict | None]" = [None] * size
        #: (shard, indices, burst_seq) in send order; one reply each.
        self.pending: "list[tuple[int, list[int], int]]" = []


class _ActiveFaults:
    """A :class:`repro.faults.FaultPlan` armed against one plane's pool.

    The hooks sit exactly at the pool/wire boundary of the *data* path
    (burst send, burst reply); control traffic and the supervisor's own
    restart/resync exchange are never fault-injected — recovery itself
    is assumed reliable, failures are what is being modelled.
    """

    #: An ``error`` fault truncates the burst to its fixed header, so
    #: the worker's decoder raises and it answers with an error frame.
    _TRUNCATE_AT = 11
    #: A ``garbage`` fault replaces the real reply with these bytes
    #: (first byte deliberately no known message kind).
    _GARBAGE = b"\xee\xfa\x11\xed" * 4

    def __init__(self, plan, pool: ShardProcessPool) -> None:
        self.plan = plan
        self._pool = pool
        #: shard -> the Process object that drew a ``hang``.  A really
        #: hung worker answers *nothing* from that point on, so every
        #: later burst to the same incarnation is swallowed too — else a
        #: live worker's reply to burst N+1 would be paired with hung
        #: burst N.  A restart installs a new Process and clears it.
        self._hung: "dict[int, object]" = {}
        #: shard -> replies duplicated in transit, surfaced (stale) ahead
        #: of the shard's next real reply — transport-level replay.
        self._dup_replies: "dict[int, deque[bytes]]" = {}

    def _is_hung(self, shard: int) -> bool:
        proc = self._hung.get(shard)
        if proc is None:
            return False
        if self._pool.worker(shard) is not proc:
            del self._hung[shard]  # supervisor replaced the incarnation
            return False
        return True

    def on_burst_send(self, shard: int, seq: int, message: bytes) -> "bytes | None":
        if self._is_hung(shard):
            return None
        fault = self.plan.fault_for(shard, seq)
        if fault is None or fault.kind not in ("kill", "hang", "error"):
            return message
        self.plan.mark_injected(shard, seq, fault.kind)
        if fault.kind == "kill":
            self._pool.kill_worker(shard)
            return message  # the send then fails against the dead worker
        if fault.kind == "hang":
            self._hung[shard] = self._pool.worker(shard)
            return None  # swallowed: the worker never sees the burst
        return message[: self._TRUNCATE_AT]  # "error"

    def before_burst_reply(self, shard: int, seq: int) -> None:
        fault = self.plan.fault_for(shard, seq)
        if fault is not None and fault.kind == "delay":
            self.plan.mark_injected(shard, seq, "delay")
            time.sleep(fault.delay)

    def on_burst_reply(self, shard: int, seq: int, msg: bytes) -> "bytes | None":
        """Transform a received reply; ``None`` means it was lost in
        transit (the ``drop`` kind) and the caller must treat the wait
        as expired."""
        fault = self.plan.fault_for(shard, seq)
        if fault is None:
            return msg
        if fault.kind == "garbage":
            self.plan.mark_injected(shard, seq, "garbage")
            return self._GARBAGE
        if fault.kind == "drop":
            self.plan.mark_injected(shard, seq, "drop")
            return None
        if fault.kind == "duplicate":
            self.plan.mark_injected(shard, seq, "duplicate")
            self._dup_replies.setdefault(shard, deque()).append(msg)
        return msg

    def stale_reply(self, shard: int) -> "bytes | None":
        """A duplicated reply still 'in the wire' for ``shard``, if any
        — delivered before the shard's next real reply, exactly where a
        replayed datagram would surface."""
        queue = self._dup_replies.get(shard)
        if not queue:
            return None
        return queue.popleft()


class ShardedDataPlane:
    """HID-range sharded border-router data plane for one AS."""

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        plan: ShardPlan,
        *,
        aid: int,
        start_method: "str | None" = None,
        supervision: "SupervisorPolicy | None" = None,
        state_source: "ShardStateSource | None" = None,
    ) -> None:
        self.plan = plan
        self.aid = aid
        self.nshards = len(specs)
        self._specs = list(specs)
        self._with_nonce = specs[0].with_nonce
        #: What a routable frame must carry in this deployment: the base
        #: header, plus the nonce when replay protection is on — a runt
        #: is rejected here (burst untouched) rather than crashing a
        #: worker's parse and poisoning the plane.
        self._min_frame = (
            _MIN_FRAME_WITH_NONCE if specs[0].with_nonce else _MIN_FRAME
        )
        self._pool = ShardProcessPool(
            data_plane_worker, specs, name=f"apna-br-{aid}", start_method=start_method
        )
        self._policy = supervision or SupervisorPolicy()
        self._state_source = state_source
        self.supervisor = ShardSupervisor(
            self._pool, plan, self._specs, state_source, self._policy
        )
        self._tickets: "deque[_Ticket]" = deque()
        self._in_flight_verdicts = 0
        #: Per-shard count of bursts dispatched — the sequence numbers
        #: fault plans key on and failure reports cite.
        self._burst_seq = [0] * self.nshards
        #: Set when the plane can no longer serve at all: recovery is
        #: impossible (or disabled) *and* degradation is off, so the
        #: reply streams cannot be trusted to line up with tickets and
        #: the plane refuses further work instead of silently handing
        #: later bursts earlier bursts' verdicts.
        self._broken: "str | None" = None
        #: Set (to the triggering cause) once the plane has fallen back
        #: to in-process forwarding; the pool is gone from then on.
        self.degraded: "str | None" = None
        self._fallback: "BorderRouter | None" = None
        self._fallback_clock: "_SettableClock | None" = None
        #: Dropped-and-counted work owed by failed workers.
        self.dropped_bursts = 0
        self.dropped_packets = 0
        #: Replies whose echoed burst seq was already paired — duplicates
        #: discarded by the seq check, never re-delivered as verdicts.
        self.stale_replies_discarded = 0
        self._faults: "_ActiveFaults | None" = None
        #: Dispatcher-side transit forwarding (no shard round-trip).
        self.forwarded_inter = 0
        self._inter_verdicts = InterVerdicts()
        # Fail at construction, not mid-burst, if the plan cannot route
        # IVs (e.g. keyed mode without kR).
        if self.nshards > 1:
            plan.validate_routing()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        *,
        aid: int,
        enc_key: bytes,
        mac_key: bytes,
        hostdb,
        revocations,
        nshards: int,
        plan: "ShardPlan | None" = None,
        crypto_backend: "str | None" = None,
        packet_mac_size: int = 8,
        with_nonce: bool = False,
        replay_window: "float | None" = None,
        replay_bits: int = 1 << 20,
        start_method: "str | None" = None,
        supervision: "SupervisorPolicy | None" = None,
        state_backend: str = "object",
    ) -> "ShardedDataPlane":
        """Build a pool from explicit AS parts (shared keys, sharded state).

        ``hostdb`` / ``revocations`` are snapshotted into the worker
        specs — as encoded :class:`repro.state.ShardSnapshot` columns,
        the same bytes a later ``MSG_RESYNC`` would carry; later changes
        propagate only through
        :meth:`register_host` / :meth:`revoke_ephid` / :meth:`revoke_hid`
        (the AS assembly wires those to its database hooks).  They are
        also retained as the *authoritative* state source: a restarted
        worker is resynced from them, and the degraded in-process
        fallback reads them directly.  ``state_backend`` picks the
        workers' replica store (``"columnar"`` / ``"object"``).
        """
        if plan is None:
            if nshards > 1:
                # A multi-shard plan needs the issuing AS's routing
                # key/mode — a default-constructed one here would route
                # differently than issuance pinned, and misroute every
                # packet.  (nshards == 1 routes everything to shard 0.)
                raise ValueError(
                    "a multi-shard pool needs the issuing AS's ShardPlan "
                    "(routing mode + kR); pass plan="
                )
            plan = ShardPlan(1)
        if plan.nshards != nshards:
            raise ValueError(
                f"plan is for {plan.nshards} shards, pool wants {nshards}"
            )
        state_source = ShardStateSource(hostdb, revocations)
        specs = []
        for shard in range(nshards):
            snap = state_source.shard_snapshot(plan, shard)
            specs.append(
                ShardSpec(
                    shard=shard,
                    nshards=nshards,
                    aid=aid,
                    ephid_enc_key=enc_key,
                    ephid_mac_key=mac_key,
                    crypto_backend=crypto_backend,
                    packet_mac_size=packet_mac_size,
                    with_nonce=with_nonce,
                    replay_window=replay_window,
                    replay_bits=replay_bits,
                    shard_block=plan.block,
                    routing_mode=plan.mode,
                    routing_key=plan.key or b"",
                    state_backend=state_backend,
                    snapshot=snap.encode(),
                )
            )
        return cls(
            specs,
            plan,
            aid=aid,
            start_method=start_method,
            supervision=supervision,
            state_source=state_source,
        )

    @classmethod
    def for_assembly(
        cls,
        assembly,
        nshards: "int | None" = None,
        *,
        start_method: "str | None" = None,
    ) -> "ShardedDataPlane":
        """Build a pool for an :class:`ApnaAutonomousSystem`.

        The assembly must have been constructed with a matching
        ``config.forwarding_shards`` so every issued EphID's IV is pinned
        to its owner shard — without pinning, an authentic packet could
        be routed to a shard that does not hold its host's MAC keys.
        The assembly's config also supplies the supervision policy
        (``shard_reply_timeout`` / ``shard_max_restarts`` /
        ``shard_restart_backoff`` / ``shard_degraded_fallback``).
        """
        config = assembly.config
        nshards = nshards or max(1, config.forwarding_shards)
        plan = getattr(assembly, "shard_plan", None)
        if plan is None:
            if nshards > 1:
                raise ValueError(
                    "assembly was built without IV pinning "
                    "(config.forwarding_shards < 2); a multi-shard pool "
                    "would misroute its packets"
                )
            plan = ShardPlan(1)
        elif plan.nshards != nshards:
            raise ValueError(
                f"assembly pins IVs for {plan.nshards} shards, "
                f"cannot serve {nshards}"
            )
        from ..crypto import backend as crypto_backend

        replay_window = None
        if config.in_network_replay_filter:
            replay_window = config.replay_filter_window
        return cls.from_parts(
            aid=assembly.aid,
            enc_key=assembly.keys.secret.ephid_enc,
            mac_key=assembly.keys.secret.ephid_mac,
            hostdb=assembly.hostdb,
            revocations=assembly.revocations,
            nshards=nshards,
            plan=plan,
            crypto_backend=crypto_backend.active_backend().name,
            packet_mac_size=config.packet_mac_size,
            with_nonce=config.replay_protection,
            replay_window=replay_window,
            replay_bits=config.replay_filter_bits,
            start_method=start_method,
            supervision=SupervisorPolicy.from_config(config),
            state_backend=config.state_backend,
        )

    # -- fault injection ----------------------------------------------------

    def install_faults(self, plan) -> None:
        """Arm a :class:`repro.faults.FaultPlan` on this plane's data
        path (chaos testing; see :mod:`repro.faults`)."""
        self._faults = _ActiveFaults(plan, self._pool) if plan is not None else None

    # -- routing -----------------------------------------------------------

    def shard_of_frame(self, frame: bytes) -> int:
        """Routing shard of a packed frame, from the source EphID's four
        clear IV bytes under the plan's (keyed by default) map.

        The burst path batches this per-frame lookup into one bulk PRF
        over the whole IV column (see :meth:`submit`); this scalar form
        serves diagnostics and out-of-band callers.
        """
        return self.plan.owner_of_iv_bytes(frame[_SRC_IV])

    # -- the burst pipeline -------------------------------------------------

    #: Max uncollected *verdicts* across all in-flight bursts.  A verdict
    #: reply is 11 bytes, so this bounds the reply-pipe backlog to ~45KB
    #: per shard, under the smallest common pipe buffer (64KB).  Without
    #: a bound, a producer outpacing collect() would fill the reply
    #: pipe, block the worker's send, stop it reading requests, and
    #: deadlock the dispatcher's next submit.  Counting verdicts (not
    #: bursts) keeps the bound valid for any configured burst size.
    MAX_IN_FLIGHT_VERDICTS = 4096

    def submit(
        self,
        frames: Sequence[bytes],
        egress: Sequence[bool],
        now: float,
    ) -> _Ticket:
        """Dispatch one burst: route, pack, and send (one message per
        shard touched).  Pair with :meth:`collect`; bursts complete in
        submission order, so several may be in flight at once (up to
        :data:`MAX_IN_FLIGHT_VERDICTS` pending verdicts) — that
        pipelining is where the dispatcher/worker overlap comes from.
        """
        self._check_usable()
        if len(frames) != len(egress):
            raise ShardError(
                f"{len(frames)} frames but {len(egress)} direction flags — "
                "every frame needs one"
            )
        # Validate the whole burst before touching any counter or pipe,
        # so a rejected burst leaves the plane's state untouched and the
        # caller can retry a corrected one.
        for i, frame in enumerate(frames):
            if len(frame) < self._min_frame:
                raise ShardError(
                    f"frame {i} is {len(frame)} bytes — shorter than this "
                    f"deployment's {self._min_frame}-byte APNA header, "
                    "cannot route"
                )
        if self.degraded is not None:
            return self._submit_degraded(frames, egress, now)
        # Classify without side effects: transit short-circuits vs
        # shard-bound sub-bursts.  Routing is two-phase so the keyed map
        # costs one bulk PRF per burst, not one per frame: first split
        # off transit and gather the shard-bound frames' IV columns, then
        # route the whole column in a single plan call.
        ticket = _Ticket(len(frames))
        transit: "list[tuple[int, int]]" = []  # (index, dst_aid)
        routed: "list[int]" = []
        iv_column: "list[bytes]" = []
        aid_bytes = self.aid.to_bytes(4, "big")
        for i, (frame, out) in enumerate(zip(frames, egress)):
            if not out and frame[_DST_AID] != aid_bytes:
                # Transit: forward toward the destination AS — a routing
                # table decision, no per-host state, no shard round-trip.
                transit.append((i, int.from_bytes(frame[_DST_AID], "big")))
                continue
            routed.append(i)
            iv_column.append(frame[_SRC_IV])
        shards = self.plan.owners_of_iv_bytes(iv_column)
        by_shard: "dict[int, tuple[list[int], list[bytes], list[int]]]" = {}
        for i, shard in zip(routed, shards):
            slot = by_shard.get(shard)
            if slot is None:
                slot = by_shard[shard] = ([], [], [])
            slot[0].append(i)
            slot[1].append(frames[i])
            slot[2].append(wire.EGRESS if egress[i] else wire.INGRESS)
        # Admission: only shard-bound packets occupy reply-pipe budget.
        # A lone burst is exempt whatever its size — with nothing else
        # outstanding the dispatcher proceeds straight to collect(), so
        # the worker's reply always has a reader (control traffic cannot
        # interleave: it requires an empty ticket queue).  This keeps
        # arbitrarily large forwarding_batch_size configurations working
        # while still bounding the *pipelined* backlog.
        worker_bound = sum(len(slot[0]) for slot in by_shard.values())
        if (
            self._tickets
            and self._in_flight_verdicts + worker_bound > self.MAX_IN_FLIGHT_VERDICTS
        ):
            raise ShardError(
                f"{worker_bound} shard-bound packets with "
                f"{self._in_flight_verdicts} verdicts already in flight "
                f"would exceed the cap ({self.MAX_IN_FLIGHT_VERDICTS}); "
                "collect outstanding bursts first"
            )
        # Encode every sub-burst before committing any counter or
        # sending anything: an encode failure (e.g. a sub-burst
        # overflowing the u16 count field) must reject the burst with
        # no state change and nothing on the wire.
        for shard, (indices, _, _) in by_shard.items():
            if len(indices) > 0xFFFF:
                raise ShardError(
                    f"{len(indices)} packets for shard {shard} in one "
                    "burst — the burst message counts packets in a u16; "
                    "split the burst"
                )
        # Each shard appears at most once per burst, so its seq at encode
        # time is simply its next unconsumed counter value.
        messages = [
            (
                shard,
                indices,
                wire.encode_burst(
                    now, self._burst_seq[shard], shard_frames, directions
                ),
            )
            for shard, (indices, shard_frames, directions) in by_shard.items()
        ]
        for i, dst_aid in transit:
            self.forwarded_inter += 1
            ticket.verdicts[i] = self._inter_verdicts[dst_aid]
        # A send failure no longer poisons the plane: the sub-burst that
        # never reached its worker is dropped-and-counted, the worker is
        # restarted (or the plane degraded), and the rest of the burst
        # proceeds.
        for shard, indices, message in messages:
            if self.degraded is not None:
                # Degraded mid-loop by an earlier send failure: the rest
                # of the burst was never delivered anywhere — drop it.
                self._drop_subburst(ticket, indices)
                continue
            seq = self._burst_seq[shard]
            self._burst_seq[shard] += 1
            if self._faults is not None:
                message = self._faults.on_burst_send(shard, seq, message)
            try:
                if message is not None:
                    self._pool.send_bytes(shard, message)
            except ShardError as exc:
                self._drop_subburst(ticket, indices)
                self._shard_failed(
                    shard, f"burst dispatch failed mid-send: {exc}"
                )
                self._check_usable()
                continue
            ticket.pending.append((shard, indices, seq))
            self._in_flight_verdicts += len(indices)
        self._tickets.append(ticket)
        return ticket

    def _submit_degraded(self, frames, egress, now: float) -> _Ticket:
        """Degraded mode: the whole burst through the in-process
        fallback router, verdicts complete at submit time."""
        ticket = _Ticket(len(frames))
        packets = []
        for i, frame in enumerate(frames):
            try:
                packets.append(
                    ApnaPacket.from_wire(frame, with_nonce=self._with_nonce)
                )
            except Exception as exc:
                raise ShardError(
                    f"frame {i} is unparseable ({exc!r}); burst rejected"
                ) from exc
        assert self._fallback is not None and self._fallback_clock is not None
        self._fallback_clock.now = now
        ticket.verdicts[:] = self._fallback.process_mixed_batch(
            packets, [bool(out) for out in egress]
        )
        self._tickets.append(ticket)
        return ticket

    def collect(self, ticket: _Ticket) -> "list[Verdict]":
        """Merge a burst's shard replies back into arrival order.

        A shard that cannot deliver its reply (death, hang past the
        reply timeout, error frame, undecodable bytes) forfeits every
        verdict it still owes — those packets are dropped-and-counted
        (``DropReason.SHARD_FAILURE``) across all in-flight tickets —
        and the worker is restarted with a state resync.  Only when
        recovery *and* degradation are both impossible does the plane
        poison itself as it originally did.
        """
        self._check_usable()
        if not self._tickets or self._tickets[0] is not ticket:
            raise ShardError("bursts must be collected in submission order")
        self._tickets.popleft()
        while ticket.pending:
            shard, indices, seq = ticket.pending[0]
            try:
                if self._faults is not None:
                    self._faults.before_burst_reply(shard, seq)
                reply_seq, verdicts = self._next_reply(shard, seq)
                if len(verdicts) != len(indices):
                    raise ShardError(
                        f"shard {shard}: reply #{reply_seq} carried "
                        f"{len(verdicts)} verdicts for a "
                        f"{len(indices)}-packet sub-burst",
                        shard=shard,
                    )
            except ShardError as exc:
                self._shard_failed(
                    shard,
                    f"reply for burst #{seq} lost: {exc}",
                    extra_ticket=ticket,
                )
                self._check_usable()
                continue
            except Exception as exc:
                self._shard_failed(
                    shard,
                    f"reply for burst #{seq} undecodable ({exc!r})",
                    extra_ticket=ticket,
                )
                self._check_usable()
                continue
            ticket.pending.pop(0)
            for i, verdict in zip(indices, verdicts):
                ticket.verdicts[i] = verdict
            self._in_flight_verdicts -= len(indices)
        return ticket.verdicts  # type: ignore[return-value]  # all slots filled

    def _next_reply(self, shard: int, seq: int) -> "tuple[int, list[Verdict]]":
        """The verdict reply for burst ``seq`` of ``shard``.

        The reply stream is checked, not assumed: every verdict message
        echoes the burst seq it answers, so a reply duplicated in
        transit (the ``duplicate`` fault today, datagram replay on a
        real transport) is recognised as stale — already paired once —
        and discarded with a counter instead of being silently married
        to the wrong burst.  A *future* seq can only mean dispatcher
        state corruption and fails the shard.  The ``drop`` fault
        surfaces here as a lost reply: the bounded wait is charged
        immediately (no real sleep) and recovery proceeds exactly as a
        timeout would.
        """
        while True:
            stale = (
                self._faults.stale_reply(shard)
                if self._faults is not None
                else None
            )
            if stale is not None:
                msg = stale
            else:
                msg = self._pool.recv_bytes(
                    shard, timeout=self._policy.reply_timeout
                )
                if self._faults is not None:
                    msg = self._faults.on_burst_reply(shard, seq, msg)
                    if msg is None:
                        raise ShardTimeout(
                            f"shard {shard}: reply for burst #{seq} "
                            "dropped in transit (injected)",
                            shard=shard,
                        )
            reply_seq, verdicts = wire.decode_verdicts(msg)
            if reply_seq == seq:
                return reply_seq, verdicts
            if reply_seq < seq:
                self.stale_replies_discarded += 1
                continue
            raise ShardError(
                f"shard {shard}: reply for future burst #{reply_seq} "
                f"while waiting on #{seq}",
                shard=shard,
            )

    # -- failure handling ---------------------------------------------------

    def _drop_subburst(
        self, ticket: _Ticket, indices: "list[int]", *, in_flight: bool = False
    ) -> None:
        """One sub-burst's verdicts are unrecoverable: drop and account."""
        for i in indices:
            ticket.verdicts[i] = _SHARD_FAILURE
        self.dropped_bursts += 1
        self.dropped_packets += len(indices)
        if in_flight:
            self._in_flight_verdicts -= len(indices)

    def _drop_pending_for(self, shard: int, tickets) -> None:
        for ticket in tickets:
            kept = []
            for entry in ticket.pending:
                if entry[0] == shard:
                    self._drop_subburst(ticket, entry[1], in_flight=True)
                else:
                    kept.append(entry)
            ticket.pending[:] = kept

    def _shard_failed(
        self, shard: int, cause: str, *, extra_ticket: "_Ticket | None" = None
    ) -> None:
        """One worker's reply stream is gone.  Drop everything it still
        owes (its replies can no longer be paired with requests), then
        restart it — or, once its restart budget is spent, degrade to
        in-process forwarding (or poison, per policy)."""
        self.supervisor.record_failure(shard, cause)
        tickets = list(self._tickets)
        if extra_ticket is not None:
            tickets.append(extra_ticket)
        self._drop_pending_for(shard, tickets)
        if self.supervisor.restart(shard):
            return
        if self._policy.degrade_to_inline and self._state_source is not None:
            self._degrade(f"shard {shard} unrecoverable: {cause}", tickets)
        else:
            self._broken = f"shard {shard} unrecoverable: {cause}"

    def _degrade(self, cause: str, tickets) -> None:
        """Fall back to a single in-process border router over the
        authoritative AS state.

        Every still-pending sub-burst — healthy shards included — is
        dropped-and-counted: their replies may well be queued, but a
        plane that has decided its pool is unreliable does not gamble on
        reading them.  Traffic keeps flowing through the fallback from
        the very next burst; ``stats()`` reports ``degraded``.
        """
        for ticket in tickets:
            for _, indices, _ in ticket.pending:
                self._drop_subburst(ticket, indices, in_flight=True)
            ticket.pending.clear()
        spec = self._specs[0]
        replay_filter = None
        if spec.replay_window is not None:
            replay_filter = RotatingReplayFilter(
                window=spec.replay_window,
                bits_per_generation=spec.replay_bits,
            )
        clock = _SettableClock()
        assert self._state_source is not None
        self._fallback = BorderRouter(
            self.aid,
            EphIdCodec(spec.ephid_enc_key, spec.ephid_mac_key),
            self._state_source.hostdb,
            self._state_source.revocations,
            clock,
            packet_mac_size=spec.packet_mac_size,
            replay_filter=replay_filter,
        )
        self._fallback_clock = clock
        self.degraded = cause
        self._pool.close(stop_msg=bytes([wire.MSG_STOP]))

    def _check_usable(self) -> None:
        if self._broken is not None:
            raise ShardError(
                f"data plane is poisoned ({self._broken}); rebuild the pool"
            )
        if self.degraded is None and self._pool.closed:
            raise ShardError("data plane is closed")

    def process(
        self,
        frames: Sequence[bytes],
        egress: Sequence[bool],
        now: float,
    ) -> "list[Verdict]":
        """One burst, synchronously: submit + collect."""
        return self.collect(self.submit(frames, egress, now))

    def process_packets(self, packets, now: float) -> "list[Verdict]":
        """Convenience for ``(ApnaPacket, egress)`` pairs (tests, drivers)."""
        frames = [packet.to_wire() for packet, _ in packets]
        egress = [out for _, out in packets]
        return self.process(frames, egress, now)

    # -- control plane ------------------------------------------------------

    def revoke_ephid(self, ephid: bytes, exp_time: float) -> None:
        """Broadcast a revocation to every shard.

        The pipe is ordered, so each shard applies the revoke before any
        burst submitted after this call — the propagation rule the AS
        relies on ("a revoke reaches the owning shard before its next
        burst").  It is a broadcast rather than an owner-only send
        because destination-side revocation checks may run on any shard.
        """
        self._control_broadcast(wire.encode_revoke_ephid(ephid, exp_time))

    def revoke_hid(self, hid: int) -> None:
        self._control_broadcast(wire.encode_revoke_hid(hid))

    def register_host(self, record) -> None:
        """Announce a newly registered host: keys to the owning shard,
        liveness to everyone else."""
        if self.degraded is not None:
            return  # the fallback reads the live hostdb directly
        self._check_no_inflight("host registrations")
        owner = self.plan.owner_of(record.hid)
        for shard in range(self.nshards):
            if self.degraded is not None:
                return
            self._control_send(
                shard,
                wire.encode_register_host(
                    record.hid,
                    owned=shard == owner,
                    control=record.keys.control,
                    packet_mac=record.keys.packet_mac,
                ),
            )

    def _control_broadcast(self, msg: bytes) -> None:
        """Broadcast a control frame to every shard, recovering any
        shard whose pipe fails mid-send.

        The authoritative state (hostdb / revocation list) is always
        updated *before* its hook fires, so a worker restarted here
        receives the very update that failed to send as part of its
        resync — replicas cannot diverge through this path.
        """
        if self.degraded is not None:
            return  # the fallback reads the live revocation list directly
        self._check_no_inflight("control messages")
        for shard in range(self.nshards):
            if self.degraded is not None:
                return
            self._control_send(shard, msg)

    def _control_send(self, shard: int, msg: bytes) -> None:
        try:
            self._pool.send_bytes(shard, msg)
        except ShardError as exc:
            # A successful restart already resynced the full state —
            # resending this frame is unnecessary (and would double-add).
            self._shard_failed(shard, f"control send failed: {exc}")
            self._check_usable()

    def _check_no_inflight(self, what: str) -> None:
        """Control traffic requires an empty ticket queue.

        Two reasons: the revoke-before-next-burst propagation rule is
        meaningless against bursts already on the wire, and a control
        send could block against a worker that is itself blocked
        mid-reply — the one remaining dispatcher/worker deadlock shape.
        """
        self._check_usable()
        if self._tickets:
            raise ShardError(
                f"{len(self._tickets)} bursts in flight; collect them "
                f"before sending {what}"
            )

    # -- observability -------------------------------------------------------

    def shard_stats(self) -> "list[dict[str, int]]":
        """Per-shard counter snapshots (synchronises all control traffic).

        A shard that fails to answer is restarted like any other failure
        and the call raises — its counters died with the worker, so
        there is nothing truthful to return for it.  A degraded plane
        has no shards left; use :meth:`stats`.
        """
        self._check_usable()
        if self.degraded is not None:
            raise ShardError(
                "plane is degraded to in-process forwarding; per-shard "
                "counters are gone (aggregate stats() still works)"
            )
        if self._tickets:
            raise ShardError("collect in-flight bursts before reading stats")
        results = []
        for shard in range(self.nshards):
            try:
                self._pool.send_bytes(shard, bytes([wire.MSG_STATS]))
                results.append(
                    wire.decode_stats(
                        self._pool.recv_bytes(
                            shard, timeout=self._policy.reply_timeout
                        )
                    )
                )
            except ShardError as exc:
                self._shard_failed(shard, f"stats reply lost: {exc}")
                self._check_usable()
                raise ShardError(
                    f"shard {shard}: stats unavailable ({exc}); counters "
                    "died with the worker"
                , shard=shard) from exc
        return results

    def stats(self) -> "dict[str, int]":
        """Aggregate counters: shard sums (or, degraded, the fallback
        router's counters) plus dispatcher-side transit and the
        supervision ledger (``restarts`` / ``dropped_bursts`` /
        ``dropped_packets`` / ``degraded``)."""
        totals: "dict[str, int]" = {field: 0 for field in wire.STATS_FIELDS}
        if self.degraded is not None:
            router = self._fallback
            assert router is not None
            for reason, count in router.drops.items():
                totals[reason.value] += count
            totals["forwarded_inter"] += router.forwarded_inter
            totals["forwarded_intra"] += router.forwarded_intra
            if router.replay_filter is not None:
                totals["replay_passed"] += router.replay_filter.passed
                totals["replay_replays"] += router.replay_filter.replays
                totals["replay_rotations"] += router.replay_filter.rotations
        else:
            for shard in self.shard_stats():
                for field, value in shard.items():
                    totals[field] += value
        totals["forwarded_inter"] += self.forwarded_inter
        totals[DropReason.SHARD_FAILURE.value] += self.dropped_packets
        totals["restarts"] = self.supervisor.total_restarts
        totals["dropped_bursts"] = self.dropped_bursts
        totals["dropped_packets"] = self.dropped_packets
        totals["stale_replies"] = self.stale_replies_discarded
        totals["degraded"] = 0 if self.degraded is None else 1
        return totals

    def barrier(self) -> None:
        """Wait until every shard has drained its control queue."""
        if self.degraded is not None:
            return
        self.shard_stats()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._pool.close(stop_msg=bytes([wire.MSG_STOP]))

    @property
    def closed(self) -> bool:
        return self._pool.closed

    def __enter__(self) -> "ShardedDataPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        if self.degraded is not None:
            state = "degraded"
        elif self._broken is not None:
            state = "poisoned"
        elif self.closed:
            state = "closed"
        else:
            state = "running"
        return (
            f"<ShardedDataPlane aid={self.aid} shards={self.nshards} {state}>"
        )
