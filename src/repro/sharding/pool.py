"""The sharded data plane: persistent worker shards fed burst-sized batches.

:class:`ShardProcessPool` is the process scaffolding — N long-lived
workers, one duplex pipe each, binary messages only.  On top of it,
:class:`ShardedDataPlane` is the paper's §V-A3 share-nothing scale-out
applied to the border router: a dispatcher that

* routes each packed wire frame to a shard by the source EphID's clear
  IV residue (no crypto on the dispatch path — see
  :mod:`repro.sharding.plan`),
* short-circuits transit packets itself (forwarding by destination AID
  needs no per-host state at all, Section IV-D3),
* ships one message per shard per burst, and
* merges the per-shard verdict vectors back into arrival order.

Equivalence bar: the merged verdicts are element-for-element identical
to the single-process
:meth:`~repro.core.border_router.BorderRouter.process_batch` loop, and
the summed shard counters match the single router's counters
(``tests/test_sharding_equivalence.py`` fuzzes both under both crypto
backends).  One qualification: replay detection is a Bloom filter, and
each shard owns its own — inserts are partitioned across N filters
instead of hashed into one, so Bloom *false positives* (and rotation
counts) can differ from the single-filter plane.  Every true verdict is
identical; the divergence is confined to the filter's engineered FP
rate (sized by ``replay_filter_bits``), and sharding only ever lowers
it.  The perf bar — shards stacking on top of the burst loop's
amortisation, super-linear against the scalar loop — is measured by
``benchmarks/bench_sharding.py``.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from typing import Callable, Sequence

from ..core.border_router import InterVerdicts, Verdict
from ..core.ephid import CIPHERTEXT_SIZE, IV_SIZE
from ..core.errors import ApnaError
from ..wire.apna import (
    AID_SIZE,
    EPHID_SIZE,
    HEADER_SIZE,
    HEADER_SIZE_WITH_NONCE,
)
from . import wire
from .plan import ShardPlan
from .worker import ShardSpec, data_plane_worker

__all__ = ["ShardError", "ShardProcessPool", "ShardedDataPlane"]

#: Wire offsets into a packed APNA header, derived from the canonical
#: Fig. 7 / Fig. 6 layout constants: the source EphID's clear IV sits
#: after the source AID and the EphID ciphertext; the destination AID
#: after both EphIDs.
_SRC_IV = slice(
    AID_SIZE + CIPHERTEXT_SIZE, AID_SIZE + CIPHERTEXT_SIZE + IV_SIZE
)
_SRC_IV_LOW = _SRC_IV.stop - 1
_DST_AID = slice(AID_SIZE + 2 * EPHID_SIZE, 2 * AID_SIZE + 2 * EPHID_SIZE)
_MIN_FRAME = HEADER_SIZE
_MIN_FRAME_WITH_NONCE = HEADER_SIZE_WITH_NONCE


class ShardError(ApnaError):
    """A worker shard reported a failure (its traceback is the message)."""


def _default_start_method() -> str:
    # fork is cheap and inherits the loaded interpreter; fall back to
    # spawn where fork is unavailable (the specs are plain picklable
    # data and the worker entry points are module-level, so both work).
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardProcessPool:
    """N persistent worker processes speaking framed bytes over pipes.

    Generic scaffolding shared by the data plane and the sharded MS
    issuance runner (:mod:`repro.sharding.issuance`): it only spawns,
    addresses and tears down workers — message semantics belong to the
    caller.  Workers are daemonic, so an abandoned pool cannot outlive
    the interpreter even if :meth:`close` is never called.
    """

    def __init__(
        self,
        worker: Callable,
        specs: Sequence,
        *,
        name: str = "shard",
        start_method: "str | None" = None,
    ) -> None:
        if not specs:
            raise ValueError("a pool needs at least one worker spec")
        ctx = multiprocessing.get_context(start_method or _default_start_method())
        self._procs = []
        self._conns = []
        self._closed = False
        for i, spec in enumerate(specs):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker, args=(child, spec), daemon=True, name=f"{name}-{i}"
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)

    def __len__(self) -> int:
        return len(self._procs)

    def send_bytes(self, shard: int, msg: bytes) -> None:
        if self._closed:
            raise ShardError("pool is closed")
        self._conns[shard].send_bytes(msg)

    def recv_bytes(self, shard: int) -> bytes:
        msg = self._conns[shard].recv_bytes()
        if msg and msg[0] == wire.MSG_ERROR:
            raise ShardError(wire.decode_error(msg))
        return msg

    def broadcast(self, msg: bytes) -> None:
        for shard in range(len(self._conns)):
            self.send_bytes(shard, msg)

    def close(self, *, stop_msg: "bytes | None" = None) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                if stop_msg is not None:
                    conn.send_bytes(stop_msg)
                conn.close()
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)

    @property
    def closed(self) -> bool:
        return self._closed


class _Ticket:
    """One in-flight burst: pre-filled dispatcher verdicts plus the
    per-shard reply slots still owed by workers."""

    __slots__ = ("verdicts", "pending")

    def __init__(self, size: int) -> None:
        self.verdicts: "list[Verdict | None]" = [None] * size
        #: (shard, indices) pairs in send order; one reply expected each.
        self.pending: "list[tuple[int, list[int]]]" = []


class ShardedDataPlane:
    """HID-range sharded border-router data plane for one AS."""

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        plan: ShardPlan,
        *,
        aid: int,
        start_method: "str | None" = None,
    ) -> None:
        self.plan = plan
        self.aid = aid
        self.nshards = len(specs)
        #: What a routable frame must carry in this deployment: the base
        #: header, plus the nonce when replay protection is on — a runt
        #: is rejected here (burst untouched) rather than crashing a
        #: worker's parse and poisoning the plane.
        self._min_frame = (
            _MIN_FRAME_WITH_NONCE if specs[0].with_nonce else _MIN_FRAME
        )
        self._pool = ShardProcessPool(
            data_plane_worker, specs, name=f"apna-br-{aid}", start_method=start_method
        )
        self._tickets: "deque[_Ticket]" = deque()
        self._in_flight_verdicts = 0
        #: Set when a shard reply went missing or errored mid-burst: the
        #: reply streams can no longer be trusted to line up with
        #: tickets, so the plane refuses further work instead of
        #: silently handing later bursts earlier bursts' verdicts.
        self._broken: "str | None" = None
        #: Dispatcher-side transit forwarding (no shard round-trip).
        self.forwarded_inter = 0
        self._inter_verdicts = InterVerdicts()
        # Routing fast path: for power-of-two shard counts the residue is
        # a mask over the IV's low byte.
        n = self.nshards
        self._route_mask = (n - 1) if n & (n - 1) == 0 and n <= 256 else None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_parts(
        cls,
        *,
        aid: int,
        enc_key: bytes,
        mac_key: bytes,
        hostdb,
        revocations,
        nshards: int,
        plan: "ShardPlan | None" = None,
        crypto_backend: "str | None" = None,
        packet_mac_size: int = 8,
        with_nonce: bool = False,
        replay_window: "float | None" = None,
        replay_bits: int = 1 << 20,
        start_method: "str | None" = None,
    ) -> "ShardedDataPlane":
        """Build a pool from explicit AS parts (shared keys, sharded state).

        ``hostdb`` / ``revocations`` are snapshotted into the worker
        specs; later changes propagate only through
        :meth:`register_host` / :meth:`revoke_ephid` / :meth:`revoke_hid`
        (the AS assembly wires those to its database hooks).
        """
        plan = plan or ShardPlan(nshards)
        if plan.nshards != nshards:
            raise ValueError(
                f"plan is for {plan.nshards} shards, pool wants {nshards}"
            )
        records = list(hostdb.records())
        live = tuple(r.hid for r in records if not r.revoked)
        revoked_snapshot = tuple(revocations.snapshot())
        specs = []
        for shard in range(nshards):
            owned = tuple(
                (r.hid, r.keys.control, r.keys.packet_mac, r.revoked)
                for r in records
                if plan.owner_of(r.hid) == shard
            )
            specs.append(
                ShardSpec(
                    shard=shard,
                    nshards=nshards,
                    aid=aid,
                    ephid_enc_key=enc_key,
                    ephid_mac_key=mac_key,
                    crypto_backend=crypto_backend,
                    packet_mac_size=packet_mac_size,
                    with_nonce=with_nonce,
                    replay_window=replay_window,
                    replay_bits=replay_bits,
                    owned_hosts=owned,
                    live_hids=live,
                    revoked_ephids=revoked_snapshot,
                )
            )
        return cls(specs, plan, aid=aid, start_method=start_method)

    @classmethod
    def for_assembly(
        cls,
        assembly,
        nshards: "int | None" = None,
        *,
        start_method: "str | None" = None,
    ) -> "ShardedDataPlane":
        """Build a pool for an :class:`ApnaAutonomousSystem`.

        The assembly must have been constructed with a matching
        ``config.forwarding_shards`` so every issued EphID's IV is pinned
        to its owner shard — without pinning, an authentic packet could
        be routed to a shard that does not hold its host's MAC keys.
        """
        config = assembly.config
        nshards = nshards or max(1, config.forwarding_shards)
        plan = getattr(assembly, "shard_plan", None)
        if plan is None:
            if nshards > 1:
                raise ValueError(
                    "assembly was built without IV pinning "
                    "(config.forwarding_shards < 2); a multi-shard pool "
                    "would misroute its packets"
                )
            plan = ShardPlan(1)
        elif plan.nshards != nshards:
            raise ValueError(
                f"assembly pins IVs for {plan.nshards} shards, "
                f"cannot serve {nshards}"
            )
        from ..crypto import backend as crypto_backend

        replay_window = None
        if config.in_network_replay_filter:
            replay_window = config.replay_filter_window
        return cls.from_parts(
            aid=assembly.aid,
            enc_key=assembly.keys.secret.ephid_enc,
            mac_key=assembly.keys.secret.ephid_mac,
            hostdb=assembly.hostdb,
            revocations=assembly.revocations,
            nshards=nshards,
            plan=plan,
            crypto_backend=crypto_backend.active_backend().name,
            packet_mac_size=config.packet_mac_size,
            with_nonce=config.replay_protection,
            replay_window=replay_window,
            replay_bits=config.replay_filter_bits,
            start_method=start_method,
        )

    # -- routing -----------------------------------------------------------

    def shard_of_frame(self, frame: bytes) -> int:
        """Routing shard of a packed frame: the source EphID's IV residue."""
        if self._route_mask is not None:
            return frame[_SRC_IV_LOW] & self._route_mask
        return int.from_bytes(frame[_SRC_IV], "big") % self.nshards

    # -- the burst pipeline -------------------------------------------------

    #: Max uncollected *verdicts* across all in-flight bursts.  A verdict
    #: reply is 11 bytes, so this bounds the reply-pipe backlog to ~45KB
    #: per shard, under the smallest common pipe buffer (64KB).  Without
    #: a bound, a producer outpacing collect() would fill the reply
    #: pipe, block the worker's send, stop it reading requests, and
    #: deadlock the dispatcher's next submit.  Counting verdicts (not
    #: bursts) keeps the bound valid for any configured burst size.
    MAX_IN_FLIGHT_VERDICTS = 4096

    def submit(
        self,
        frames: Sequence[bytes],
        egress: Sequence[bool],
        now: float,
    ) -> _Ticket:
        """Dispatch one burst: route, pack, and send (one message per
        shard touched).  Pair with :meth:`collect`; bursts complete in
        submission order, so several may be in flight at once (up to
        :data:`MAX_IN_FLIGHT_VERDICTS` pending verdicts) — that
        pipelining is where the dispatcher/worker overlap comes from.
        """
        self._check_usable()
        if len(frames) != len(egress):
            raise ShardError(
                f"{len(frames)} frames but {len(egress)} direction flags — "
                "every frame needs one"
            )
        # Validate the whole burst before touching any counter or pipe,
        # so a rejected burst leaves the plane's state untouched and the
        # caller can retry a corrected one.
        for i, frame in enumerate(frames):
            if len(frame) < self._min_frame:
                raise ShardError(
                    f"frame {i} is {len(frame)} bytes — shorter than this "
                    f"deployment's {self._min_frame}-byte APNA header, "
                    "cannot route"
                )
        # Classify without side effects: transit short-circuits vs
        # shard-bound sub-bursts.
        ticket = _Ticket(len(frames))
        transit: "list[tuple[int, int]]" = []  # (index, dst_aid)
        by_shard: "dict[int, tuple[list[int], list[bytes], list[int]]]" = {}
        aid_bytes = self.aid.to_bytes(4, "big")
        for i, (frame, out) in enumerate(zip(frames, egress)):
            if not out and frame[_DST_AID] != aid_bytes:
                # Transit: forward toward the destination AS — a routing
                # table decision, no per-host state, no shard round-trip.
                transit.append((i, int.from_bytes(frame[_DST_AID], "big")))
                continue
            shard = self.shard_of_frame(frame)
            slot = by_shard.get(shard)
            if slot is None:
                slot = by_shard[shard] = ([], [], [])
            slot[0].append(i)
            slot[1].append(frame)
            slot[2].append(wire.EGRESS if out else wire.INGRESS)
        # Admission: only shard-bound packets occupy reply-pipe budget.
        # A lone burst is exempt whatever its size — with nothing else
        # outstanding the dispatcher proceeds straight to collect(), so
        # the worker's reply always has a reader (control traffic cannot
        # interleave: it requires an empty ticket queue).  This keeps
        # arbitrarily large forwarding_batch_size configurations working
        # while still bounding the *pipelined* backlog.
        worker_bound = sum(len(slot[0]) for slot in by_shard.values())
        if (
            self._tickets
            and self._in_flight_verdicts + worker_bound > self.MAX_IN_FLIGHT_VERDICTS
        ):
            raise ShardError(
                f"{worker_bound} shard-bound packets with "
                f"{self._in_flight_verdicts} verdicts already in flight "
                f"would exceed the cap ({self.MAX_IN_FLIGHT_VERDICTS}); "
                "collect outstanding bursts first"
            )
        # Encode every sub-burst before committing any counter or
        # sending anything: an encode failure (e.g. a sub-burst
        # overflowing the u16 count field) must reject the burst with
        # no state change and nothing on the wire.  A *send* failure
        # later means some shard may already hold work whose reply will
        # never be collected, so the plane is poisoned instead.
        for shard, (indices, _, _) in by_shard.items():
            if len(indices) > 0xFFFF:
                raise ShardError(
                    f"{len(indices)} packets for shard {shard} in one "
                    "burst — the burst message counts packets in a u16; "
                    "split the burst"
                )
        messages = [
            (shard, indices, wire.encode_burst(now, shard_frames, directions))
            for shard, (indices, shard_frames, directions) in by_shard.items()
        ]
        for i, dst_aid in transit:
            self.forwarded_inter += 1
            ticket.verdicts[i] = self._inter_verdicts[dst_aid]
        try:
            for shard, indices, message in messages:
                self._pool.send_bytes(shard, message)
                ticket.pending.append((shard, indices))
                self._in_flight_verdicts += len(indices)
        except Exception as exc:
            self._broken = f"burst dispatch failed mid-send: {exc}"
            raise
        self._tickets.append(ticket)
        return ticket

    def collect(self, ticket: _Ticket) -> "list[Verdict]":
        """Merge a burst's shard replies back into arrival order.

        If a shard reports an error (or its reply cannot be read), the
        plane is poisoned: reply frames may remain queued out of step
        with the outstanding tickets, so every later ``submit``/
        ``collect`` raises instead of mispairing verdicts with packets.
        """
        self._check_usable()
        if not self._tickets or self._tickets[0] is not ticket:
            raise ShardError("bursts must be collected in submission order")
        self._tickets.popleft()
        try:
            for shard, indices in ticket.pending:
                verdicts = wire.decode_verdicts(self._pool.recv_bytes(shard))
                for i, verdict in zip(indices, verdicts):
                    ticket.verdicts[i] = verdict
                self._in_flight_verdicts -= len(indices)
        except Exception as exc:
            self._broken = f"shard reply lost mid-burst: {exc}"
            raise
        return ticket.verdicts  # type: ignore[return-value]  # all slots filled

    def _check_usable(self) -> None:
        if self._broken is not None:
            raise ShardError(
                f"data plane is poisoned ({self._broken}); rebuild the pool"
            )

    def process(
        self,
        frames: Sequence[bytes],
        egress: Sequence[bool],
        now: float,
    ) -> "list[Verdict]":
        """One burst, synchronously: submit + collect."""
        return self.collect(self.submit(frames, egress, now))

    def process_packets(self, packets, now: float) -> "list[Verdict]":
        """Convenience for ``(ApnaPacket, egress)`` pairs (tests, drivers)."""
        frames = [packet.to_wire() for packet, _ in packets]
        egress = [out for _, out in packets]
        return self.process(frames, egress, now)

    # -- control plane ------------------------------------------------------

    def revoke_ephid(self, ephid: bytes, exp_time: float) -> None:
        """Broadcast a revocation to every shard.

        The pipe is ordered, so each shard applies the revoke before any
        burst submitted after this call — the propagation rule the AS
        relies on ("a revoke reaches the owning shard before its next
        burst").  It is a broadcast rather than an owner-only send
        because destination-side revocation checks may run on any shard.
        """
        self._control_broadcast(wire.encode_revoke_ephid(ephid, exp_time))

    def revoke_hid(self, hid: int) -> None:
        self._control_broadcast(wire.encode_revoke_hid(hid))

    def register_host(self, record) -> None:
        """Announce a newly registered host: keys to the owning shard,
        liveness to everyone else."""
        self._check_no_inflight("host registrations")
        owner = self.plan.owner_of(record.hid)
        try:
            for shard in range(self.nshards):
                self._pool.send_bytes(
                    shard,
                    wire.encode_register_host(
                        record.hid,
                        owned=shard == owner,
                        control=record.keys.control,
                        packet_mac=record.keys.packet_mac,
                    ),
                )
        except Exception as exc:
            self._broken = f"control broadcast failed mid-send: {exc}"
            raise

    def _control_broadcast(self, msg: bytes) -> None:
        """Broadcast a control frame; a partial delivery leaves the
        shards' replicated views divergent, so it poisons the plane the
        same way a lost burst reply does."""
        self._check_no_inflight("control messages")
        try:
            self._pool.broadcast(msg)
        except Exception as exc:
            self._broken = f"control broadcast failed mid-send: {exc}"
            raise

    def _check_no_inflight(self, what: str) -> None:
        """Control traffic requires an empty ticket queue.

        Two reasons: the revoke-before-next-burst propagation rule is
        meaningless against bursts already on the wire, and a control
        send could block against a worker that is itself blocked
        mid-reply — the one remaining dispatcher/worker deadlock shape.
        """
        self._check_usable()
        if self._tickets:
            raise ShardError(
                f"{len(self._tickets)} bursts in flight; collect them "
                f"before sending {what}"
            )

    # -- observability -------------------------------------------------------

    def shard_stats(self) -> "list[dict[str, int]]":
        """Per-shard counter snapshots (synchronises all control traffic)."""
        self._check_usable()
        if self._tickets:
            raise ShardError("collect in-flight bursts before reading stats")
        for shard in range(self.nshards):
            self._pool.send_bytes(shard, bytes([wire.MSG_STATS]))
        try:
            return [
                wire.decode_stats(self._pool.recv_bytes(shard))
                for shard in range(self.nshards)
            ]
        except Exception as exc:
            self._broken = f"stats reply lost: {exc}"
            raise

    def stats(self) -> "dict[str, int]":
        """Aggregate counters: shard sums plus dispatcher-side transit."""
        totals: "dict[str, int]" = {field: 0 for field in wire.STATS_FIELDS}
        for shard in self.shard_stats():
            for field, value in shard.items():
                totals[field] += value
        totals["forwarded_inter"] += self.forwarded_inter
        return totals

    def barrier(self) -> None:
        """Wait until every shard has drained its control queue."""
        self.shard_stats()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._pool.close(stop_msg=bytes([wire.MSG_STOP]))

    @property
    def closed(self) -> bool:
        return self._pool.closed

    def __enter__(self) -> "ShardedDataPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ShardedDataPlane aid={self.aid} shards={self.nshards} "
            f"{'closed' if self.closed else 'running'}>"
        )
