"""The data-plane worker process: one shard of the border router.

Each worker rebuilds, from a compact :class:`ShardSpec`, a *real*
:class:`~repro.core.border_router.BorderRouter` around process-local
state — its slice of the host database (MAC keys only for owned HIDs), a
replica of the revocation list and of the live-HID set, and its own
rotating replay filter.  Reusing the single-process router verbatim is
what makes the sharded plane's verdict-equivalence guarantee structural
rather than re-implemented: a shard computes exactly the verdicts the
in-process batch loop would, over the subset of packets routed to it.

The split between *sharded* and *replicated* state follows what each
check needs:

* source-side checks (MAC verify, source HID validity) only ever run on
  the shard that owns the source host, because the dispatcher routes by
  the source EphID's pinned IV — so MAC keys are genuinely sharded;
* destination-side checks (intra delivery, ingress local delivery) may
  run on any shard, so the inputs they need — EphID codec keys, the
  revocation set, the one-bit-per-HID liveness view — are replicated,
  kept in sync by broadcast control messages on the same ordered pipe
  as the bursts (a revoke therefore always lands before the next burst).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

from ..core.border_router import BorderRouter
from ..core.ephid import EphIdCodec
from ..core.errors import RevokedError, UnknownHostError
from ..core.keys import HostAsKeys
from ..core.replay_filter import RotatingReplayFilter
from ..core.revocation import RevocationList
from ..state.revlist import ColumnarRevocationList
from ..state.snapshot import ShardSnapshot
from ..state.view import ColumnarShardView
from ..wire.apna import ApnaPacket
from . import wire


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild its slice of the data plane.

    Pure bytes/ints/tuples so it crosses process boundaries under any
    multiprocessing start method.
    """

    shard: int
    nshards: int
    aid: int
    ephid_enc_key: bytes
    ephid_mac_key: bytes
    crypto_backend: "str | None"
    packet_mac_size: int
    with_nonce: bool
    #: ``None`` disables the in-network replay filter.
    replay_window: "float | None"
    replay_bits: int
    #: Consecutive HIDs per shard-ownership block (``ShardPlan.block``).
    shard_block: int
    #: IV -> shard map the dispatcher routes this worker's packets with
    #: (``ShardPlan.mode``): ``"keyed"`` or the legacy ``"residue"``.
    routing_mode: str
    #: kR when ``routing_mode == "keyed"`` (else empty) — carried so the
    #: worker can cross-check resync'd snapshots against its spec.
    routing_key: bytes
    #: Which store backs the worker's replica: ``"columnar"`` (dense
    #: :mod:`repro.state` columns, zero per-host objects) or ``"object"``.
    state_backend: str
    #: Encoded :class:`repro.state.ShardSnapshot` — the shard's owned
    #: host rows, the replicated live-HID view and the revocation-list
    #: replica, as packed columns.  Empty means an empty shard.
    snapshot: bytes


@dataclass
class _OwnedRecord:
    hid: int
    keys: HostAsKeys
    revoked: bool = False


class ShardHostView:
    """A shard's view of ``host_info``: owned keys + replicated liveness.

    Duck-type compatible with the two :class:`~repro.core.hostdb.
    HostDatabase` methods the border router uses — ``is_valid`` (answered
    from the replicated live-HID set, so destination-side checks work for
    hosts owned by other shards) and ``get`` (answered only for owned
    HIDs; the router only fetches MAC keys for source hosts, which the
    IV-pinned routing guarantees are local).
    """

    def __init__(self, key_pool: "dict[bytes, bytes] | None" = None) -> None:
        self._owned: dict[int, _OwnedRecord] = {}
        self._live: set[int] = set()
        #: Interning pool for kHA subkey bytes.  A worker that resyncs
        #: keeps one pool across view incarnations, so re-shipped keys
        #: alias the buffers the previous incarnation already held
        #: instead of duplicating 32 B per host per resync.
        self._key_pool: dict[bytes, bytes] = key_pool if key_pool is not None else {}

    def add_owned(
        self, hid: int, control: bytes, packet_mac: bytes, *, revoked: bool = False
    ) -> None:
        pool = self._key_pool
        control = pool.setdefault(control, control)
        packet_mac = pool.setdefault(packet_mac, packet_mac)
        self._owned[hid] = _OwnedRecord(
            hid, HostAsKeys(control=control, packet_mac=packet_mac), revoked=revoked
        )
        if not revoked:
            self._live.add(hid)

    def set_live(self, hid: int) -> None:
        self._live.add(hid)

    def revoke(self, hid: int) -> None:
        self._live.discard(hid)
        record = self._owned.get(hid)
        if record is not None:
            record.revoked = True

    def is_valid(self, hid: int) -> bool:
        return hid in self._live

    def get(self, hid: int) -> _OwnedRecord:
        record = self._owned.get(hid)
        if record is None:
            raise UnknownHostError(
                f"HID {hid} is not owned by this shard (misrouted packet?)"
            )
        if record.revoked:
            raise RevokedError(f"HID {hid} is revoked")
        return record

    @property
    def owned_count(self) -> int:
        return len(self._owned)


class _SettableClock:
    """The worker router's clock: each burst message carries the
    dispatcher's single clock read, so expiry/replay decisions are made
    at the same instant the in-process batch loop would use."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class ShardState:
    """Process-local state of one worker, built from its :class:`ShardSpec`."""

    def __init__(self, spec: ShardSpec) -> None:
        if spec.crypto_backend is not None:
            from ..crypto import backend as crypto_backend

            crypto_backend.set_backend(spec.crypto_backend)
        self.spec = spec
        self.clock = _SettableClock()
        #: Shared across view incarnations so resyncs re-intern instead
        #: of re-allocating key bytes (object backend only).
        self._key_pool: dict[bytes, bytes] = {}
        snap = (
            ShardSnapshot.decode(spec.snapshot)
            if spec.snapshot
            else ShardSnapshot.empty()
        )
        self._build_state(snap)

    def _build_state(self, snap: ShardSnapshot) -> None:
        """(Re)build the shard's mutable state around fixed spec keys.

        Called at construction and again on :data:`wire.MSG_RESYNC` —
        the supervisor's full-state replay into a restarted worker.
        Rebuilding (rather than patching) guarantees the worker holds
        exactly the authoritative snapshot, whatever it held before; the
        replay filter necessarily starts empty, which is where the
        documented bounded replay-horizon loss after a restart comes
        from.
        """
        spec = self.spec
        # A snapshot built under a different IV -> shard map than the one
        # the dispatcher routes with would silently mispair source-side
        # state and traffic; refuse it here, where spawn and resync meet.
        if snap.routing_mode and snap.routing_mode != spec.routing_mode:
            raise ValueError(
                f"snapshot routed {snap.routing_mode!r} but this shard's "
                f"spec routes {spec.routing_mode!r}"
            )
        if (
            snap.routing_key
            and spec.routing_key
            and snap.routing_key != spec.routing_key
        ):
            raise ValueError(
                "snapshot's routing key kR differs from this shard's spec"
            )
        if spec.state_backend == "columnar":
            # Column blobs load wholesale: the snapshot's packed arrays
            # become the view's backing stores with no per-host objects.
            hosts = ColumnarShardView(
                shard=spec.shard, nshards=spec.nshards, block=spec.shard_block
            )
            hosts.load_snapshot(snap)
            self.hosts = hosts
            revocations = ColumnarRevocationList()
            revocations.load_packed(snap.rev_exp, snap.rev_ephids)
            self.revocations = revocations
        else:
            self.hosts = ShardHostView(key_pool=self._key_pool)
            for hid, control, packet_mac, revoked in snap.iter_owned():
                self.hosts.add_owned(hid, control, packet_mac, revoked=revoked)
            for hid in snap.iter_live():
                self.hosts.set_live(hid)
            self.revocations = RevocationList()
            for ephid, exp_time in snap.iter_revoked():
                self.revocations.add(ephid, exp_time)
        replay_filter = None
        if spec.replay_window is not None:
            replay_filter = RotatingReplayFilter(
                window=spec.replay_window, bits_per_generation=spec.replay_bits
            )
        codec = EphIdCodec(spec.ephid_enc_key, spec.ephid_mac_key)
        self.router = BorderRouter(
            spec.aid,
            codec,
            self.hosts,  # type: ignore[arg-type]  # duck-typed HostDatabase
            self.revocations,
            self.clock,
            packet_mac_size=spec.packet_mac_size,
            replay_filter=replay_filter,
        )

    # -- message handlers --

    def handle_burst(self, msg: bytes) -> bytes:
        now, seq, frames, directions = wire.decode_burst(msg)
        self.clock.now = now
        packets = [
            ApnaPacket.from_wire(frame, with_nonce=self.spec.with_nonce)
            for frame in frames
        ]
        # The same drain loop BorderRouterNode runs in-process — the
        # structural half of the sharded plane's equivalence guarantee.
        verdicts = self.router.process_mixed_batch(
            packets, [d == wire.EGRESS for d in directions]
        )
        # Echo the burst seq so the dispatcher can prove this reply
        # answers the burst it is waiting on (duplicate/stale detection).
        return wire.encode_verdicts(seq, verdicts)

    def handle_revoke_ephid(self, msg: bytes) -> None:
        ephid, exp_time = wire.decode_revoke_ephid(msg)
        self.revocations.add(ephid, exp_time)

    def handle_revoke_hid(self, msg: bytes) -> None:
        self.hosts.revoke(wire.decode_revoke_hid(msg))

    def handle_register_host(self, msg: bytes) -> None:
        hid, owned, control, packet_mac = wire.decode_register_host(msg)
        if owned:
            self.hosts.add_owned(hid, control, packet_mac)
        else:
            self.hosts.set_live(hid)

    def handle_resync(self, msg: bytes) -> bytes:
        snap = wire.decode_resync(msg)
        self._build_state(snap)
        return wire.encode_resync_ack(snap.owned_count, snap.revoked_count)

    def stats(self) -> bytes:
        router = self.router
        counters = {reason.value: n for reason, n in router.drops.items()}
        counters["forwarded_inter"] = router.forwarded_inter
        counters["forwarded_intra"] = router.forwarded_intra
        if router.replay_filter is not None:
            counters["replay_passed"] = router.replay_filter.passed
            counters["replay_replays"] = router.replay_filter.replays
            counters["replay_rotations"] = router.replay_filter.rotations
        return wire.encode_stats(counters)


#: Message kinds the dispatcher expects exactly one reply to.  The
#: invariant the loop below protects: a worker writes to the reply pipe
#: *only* in response to these — an unsolicited frame would be consumed
#: as the answer to some later request and desynchronise every reply
#: after it.
_REPLYING_KINDS = frozenset({wire.MSG_BURST, wire.MSG_STATS, wire.MSG_RESYNC})


def data_plane_worker(conn, spec: ShardSpec) -> None:
    """Worker process main loop: build the shard, then serve the pipe.

    Every request kind in ``_REPLYING_KINDS`` gets exactly one message
    back (verdicts, stats, or an error frame the dispatcher re-raises).
    Control messages are fire-and-forget; if one fails (or an unknown
    kind arrives), the error is *held* and delivered in place of the
    next expected reply rather than sent immediately — keeping the
    reply stream aligned while still surfacing the failure loudly.
    EOF or MSG_STOP ends the loop.
    """
    try:
        state = ShardState(spec)
    # Not swallowed: the construction traceback ships to the dispatcher
    # as a MSG_ERROR frame, which recv_bytes re-raises as ShardError.
    except Exception:  # audit: allow(silent-except)
        conn.send_bytes(wire.encode_error(traceback.format_exc()))
        conn.close()
        return
    held_error: "str | None" = None
    while True:
        try:
            # Worker request loop: blocking forever is the contract (the
            # dispatcher's EOF wakes it); the bounded side of every
            # exchange is the dispatcher's supervised recv.
            msg = conn.recv_bytes()  # audit: allow(bounded-wait)
        except (EOFError, OSError):
            break
        if not msg or msg[0] == wire.MSG_STOP:
            break
        kind = msg[0]
        expects_reply = kind in _REPLYING_KINDS
        if expects_reply and held_error is not None:
            conn.send_bytes(wire.encode_error(held_error))
            held_error = None
            continue
        try:
            if kind == wire.MSG_BURST:
                conn.send_bytes(state.handle_burst(msg))
            elif kind == wire.MSG_REVOKE_EPHID:
                state.handle_revoke_ephid(msg)
            elif kind == wire.MSG_REVOKE_HID:
                state.handle_revoke_hid(msg)
            elif kind == wire.MSG_REGISTER_HOST:
                state.handle_register_host(msg)
            elif kind == wire.MSG_STATS:
                conn.send_bytes(state.stats())
            elif kind == wire.MSG_RESYNC:
                conn.send_bytes(state.handle_resync(msg))
            else:
                held_error = f"unknown message kind {kind}"
        # Not swallowed: the traceback crosses the pipe as a MSG_ERROR
        # frame, either immediately (replying kinds) or held for the
        # next reply slot so the verdict stream stays aligned.
        except Exception:  # audit: allow(silent-except)
            if expects_reply:
                conn.send_bytes(wire.encode_error(traceback.format_exc()))
            else:
                held_error = traceback.format_exc()
    conn.close()
