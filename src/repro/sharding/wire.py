"""Binary IPC messages between the shard dispatcher and its workers.

One burst = one message: the dispatcher ships packed APNA wire frames
(never pickled objects) and gets back a packed verdict vector, so the
per-packet IPC cost is a few bytes of framing amortised over the burst.
Control traffic (revocations, host registration, stats) shares the same
pipe, which is what guarantees ordering: a revoke written before a burst
is processed by the worker before that burst's verdicts are computed.

All integers are big-endian; every message starts with a one-byte kind.

Burst messages carry the dispatcher's per-shard sequence number and the
verdict reply echoes it back.  On a pipe the echo is redundant — message
boundaries are reliable — but it is what makes reply pairing *checkable*
instead of assumed: a duplicated or replayed reply (possible on the UDP
transport the ROADMAP points at, injected today by the ``duplicate``
fault kind) carries a stale sequence number and is discarded instead of
being silently paired with the wrong burst.
"""

from __future__ import annotations

import struct

from ..core.border_router import Action, DropReason, Verdict

MSG_STOP = 0
MSG_BURST = 1
MSG_VERDICTS = 2
MSG_REVOKE_EPHID = 3
MSG_REVOKE_HID = 4
MSG_REGISTER_HOST = 5
MSG_STATS = 6
MSG_STATS_REPLY = 7
MSG_ERROR = 8
MSG_RESYNC = 9
MSG_RESYNC_ACK = 10

#: Directions inside a burst message.
EGRESS = 0
INGRESS = 1

_BURST_HEAD = struct.Struct(">BdIH")  # kind, now, burst seq, count
_PACKET_HEAD = struct.Struct(">BI")  # direction, frame length
_VERDICTS_HEAD = struct.Struct(">BIH")  # kind, echoed burst seq, count
#: action, reason, presence flags, hid, next_aid.  Presence is explicit
#: (no in-band sentinel) because the full u32 range is legal for both
#: AIDs and HIDs.
_VERDICT = struct.Struct(">BBBII")
_HAS_HID = 1
_HAS_NEXT_AID = 2
_REVOKE_EPHID = struct.Struct(">Bd16s")  # kind, exp_time, ephid
_REVOKE_HID = struct.Struct(">BI")  # kind, hid
_REGISTER_HOST = struct.Struct(">BIB16s16s")  # kind, hid, owned, control, mac

_ACTIONS = tuple(Action)
_ACTION_INDEX = {action: i for i, action in enumerate(_ACTIONS)}
_REASONS = tuple(DropReason)
_REASON_INDEX = {reason: i for i, reason in enumerate(_REASONS)}
_NONE_U8 = 0xFF

#: Per-shard counters carried by a stats reply, in wire order.
STATS_FIELDS = tuple(reason.value for reason in _REASONS) + (
    "forwarded_inter",
    "forwarded_intra",
    "replay_passed",
    "replay_replays",
    "replay_rotations",
)
_STATS_REPLY = struct.Struct(f">B{len(STATS_FIELDS)}Q")


def encode_burst(
    now: float, seq: int, frames: "list[bytes]", directions: "list[int]"
) -> bytes:
    """Pack one burst: the shared clock read, the dispatcher's per-shard
    burst sequence number, and the raw wire frames."""
    parts = [_BURST_HEAD.pack(MSG_BURST, now, seq, len(frames))]
    for frame, direction in zip(frames, directions):
        parts.append(_PACKET_HEAD.pack(direction, len(frame)))
        parts.append(frame)
    return b"".join(parts)


def decode_burst(msg: bytes) -> "tuple[float, int, list[bytes], list[int]]":
    _, now, seq, count = _BURST_HEAD.unpack_from(msg)
    offset = _BURST_HEAD.size
    frames: list[bytes] = []
    directions: list[int] = []
    for _ in range(count):
        direction, length = _PACKET_HEAD.unpack_from(msg, offset)
        offset += _PACKET_HEAD.size
        frames.append(msg[offset : offset + length])
        directions.append(direction)
        offset += length
    return now, seq, frames, directions


def encode_verdicts(seq: int, verdicts: "list[Verdict]") -> bytes:
    """Pack a verdict vector; ``seq`` echoes the burst it answers."""
    parts = [_VERDICTS_HEAD.pack(MSG_VERDICTS, seq, len(verdicts))]
    for verdict in verdicts:
        flags = 0
        if verdict.hid is not None:
            flags |= _HAS_HID
        if verdict.next_aid is not None:
            flags |= _HAS_NEXT_AID
        parts.append(
            _VERDICT.pack(
                _ACTION_INDEX[verdict.action],
                _NONE_U8 if verdict.reason is None else _REASON_INDEX[verdict.reason],
                flags,
                verdict.hid or 0,
                verdict.next_aid or 0,
            )
        )
    return b"".join(parts)


def decode_verdicts(msg: bytes) -> "tuple[int, list[Verdict]]":
    _, seq, count = _VERDICTS_HEAD.unpack_from(msg)
    offset = _VERDICTS_HEAD.size
    verdicts: list[Verdict] = []
    for _ in range(count):
        action, reason, flags, hid, next_aid = _VERDICT.unpack_from(msg, offset)
        offset += _VERDICT.size
        verdicts.append(
            Verdict(
                _ACTIONS[action],
                reason=None if reason == _NONE_U8 else _REASONS[reason],
                hid=hid if flags & _HAS_HID else None,
                next_aid=next_aid if flags & _HAS_NEXT_AID else None,
            )
        )
    return seq, verdicts


def encode_revoke_ephid(ephid: bytes, exp_time: float) -> bytes:
    return _REVOKE_EPHID.pack(MSG_REVOKE_EPHID, exp_time, ephid)


def decode_revoke_ephid(msg: bytes) -> "tuple[bytes, float]":
    _, exp_time, ephid = _REVOKE_EPHID.unpack(msg)
    return ephid, exp_time


def encode_revoke_hid(hid: int) -> bytes:
    return _REVOKE_HID.pack(MSG_REVOKE_HID, hid)


def decode_revoke_hid(msg: bytes) -> int:
    _, hid = _REVOKE_HID.unpack(msg)
    return hid


def encode_register_host(
    hid: int, *, owned: bool, control: bytes, packet_mac: bytes
) -> bytes:
    """Host announcement: keys travel only to the owning shard (``owned``);
    every other shard learns just that the HID is live."""
    return _REGISTER_HOST.pack(
        MSG_REGISTER_HOST,
        hid,
        1 if owned else 0,
        control if owned else bytes(16),
        packet_mac if owned else bytes(16),
    )


def decode_register_host(msg: bytes) -> "tuple[int, bool, bytes, bytes]":
    _, hid, owned, control, packet_mac = _REGISTER_HOST.unpack(msg)
    return hid, bool(owned), control, packet_mac


def encode_stats(counters: "dict[str, int]") -> bytes:
    return _STATS_REPLY.pack(
        MSG_STATS_REPLY, *(counters.get(field, 0) for field in STATS_FIELDS)
    )


def decode_stats(msg: bytes) -> "dict[str, int]":
    values = _STATS_REPLY.unpack(msg)[1:]
    return dict(zip(STATS_FIELDS, values))


#: Resync: the supervisor's full-state replay into a restarted worker.
#: One message carries everything a fresh shard needs — its owned host
#: records (keys included), the replicated live-HID view and the
#: revocation-list snapshot — so the restart is a single ordered
#: request/ack exchange on the same pipe as the bursts.  The payload is
#: a :class:`repro.state.ShardSnapshot` verbatim: packed columns, not
#: per-record frames, so resyncing a million-host shard is a handful of
#: buffer copies on both ends (and the same bytes the initial
#: ``ShardSpec`` embeds — one serialisation of shard state).


def encode_resync(snapshot) -> bytes:
    """Frame a :class:`repro.state.ShardSnapshot` as a resync message."""
    return bytes([MSG_RESYNC]) + snapshot.encode()


def decode_resync(msg: bytes):
    """The :class:`repro.state.ShardSnapshot` carried by a resync frame."""
    from ..state.snapshot import ShardSnapshot

    return ShardSnapshot.decode(memoryview(msg)[1:])


def encode_resync_ack(owned_count: int, revoked_count: int) -> bytes:
    """The worker's confirmation that the resync was applied (counts echo
    what it now holds, a cheap sanity handle for the supervisor)."""
    return struct.pack(">BII", MSG_RESYNC_ACK, owned_count, revoked_count)


def decode_resync_ack(msg: bytes) -> "tuple[int, int]":
    _, owned_count, revoked_count = struct.unpack(">BII", msg)
    return owned_count, revoked_count


def encode_error(text: str) -> bytes:
    return bytes([MSG_ERROR]) + text.encode("utf-8", "replace")


def decode_error(msg: bytes) -> str:
    return msg[1:].decode("utf-8", "replace")
