"""HID-range shard ownership (the share-nothing split of paper §V-A3).

The paper scales the MS across four processes with "no coordination
between the processes"; this module fixes *which* process owns which
host so the data plane can be split the same way.  A
:class:`ShardPlan` maps every HID to exactly one shard:

* service HIDs (below :data:`repro.core.hostdb.FIRST_HOST_HID`) always
  belong to shard 0, and
* host HIDs are striped over the shards in contiguous blocks of
  ``block`` consecutive HIDs — ``block=1`` degenerates to round-robin
  over registration order (host HIDs are allocated sequentially), while
  a larger block gives each shard long contiguous HID runs, the layout
  a range-partitioned ``host_info`` table would use.

Routing without decrypting
--------------------------

An EphID hides its HID (that is the point of the construction), so a
dispatcher cannot look at a packet and see which shard owns its source
host.  What *is* in the clear is the EphID's IV (Fig. 6: the middle four
bytes).  Because the AS issues every EphID itself, it can pin the IV at
issuance time so that ``iv % nshards`` equals the owning shard
(:meth:`repro.core.ephid.IvAllocator.next_iv_for`), and the dispatcher
recovers the shard from four clear-text bytes with no crypto at all —
the software analogue of NIC RSS steering.

The residue leaks ``log2(nshards)`` bits of linkage (two EphIDs of one
host share it); closing that side channel with a keyed shard mapping is
a ROADMAP item.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ephid import CIPHERTEXT_SIZE, IV_SIZE
from ..core.hostdb import FIRST_HOST_HID

#: EphID layout offsets (Fig. 6): ciphertext || IV || tag.
_IV_OFFSET = CIPHERTEXT_SIZE
_IV_END = CIPHERTEXT_SIZE + IV_SIZE


@dataclass(frozen=True)
class ShardPlan:
    """The HID -> shard ownership function for one AS's data plane."""

    nshards: int
    #: Consecutive host HIDs per contiguous ownership block.
    block: int = 1

    def __post_init__(self) -> None:
        if self.nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {self.nshards}")
        if self.block < 1:
            raise ValueError(f"block must be >= 1, got {self.block}")

    def owner_of(self, hid: int) -> int:
        """The shard owning ``hid``'s record (MAC keys included)."""
        if hid < FIRST_HOST_HID:
            return 0  # service identities live on shard 0
        return ((hid - FIRST_HOST_HID) // self.block) % self.nshards

    def shard_of_iv(self, iv: int) -> int:
        """The shard a pinned IV routes to (``iv % nshards``)."""
        return iv % self.nshards

    def shard_of_ephid(self, ephid: bytes) -> int:
        """Read the routing shard straight out of an EphID's clear IV."""
        return int.from_bytes(ephid[_IV_OFFSET:_IV_END], "big") % self.nshards
