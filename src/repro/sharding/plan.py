"""Shard ownership: HID -> shard, and the keyed IV -> shard routing map.

The paper scales the MS across four processes with "no coordination
between the processes"; this module fixes *which* process owns which
host so the data plane can be split the same way.  A
:class:`ShardPlan` maps every HID to exactly one shard:

* service HIDs (below :data:`repro.core.hostdb.FIRST_HOST_HID`) always
  belong to shard 0, and
* host HIDs are striped over the shards in contiguous blocks of
  ``block`` consecutive HIDs — ``block=1`` degenerates to round-robin
  over registration order (host HIDs are allocated sequentially), while
  a larger block gives each shard long contiguous HID runs, the layout
  a range-partitioned ``host_info`` table would use.

Routing without decrypting — and without leaking
------------------------------------------------

An EphID hides its HID (that is the point of the construction), so a
dispatcher cannot look at a packet and see which shard owns its source
host.  What *is* in the clear is the EphID's IV (Fig. 6: the middle four
bytes).  Because the AS issues every EphID itself, it can pin IVs at
issuance time so that :meth:`ShardPlan.owner_of_iv` of the clear IV
equals the owning shard (:meth:`repro.core.ephid.IvAllocator.
next_iv_for`), and the dispatcher recovers the shard from four
clear-text bytes — the software analogue of NIC RSS steering.

The *shape* of that map is a privacy decision.  The original map was the
bare residue ``iv % nshards``: free to compute, but anyone on the path
could compute it too, so two EphIDs of the same host shared a publicly
checkable residue — ``log2(nshards)`` bits of cross-EphID linkage,
exactly what the paper's domain-brokered privacy (Section IV/V-A1)
promises does not exist.  The default map is therefore **keyed**:

    ``owner_of_iv(iv) = CMAC_kR(iv) % nshards``

under ``kR``, an AS-internal routing key derived from the AS master
secret (:attr:`repro.core.keys.AsSecret.shard_route`).  The map is still
deterministic — the AS can pin IVs against it at issuance, and every
EphID of a host still routes to the host's owner shard — but without
``kR`` the clear IV bytes are uncorrelated with the shard, so an
observer learns nothing an unsharded deployment would not leak.  The
dispatcher pays one short PRF per packet, batched over a burst's whole
IV column with a single AES-ECB pass — a 4-byte CMAC collapses to one
AES call, see :class:`RoutingKey` —
(:meth:`ShardPlan.owners_of_iv_bytes`; nearly free on the openssl
backend).

``mode="residue"`` keeps the original unkeyed map, bit-compatible with
worlds built before the keyed map existed.  Its only remaining use is
that compatibility; it retains the linkage leak and should not be
deployed.

This module is the **only** place an IV -> shard decision may be
computed: ``tests/test_shard_routing_audit.py`` fails on any
``% nshards``-style routing arithmetic elsewhere on the dispatch or
issuance paths, so the leak cannot quietly come back.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.ephid import CIPHERTEXT_SIZE, IV_SIZE
from ..core.hostdb import FIRST_HOST_HID
from ..crypto.aes import AES, BLOCK_SIZE
from ..crypto.cmac import _left_shift

#: EphID layout offsets (Fig. 6): ciphertext || IV || tag.
_IV_OFFSET = CIPHERTEXT_SIZE
_IV_END = CIPHERTEXT_SIZE + IV_SIZE

#: The IV -> shard maps a plan can use.
ROUTING_MODES = ("keyed", "residue")

#: kR length: one AES-CMAC key.
ROUTING_KEY_SIZE = 16

#: PRF output bytes folded into the shard index.  Eight bytes keep the
#: modulo bias below 2^-60 for any sane shard count.
_PRF_BYTES = 8

#: Per-burst-size unpackers for the bulk route (bursts reuse one size).
_TAG_WORDS_CACHE: "dict[int, struct.Struct]" = {}


def _tag_words(count: int) -> struct.Struct:
    cached = _TAG_WORDS_CACHE.get(count)
    if cached is None:
        cached = _TAG_WORDS_CACHE[count] = struct.Struct(">" + "Q8x" * count)
    return cached


class RoutingKey:
    """kR — the PRF side of the keyed IV -> shard map.

    The PRF is AES-CMAC (RFC 4493) over the four clear IV bytes.  A
    4-byte message is a single *incomplete* CMAC block, so the tag
    collapses to one AES call on the padded, subkey-masked block:

        ``CMAC_kR(iv) = AES_kR(K2 XOR (iv || 0x80 || 0^11))``

    which this class exploits on the dispatch path: a whole burst's IV
    column becomes one :meth:`repro.crypto.aes.AES.encrypt_blocks` call
    (a single EVP update on the openssl backend) instead of a per-IV
    CMAC context loop — the bit-identical tag at a fraction of the cost
    (``tests/test_sharding.py`` pins the equivalence against the generic
    CMAC).  The K2 mask is derived once at construction.
    """

    __slots__ = ("_aes", "_mask_head", "_mask_tail")

    def __init__(self, key: bytes, *, backend=None) -> None:
        if len(key) != ROUTING_KEY_SIZE:
            raise ValueError(
                f"routing key kR must be {ROUTING_KEY_SIZE} bytes, got {len(key)}"
            )
        self._aes = AES(key, backend=backend)
        # RFC 4493 subkeys: L = AES_K(0), K1 = dbl(L), K2 = dbl(K1).
        k2 = _left_shift(_left_shift(self._aes.encrypt_block(bytes(BLOCK_SIZE))))
        # K2 XOR (iv || 0x80 || 0^11), pre-split around the 4 IV bytes.
        self._mask_head = int.from_bytes(k2[:IV_SIZE], "big")
        self._mask_tail = bytes((k2[IV_SIZE] ^ 0x80,)) + k2[IV_SIZE + 1 :]

    def shard_of(self, iv_bytes: bytes, nshards: int) -> int:
        """The shard the keyed map sends four clear IV bytes to."""
        block = (
            (int.from_bytes(iv_bytes, "big") ^ self._mask_head).to_bytes(
                IV_SIZE, "big"
            )
            + self._mask_tail
        )
        tag = self._aes.encrypt_block(block)
        return int.from_bytes(tag[:_PRF_BYTES], "big") % nshards

    def shards_of(self, iv_columns, nshards: int) -> "list[int]":
        """Bulk form of :meth:`shard_of` — one AES-ECB call per burst."""
        head, tail = self._mask_head, self._mask_tail
        buf = b"".join(
            (int.from_bytes(iv, "big") ^ head).to_bytes(IV_SIZE, "big") + tail
            for iv in iv_columns
        )
        tags = self._aes.encrypt_blocks(buf)
        # One unpack pulls every tag's leading PRF word out of the
        # concatenated ECB output (">Q8x" = 8 tag bytes, 8 skipped).
        words = _tag_words(len(iv_columns)).unpack(tags)
        return [word % nshards for word in words]


@dataclass(frozen=True)
class ShardPlan:
    """One AS's shard ownership: HID -> shard and IV -> shard."""

    nshards: int
    #: Consecutive host HIDs per contiguous ownership block.
    block: int = 1
    #: The IV -> shard map: ``"keyed"`` (default, unlinkable) or
    #: ``"residue"`` (the original ``iv % nshards``, kept only for
    #: bit-compatibility; leaks cross-EphID linkage).
    mode: str = "keyed"
    #: kR for the keyed map.  Required for keyed routing over more than
    #: one shard; ownership-only uses (``owner_of``) never need it.
    key: "bytes | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {self.nshards}")
        if self.block < 1:
            raise ValueError(f"block must be >= 1, got {self.block}")
        if self.mode not in ROUTING_MODES:
            raise ValueError(
                f"routing mode must be one of {ROUTING_MODES}, got {self.mode!r}"
            )
        if self.key is not None and len(self.key) != ROUTING_KEY_SIZE:
            raise ValueError(
                f"routing key kR must be {ROUTING_KEY_SIZE} bytes, "
                f"got {len(self.key)}"
            )

    # -- HID ownership ------------------------------------------------------

    def owner_of(self, hid: int) -> int:
        """The shard owning ``hid``'s record (MAC keys included)."""
        if hid < FIRST_HOST_HID:
            return 0  # service identities live on shard 0
        return ((hid - FIRST_HOST_HID) // self.block) % self.nshards

    # -- IV routing ---------------------------------------------------------

    def _keyed_router(self) -> RoutingKey:
        router = getattr(self, "_router", None)
        if router is None:
            if self.key is None:
                raise ValueError(
                    f"keyed routing over {self.nshards} shards needs a "
                    "routing key kR (pass ShardPlan(key=...), or "
                    "mode='residue' for the legacy unkeyed map)"
                )
            router = RoutingKey(self.key)
            object.__setattr__(self, "_router", router)
        return router

    def validate_routing(self) -> "ShardPlan":
        """Fail fast (not mid-burst) if this plan cannot route IVs."""
        if self.nshards > 1 and self.mode == "keyed":
            self._keyed_router()
        return self

    def owner_of_iv(self, iv: int) -> int:
        """The shard a pinned IV routes to, under the plan's map."""
        if self.nshards == 1:
            return 0
        if self.mode == "residue":
            return iv % self.nshards
        return self._keyed_router().shard_of(iv.to_bytes(4, "big"), self.nshards)

    def owner_of_iv_bytes(self, iv_bytes: bytes) -> int:
        """:meth:`owner_of_iv` straight from four clear wire bytes."""
        if self.nshards == 1:
            return 0
        if self.mode == "residue":
            return int.from_bytes(iv_bytes, "big") % self.nshards
        return self._keyed_router().shard_of(bytes(iv_bytes), self.nshards)

    def owners_of_iv_bytes(self, iv_columns) -> "list[int]":
        """Route a whole burst's IV column at once.

        Keyed mode spends one bulk CMAC call for the entire column (the
        dispatcher's batched pre-route); residue mode is a plain mod
        loop.  Element-for-element identical to :meth:`owner_of_iv_bytes`
        per entry.
        """
        if self.nshards == 1:
            return [0] * len(iv_columns)
        if self.mode == "residue":
            n = self.nshards
            return [int.from_bytes(b, "big") % n for b in iv_columns]
        return self._keyed_router().shards_of(iv_columns, self.nshards)

    def shard_of_iv(self, iv: int) -> int:
        """Deprecated name for :meth:`owner_of_iv`."""
        return self.owner_of_iv(iv)

    def shard_of_ephid(self, ephid: bytes) -> int:
        """Routing shard of an EphID, read from its clear IV bytes."""
        return self.owner_of_iv_bytes(ephid[_IV_OFFSET:_IV_END])
