"""Worker supervision: crash/hang detection, restart with state resync,
and the degradation decision.

The unsupervised plane of the first sharded iteration had exactly one
answer to any worker failure — poison itself and refuse all further
traffic.  That is the right last resort (a desynchronised reply stream
must never mispair verdicts with packets), but a terrible first one: a
production AS cannot rebuild its data plane by hand every time one
process dies.  This module supplies the layers in between:

1. **Detection** — every reply wait is a bounded ``Connection.poll``
   plus a ``Process.is_alive`` liveness probe (see
   :meth:`repro.sharding.pool.ShardProcessPool.recv_bytes`), so a dead
   worker surfaces as an immediate pipe EOF and a hung one as a timeout,
   never as a dispatcher wedged forever.
2. **Recovery** — :meth:`ShardSupervisor.restart` kills the failed
   worker, spawns a fresh one from a *bare* spec (keys and deployment
   config only, no state) and replays the authoritative AS state into it
   over the existing wire protocol: one :data:`repro.sharding.wire.
   MSG_RESYNC` frame carrying the shard's owned host records, the
   replicated live-HID view and the revocation snapshot, acknowledged by
   the worker before any traffic resumes.  Attempts back off with a
   capped exponential delay.
3. **Degradation** — once a shard exhausts its restart budget
   (:attr:`SupervisorPolicy.max_restarts`), the plane stops gambling:
   with :attr:`SupervisorPolicy.degrade_to_inline` it falls back to a
   single in-process :class:`~repro.core.border_router.BorderRouter`
   over the authoritative state and keeps serving verdicts (flagged
   ``degraded`` in ``stats()``); without it, the plane poisons itself
   exactly as before.

What survives a restart and what does not is part of the contract (see
the package docstring's fault-model section): host records and
revocations are replayed from the authoritative copies, so they survive
exactly; the shard's replay-filter history and its verdict counters die
with the process.  Verdicts owed by the failed worker are *dropped and
counted* (``Action.DROP`` / ``DropReason.SHARD_FAILURE``), never
guessed — the reply stream restarts clean on the fresh pipe, so no
later burst can inherit an earlier burst's verdicts.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Callable

from . import wire

if TYPE_CHECKING:  # pragma: no cover
    from .plan import ShardPlan
    from .pool import ShardProcessPool
    from .worker import ShardSpec

__all__ = ["ShardStateSource", "SupervisorPolicy", "ShardSupervisor"]

#: Restart backoff is capped at this multiple of the base delay.
_BACKOFF_CAP_FACTOR = 50


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """The recovery knobs, mirrored from :class:`repro.core.config.
    ApnaConfig`'s ``shard_*`` fields (see there for semantics)."""

    reply_timeout: "float | None" = 5.0
    max_restarts: int = 3
    restart_backoff: float = 0.05
    degrade_to_inline: bool = True

    @classmethod
    def from_config(cls, config) -> "SupervisorPolicy":
        return cls(
            reply_timeout=config.shard_reply_timeout,
            max_restarts=config.shard_max_restarts,
            restart_backoff=config.shard_restart_backoff,
            degrade_to_inline=config.shard_degraded_fallback,
        )


class ShardStateSource:
    """Live references to the AS's authoritative state, from which any
    shard's view can be rebuilt at any moment.

    The plane's construction-time snapshot is only the *initial* worker
    state; everything since (registrations, revocations) reached the
    workers as incremental control frames.  A restarted worker needs the
    *current* state, so the supervisor reads it fresh from the same
    objects the control hooks mutate — ``hostdb`` and ``revocations``
    are the :class:`~repro.core.hostdb.HostDatabase` and
    :class:`~repro.core.revocation.RevocationList` the AS itself owns.
    """

    def __init__(self, hostdb, revocations) -> None:
        self.hostdb = hostdb
        self.revocations = revocations

    def shard_snapshot(self, plan: "ShardPlan", shard: int):
        """One shard's :class:`repro.state.ShardSnapshot`, resync-ready.

        Columnar stores export their packed columns wholesale; object
        stores fall back to a per-record walk.  Either way the result is
        the same wire bytes, which is what keeps resync equivalent
        across ``state_backend`` values.
        """
        from ..state.snapshot import build_shard_snapshot

        return build_shard_snapshot(self.hostdb, self.revocations, plan, shard)


class ShardSupervisor:
    """Restart bookkeeping + the resync protocol for one worker pool."""

    def __init__(
        self,
        pool: "ShardProcessPool",
        plan: "ShardPlan",
        specs: "list[ShardSpec]",
        state: "ShardStateSource | None",
        policy: SupervisorPolicy,
        *,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._pool = pool
        self._plan = plan
        #: Bare per-shard specs: the original specs stripped of state, so
        #: a respawned worker starts empty and MSG_RESYNC is the single
        #: source of its state.
        self._bare_specs = [
            dataclasses.replace(spec, snapshot=b"") for spec in specs
        ]
        self._state = state
        self.policy = policy
        self._sleep = sleep
        #: Successful + failed restart attempts, per shard.
        self.restarts = [0] * len(specs)
        self.total_restarts = 0
        #: ``(shard, cause)`` log of every failure handled, for tests and
        #: post-mortems.
        self.failures: "list[tuple[int, str]]" = []

    @property
    def can_resync(self) -> bool:
        """Restarts need an authoritative state source to replay from."""
        return self._state is not None

    def record_failure(self, shard: int, cause: str) -> None:
        self.failures.append((shard, cause))

    def restart(self, shard: int) -> bool:
        """Try to bring ``shard`` back: kill, respawn bare, resync, ack.

        Returns ``True`` once a fresh worker acknowledged its resync;
        ``False`` when the shard's restart budget is exhausted (the
        caller then degrades or poisons the plane).  Each attempt —
        successful or not — consumes budget, and attempts back off with
        a capped exponential delay so a crash-looping worker cannot spin
        the dispatcher.
        """
        if not self.can_resync:
            return False
        while self.restarts[shard] < self.policy.max_restarts:
            attempt = self.restarts[shard]
            self.restarts[shard] += 1
            self.total_restarts += 1
            if attempt > 0:
                base = self.policy.restart_backoff
                self._sleep(min(base * (2 ** (attempt - 1)), base * _BACKOFF_CAP_FACTOR))
            try:
                self._pool.restart(shard, self._bare_specs[shard])
            except Exception as exc:  # noqa: BLE001 — any failure retries
                self.record_failure(shard, f"restart attempt {attempt + 1}: {exc}")
                continue
            try:
                self._resync(shard)
                return True
            except Exception as exc:  # noqa: BLE001 — any failure retries
                self.record_failure(shard, f"restart attempt {attempt + 1}: {exc}")
                # The respawn succeeded but the worker never got its
                # state: it must not linger across the backoff (or past
                # the final give-up) holding pipes and a live process.
                self._pool.discard_worker(shard)
        return False

    def _resync(self, shard: int) -> None:
        """Replay the authoritative state into a fresh worker and wait
        for its ack (bounded by the same reply timeout as bursts)."""
        assert self._state is not None
        snap = self._state.shard_snapshot(self._plan, shard)
        self._pool.send_bytes(shard, wire.encode_resync(snap))
        reply = self._pool.recv_bytes(
            shard, timeout=self.policy.reply_timeout
        )
        if not reply or reply[0] != wire.MSG_RESYNC_ACK:
            kind = reply[0] if reply else None
            raise wire_ack_error(shard, kind)
        acked_owned, acked_revoked = wire.decode_resync_ack(reply)
        if acked_owned != snap.owned_count or acked_revoked != snap.revoked_count:
            raise wire_ack_error(
                shard,
                wire.MSG_RESYNC_ACK,
                detail=(
                    f"acked {acked_owned} hosts/{acked_revoked} revocations, "
                    f"sent {snap.owned_count}/{snap.revoked_count}"
                ),
            )


def wire_ack_error(shard: int, kind, *, detail: str = ""):
    from .pool import ShardError

    message = f"shard {shard}: bad resync ack (message kind {kind})"
    if detail:
        message = f"{message}: {detail}"
    return ShardError(message, shard=shard)
