"""Point-to-point links with propagation delay and serialization delay.

A frame occupies the transmitter for ``bits / bandwidth`` seconds (FIFO
per direction), then arrives ``latency`` seconds later.  This is the
standard store-and-forward model and is what the connection-establishment
latency experiment (paper Section VII-C) measures RTTs against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .events import Scheduler

Receiver = Callable[[bytes], None]


@dataclass
class LinkStats:
    frames: int = 0
    bytes: int = 0
    dropped: int = 0


class _Direction:
    __slots__ = ("receiver", "next_free", "stats")

    def __init__(self, receiver: Receiver) -> None:
        self.receiver = receiver
        self.next_free = 0.0
        self.stats = LinkStats()


class Link:
    """A bidirectional link between two receivers."""

    def __init__(
        self,
        scheduler: Scheduler,
        receiver_a: Receiver,
        receiver_b: Receiver,
        *,
        latency: float = 0.001,
        bandwidth: float = 1e9,
        queue_limit: float = 1.0,
    ) -> None:
        """``bandwidth`` is in bits/second; ``queue_limit`` is the maximum
        transmit backlog in seconds before frames are tail-dropped."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self._scheduler = scheduler
        self.latency = latency
        self.bandwidth = bandwidth
        self.queue_limit = queue_limit
        self._dirs = {id(receiver_a): _Direction(receiver_b), id(receiver_b): _Direction(receiver_a)}
        self._ends = (receiver_a, receiver_b)

    def send_from(self, sender: Receiver, frame: bytes) -> bool:
        """Transmit ``frame`` from ``sender``'s side; returns False on drop."""
        direction = self._dirs.get(id(sender))
        if direction is None:
            raise ValueError("sender is not an endpoint of this link")
        now = self._scheduler.now
        start = max(now, direction.next_free)
        if start - now > self.queue_limit:
            direction.stats.dropped += 1
            return False
        tx_time = len(frame) * 8 / self.bandwidth
        direction.next_free = start + tx_time
        direction.stats.frames += 1
        direction.stats.bytes += len(frame)
        self._scheduler.schedule_at(
            start + tx_time + self.latency, direction.receiver, frame
        )
        return True

    def stats_from(self, sender: Receiver) -> LinkStats:
        direction = self._dirs.get(id(sender))
        if direction is None:
            raise ValueError("sender is not an endpoint of this link")
        return direction.stats

    @property
    def endpoints(self) -> tuple[Receiver, Receiver]:
        return self._ends
