"""Simulation nodes: named entities wired together by links."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .events import Scheduler
from .link import Link

if TYPE_CHECKING:
    from .network import Network


class Node:
    """Base class for anything attached to the simulated network.

    Subclasses override :meth:`handle_frame`.  Frames are raw bytes — the
    full wire serialization is exercised on every hop, exactly as a real
    deployment would.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.network: "Network | None" = None
        self._links: dict[str, Link] = {}
        self._receivers: dict[str, object] = {}
        self.frames_received = 0
        self.frames_sent = 0

    # -- wiring (called by Network.connect) --

    def _attach(self, network: "Network") -> None:
        self.network = network

    def _add_link(self, peer_name: str, link: Link, receiver) -> None:
        self._links[peer_name] = link
        self._receivers[peer_name] = receiver

    @property
    def scheduler(self) -> Scheduler:
        if self.network is None:
            raise RuntimeError(f"node {self.name!r} is not attached to a network")
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.scheduler.now

    @property
    def neighbors(self) -> list[str]:
        return list(self._links)

    # -- data path --

    def send(self, peer_name: str, frame: bytes) -> bool:
        """Transmit a frame to a directly-connected neighbor."""
        link = self._links.get(peer_name)
        if link is None:
            raise ValueError(f"{self.name!r} has no link to {peer_name!r}")
        self.frames_sent += 1
        return link.send_from(self._receivers[peer_name], frame)

    def _receive(self, peer_name: str, frame: bytes) -> None:
        self.frames_received += 1
        self.handle_frame(frame, from_node=peer_name)

    def handle_frame(self, frame: bytes, *, from_node: str) -> None:
        """Process an arriving frame.  Subclasses override."""

    def call_later(self, delay: float, callback, *args) -> None:
        self.scheduler.schedule(delay, callback, *args)
