"""Discrete-event scheduler: the beating heart of the network simulator.

A single priority queue of timestamped callbacks.  Entities never sleep or
poll; they schedule future work and the scheduler advances virtual time to
the next event.  Deterministic tie-breaking (insertion order) makes runs
exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by ``schedule``; allows cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class Scheduler:
    """A discrete-event loop with virtual time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._seq = 0
        self._queue: list[_Entry] = []
        self.processed = 0

    @property
    def now(self) -> float:
        return self._now

    def clock(self) -> Callable[[], float]:
        """A zero-argument callable entities can use to read the time."""
        return lambda: self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} < now {self._now}")
        entry = _Entry(when, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def step(self) -> bool:
        """Process the next event; returns False if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            entry.callback(*entry.args)
            self.processed += 1
            return True
        return False

    def run(self, *, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events processed."""
        count = 0
        while count < max_events and self.step():
            count += 1
        if count >= max_events:
            raise RuntimeError(f"event budget exhausted ({max_events})")
        return count

    def run_until(self, deadline: float, *, max_events: int = 10_000_000) -> int:
        """Process events up to ``deadline`` (inclusive), then advance time to it."""
        count = 0
        while self._queue and count < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            self.step()
            count += 1
        if count >= max_events:
            raise RuntimeError(f"event budget exhausted ({max_events})")
        self._now = max(self._now, deadline)
        return count

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
