"""Topology container and AS-level inter-domain routing.

The network holds named nodes connected by links, and computes next-hop
forwarding tables from shortest paths over the (optionally weighted)
topology graph with networkx — a stand-in for BGP at the AS granularity
the paper operates on (transit ASes "simply forward packets to the next
AS on the path", Section IV-D3).
"""

from __future__ import annotations

import networkx as nx

from .events import Scheduler
from .link import Link
from .node import Node


class Network:
    """A simulated network of nodes, links and routing tables."""

    def __init__(self, scheduler: Scheduler | None = None) -> None:
        self.scheduler = scheduler or Scheduler()
        self.nodes: dict[str, Node] = {}
        self.graph = nx.Graph()
        self._routes: dict[str, dict[str, str]] = {}

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self.graph.add_node(node.name)
        node._attach(self)
        return node

    def connect(
        self,
        a: str | Node,
        b: str | Node,
        *,
        latency: float = 0.001,
        bandwidth: float = 1e9,
        weight: float | None = None,
    ) -> Link:
        """Create a bidirectional link between two registered nodes."""
        node_a = self.nodes[a] if isinstance(a, str) else a
        node_b = self.nodes[b] if isinstance(b, str) else b
        for node in (node_a, node_b):
            if node.name not in self.nodes:
                raise ValueError(f"node {node.name!r} is not in this network")

        def receive_at_a(frame: bytes) -> None:
            node_a._receive(node_b.name, frame)

        def receive_at_b(frame: bytes) -> None:
            node_b._receive(node_a.name, frame)

        link = Link(
            self.scheduler,
            receive_at_a,
            receive_at_b,
            latency=latency,
            bandwidth=bandwidth,
        )
        node_a._add_link(node_b.name, link, receive_at_a)
        node_b._add_link(node_a.name, link, receive_at_b)
        self.graph.add_edge(
            node_a.name, node_b.name, weight=weight if weight is not None else latency
        )
        self._routes.clear()
        return link

    def compute_routes(self) -> None:
        """(Re)build all-pairs next-hop tables from shortest paths."""
        self._routes = {}
        paths = dict(nx.all_pairs_dijkstra_path(self.graph, weight="weight"))
        for src, by_dst in paths.items():
            table: dict[str, str] = {}
            for dst, path in by_dst.items():
                if len(path) >= 2:
                    table[dst] = path[1]
            self._routes[src] = table

    def next_hop(self, at: str, toward: str) -> str:
        """The neighbor ``at`` should forward to, to reach ``toward``."""
        if not self._routes:
            self.compute_routes()
        try:
            return self._routes[at][toward]
        except KeyError:
            raise ValueError(f"no route from {at!r} to {toward!r}") from None

    def path(self, src: str, dst: str) -> list[str]:
        return nx.shortest_path(self.graph, src, dst, weight="weight")

    def run(self, **kwargs) -> int:
        return self.scheduler.run(**kwargs)

    def run_until(self, deadline: float, **kwargs) -> int:
        return self.scheduler.run_until(deadline, **kwargs)

    @property
    def now(self) -> float:
        return self.scheduler.now
