"""Discrete-event network simulation substrate.

* :mod:`repro.netsim.events` — virtual-time scheduler.
* :mod:`repro.netsim.link` — links with latency/bandwidth/serialization.
* :mod:`repro.netsim.node` — base class for attached entities.
* :mod:`repro.netsim.network` — topology + shortest-path routing.
"""

from .events import EventHandle, Scheduler
from .link import Link, LinkStats
from .network import Network
from .node import Node

__all__ = ["EventHandle", "Link", "LinkStats", "Network", "Node", "Scheduler"]
