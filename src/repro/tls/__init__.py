"""Upper-layer authentication over APNA (paper Section VIII-F).

"APNA can work in conjunction with security protocols that deal with
security issues at higher layers.  For example, TLS can be implemented on
top of the encrypted end-to-end path between two hosts to perform user
authentication.  However, not all functionalities of upper layer security
protocol may be necessary.  For instance, since APNA already provides a
secure end-to-end channel between hosts, the mechanism to establish a
symmetric shared key for data encryption may be omitted when
implementing TLS on top of APNA."

This subpackage is that reduced TLS: a domain PKI
(:mod:`repro.tls.ca`) and an authentication-only handshake
(:mod:`repro.tls.handshake`) that *channel-binds* the attestation to the
APNA session key instead of running a second key exchange.  Because the
binding derives from the session key, the handshake also closes the one
privacy gap the paper concedes in Section VI-B: a malicious AS that
MitMs intra-domain connections by faking both EphID certificates ends up
with two different session keys and therefore two different bindings —
the attestation verifies on neither.
"""

from .ca import DomainCertificate, WebCa
from .handshake import (
    AuthRequest,
    Attestation,
    TlsAuthError,
    attest,
    channel_binding,
    verify_attestation,
)

__all__ = [
    "Attestation",
    "AuthRequest",
    "DomainCertificate",
    "TlsAuthError",
    "WebCa",
    "attest",
    "channel_binding",
    "verify_attestation",
]
