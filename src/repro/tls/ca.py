"""A minimal web PKI for the Section VIII-F authentication layer.

Deliberately separate from the RPKI of :mod:`repro.core.rpki`: RPKI
vouches for *ASes*, this CA vouches for *domain names* — the paper keeps
those concerns at different layers ("APNA does not deal with security
issues at higher layers (e.g., authenticating domain ownership)").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.keys import SigningKeyPair
from ..crypto import ed25519
from ..crypto.rng import Rng

_CONTEXT = b"apna-domain-cert-v1:"
_MAX_NAME = 255


class DomainCertError(Exception):
    """A domain certificate failed validation or parsing."""


@dataclass(frozen=True)
class DomainCertificate:
    """Binds a domain name to a long-term Ed25519 key."""

    name: str
    sig_public: bytes = field(repr=False)
    exp_time: int = 2**32 - 1
    signature: bytes = field(default=bytes(ed25519.SIGNATURE_SIZE), repr=False)

    def __post_init__(self) -> None:
        encoded = self.name.encode()
        if not 1 <= len(encoded) <= _MAX_NAME:
            raise DomainCertError(f"name must encode to 1..{_MAX_NAME} bytes")
        if len(self.sig_public) != 32:
            raise DomainCertError("public key must be 32 bytes")
        if not 0 <= self.exp_time <= 2**32 - 1:
            raise DomainCertError("exp_time out of range")
        if len(self.signature) != ed25519.SIGNATURE_SIZE:
            raise DomainCertError("signature must be 64 bytes")

    def tbs(self) -> bytes:
        encoded = self.name.encode()
        return _CONTEXT + struct.pack(
            f">B{len(encoded)}s32sI",
            len(encoded),
            encoded,
            self.sig_public,
            self.exp_time,
        )

    def verify(self, ca_public: bytes, *, now: float | None = None) -> None:
        if not ed25519.verify(ca_public, self.tbs(), self.signature):
            raise DomainCertError(f"certificate for {self.name!r} has a bad signature")
        if now is not None and self.exp_time < now:
            raise DomainCertError(f"certificate for {self.name!r} expired")

    def pack(self) -> bytes:
        return self.tbs()[len(_CONTEXT) :] + self.signature

    @classmethod
    def parse(cls, data: bytes) -> "DomainCertificate":
        if len(data) < 1:
            raise DomainCertError("empty domain certificate")
        name_size = data[0]
        fixed = 1 + name_size + 32 + 4 + ed25519.SIGNATURE_SIZE
        if len(data) < fixed:
            raise DomainCertError(f"domain certificate needs {fixed} bytes")
        offset = 1
        try:
            name = data[offset : offset + name_size].decode()
        except UnicodeDecodeError as exc:
            raise DomainCertError("certificate name is not valid UTF-8") from exc
        offset += name_size
        sig_public = data[offset : offset + 32]
        offset += 32
        (exp_time,) = struct.unpack_from(">I", data, offset)
        offset += 4
        signature = data[offset : offset + ed25519.SIGNATURE_SIZE]
        return cls(name, sig_public, exp_time, signature)


class WebCa:
    """A certificate authority for domain names (a Let's Encrypt stand-in)."""

    def __init__(self, rng: Rng | None = None) -> None:
        self._keys = SigningKeyPair.generate(rng)
        self.issued = 0

    @property
    def public_key(self) -> bytes:
        return self._keys.public

    def issue(
        self, name: str, sig_public: bytes, *, exp_time: int = 2**32 - 1
    ) -> DomainCertificate:
        unsigned = DomainCertificate(name, sig_public, exp_time)
        self.issued += 1
        return DomainCertificate(
            name, sig_public, exp_time, self._keys.sign(unsigned.tbs())
        )
