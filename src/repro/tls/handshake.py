"""Authentication-only handshake, channel-bound to the APNA session.

The flow (one round trip, riding inside the already-encrypted session):

1. Client sends an :class:`AuthRequest` — the name it expects plus a
   fresh nonce.
2. Server answers with an :class:`Attestation` — its domain certificate,
   its own nonce and an Ed25519 signature over
   ``(channel binding, both nonces, name)``.
3. Client recomputes the channel binding *from its own session* and
   verifies the certificate chain and signature.

There is no key exchange: the session key established at connection
time (Section IV-D1) already encrypts everything.  The channel binding —
an HKDF export of that session key — is what makes the attestation
non-relayable: a man in the middle necessarily terminates two different
sessions with two different keys, so an attestation signed over one
binding never verifies against the other.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.session import Session
from ..crypto import ed25519
from ..crypto.kdf import hkdf
from ..crypto.rng import Rng, SystemRng
from .ca import DomainCertError, DomainCertificate

BINDING_SIZE = 32
NONCE_SIZE = 16

_EXPORT_CONTEXT = b"apna-tls-exporter-v1:"
_SIGN_CONTEXT = b"apna-tls-attest-v1:"


class TlsAuthError(Exception):
    """Server authentication failed."""


def channel_binding(session: Session, label: bytes = b"server-auth") -> bytes:
    """Export keying material bound to this session (RFC 5705-style).

    Both endpoints of one session derive the same value; endpoints of
    *different* sessions (e.g. the two legs of a MitM) cannot.
    """
    return hkdf(session.key, info=_EXPORT_CONTEXT + label, length=BINDING_SIZE)


@dataclass(frozen=True)
class AuthRequest:
    """Client's opening message: expected name plus a fresh nonce."""

    server_name: str
    client_nonce: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.client_nonce) != NONCE_SIZE:
            raise TlsAuthError(f"client nonce must be {NONCE_SIZE} bytes")
        if not 1 <= len(self.server_name.encode()) <= 255:
            raise TlsAuthError("server name must encode to 1..255 bytes")

    @classmethod
    def create(cls, server_name: str, rng: Rng | None = None) -> "AuthRequest":
        rng = rng or SystemRng()
        return cls(server_name, rng.read(NONCE_SIZE))

    def pack(self) -> bytes:
        encoded = self.server_name.encode()
        return bytes([len(encoded)]) + encoded + self.client_nonce

    @classmethod
    def parse(cls, data: bytes) -> "AuthRequest":
        if len(data) < 1:
            raise TlsAuthError("empty auth request")
        name_size = data[0]
        if len(data) < 1 + name_size + NONCE_SIZE:
            raise TlsAuthError("auth request truncated")
        try:
            name = data[1 : 1 + name_size].decode()
        except UnicodeDecodeError as exc:
            raise TlsAuthError("server name is not valid UTF-8") from exc
        nonce = data[1 + name_size : 1 + name_size + NONCE_SIZE]
        return cls(name, nonce)


@dataclass(frozen=True)
class Attestation:
    """Server's reply: certificate, nonce, channel-bound signature."""

    cert: DomainCertificate
    server_nonce: bytes = field(repr=False)
    signature: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.server_nonce) != NONCE_SIZE:
            raise TlsAuthError(f"server nonce must be {NONCE_SIZE} bytes")
        if len(self.signature) != ed25519.SIGNATURE_SIZE:
            raise TlsAuthError("signature must be 64 bytes")

    def pack(self) -> bytes:
        cert_bytes = self.cert.pack()
        return (
            struct.pack(">H", len(cert_bytes))
            + cert_bytes
            + self.server_nonce
            + self.signature
        )

    @classmethod
    def parse(cls, data: bytes) -> "Attestation":
        if len(data) < 2:
            raise TlsAuthError("empty attestation")
        (cert_size,) = struct.unpack_from(">H", data)
        needed = 2 + cert_size + NONCE_SIZE + ed25519.SIGNATURE_SIZE
        if len(data) < needed:
            raise TlsAuthError("attestation truncated")
        try:
            cert = DomainCertificate.parse(data[2 : 2 + cert_size])
        except DomainCertError as exc:
            raise TlsAuthError(f"bad certificate in attestation: {exc}") from exc
        offset = 2 + cert_size
        nonce = data[offset : offset + NONCE_SIZE]
        signature = data[offset + NONCE_SIZE : needed]
        return cls(cert, nonce, signature)


def _signed_bytes(
    binding: bytes, request: AuthRequest, server_nonce: bytes, name: str
) -> bytes:
    encoded = name.encode()
    return (
        _SIGN_CONTEXT
        + binding
        + request.client_nonce
        + server_nonce
        + bytes([len(encoded)])
        + encoded
    )


def attest(
    session: Session,
    request: AuthRequest,
    cert: DomainCertificate,
    domain_signer,
    rng: Rng | None = None,
) -> Attestation:
    """Server side: answer an auth request over ``session``.

    ``domain_signer`` holds the private key matching ``cert``
    (a :class:`repro.core.keys.SigningKeyPair`).
    """
    rng = rng or SystemRng()
    server_nonce = rng.read(NONCE_SIZE)
    binding = channel_binding(session)
    signature = domain_signer.sign(
        _signed_bytes(binding, request, server_nonce, cert.name)
    )
    return Attestation(cert, server_nonce, signature)


def verify_attestation(
    session: Session,
    request: AuthRequest,
    attestation: Attestation,
    ca_public: bytes,
    *,
    now: float | None = None,
) -> None:
    """Client side: verify the server's attestation against *our* session.

    Raises :class:`TlsAuthError` on any failure: name mismatch, bad or
    expired certificate, or a signature that does not cover the channel
    binding of the client's own session (the MitM case).
    """
    if attestation.cert.name != request.server_name:
        raise TlsAuthError(
            f"certificate names {attestation.cert.name!r}, "
            f"expected {request.server_name!r}"
        )
    try:
        attestation.cert.verify(ca_public, now=now)
    except DomainCertError as exc:
        raise TlsAuthError(str(exc)) from exc
    binding = channel_binding(session)
    message = _signed_bytes(
        binding, request, attestation.server_nonce, attestation.cert.name
    )
    if not ed25519.verify(attestation.cert.sig_public, message, attestation.signature):
        raise TlsAuthError(
            "attestation signature invalid for this session's channel binding"
        )
