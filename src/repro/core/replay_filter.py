"""In-network replay detection (paper Section VIII-D, listed as future work).

The paper adds a per-packet nonce to the APNA header so the *destination
host* can discard duplicates, and notes that "ideally replayed packets
should be filtered near the replay location, but this requires routers in
the network to perform replay detection.  Designing a practical
in-network replay detection mechanism that does not affect routers'
forwarding performance is not trivial; it is our future work."

This module is that future work, built the way line-rate middleboxes do
it: a pair of rotating Bloom filters keyed on ``(source EphID, nonce)``.

* A Bloom filter gives O(hashes) inserts/queries over a fixed bit array —
  no per-flow state, no allocation on the data path.
* Two generations rotate every ``window`` seconds: lookups consult both,
  inserts go to the current one.  A packet is therefore remembered for at
  least one and at most two windows, bounding both memory *and* the
  replay horizon (a nonce replayed after two windows would pass the
  filter, so the window is chosen at least as long as the EphID
  lifetime — after which the border router's expiry check kills the
  packet anyway).
* False positives drop fresh packets; the rate is engineered by sizing
  ``bits`` for the expected packets-per-window and checked by
  :meth:`BloomFilter.fp_probability`.
"""

from __future__ import annotations

import hashlib
import math
import struct


class BloomFilter:
    """A fixed-size Bloom filter over byte strings."""

    def __init__(self, bits: int, hashes: int = 4) -> None:
        if bits <= 0 or bits & (bits - 1):
            raise ValueError("bits must be a positive power of two")
        if not 1 <= hashes <= 16:
            raise ValueError("hashes must be in 1..16")
        self.bits = bits
        self.hashes = hashes
        self._mask = bits - 1
        self._array = bytearray(bits // 8 or 1)
        self.inserted = 0

    def _indexes(self, item: bytes) -> list[int]:
        digest = hashlib.sha256(item).digest()
        return [
            struct.unpack_from(">I", digest, 4 * i)[0] & self._mask
            for i in range(self.hashes)
        ]

    def add(self, item: bytes) -> None:
        for index in self._indexes(item):
            self._array[index >> 3] |= 1 << (index & 7)
        self.inserted += 1

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._array[index >> 3] & (1 << (index & 7))
            for index in self._indexes(item)
        )

    def check_and_add(self, item: bytes) -> bool:
        """True iff ``item`` was (probably) already present; inserts it."""
        indexes = self._indexes(item)
        present = all(
            self._array[index >> 3] & (1 << (index & 7)) for index in indexes
        )
        if not present:
            for index in indexes:
                self._array[index >> 3] |= 1 << (index & 7)
            self.inserted += 1
        return present

    def clear(self) -> None:
        self._array = bytearray(len(self._array))
        self.inserted = 0

    @property
    def memory_bytes(self) -> int:
        return len(self._array)

    def fp_probability(self, items: int | None = None) -> float:
        """Expected false-positive rate after ``items`` inserts.

        Classic approximation (1 - e^(-kn/m))^k; defaults to the number
        of items actually inserted.
        """
        n = self.inserted if items is None else items
        if n == 0:
            return 0.0
        k, m = self.hashes, self.bits
        return (1.0 - math.exp(-k * n / m)) ** k


class RotatingReplayFilter:
    """Two-generation rotating Bloom filter for (EphID, nonce) pairs.

    Designed to sit on a border router's pipeline: ``observe`` performs
    one membership test over both generations plus (for fresh packets)
    one insert, all constant-time in the packet count.
    """

    def __init__(
        self,
        *,
        window: float,
        bits_per_generation: int = 1 << 20,
        hashes: int = 4,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._current = BloomFilter(bits_per_generation, hashes)
        self._previous = BloomFilter(bits_per_generation, hashes)
        #: Time of the last rotation; ``None`` until the first packet
        #: starts the window clock (so a deployment whose clock is wall
        #: time does not count a spurious rotation on its first packet).
        self._rotated_at: float | None = None
        self.replays = 0
        self.passed = 0
        self.rotations = 0

    @staticmethod
    def _key(ephid: bytes, nonce: int) -> bytes:
        return ephid + struct.pack(">Q", nonce)

    def _maybe_rotate(self, now: float) -> None:
        if self._rotated_at is None:
            self._rotated_at = now
            return
        elapsed = now - self._rotated_at
        if elapsed < self.window:
            return
        if elapsed >= 2 * self.window:
            # Idle gap spanning both generations: every remembered entry
            # is older than one window (inserts after the last rotation
            # would themselves have rotated), so both generations are
            # past the documented replay horizon.  A single swap here
            # would leave arbitrarily old nonces in the previous
            # generation and wrongly drop fresh traffic as replays.
            self._current.clear()
            self._previous.clear()
        else:
            self._previous, self._current = self._current, self._previous
            self._current.clear()
        self._rotated_at = now
        self.rotations += 1

    def observe(self, ephid: bytes, nonce: int, now: float) -> bool:
        """Record one packet.  True = fresh (forward), False = replay (drop)."""
        self._maybe_rotate(now)
        key = self._key(ephid, nonce)
        if key in self._previous:
            self.replays += 1
            return False
        if self._current.check_and_add(key):
            self.replays += 1
            return False
        self.passed += 1
        return True

    @property
    def memory_bytes(self) -> int:
        return self._current.memory_bytes + self._previous.memory_bytes

    def fp_probability(self) -> float:
        """Worst-case false-positive rate across the two generations."""
        return max(
            self._current.fp_probability(), self._previous.fp_probability()
        )
