"""The EphID Management Service (MS): issuance per paper Fig. 3.

The host sends ``E_kHA(K+EphID)`` addressed to the MS EphID.  The MS
statelessly recovers the requesting HID from the source (control) EphID,
checks expiry / revocation / decryptability, generates a fresh EphID and
returns the sealed short-lived certificate.

The request/reply sealing is what protects sender-flow unlinkability:
without it, an observer inside the AS could link the K+EphID seen in a
later connection-establishment packet back to the requesting control
EphID (Section IV-C's attack discussion).
"""

from __future__ import annotations

from typing import Callable

from ..crypto.aead import EtmScheme
from ..crypto.rng import Rng, SystemRng
from .certs import EphIdCertificate
from .config import ApnaConfig
from .ephid import EphIdCodec, IvAllocator
from .errors import EphIdError, IssuanceError
from .hostdb import HostDatabase
from .keys import AsKeyMaterial
from .messages import EphIdReply, EphIdRequest


class ManagementService:
    """One AS's EphID Management Service."""

    def __init__(
        self,
        aid: int,
        keys: AsKeyMaterial,
        codec: EphIdCodec,
        ivs: IvAllocator,
        hostdb: HostDatabase,
        clock: Callable[[], float],
        config: ApnaConfig,
        rng: Rng | None = None,
    ) -> None:
        self.aid = aid
        self._keys = keys
        self._codec = codec
        self._ivs = ivs
        self._hostdb = hostdb
        self._clock = clock
        self._config = config
        self._rng = rng or SystemRng()
        # The accountability agent's EphID, embedded in every certificate
        # so peers know where to send shutoff requests.  Set by the AS
        # assembly once the AA identity exists.
        self.aa_ephid: bytes = bytes(16)
        self.issued = 0
        self.rejected = 0
        self._scheme_cache: dict[int, EtmScheme] = {}

    def _scheme_for(self, hid: int, control_key: bytes) -> EtmScheme:
        scheme = self._scheme_cache.get(hid)
        if scheme is None:
            scheme = EtmScheme(control_key)
            self._scheme_cache[hid] = scheme
        return scheme

    # -- Fig. 3, full sealed path --

    def handle_request(self, src_ephid: bytes, sealed_request: bytes) -> bytes:
        """Process a sealed EphID request; returns the sealed reply.

        ``sealed_request`` is ``nonce(12) || EtM(E_kHA_ctrl, EphIdRequest)``.
        Raises :class:`IssuanceError` if any Fig. 3 check fails.
        """
        # 1) (HID, T1) = D_kA(EphID_ctrl); abort on forgery.
        try:
            info = self._codec.open(src_ephid)
        except EphIdError as exc:
            self.rejected += 1
            raise IssuanceError("source EphID is not valid") from exc
        # 2) abort if expired.
        if info.exp_time < self._clock():
            self.rejected += 1
            raise IssuanceError("source EphID has expired")
        # 3) abort if the HID is unknown or revoked.
        if not self._hostdb.is_valid(info.hid):
            self.rejected += 1
            raise IssuanceError(f"HID {info.hid} is not valid")
        kha = self._hostdb.get(info.hid).keys

        # 4) abort unless the message decrypts under kHA.
        if len(sealed_request) < 12:
            self.rejected += 1
            raise IssuanceError("request too short")
        nonce, body = sealed_request[:12], sealed_request[12:]
        scheme = self._scheme_for(info.hid, kha.control)
        try:
            plain = scheme.open(nonce, body, b"ephid-request")
        except ValueError as exc:
            self.rejected += 1
            raise IssuanceError("request failed authentication") from exc
        request = EphIdRequest.parse(plain)

        cert = self.issue(info.hid, request)
        reply_nonce = self._rng.read(12)
        sealed_reply = scheme.seal(reply_nonce, EphIdReply(cert).pack(), b"ephid-reply")
        return reply_nonce + sealed_reply

    # -- issuance core (also used directly by the AS assembly) --

    def issue(self, hid: int, request: EphIdRequest) -> EphIdCertificate:
        """Generate an EphID + certificate for an already-validated host."""
        lifetime = self._config.clamp_lifetime(request.lifetime or None)
        exp_time = int(self._clock() + lifetime)
        ephid = self._codec.seal(hid=hid, exp_time=exp_time, iv=self._ivs.next_iv_for(hid))
        cert = EphIdCertificate.issue(
            self._keys.signing,
            ephid=ephid,
            exp_time=exp_time,
            dh_public=request.dh_public,
            sig_public=request.sig_public,
            aid=self.aid,
            aa_ephid=self.aa_ephid,
            flags=request.flags,
        )
        record = self._hostdb.get(hid)
        record.ephids_issued += 1
        self.issued += 1
        return cert
