"""The Accountability Agent (AA): the shutoff protocol of paper Fig. 5.

A complaining destination host sends the unwanted packet, its signature
over that packet, and its own EphID certificate.  The agent checks, in
order:

1. the certificate is genuine (signed by the requester's AS, via RPKI)
   and matches the packet's destination EphID — only the actual recipient
   may request a shutoff;
2. the signature proves ownership of that EphID;
3. the offending packet's source EphID decrypts to a live local HID and
   the packet's MAC verifies under that host's kHA — proof our customer
   really sent it (no rogue-packet shutoffs);
4. only then is the source EphID revoked and pushed to border routers
   with ``MAC_kAS``.

The agent "does not examine the intent of the source" — any provably
received packet suffices.
"""

from __future__ import annotations

from typing import Callable

from ..crypto import ed25519
from ..crypto.cmac import Cmac
from ..wire.apna import ApnaPacket, HEADER_SIZE
from .certs import EphIdCertificate
from .config import ApnaConfig
from .ephid import EphIdCodec
from .errors import CertError, EphIdError
from .hostdb import HostDatabase
from .infrabus import InfraBus
from .messages import ShutoffRequest, ShutoffResponse
from .revocation import RevocationPolicy
from .rpki import RpkiDirectory


class AccountabilityAgent:
    """One AS's accountability agent."""

    def __init__(
        self,
        aid: int,
        codec: EphIdCodec,
        hostdb: HostDatabase,
        bus: InfraBus,
        rpki: RpkiDirectory,
        clock: Callable[[], float],
        config: ApnaConfig,
    ) -> None:
        self.aid = aid
        self._codec = codec
        self._hostdb = hostdb
        self._bus = bus
        self._rpki = rpki
        self._clock = clock
        self._config = config
        self.policy = RevocationPolicy(
            config.revocation_threshold, on_hid_revoked=self._revoke_hid
        )
        self.accepted = 0
        self.rejected: dict[str, int] = {}

    def _reject(self, reason: str) -> ShutoffResponse:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return ShutoffResponse(accepted=False, reason=reason)

    def _revoke_hid(self, hid: int) -> None:
        """Escalation of Section VIII-G2: too many revocations kill the HID."""
        self._hostdb.revoke_hid(hid)

    def handle_shutoff(self, request: ShutoffRequest, *, with_nonce: bool = False) -> ShutoffResponse:
        """Validate a shutoff request and revoke the offending EphID."""
        # Parse the presented packet.
        if len(request.packet) < HEADER_SIZE:
            return self._reject("packet-too-short")
        try:
            packet = ApnaPacket.from_wire(request.packet, with_nonce=with_nonce)
        except ValueError:
            return self._reject("packet-unparseable")
        header = packet.header
        if header.src_aid != self.aid:
            return self._reject("not-our-source")

        # 1) The requester must be the packet's recipient: the certificate
        #    must cover exactly the packet's destination EphID...
        if request.cert.ephid != header.dst_ephid:
            return self._reject("requester-not-recipient")
        if request.cert.aid != header.dst_aid:
            return self._reject("cert-aid-mismatch")
        #    ...and be signed by the destination AS (RPKI lookup).
        try:
            dst_as_key = self._rpki.signing_key_of(request.cert.aid)
            request.cert.verify(dst_as_key, now=self._clock())
        except CertError:
            return self._reject("cert-invalid")

        # 2) The signature proves ownership of the destination EphID.
        if not ed25519.verify(
            request.cert.sig_public, request.signed_bytes(), request.signature
        ):
            return self._reject("signature-invalid")

        # 3) Our customer really sent this packet.
        info, reason = self._customer_check(packet)
        if info is None:
            return self._reject(reason)

        # 4) Revoke and push to border routers (MAC_kAS authenticated).
        return self._revoke_source(header.src_ephid, info)

    def _customer_check(self, packet: ApnaPacket):
        """Fig. 5 core check: prove a local customer really sent ``packet``.

        Returns ``(EphIdInfo, None)`` on success, ``(None, reason)`` on
        failure.  Shared with the on-path extension of Section VIII-C
        (:class:`repro.pathval.shutoff_ext.ExtendedAccountabilityAgent`).
        """
        header = packet.header
        try:
            info = self._codec.open(header.src_ephid)
        except EphIdError:
            return None, "src-ephid-forged"
        if info.exp_time < self._clock():
            return None, "src-ephid-expired"
        if not self._hostdb.is_valid(info.hid):
            return None, "src-hid-invalid"
        kha = self._hostdb.get(info.hid).keys
        expected = Cmac(kha.packet_mac).tag(
            packet.mac_input(), self._config.packet_mac_size
        )
        if expected != header.mac:
            return None, "packet-mac-invalid"
        return info, None

    def _revoke_source(self, src_ephid: bytes, info) -> ShutoffResponse:
        """Fig. 5 final step: revoke the EphID and push to border routers."""
        self._bus.publish_revocation(src_ephid, info.exp_time)
        record = self._hostdb.get(info.hid)
        record.ephids_revoked += 1
        self.policy.record(info.hid)
        self.accepted += 1
        return ShutoffResponse(accepted=True, reason="revoked")
