"""End-to-end sessions: connection establishment and data encryption.

Section IV-D1: two hosts verify each other's EphID certificates and run
an ECDH over the EphID key pairs, yielding the session key k_EaEb.  Every
data packet is then AEAD-encrypted under that key.

Perfect forward secrecy comes for free: the session key derives *only*
from the ephemeral per-EphID keys, never from K-AS or K-H, so
compromising long-term keys reveals nothing about past sessions
(Section VI-B).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..crypto.aead import new_aead
from ..crypto.kdf import hkdf
from .certs import EPHID_CERT_SIZE, EphIdCertificate
from .errors import ApnaError, CertError
from .keys import EphIdKeyPair
from .replay import ReplayWindow


class SessionError(ApnaError):
    """Session-layer failure (bad nonce, replay, decryption failure)."""


@dataclass(frozen=True)
class OwnedEphId:
    """An EphID a host owns: the certificate plus the private key pair."""

    cert: EphIdCertificate
    keypair: EphIdKeyPair

    @property
    def ephid(self) -> bytes:
        return self.cert.ephid

    @property
    def exp_time(self) -> int:
        return self.cert.exp_time

    @property
    def receive_only(self) -> bool:
        return self.cert.receive_only

    def expired(self, now: float) -> bool:
        return self.cert.exp_time < now


def derive_session_key(
    local: EphIdKeyPair, peer_dh_public: bytes, local_ephid: bytes, peer_ephid: bytes
) -> bytes:
    """k_EaEb: ECDH over the EphID keys, bound to the EphID pair.

    The context is order-independent so both sides derive the same key.
    """
    shared = local.exchange.shared_secret(peer_dh_public)
    first, second = sorted((local_ephid, peer_ephid))
    return hkdf(shared, info=b"apna-session-v1:" + first + second, length=32)


class Session:
    """A unidirectional-nonce, bidirectional-data encrypted session.

    The nonce layout is ``direction(1) || seq(8) || 0^3``; direction is
    derived deterministically from the EphID ordering so no negotiation
    is needed.  AAD binds ciphertexts to the EphID pair, preventing
    cross-session splicing.
    """

    def __init__(
        self,
        local: OwnedEphId,
        peer_cert: EphIdCertificate,
        *,
        scheme: str = "etm",
        replay_window: int = 1024,
    ) -> None:
        self.local = local
        self.peer_cert = peer_cert
        self.key = derive_session_key(
            local.keypair, peer_cert.dh_public, local.ephid, peer_cert.ephid
        )
        self._aead = new_aead(self.key, scheme)
        self._send_dir = 1 if local.ephid < peer_cert.ephid else 2
        self._recv_dir = 3 - self._send_dir
        self._send_seq = 0
        self._replay = ReplayWindow(replay_window)
        self._aad = b"apna-data:" + b"".join(sorted((local.ephid, peer_cert.ephid)))
        self.sent = 0
        self.received = 0

    @staticmethod
    def _nonce(direction: int, seq: int) -> bytes:
        return struct.pack(">BQ", direction, seq) + bytes(3)

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt one payload; returns ``seq(8) || ciphertext||tag``."""
        seq = self._send_seq
        self._send_seq += 1
        sealed = self._aead.seal(self._nonce(self._send_dir, seq), plaintext, self._aad)
        self.sent += 1
        return struct.pack(">Q", seq) + sealed

    def open(self, payload: bytes) -> bytes:
        """Authenticate and decrypt a payload from the peer."""
        if len(payload) < 8:
            raise SessionError("payload too short for sequence number")
        (seq,) = struct.unpack_from(">Q", payload)
        if not self._replay.check(seq):
            raise SessionError(f"replayed or stale sequence number {seq}")
        try:
            plaintext = self._aead.open(
                self._nonce(self._recv_dir, seq), payload[8:], self._aad
            )
        except ValueError as exc:
            raise SessionError("payload failed authentication") from exc
        self.received += 1
        return plaintext


# ---------------------------------------------------------------------------
# Connection-establishment messages (Sections IV-D1 and VII-A)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConnectionRequest:
    """First packet of a connection: the initiator's certificate.

    ``early_data`` is the optional 0-RTT payload of Section VII-C: the
    initiator may encrypt data under the session key on the very first
    packet ("the host encrypts its data after computing the shared key").
    """

    cert: EphIdCertificate
    early_data: bytes = field(default=b"", repr=False)

    def pack(self) -> bytes:
        return self.cert.pack() + struct.pack(">H", len(self.early_data)) + self.early_data

    @classmethod
    def parse(cls, data: bytes) -> "ConnectionRequest":
        if len(data) < EPHID_CERT_SIZE + 2:
            raise CertError("connection request truncated")
        cert = EphIdCertificate.parse(data[:EPHID_CERT_SIZE])
        (size,) = struct.unpack_from(">H", data, EPHID_CERT_SIZE)
        start = EPHID_CERT_SIZE + 2
        early = data[start : start + size]
        if len(early) != size:
            raise CertError("connection request early data truncated")
        return cls(cert, early)


@dataclass(frozen=True)
class ConnectionAccept:
    """Server response for the receive-only flow of Section VII-A.

    When a client connects to a receive-only EphID (from DNS), the server
    answers with the certificate of the *serving* EphID it will actually
    use, plus optional data encrypted under the serving session key.
    """

    serving_cert: EphIdCertificate
    data: bytes = field(default=b"", repr=False)

    def pack(self) -> bytes:
        return self.serving_cert.pack() + struct.pack(">H", len(self.data)) + self.data

    @classmethod
    def parse(cls, data: bytes) -> "ConnectionAccept":
        if len(data) < EPHID_CERT_SIZE + 2:
            raise CertError("connection accept truncated")
        cert = EphIdCertificate.parse(data[:EPHID_CERT_SIZE])
        (size,) = struct.unpack_from(">H", data, EPHID_CERT_SIZE)
        start = EPHID_CERT_SIZE + 2
        body = data[start : start + size]
        if len(body) != size:
            raise CertError("connection accept data truncated")
        return cls(cert, body)
