"""Revoked-EphID management (paper Sections IV-E and VIII-G2).

Border routers keep a ``revoked_ids`` list consulted on every packet.
Section VIII-G2 describes the two control mechanisms implemented here:

* expired entries are pruned (packets with expired EphIDs are dropped by
  the expiry check anyway, so keeping them is pure overhead), and
* a host that accumulates too many revocations has its HID revoked
  outright, invalidating all of its EphIDs at once.
"""

from __future__ import annotations

import heapq
from typing import Callable


class RevocationList:
    """The ``revoked_ids`` set with expiry-based pruning.

    ``add`` and ``contains`` are O(log n) / O(1); ``prune`` pops every
    entry whose EphID has expired.  With pruning disabled the list grows
    without bound — exactly the failure mode E6 quantifies.
    """

    def __init__(self, *, auto_prune: bool = True) -> None:
        self._revoked: set[bytes] = set()
        self._expiry_heap: list[tuple[float, bytes]] = []
        self.auto_prune = auto_prune
        self.total_added = 0
        #: Optional observer called with ``(ephid, exp_time)`` after each
        #: *new* entry — how the sharded data plane replicates revokes to
        #: its worker processes before their next burst.
        self.on_add: Callable[[bytes, float], None] | None = None

    def add(self, ephid: bytes, exp_time: float) -> None:
        if ephid in self._revoked:
            return
        self._revoked.add(ephid)
        heapq.heappush(self._expiry_heap, (exp_time, ephid))
        self.total_added += 1
        if self.on_add is not None:
            self.on_add(ephid, exp_time)

    def contains(self, ephid: bytes) -> bool:
        return ephid in self._revoked

    __contains__ = contains

    def prune(self, now: float) -> int:
        """Drop entries whose EphIDs have expired; returns how many."""
        pruned = 0
        while self._expiry_heap and self._expiry_heap[0][0] < now:
            _, ephid = heapq.heappop(self._expiry_heap)
            self._revoked.discard(ephid)
            pruned += 1
        return pruned

    def maybe_prune(self, now: float) -> int:
        return self.prune(now) if self.auto_prune else 0

    def snapshot(self) -> list[tuple[bytes, float]]:
        """The live ``(ephid, exp_time)`` entries (for seeding replicas)."""
        return [
            (ephid, exp_time)
            for exp_time, ephid in self._expiry_heap
            if ephid in self._revoked
        ]

    def __len__(self) -> int:
        return len(self._revoked)


class RevocationPolicy:
    """Per-host revocation accounting with an HID-revocation threshold.

    Mirrors the paper's Copyright-Alert-System analogy: after
    ``threshold`` preemptive revocations the AS "views it as a sign of
    malicious activity", revokes the HID and notifies via ``on_hid_revoked``.
    """

    def __init__(
        self,
        threshold: int,
        on_hid_revoked: Callable[[int], None] | None = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._counts: dict[int, int] = {}
        self._on_hid_revoked = on_hid_revoked
        self.hids_revoked: list[int] = []

    def record(self, hid: int) -> bool:
        """Count one revocation against ``hid``; True if the HID tripped."""
        count = self._counts.get(hid, 0) + 1
        self._counts[hid] = count
        if count == self.threshold:
            self.hids_revoked.append(hid)
            if self._on_hid_revoked is not None:
                self._on_hid_revoked(hid)
            return True
        return False

    def count(self, hid: int) -> int:
        return self._counts.get(hid, 0)

    def reset(self, hid: int) -> None:
        """Clear the counter (e.g., after the host re-bootstraps)."""
        self._counts.pop(hid, None)
