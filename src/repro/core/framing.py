"""Payload framing for APNA packets.

The paper specifies the network header (Fig. 7) but not how a receiving
host distinguishes connection-establishment packets from data or control
traffic.  This reproduction prefixes every APNA payload with a one-byte
payload type; everything after the byte is type-specific (and encrypted
whenever the paper requires it).
"""

from __future__ import annotations

from .errors import ApnaError

PT_DATA = 0x00  # session-sealed transport segment
PT_CONN_REQUEST = 0x01  # ConnectionRequest (cert + sealed 0-RTT data)
PT_CONN_ACCEPT = 0x02  # ConnectionAccept (serving cert + sealed data)
PT_CONTROL_REQ = 0x03  # sealed EphID request (host -> MS)
PT_CONTROL_REP = 0x04  # sealed EphID reply (MS -> host)
PT_SHUTOFF = 0x05  # ShutoffRequest (recipient -> AA)
PT_SHUTOFF_RESP = 0x06  # ShutoffResponse (AA -> recipient)
PT_ICMP = 0x07  # IcmpMessage (plaintext, per Section VIII-B)
PT_DATA_OTA = 0x08  # one-time-tagged data for per-packet EphIDs (VIII-A)

_NAMES = {
    PT_DATA: "data",
    PT_CONN_REQUEST: "conn-request",
    PT_CONN_ACCEPT: "conn-accept",
    PT_CONTROL_REQ: "control-request",
    PT_CONTROL_REP: "control-reply",
    PT_SHUTOFF: "shutoff",
    PT_SHUTOFF_RESP: "shutoff-response",
    PT_ICMP: "icmp",
    PT_DATA_OTA: "data-ota",
}


def frame(payload_type: int, body: bytes) -> bytes:
    """Prefix ``body`` with its payload type."""
    if payload_type not in _NAMES:
        raise ApnaError(f"unknown payload type {payload_type}")
    return bytes([payload_type]) + body


def unframe(payload: bytes) -> tuple[int, bytes]:
    """Split a payload into (type, body)."""
    if not payload:
        raise ApnaError("empty APNA payload")
    payload_type = payload[0]
    if payload_type not in _NAMES:
        raise ApnaError(f"unknown payload type {payload_type}")
    return payload_type, payload[1:]


def type_name(payload_type: int) -> str:
    return _NAMES.get(payload_type, f"pt-{payload_type}")
