"""Encrypted ICMP (paper Section VIII-B, listed as future work).

"Unlike data communication between two hosts, the payload of ICMP
messages are not encrypted.  Encrypting the payload is difficult because
the ICMP message sender cannot easily obtain the short-lived certificate
of the source EphID in the original message. [...] One naive approach is
to store short-lived certificates of all flows that the sender sees;
however, this approach incurs a lot of storage overhead.  As our future
work, we are exploring ways to encrypt ICMP messages without imposing
excessive overhead."

This module implements that exploration with bounded overhead:

* Routers opportunistically cache EphID certificates they can see in the
  clear anyway — connection-establishment packets carry them unencrypted
  (Fig. 3 / Section IV-D1) — in a small LRU with TTL equal to the
  certificate lifetime (:class:`CertificateCache`).  The storage is
  bounded by the LRU capacity, not by the number of flows.
* When an ICMP message must be generated for a packet whose source EphID
  certificate is cached, the sender derives the same ECDH key a data
  session would use (its own EphID key pair against the cached
  certificate) and seals the ICMP payload
  (:class:`EncryptedIcmpCodec.seal`).  The sender's certificate rides
  along so the receiver can derive the key.
* If the certificate is not cached, the sender falls back to the paper's
  default plaintext ICMP — the mechanism is strictly opportunistic.
"""

from __future__ import annotations

import struct
from collections import OrderedDict

from ..crypto.aead import new_aead
from ..crypto.rng import Rng, SystemRng
from ..wire.icmp import IcmpMessage
from . import framing
from .certs import EPHID_CERT_SIZE, EphIdCertificate
from .errors import ApnaError, CertError
from .session import ConnectionAccept, ConnectionRequest, OwnedEphId, derive_session_key

MODE_PLAINTEXT = 0
MODE_ENCRYPTED = 1

_NONCE_SIZE = 12
_AAD = b"apna-icmp-enc-v1"


class IcmpCryptoError(ApnaError):
    """Failure to seal or open an encrypted ICMP message."""


class CertificateCache:
    """A bounded LRU of EphID certificates observed on the wire."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[bytes, EphIdCertificate] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, cert: EphIdCertificate) -> None:
        """Cache a certificate under its EphID (refreshes LRU position)."""
        key = cert.ephid
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = cert
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, ephid: bytes, now: float) -> EphIdCertificate | None:
        """The cached certificate for ``ephid``, if present and unexpired."""
        cert = self._entries.get(ephid)
        if cert is None:
            self.misses += 1
            return None
        if cert.exp_time < now:
            del self._entries[ephid]
            self.misses += 1
            return None
        self._entries.move_to_end(ephid)
        self.hits += 1
        return cert

    def observe_payload(self, payload: bytes) -> int:
        """Harvest certificates from one APNA payload; returns how many.

        Only connection-establishment frames carry certificates in the
        clear, so this is cheap for ordinary (data) traffic: one byte of
        inspection.
        """
        try:
            payload_type, body = framing.unframe(payload)
        except ApnaError:
            return 0
        try:
            if payload_type == framing.PT_CONN_REQUEST:
                self.insert(ConnectionRequest.parse(body).cert)
                return 1
            if payload_type == framing.PT_CONN_ACCEPT:
                self.insert(ConnectionAccept.parse(body).serving_cert)
                return 1
        except CertError:
            return 0
        return 0


class EncryptedIcmpCodec:
    """Seals and opens ICMP payloads between one identity and its peers.

    The wire format is self-describing::

        mode (1 B) || plaintext ICMP                     (MODE_PLAINTEXT)
        mode (1 B) || sender cert || nonce || sealed ICMP (MODE_ENCRYPTED)
    """

    def __init__(
        self,
        owned: OwnedEphId,
        *,
        cache: CertificateCache | None = None,
        scheme: str = "etm",
        rng: Rng | None = None,
    ) -> None:
        self.owned = owned
        # `is not None` matters: an empty cache is falsy via __len__.
        self.cache = cache if cache is not None else CertificateCache()
        self._scheme = scheme
        self._rng = rng or SystemRng()
        self.sealed = 0
        self.plaintext_fallbacks = 0

    # -- sending --------------------------------------------------------

    def _key_with(self, peer_cert: EphIdCertificate) -> bytes:
        return derive_session_key(
            self.owned.keypair,
            peer_cert.dh_public,
            self.owned.ephid,
            peer_cert.ephid,
        )

    def seal(self, message: IcmpMessage, target_ephid: bytes, now: float) -> bytes:
        """Encrypt ``message`` for the owner of ``target_ephid`` if possible.

        Falls back to the paper's plaintext ICMP when the target's
        certificate is not in the cache.
        """
        cert = self.cache.get(target_ephid, now)
        if cert is None:
            self.plaintext_fallbacks += 1
            return bytes([MODE_PLAINTEXT]) + message.pack()
        aead = new_aead(self._key_with(cert), self._scheme)
        nonce = self._rng.read(_NONCE_SIZE)
        sealed = aead.seal(nonce, message.pack(), _AAD)
        self.sealed += 1
        return (
            bytes([MODE_ENCRYPTED]) + self.owned.cert.pack() + nonce + sealed
        )

    # -- receiving ------------------------------------------------------

    def open(self, data: bytes, *, as_public: bytes | None = None, now: float | None = None) -> tuple[IcmpMessage, bool]:
        """Decode an ICMP payload; returns ``(message, was_encrypted)``.

        ``as_public``/``now`` optionally verify the sender's certificate
        against its AS key (the receiver can also skip verification and
        treat the message as unauthenticated feedback, like classic ICMP).
        """
        if not data:
            raise IcmpCryptoError("empty ICMP payload")
        mode = data[0]
        body = data[1:]
        if mode == MODE_PLAINTEXT:
            return IcmpMessage.parse(body), False
        if mode != MODE_ENCRYPTED:
            raise IcmpCryptoError(f"unknown ICMP mode {mode}")
        if len(body) < EPHID_CERT_SIZE + _NONCE_SIZE:
            raise IcmpCryptoError("encrypted ICMP truncated")
        sender_cert = EphIdCertificate.parse(body[:EPHID_CERT_SIZE])
        if as_public is not None:
            sender_cert.verify(as_public, now=now)
        nonce = body[EPHID_CERT_SIZE : EPHID_CERT_SIZE + _NONCE_SIZE]
        sealed = body[EPHID_CERT_SIZE + _NONCE_SIZE :]
        aead = new_aead(self._key_with(sender_cert), self._scheme)
        try:
            plaintext = aead.open(nonce, sealed, _AAD)
        except ValueError as exc:
            raise IcmpCryptoError("encrypted ICMP failed authentication") from exc
        return IcmpMessage.parse(plaintext), True

    @property
    def encryption_rate(self) -> float:
        """Fraction of sent ICMP messages that were encrypted."""
        total = self.sealed + self.plaintext_fallbacks
        return self.sealed / total if total else 0.0
