"""AS assembly: RS + MS + BR + AA composed into a simulated AS node,
plus the host-side network adapter.

This module is the glue between the sans-IO protocol engines and the
discrete-event simulator: the :class:`BorderRouterNode` runs the Fig. 4
pipelines on real wire bytes (GRE/IPv4-encapsulated between ASes, per the
Section VII-D deployment), dispatches intra-AS traffic to hosts and to
the MS/AA service endpoints by HID, and emits ICMP errors for inbound
drops.  :class:`ApnaHostNode` runs a :class:`repro.core.host.HostStack`
behind an access link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..crypto.cmac import Cmac
from ..crypto.rng import Rng, SystemRng
from ..netsim import Network, Node
from ..wire import gre
from ..wire import icmp as icmp_wire
from ..wire.apna import ApnaHeader, ApnaPacket, Endpoint
from ..wire.transport import (
    PROTO_DATA,
    TransportHeader,
    build_segment,
    split_segment,
)
from . import framing
from .accountability import AccountabilityAgent
from .border_router import Action, BorderRouter, ICMP_CODES, Verdict
from .certs import EphIdCertificate, FLAG_CONTROL, FLAG_RECEIVE_ONLY
from .config import ApnaConfig, DEFAULT_CONFIG
from .ephid import EphIdCodec, IvAllocator
from .errors import ApnaError, IssuanceError, ShutoffError
from .granularity import GranularityPolicy, PerFlowPolicy
from .host import HostStack
from .hostdb import (
    HID_ACCOUNTABILITY,
    HID_DNS,
    HID_MANAGEMENT,
    HID_REGISTRY,
    HostRecord,
)
from .infrabus import InfraBus
from .keys import AsKeyMaterial, EphIdKeyPair, HostAsKeys
from .management import ManagementService
from .messages import ShutoffRequest, ShutoffResponse
from .registry import RegistryService
from .onetime import DemuxError, FlowTagger, TagDemuxer, pack_tagged, unpack_tagged
from .replay import ReplayWindow
from .replay_filter import RotatingReplayFilter
from .rpki import RpkiDirectory, TrustAnchor
from .session import ConnectionAccept, ConnectionRequest, OwnedEphId, Session, SessionError

HID_ROUTER = 5

#: Lifetime of AS service EphIDs (MS/AA/DNS/router identities).
SERVICE_EPHID_LIFETIME = 10 * 365 * 86_400.0


@dataclass
class ServiceIdentity:
    """An AS-internal service endpoint: HID, kHA, EphID and certificate."""

    hid: int
    keys: HostAsKeys
    owned: OwnedEphId
    _mac: Cmac

    def make_packet(
        self, aid: int, dst: Endpoint, payload: bytes, *, mac_size: int, nonce: int | None = None
    ) -> ApnaPacket:
        header = ApnaHeader(
            src_aid=aid,
            src_ephid=self.owned.ephid,
            dst_ephid=dst.ephid,
            dst_aid=dst.aid,
            nonce=nonce,
        )
        mac = self._mac.tag(header.mac_input(payload), mac_size)
        return ApnaPacket(header.with_mac(mac), payload)


class ApnaAutonomousSystem:
    """One APNA-deploying AS: services, border router and attached hosts."""

    def __init__(
        self,
        aid: int,
        network: Network,
        rpki: RpkiDirectory,
        anchor: TrustAnchor,
        *,
        config: ApnaConfig = DEFAULT_CONFIG,
        rng: Rng | None = None,
    ) -> None:
        self.aid = aid
        self.network = network
        self.rpki = rpki
        self.config = config
        self.rng = rng or SystemRng()
        clock = network.scheduler.clock()
        self.clock = clock

        self.keys = AsKeyMaterial.generate(self.rng)
        rpki.publish(anchor.certify(aid, self.keys))

        self.codec = EphIdCodec(self.keys.secret.ephid_enc, self.keys.secret.ephid_mac)
        #: HID -> shard ownership for the sharded data plane.  Fixed at
        #: construction (before any EphID is sealed) so every IV the AS
        #: ever issues is pinned to its owner shard; ``None`` for the
        #: single-process deployment.
        self.shard_plan = None
        if config.forwarding_shards >= 2:
            from ..sharding.plan import ShardPlan

            self.shard_plan = ShardPlan(
                config.forwarding_shards,
                block=config.shard_block,
                mode=config.shard_routing,
                key=self.keys.secret.shard_route,
            ).validate_routing()
        #: The live worker pool (see :meth:`start_shard_pool`).
        self.shard_pool = None
        self.ivs = IvAllocator(self.rng, plan=self.shard_plan)
        from ..state import make_host_database, make_revocation_list

        self.hostdb = make_host_database(config.state_backend)
        self.revocations = make_revocation_list(config.state_backend)
        self.bus = InfraBus(self.keys.secret)
        self.bus.subscribe_revocations(self.revocations)

        self.rs = RegistryService(
            aid, self.keys, self.codec, self.ivs, self.hostdb, self.bus, clock, config, self.rng
        )
        self.ms = ManagementService(
            aid, self.keys, self.codec, self.ivs, self.hostdb, clock, config, self.rng
        )
        self.aa = AccountabilityAgent(
            aid, self.codec, self.hostdb, self.bus, rpki, clock, config
        )
        replay_filter = None
        if config.in_network_replay_filter:
            replay_filter = RotatingReplayFilter(
                window=config.replay_filter_window,
                bits_per_generation=config.replay_filter_bits,
            )
        self.br = BorderRouter(
            aid,
            self.codec,
            self.hostdb,
            self.revocations,
            clock,
            packet_mac_size=config.packet_mac_size,
            replay_filter=replay_filter,
        )

        # Service identities (reserved HIDs).  The AA comes first so every
        # other certificate can point shutoff requests at its EphID.
        self.aa_identity = self._make_service_identity(
            HID_ACCOUNTABILITY, FLAG_CONTROL, aa_ephid=bytes(16)
        )
        aa_ephid = self.aa_identity.owned.ephid
        self.registry_identity = self._make_service_identity(
            HID_REGISTRY, FLAG_CONTROL, aa_ephid=aa_ephid
        )
        self.ms_identity = self._make_service_identity(
            HID_MANAGEMENT, FLAG_CONTROL, aa_ephid=aa_ephid
        )
        self.dns_identity = self._make_service_identity(
            HID_DNS, FLAG_CONTROL, aa_ephid=aa_ephid
        )
        self.router_identity = self._make_service_identity(
            HID_ROUTER, FLAG_CONTROL, aa_ephid=aa_ephid
        )
        self.ms.aa_ephid = aa_ephid
        self.rs.ms_cert = self.ms_identity.owned.cert
        self.rs.dns_cert = self.dns_identity.owned.cert

        # Simulation wiring.
        self.node = BorderRouterNode(self)
        network.add_node(self.node)
        self.host_nodes: dict[int, "ApnaHostNode"] = {}  # hid -> node
        self._host_node_names: set[str] = set()
        self._service_handlers: dict[int, Callable[[ApnaPacket], None]] = {
            HID_MANAGEMENT: self._handle_ms_packet,
            HID_ACCOUNTABILITY: self._handle_aa_packet,
        }
        self._next_subscriber = 1
        self._service_nonces = 0

    # -- construction helpers --

    def _make_service_identity(
        self, hid: int, flags: int = 0, *, aa_ephid: bytes = bytes(16)
    ) -> ServiceIdentity:
        keys = HostAsKeys(self.rng.read(16), self.rng.read(16))
        self.hostdb.register(HostRecord(hid=hid, keys=keys))
        keypair = EphIdKeyPair.generate(self.rng)
        exp_time = int(self.clock() + SERVICE_EPHID_LIFETIME)
        ephid = self.codec.seal(hid=hid, exp_time=exp_time, iv=self.ivs.next_iv_for(hid))
        cert = EphIdCertificate.issue(
            self.keys.signing,
            ephid=ephid,
            exp_time=exp_time,
            dh_public=keypair.exchange.public,
            sig_public=keypair.signing.public,
            aid=self.aid,
            aa_ephid=aa_ephid,
            flags=flags,
        )
        return ServiceIdentity(
            hid=hid,
            keys=keys,
            owned=OwnedEphId(cert=cert, keypair=keypair),
            _mac=Cmac(keys.packet_mac),
        )

    def register_service_handler(
        self, hid: int, handler: Callable[[ApnaPacket], None]
    ) -> None:
        """Attach an extra service endpoint (used by the DNS substrate)."""
        self._service_handlers[hid] = handler

    def connect_to(
        self, other: "ApnaAutonomousSystem", *, latency: float = 0.010, bandwidth: float = 1e9
    ) -> None:
        """Peer two ASes (an inter-domain link)."""
        self.network.connect(self.node, other.node, latency=latency, bandwidth=bandwidth)

    # -- sharded data plane (paper §V-A3; see repro.sharding) --

    def start_shard_pool(self, *, fault_plan=None):
        """Spawn the persistent worker shards and route the data plane
        through them.

        Snapshot-then-subscribe: the pool is seeded with the current
        hostdb/revocation state, and the database hooks keep the worker
        replicas in sync from then on — a revoke pushed over the infra
        bus reaches every shard before the next burst is dispatched.
        The pool also retains the hostdb/revocation list as its
        authoritative state source, from which the supervisor resyncs a
        restarted worker (and the degraded fallback router reads
        directly) — see the fault-model section of
        :mod:`repro.sharding`.  ``fault_plan`` arms a deterministic
        :class:`repro.faults.FaultPlan` on the new pool's data path
        (chaos testing).

        Intended at world-build time (before data traffic), which is
        when :meth:`repro.topology.World.from_spec` calls it.  Replay-
        filter history does *not* cross the transition: Bloom membership
        cannot be re-keyed into per-shard filters, so the workers start
        with empty filters and packets seen by the in-line router could
        replay once.  A mid-traffic switch therefore warns.
        """
        if self.shard_plan is None:
            raise ApnaError(
                "AS was built without sharding; set "
                "ApnaConfig.forwarding_shards >= 2"
            )
        if self.shard_pool is not None:
            return self.shard_pool
        inline_filter = self.br.replay_filter
        if inline_filter is not None and (
            inline_filter.passed or inline_filter.replays
        ):
            self._warn_replay_history_lost("start_shard_pool")
        from ..sharding.pool import ShardedDataPlane

        pool = ShardedDataPlane.for_assembly(self, self.shard_plan.nshards)
        if fault_plan is not None:
            pool.install_faults(fault_plan)
        self.shard_pool = pool
        self.revocations.on_add = pool.revoke_ephid
        self.hostdb.on_register = pool.register_host
        self.hostdb.on_revoke_hid = pool.revoke_hid
        return pool

    def stop_shard_pool(self, *, final: bool = False) -> None:
        """Tear the worker pool down and fall back to the in-line router.

        A teardown path, not a live migration: the shards' replay-filter
        history and verdict counters die with the worker processes, so
        switching back mid-traffic reopens the replay window exactly as
        :meth:`start_shard_pool` does — hence the same warning.  Pass
        ``final=True`` (as ``World.close`` does) when the world is done
        and no further traffic exists to protect.
        """
        pool, self.shard_pool = self.shard_pool, None
        if pool is None:
            return
        self.revocations.on_add = None
        self.hostdb.on_register = None
        self.hostdb.on_revoke_hid = None
        if not final and self.config.in_network_replay_filter and not pool.closed:
            from ..sharding.pool import ShardError

            # Best-effort read purely to decide whether to warn: a shard
            # failure here must not block teardown, but anything other
            # than a shard failure is a real bug and propagates.
            try:
                stats = pool.stats()
            except ShardError:
                stats = {}
            if stats.get("replay_passed", 0) or stats.get("replay_replays", 0):
                self._warn_replay_history_lost("stop_shard_pool")
        pool.close()

    def _warn_replay_history_lost(self, transition: str) -> None:
        """The caller saw replay-filter traffic before a plane transition."""
        import warnings

        warnings.warn(
            f"{transition} with in-network replay filtering mid-traffic: "
            "filter history does not cross the transition, so packets "
            "already seen could replay once",
            RuntimeWarning,
            stacklevel=3,
        )

    def attach_host(
        self,
        name: str,
        *,
        latency: float = 0.001,
        bandwidth: float = 1e8,
        policy: type[GranularityPolicy] = PerFlowPolicy,
        node_cls: "type[ApnaHostNode] | None" = None,
        **node_kwargs,
    ) -> "ApnaHostNode":
        """Create a host node, enroll it as a subscriber and wire it up.

        The host still has to call :meth:`ApnaHostNode.bootstrap`.
        ``node_cls`` lets callers attach specialised hosts (gateways,
        NAT-mode access points).
        """
        cls = node_cls or ApnaHostNode
        subscriber_id = self._next_subscriber
        self._next_subscriber += 1
        secret = self.rs.enroll_subscriber(subscriber_id)
        host = cls(name, self, subscriber_id, secret, policy_cls=policy, **node_kwargs)
        self.network.add_node(host)
        self.network.connect(self.node, host, latency=latency, bandwidth=bandwidth)
        self._host_node_names.add(name)
        return host

    def attach_host_behind_bridge(
        self,
        bridge: Node,
        name: str,
        *,
        latency: float = 0.001,
        bandwidth: float = 1e8,
        policy: type[GranularityPolicy] = PerFlowPolicy,
    ) -> "ApnaHostNode":
        """Attach a host whose access link runs through a bridge-mode AP
        (Section VII-B): the host authenticates directly to the AS, the
        bridge transparently relays frames."""
        subscriber_id = self._next_subscriber
        self._next_subscriber += 1
        secret = self.rs.enroll_subscriber(subscriber_id)
        host = ApnaHostNode(name, self, subscriber_id, secret, policy_cls=policy)
        host.uplink = bridge.name
        host.via = bridge.name
        self.network.add_node(host)
        self.network.connect(bridge, host, latency=latency, bandwidth=bandwidth)
        return host

    def register_population(self, count: int) -> range:
        """Bulk-register ``count`` hosts in ``host_info`` (scale presets).

        The hosts get HIDs and kHA subkeys but no simulated nodes — they
        are the metro-area population the AS is accountable for, against
        which issuance/verdict machinery is exercised at scale.  Key
        material comes from one SHAKE-256 keystream seeded by a single
        ``rng.read(32)`` draw, so the registered keys are identical
        under both state backends for a given world seed.  On the
        columnar backend the registration is a few column appends with
        zero per-host objects; the object backend falls back to
        per-record inserts over the same keystream.  Returns the
        registered HID range.

        Must run before :meth:`start_shard_pool`: a bulk load is meant
        to ride the shard-spawn snapshot, not a million per-host hook
        fan-outs.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if self.shard_pool is not None:
            raise ApnaError(
                "register_population must run before start_shard_pool "
                "(populations ship with the spawn snapshot)"
            )
        from ..state import population_key_material

        seed = self.rng.read(32)
        material = population_key_material(seed, count)
        hostdb = self.hostdb
        bulk = getattr(hostdb, "bulk_register", None)
        if bulk is not None and hostdb.on_register is None:
            first = bulk(count, material)
            return range(first, first + count)
        first = None
        for i in range(count):
            hid = hostdb.allocate_hid()
            if first is None:
                first = hid
            base = i * 32
            hostdb.register(
                HostRecord(
                    hid=hid,
                    keys=HostAsKeys(
                        control=material[base : base + 16],
                        packet_mac=material[base + 16 : base + 32],
                    ),
                )
            )
        assert first is not None
        return range(first, first + count)

    def _register_host_hid(self, host: "ApnaHostNode") -> None:
        record = self.hostdb.find_by_subscriber(host.subscriber_id)
        if record is None:
            raise ApnaError("host bootstrap did not register an HID")
        self.host_nodes[record.hid] = host
        host.hid_hint = record.hid  # the AS-side view; hosts never use it

    # -- packet plumbing --

    def route_packet(self, packet: ApnaPacket) -> None:
        """Send a locally-originated (service) packet toward its destination."""
        self.node.route_local(packet)

    def next_service_nonce(self) -> int | None:
        if not self.config.replay_protection:
            return None
        self._service_nonces += 1
        return self._service_nonces

    # -- service endpoints --

    def _handle_ms_packet(self, packet: ApnaPacket) -> None:
        payload_type, body = framing.unframe(packet.payload)
        if payload_type != framing.PT_CONTROL_REQ:
            return
        try:
            sealed_reply = self.ms.handle_request(packet.header.src_ephid, body)
        except IssuanceError:
            return  # Fig. 3: invalid requests are dropped.
        reply = self.ms_identity.make_packet(
            self.aid,
            Endpoint(packet.header.src_aid, packet.header.src_ephid),
            framing.frame(framing.PT_CONTROL_REP, sealed_reply),
            mac_size=self.config.packet_mac_size,
            nonce=self.next_service_nonce(),
        )
        self.route_packet(reply)

    def _handle_aa_packet(self, packet: ApnaPacket) -> None:
        payload_type, body = framing.unframe(packet.payload)
        if payload_type != framing.PT_SHUTOFF:
            return
        try:
            request = ShutoffRequest.parse(body)
        except ApnaError:
            return
        response = self.aa.handle_shutoff(
            request, with_nonce=self.config.replay_protection
        )
        reply = self.aa_identity.make_packet(
            self.aid,
            Endpoint(packet.header.src_aid, packet.header.src_ephid),
            framing.frame(framing.PT_SHUTOFF_RESP, response.pack()),
            mac_size=self.config.packet_mac_size,
            nonce=self.next_service_nonce(),
        )
        self.route_packet(reply)


class BorderRouterNode(Node):
    """The simulated border router: wire bytes in, wire bytes out.

    With ``config.forwarding_batch_size > 1`` the node runs the paper's
    burst data plane: arriving packets are accumulated and pushed through
    :meth:`BorderRouter.process_batch` / ``process_incoming_batch`` once
    the burst fills (or after ``forwarding_batch_window`` virtual seconds,
    whichever comes first), and the verdicts are acted on in arrival
    order.  The flush timer guarantees a partially-filled burst always
    drains when the event queue is run.

    When the assembly has a live shard pool (``config.forwarding_shards
    >= 2`` + :meth:`ApnaAutonomousSystem.start_shard_pool`), every data
    packet's verdict comes from the pool instead of the in-line router —
    the accumulated burst is dispatched as packed wire frames, one IPC
    message per shard, and the merged verdicts are acted on in arrival
    order.  The in-line ``assembly.br`` is bypassed entirely for data
    traffic so router state cannot diverge from the shards'.
    """

    def __init__(self, assembly: ApnaAutonomousSystem) -> None:
        super().__init__(f"AS{assembly.aid}")
        self.assembly = assembly
        self.icmp_sent = 0
        #: Pending (packet, arrived_from_outside, wire_frame) triples
        #: awaiting a burst.
        self._burst: list[tuple[ApnaPacket, bool, bytes]] = []
        self._burst_timer = None
        self.bursts_flushed = 0
        self.largest_burst = 0

    # -- frame entry points --

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        assembly = self.assembly
        if from_node in assembly._host_node_names:
            # Raw APNA bytes from a local host: the egress pipeline.
            apna_bytes = frame_bytes
            arrived_from_outside = False
        else:
            # GRE/IPv4 encapsulated bytes from a neighbor AS.
            _, apna_bytes = gre.decapsulate(frame_bytes)
            arrived_from_outside = True
        packet = ApnaPacket.from_wire(
            apna_bytes, with_nonce=assembly.config.replay_protection
        )
        batch_size = assembly.config.forwarding_batch_size
        if batch_size <= 1 and assembly.shard_pool is None:
            if arrived_from_outside:
                verdict = assembly.br.process_incoming(packet)
            else:
                verdict = assembly.br.process_outgoing(packet)
            self._act(packet, verdict, arrived_from_outside=arrived_from_outside)
            return
        self._burst.append((packet, arrived_from_outside, apna_bytes))
        if len(self._burst) >= batch_size:
            self._flush_burst()
        elif self._burst_timer is None:
            self._burst_timer = self.scheduler.schedule(
                assembly.config.forwarding_batch_window, self._flush_burst
            )

    def _flush_burst(self) -> None:
        """Run the batched verdict loop over the accumulated burst."""
        if self._burst_timer is not None:
            self._burst_timer.cancel()
            self._burst_timer = None
        burst, self._burst = self._burst, []
        if not burst:
            return
        self.bursts_flushed += 1
        self.largest_burst = max(self.largest_burst, len(burst))
        pool = self.assembly.shard_pool
        if pool is not None:
            verdicts = pool.process(
                [frame for _, _, frame in burst],
                [not outside for _, outside, _ in burst],
                self.assembly.clock(),
            )
        else:
            verdicts = self.assembly.br.process_mixed_batch(
                [packet for packet, _, _ in burst],
                [not outside for _, outside, _ in burst],
            )
        for (packet, outside, _), verdict in zip(burst, verdicts):
            assert verdict is not None
            self._act(packet, verdict, arrived_from_outside=outside)

    def route_local(self, packet: ApnaPacket) -> None:
        """Route a packet originated by this AS's own services."""
        if packet.header.dst_aid == self.assembly.aid:
            self._deliver_intra(packet)
        else:
            self._forward_inter(packet, packet.header.dst_aid)

    # -- verdict execution --

    def _act(self, packet: ApnaPacket, verdict: Verdict, *, arrived_from_outside: bool) -> None:
        if verdict.action is Action.FORWARD_INTER:
            assert verdict.next_aid is not None
            self._forward_inter(packet, verdict.next_aid)
        elif verdict.action is Action.FORWARD_INTRA:
            assert verdict.hid is not None
            self._deliver_hid(packet, verdict.hid)
        else:
            if (
                arrived_from_outside
                and self.assembly.config.icmp_on_drop
                and verdict.reason in ICMP_CODES
            ):
                self._send_icmp_unreachable(packet, ICMP_CODES[verdict.reason])

    def _forward_inter(self, packet: ApnaPacket, dst_aid: int) -> None:
        encapsulated = gre.encapsulate(
            packet.to_wire(), src_ip=self.assembly.aid, dst_ip=dst_aid
        )
        target = f"AS{dst_aid}"
        if self.network is None:
            raise ApnaError("border router is not attached to a network")
        next_hop = self.network.next_hop(self.name, target)
        self.send(next_hop, encapsulated)

    def _deliver_intra(self, packet: ApnaPacket) -> None:
        info = self.assembly.codec.open(packet.header.dst_ephid)
        self._deliver_hid(packet, info.hid)

    def _deliver_hid(self, packet: ApnaPacket, hid: int) -> None:
        handler = self.assembly._service_handlers.get(hid)
        if handler is not None:
            handler(packet)
            return
        host = self.assembly.host_nodes.get(hid)
        if host is not None:
            # Bridged hosts are reached through their bridge (host.via).
            self.send(host.via or host.name, packet.to_wire())

    def _send_icmp_unreachable(self, packet: ApnaPacket, code: int) -> None:
        """ICMP back to the source endpoint (Section VIII-B)."""
        message = icmp_wire.IcmpMessage(
            type=icmp_wire.DEST_UNREACHABLE,
            code=code,
            payload=packet.to_wire()[:64],
        )
        assembly = self.assembly
        reply = assembly.router_identity.make_packet(
            assembly.aid,
            Endpoint(packet.header.src_aid, packet.header.src_ephid),
            framing.frame(framing.PT_ICMP, message.pack()),
            mac_size=assembly.config.packet_mac_size,
            nonce=assembly.next_service_nonce(),
        )
        self.icmp_sent += 1
        self.route_local(reply)


class ApnaHostNode(Node):
    """A host attached to an APNA AS via an access link."""

    def __init__(
        self,
        name: str,
        assembly: ApnaAutonomousSystem,
        subscriber_id: int,
        subscriber_secret: bytes,
        *,
        policy_cls: type[GranularityPolicy] = PerFlowPolicy,
    ) -> None:
        super().__init__(name)
        self.assembly = assembly
        self.subscriber_id = subscriber_id
        self.stack = HostStack(
            assembly.aid,
            subscriber_id,
            subscriber_secret,
            assembly.rpki,
            assembly.network.scheduler.clock(),
            config=assembly.config,
            rng=assembly.rng,
        )
        self.policy: GranularityPolicy = policy_cls(
            self._policy_requester, assembly.network.scheduler.clock()
        )
        self.hid_hint: int | None = None  # AS-side bookkeeping only
        #: Next-hop node name for transmissions (a bridge for bridged hosts).
        self.uplink: str | None = None
        #: Where the border router should send frames destined to us.
        self.via: str | None = None

        self.owned: dict[bytes, OwnedEphId] = {}
        self.sessions: dict[tuple[bytes, bytes], Session] = {}
        self._pending_ephid: list[tuple[EphIdKeyPair, Callable | None]] = []
        self._pending_accept: dict[tuple[bytes, bytes], Callable] = {}
        self._pending_pings: dict[tuple[int, int], Callable] = {}
        self._pending_shutoff: list[Callable] = []
        self._listeners: dict[int, Callable] = {}
        self._replay_windows: dict[bytes, ReplayWindow] = {}
        self._nonce_counter = 0
        self.inbox: list[tuple[Session, TransportHeader, bytes]] = []
        self.icmp_log: list[icmp_wire.IcmpMessage] = []
        self.replay_drops = 0
        #: Per-packet EphID support (VIII-A): flow-tag demultiplexer and
        #: per-session taggers, created on first use.
        self.demux = TagDemuxer()
        self._taggers: dict[int, FlowTagger] = {}
        self._ping_id = 0
        #: Application hook: called with the new Session whenever a peer's
        #: connection request creates one (lets servers speak first).
        self.on_connection: Callable[[Session], None] | None = None

    # -- bootstrap (out-of-band host<->RS authentication, Fig. 2) --

    def bootstrap(self) -> None:
        request = self.stack.build_bootstrap_request()
        reply = self.assembly.rs.bootstrap(request)
        self.stack.accept_bootstrap_reply(reply)
        self.assembly._register_host_hid(self)

    # -- EphID acquisition --

    def acquire_ephid_direct(
        self, flags: int = 0, lifetime: float | None = None
    ) -> OwnedEphId:
        """Synchronous issuance through the MS engine (no packets).

        Models the host having pre-fetched EphIDs; the packet-based path
        below exercises the full Fig. 3 exchange.
        """
        keypair, sealed = self.stack.build_ephid_request(flags, lifetime)
        assert self.stack.control_ephid is not None
        reply = self.assembly.ms.handle_request(self.stack.control_ephid, sealed)
        owned = self.stack.accept_ephid_reply(keypair, reply)
        self.owned[owned.ephid] = owned
        return owned

    def acquire_ephid(
        self,
        callback: Callable[[OwnedEphId], None] | None = None,
        flags: int = 0,
        lifetime: float | None = None,
    ) -> None:
        """Request an EphID from the MS over the network (Fig. 3)."""
        keypair, sealed = self.stack.build_ephid_request(flags, lifetime)
        self._pending_ephid.append((keypair, callback))
        assert self.stack.control_ephid is not None and self.stack.ms_cert is not None
        packet = self.stack.make_packet(
            self.stack.control_ephid,
            Endpoint(self.assembly.aid, self.stack.ms_cert.ephid),
            framing.frame(framing.PT_CONTROL_REQ, sealed),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)

    def _policy_requester(self, flags: int, lifetime: float | None) -> OwnedEphId:
        return self.acquire_ephid_direct(flags, lifetime)

    # -- packet transmission --

    def _next_nonce(self) -> int | None:
        if not self.assembly.config.replay_protection:
            return None
        self._nonce_counter += 1
        return self._nonce_counter

    def _transmit(self, packet: ApnaPacket) -> None:
        self.send(self.uplink or self.assembly.node.name, packet.to_wire())

    # -- sessions (Section IV-D1 + VII-A) --

    def connect(
        self,
        peer_cert: EphIdCertificate,
        *,
        early_data: bytes = b"",
        src_owned: OwnedEphId | None = None,
        on_accept: Callable[[Session], None] | None = None,
        src_port: int = 0,
        dst_port: int = 0,
        proto: int = PROTO_DATA,
    ) -> Session:
        """Open a session toward ``peer_cert`` and send the first packet."""
        if src_owned is None:
            src_owned = self.acquire_ephid_direct()
        self.owned[src_owned.ephid] = src_owned
        session = self.stack.open_session(src_owned, peer_cert)
        self.sessions[(src_owned.ephid, peer_cert.ephid)] = session
        sealed_early = b""
        if early_data:
            segment = build_segment(
                TransportHeader(src_port, dst_port, proto=proto), early_data
            )
            sealed_early = session.seal(segment)
        if on_accept is not None:
            self._pending_accept[(src_owned.ephid, peer_cert.ephid)] = on_accept
        request = ConnectionRequest(cert=src_owned.cert, early_data=sealed_early)
        packet = self.stack.make_packet(
            src_owned.ephid,
            Endpoint(peer_cert.aid, peer_cert.ephid),
            framing.frame(framing.PT_CONN_REQUEST, request.pack()),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)
        return session

    def send_data(
        self,
        session: Session,
        data: bytes,
        *,
        src_port: int = 0,
        dst_port: int = 0,
        proto: int = PROTO_DATA,
        seq: int = 0,
    ) -> None:
        segment = build_segment(
            TransportHeader(src_port, dst_port, seq=seq, proto=proto), data
        )
        packet = self.stack.make_packet(
            session.local.ephid,
            Endpoint(session.peer_cert.aid, session.peer_cert.ephid),
            framing.frame(framing.PT_DATA, session.seal(segment)),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)

    def listen(self, port: int, handler: Callable) -> None:
        """Register ``handler(session, transport_header, data)`` for a port."""
        self._listeners[port] = handler

    # -- per-packet EphIDs (Section VIII-A + its reference [23]) --

    def ota_listen(self, session: Session) -> None:
        """Accept one-time-tagged traffic on ``session``.

        Required before a peer can send with :meth:`send_data_ota`: with
        per-packet source EphIDs the APNA header no longer identifies the
        session, so the flow-tag demultiplexer takes over.
        """
        self.demux.register(session)

    def send_data_ota(
        self,
        session: Session,
        data: bytes,
        *,
        src_port: int = 0,
        dst_port: int = 0,
        proto: int = PROTO_DATA,
        seq: int = 0,
    ) -> None:
        """Send one payload under a fresh, single-use source EphID.

        The strongest privacy mode of Section VIII-A: every packet gets
        its own EphID (one Fig. 3 issuance per packet — E5 quantifies the
        cost) plus a flow tag so the receiver can still demultiplex.
        """
        tagger = self._taggers.get(id(session))
        if tagger is None:
            tagger = FlowTagger(session)
            self._taggers[id(session)] = tagger
        one_time = self.acquire_ephid_direct()
        self.owned[one_time.ephid] = one_time
        segment = build_segment(
            TransportHeader(src_port, dst_port, seq=seq, proto=proto), data
        )
        body = pack_tagged(tagger.next_tag(), session.seal(segment))
        packet = self.stack.make_packet(
            one_time.ephid,
            Endpoint(session.peer_cert.aid, session.peer_cert.ephid),
            framing.frame(framing.PT_DATA_OTA, body),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)

    # -- ICMP (Section VIII-B) --

    def ping(
        self,
        dst: Endpoint,
        *,
        src_owned: OwnedEphId | None = None,
        callback: Callable[[float], None] | None = None,
    ) -> None:
        """Send an ICMP echo request; callback receives the RTT."""
        if src_owned is None:
            src_owned = self.acquire_ephid_direct()
        self.owned[src_owned.ephid] = src_owned
        self._ping_id += 1
        identifier = self._ping_id & 0xFFFF
        sent_at = self.now
        if callback is not None:
            self._pending_pings[(identifier, 0)] = lambda: callback(self.now - sent_at)
        message = icmp_wire.IcmpMessage(
            type=icmp_wire.ECHO_REQUEST, identifier=identifier, sequence=0
        )
        packet = self.stack.make_packet(
            src_owned.ephid,
            dst,
            framing.frame(framing.PT_ICMP, message.pack()),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)

    # -- shutoff (Fig. 5) --

    def send_shutoff(
        self,
        offending: ApnaPacket,
        *,
        signer: OwnedEphId,
        aa_endpoint: Endpoint,
        src_owned: OwnedEphId | None = None,
        callback: Callable[[ShutoffResponse], None] | None = None,
    ) -> None:
        """Ask the source AS's AA to shut off the sender of ``offending``."""
        if signer.ephid != offending.header.dst_ephid:
            raise ShutoffError("shutoff signer must own the packet's destination EphID")
        if src_owned is None:
            src_owned = self.acquire_ephid_direct()
        self.owned[src_owned.ephid] = src_owned
        request = self.stack.build_shutoff_request(offending.to_wire(), signer)
        if callback is not None:
            self._pending_shutoff.append(callback)
        packet = self.stack.make_packet(
            src_owned.ephid,
            aa_endpoint,
            framing.frame(framing.PT_SHUTOFF, request.pack()),
            nonce=self._next_nonce(),
        )
        self._transmit(packet)

    # -- receive path --

    def handle_frame(self, frame_bytes: bytes, *, from_node: str) -> None:
        packet = ApnaPacket.from_wire(
            frame_bytes, with_nonce=self.assembly.config.replay_protection
        )
        header = packet.header
        if self.assembly.config.replay_protection:
            window = self._replay_windows.setdefault(header.src_ephid, ReplayWindow())
            if header.nonce is None or not window.check(header.nonce):
                self.replay_drops += 1
                return
        payload_type, body = framing.unframe(packet.payload)
        if payload_type == framing.PT_DATA:
            self._on_data(packet, body)
        elif payload_type == framing.PT_DATA_OTA:
            self._on_data_ota(body)
        elif payload_type == framing.PT_CONN_REQUEST:
            self._on_conn_request(packet, body)
        elif payload_type == framing.PT_CONN_ACCEPT:
            self._on_conn_accept(packet, body)
        elif payload_type == framing.PT_CONTROL_REP:
            self._on_control_reply(body)
        elif payload_type == framing.PT_SHUTOFF_RESP:
            self._on_shutoff_response(body)
        elif payload_type == framing.PT_ICMP:
            self._on_icmp(packet, body)

    def _dispatch_segment(
        self, session: Session, transport: TransportHeader, data: bytes
    ) -> None:
        handler = self._listeners.get(transport.dst_port)
        if handler is not None:
            handler(session, transport, data)
        else:
            self.inbox.append((session, transport, data))

    def _on_data(self, packet: ApnaPacket, body: bytes) -> None:
        key = (packet.header.dst_ephid, packet.header.src_ephid)
        session = self.sessions.get(key)
        if session is None:
            return
        try:
            segment = session.open(body)
        except SessionError:
            return
        transport, data = split_segment(segment)
        self._dispatch_segment(session, transport, data)

    def _on_data_ota(self, body: bytes) -> None:
        """One-time-tagged data: the header's EphIDs carry no session
        information, the flow tag does (Section VIII-A, reference [23])."""
        try:
            tag, sealed = unpack_tagged(body)
            session = self.demux.match(tag)
        except DemuxError:
            return
        try:
            segment = session.open(sealed)
        except SessionError:
            return
        transport, data = split_segment(segment)
        self._dispatch_segment(session, transport, data)

    def _on_conn_request(self, packet: ApnaPacket, body: bytes) -> None:
        request = ConnectionRequest.parse(body)
        self.stack.verify_peer_cert(request.cert)
        local = self.owned.get(packet.header.dst_ephid)
        if local is None:
            return
        if local.receive_only:
            self._accept_via_serving_ephid(packet, request, local)
            return
        session = self.sessions.get((local.ephid, request.cert.ephid))
        if session is None:
            session = Session(
                local, request.cert, scheme=self.assembly.config.aead_scheme
            )
            self.sessions[(local.ephid, request.cert.ephid)] = session
            if self.on_connection is not None:
                self.on_connection(session)
        if request.early_data:
            self._deliver_early(session, request.early_data)

    def _accept_via_serving_ephid(
        self, packet: ApnaPacket, request: ConnectionRequest, receive_only: OwnedEphId
    ) -> None:
        """The Section VII-A server flow: answer with a serving EphID."""
        serving = self.acquire_ephid_direct()
        serving_session = Session(
            serving, request.cert, scheme=self.assembly.config.aead_scheme
        )
        self.sessions[(serving.ephid, request.cert.ephid)] = serving_session
        # Send the accept BEFORE dispatching data to the application: any
        # response the application emits must arrive behind the accept
        # that creates the client-side session.
        accept = ConnectionAccept(serving_cert=serving.cert)
        reply = self.stack.make_packet(
            serving.ephid,
            Endpoint(request.cert.aid, request.cert.ephid),
            framing.frame(framing.PT_CONN_ACCEPT, accept.pack()),
            nonce=self._next_nonce(),
        )
        self._transmit(reply)
        if self.on_connection is not None:
            self.on_connection(serving_session)
        if request.early_data:
            # 0-RTT data was encrypted against the receive-only EphID's
            # key; decrypt with it but hand the application the serving
            # session, which is what replies must flow through.
            early_session = Session(
                receive_only, request.cert, scheme=self.assembly.config.aead_scheme
            )
            try:
                segment = early_session.open(request.early_data)
            except SessionError:
                segment = None
            if segment is not None:
                transport, data = split_segment(segment)
                self._dispatch_segment(serving_session, transport, data)

    def _on_conn_accept(self, packet: ApnaPacket, body: bytes) -> None:
        accept = ConnectionAccept.parse(body)
        self.stack.verify_peer_cert(accept.serving_cert)
        # Find which of our pending connects this serves: the accept comes
        # from the serving EphID, addressed to our source EphID.
        local_ephid = packet.header.dst_ephid
        local = self.owned.get(local_ephid)
        if local is None:
            return
        session = Session(
            local, accept.serving_cert, scheme=self.assembly.config.aead_scheme
        )
        self.sessions[(local_ephid, accept.serving_cert.ephid)] = session
        for (pending_local, original_peer), callback in list(self._pending_accept.items()):
            if pending_local == local_ephid:
                del self._pending_accept[(pending_local, original_peer)]
                callback(session)
                break

    def _deliver_early(self, session: Session, sealed: bytes) -> None:
        try:
            segment = session.open(sealed)
        except SessionError:
            return
        transport, data = split_segment(segment)
        self._dispatch_segment(session, transport, data)

    def _on_control_reply(self, sealed: bytes) -> None:
        if not self._pending_ephid:
            return
        keypair, callback = self._pending_ephid.pop(0)
        owned = self.stack.accept_ephid_reply(keypair, sealed)
        self.owned[owned.ephid] = owned
        if callback is not None:
            callback(owned)

    def _on_shutoff_response(self, body: bytes) -> None:
        response = ShutoffResponse.parse(body)
        if self._pending_shutoff:
            self._pending_shutoff.pop(0)(response)

    def _on_icmp(self, packet: ApnaPacket, body: bytes) -> None:
        message = icmp_wire.IcmpMessage.parse(body)
        self.icmp_log.append(message)
        if message.type == icmp_wire.ECHO_REQUEST:
            local = self.owned.get(packet.header.dst_ephid)
            src = local.ephid if local is not None else packet.header.dst_ephid
            reply = self.stack.make_packet(
                src,
                Endpoint(packet.header.src_aid, packet.header.src_ephid),
                framing.frame(framing.PT_ICMP, message.reply().pack()),
                nonce=self._next_nonce(),
            )
            self._transmit(reply)
        elif message.type == icmp_wire.ECHO_REPLY:
            key = (message.identifier, message.sequence)
            callback = self._pending_pings.pop(key, None)
            if callback is not None:
                callback()
