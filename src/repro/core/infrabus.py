"""The authenticated intra-AS control channel.

Fig. 2's ``m1 = E_kA(HID, kHA)`` distributes new host bindings to every
AS entity, and Fig. 5's ``MAC_kAS(revoke EphID_s)`` pushes revocations to
the border routers.  This bus realises both: updates are sealed/
authenticated with keys derived from kA, and subscribers verify before
applying.  A tampered or replayed message is rejected, which the security
tests exercise.
"""

from __future__ import annotations

from typing import Callable

from ..crypto.aead import EtmScheme
from ..crypto.cmac import Cmac
from .errors import MacError
from .keys import AsSecret, HostAsKeys
from .hostdb import HostDatabase, HostRecord
from .messages import InfraUpdate, RevocationPush
from .revocation import RevocationList


class InfraBus:
    """Distributes authenticated host-info updates and revocation pushes."""

    def __init__(self, secret: AsSecret) -> None:
        self._aead = EtmScheme(secret.infra_enc)
        self._mac = Cmac(secret.infra_mac)
        self._host_subscribers: list[HostDatabase] = []
        self._revocation_subscribers: list[RevocationList] = []
        self._listeners: list[Callable[[str, bytes], None]] = []
        self._seq = 0
        self.updates_sent = 0
        self.updates_rejected = 0

    # -- subscription --

    def subscribe_hostdb(self, db: HostDatabase) -> None:
        self._host_subscribers.append(db)

    def subscribe_revocations(self, revocations: RevocationList) -> None:
        self._revocation_subscribers.append(revocations)

    def tap(self, listener: Callable[[str, bytes], None]) -> None:
        """Observe raw bus traffic (used by the eavesdropper attack tests)."""
        self._listeners.append(listener)

    # -- m1: host info distribution (Fig. 2) --

    def seal_host_update(self, update: InfraUpdate) -> bytes:
        """Produce the sealed m1 bytes."""
        nonce = self._seq.to_bytes(12, "big")
        self._seq += 1
        return nonce + self._aead.seal(nonce, update.pack(), b"m1")

    def publish_host_update(self, update: InfraUpdate) -> None:
        self.deliver_host_update(self.seal_host_update(update))

    def deliver_host_update(self, sealed: bytes) -> None:
        """Verify and apply an m1 message; raises :class:`MacError` on tamper."""
        for listener in self._listeners:
            listener("m1", sealed)
        nonce, body = sealed[:12], sealed[12:]
        try:
            plain = self._aead.open(nonce, body, b"m1")
        except ValueError as exc:
            self.updates_rejected += 1
            raise MacError("infra host update failed authentication") from exc
        update = InfraUpdate.parse(plain)
        record = HostRecord(
            hid=update.hid,
            keys=HostAsKeys(update.control_key, update.packet_mac_key),
        )
        for db in self._host_subscribers:
            if not db.is_valid(update.hid):
                db.register(record)
        self.updates_sent += 1

    # -- revocation push (Fig. 5) --

    def seal_revocation(self, ephid: bytes, exp_time: int) -> bytes:
        push = RevocationPush(ephid=ephid, exp_time=exp_time)
        mac = self._mac.tag(push.mac_input(), 8)
        return RevocationPush(ephid=ephid, exp_time=exp_time, mac=mac).pack()

    def publish_revocation(self, ephid: bytes, exp_time: int) -> None:
        self.deliver_revocation(self.seal_revocation(ephid, exp_time))

    def deliver_revocation(self, wire: bytes) -> None:
        """Verify and apply a revocation push (Fig. 5's border-router check)."""
        for listener in self._listeners:
            listener("revoke", wire)
        push = RevocationPush.parse(wire)
        if not self._mac.verify(push.mac_input(), push.mac):
            self.updates_rejected += 1
            raise MacError("revocation push failed authentication")
        for revocations in self._revocation_subscribers:
            revocations.add(push.ephid, push.exp_time)
        self.updates_sent += 1
