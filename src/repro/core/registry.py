"""The Registry Service (RS): host bootstrapping per paper Fig. 2.

The RS authenticates a subscriber, establishes the host<->AS shared keys
kHA by Diffie-Hellman, assigns an HID, creates the control EphID, pushes
the (HID, kHA) binding to the AS infrastructure (m1), and returns the
signed id_info plus the MS and DNS service certificates (m2).
"""

from __future__ import annotations

from typing import Callable

from ..crypto.kdf import hmac_sha256
from ..crypto.rng import Rng, SystemRng
from ..crypto.util import ct_eq
from .certs import EphIdCertificate
from .config import ApnaConfig
from .ephid import EphIdCodec, IvAllocator
from .errors import AuthError
from .hostdb import HostDatabase, HostRecord
from .infrabus import InfraBus
from .keys import AsKeyMaterial, as_host_dh
from .messages import BootstrapReply, BootstrapRequest, IdInfo, InfraUpdate


def credential_proof(subscriber_secret: bytes, host_public: bytes) -> bytes:
    """The authentication proof hosts present (HMAC over K+H).

    Stand-in for the paper's unspecified subscriber authentication: it
    binds the presented public key to the long-term subscriber secret, so
    an eavesdropper cannot re-register a different key.
    """
    return hmac_sha256(subscriber_secret, b"apna-bootstrap:" + host_public)


class RegistryService:
    """One AS's Registry Service."""

    def __init__(
        self,
        aid: int,
        keys: AsKeyMaterial,
        codec: EphIdCodec,
        ivs: IvAllocator,
        hostdb: HostDatabase,
        bus: InfraBus,
        clock: Callable[[], float],
        config: ApnaConfig,
        rng: Rng | None = None,
    ) -> None:
        self.aid = aid
        self._keys = keys
        self._codec = codec
        self._ivs = ivs
        self._hostdb = hostdb
        self._bus = bus
        self._clock = clock
        self._config = config
        self._rng = rng or SystemRng()
        self._subscribers: dict[int, bytes] = {}
        # Service certificates handed out in m2; set by the AS assembly.
        self.ms_cert: EphIdCertificate | None = None
        self.dns_cert: EphIdCertificate | None = None
        self.bootstraps = 0
        self.rejected = 0

    # -- subscriber management (the AS business relationship) --

    def enroll_subscriber(self, subscriber_id: int) -> bytes:
        """Create a subscriber account; returns the shared secret."""
        if subscriber_id in self._subscribers:
            raise AuthError(f"subscriber {subscriber_id} already enrolled")
        secret = self._rng.read(16)
        self._subscribers[subscriber_id] = secret
        return secret

    # -- Fig. 2 --

    def bootstrap(self, request: BootstrapRequest) -> BootstrapReply:
        """Authenticate the host and bootstrap it into the AS."""
        secret = self._subscribers.get(request.subscriber_id)
        if secret is None:
            self.rejected += 1
            raise AuthError(f"unknown subscriber {request.subscriber_id}")
        expected = credential_proof(secret, request.host_public)
        if not ct_eq(expected, request.proof):
            self.rejected += 1
            raise AuthError("bad credential proof")
        if len(request.host_public) != 32:
            self.rejected += 1
            raise AuthError("host public key must be 32 bytes")

        # One live HID per host: re-bootstrapping revokes the previous
        # identity and all its EphIDs (Section VI-A, Identity Minting).
        previous = self._hostdb.find_by_subscriber(request.subscriber_id)
        if previous is not None:
            self._hostdb.revoke_hid(previous.hid)

        # kHA = DH(K-AS, K+H), split into control + packet-MAC subkeys.
        kha = as_host_dh(self._keys.exchange, request.host_public)

        hid = self._hostdb.allocate_hid()
        record = HostRecord(hid=hid, keys=kha, subscriber_id=request.subscriber_id)
        self._hostdb.register(record)

        # m1: distribute (HID, kHA) to all AS entities over the infra bus.
        self._bus.publish_host_update(
            InfraUpdate(
                hid=hid,
                control_key=kha.control,
                packet_mac_key=kha.packet_mac,
            )
        )

        # Control EphID with its (long) lifetime.
        exp_time = int(self._clock() + self._config.control_ephid_lifetime)
        ctrl_ephid = self._codec.seal(hid=hid, exp_time=exp_time, iv=self._ivs.next_iv_for(hid))
        id_info = IdInfo.issue(self._keys.signing, ctrl_ephid, exp_time)

        if self.ms_cert is None or self.dns_cert is None:
            raise AuthError("RS not fully initialised: missing service certificates")
        self.bootstraps += 1
        return BootstrapReply(id_info=id_info, ms_cert=self.ms_cert, dns_cert=self.dns_cert)
