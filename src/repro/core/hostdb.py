"""The host information database (``host_info`` in the paper).

Maps HID -> host record, in particular the kHA subkeys every AS entity
needs to authenticate the host's packets (Fig. 2: "the entities need to
learn the HID of the host and the shared key kHA").  Implemented as a
hash table keyed by HID, exactly as the paper's prototype does
(Section V-A2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .errors import RevokedError, UnknownHostError
from .keys import HostAsKeys

#: Reserved HIDs for AS-internal services.  Host HIDs start above these.
HID_REGISTRY = 1
HID_MANAGEMENT = 2
HID_ACCOUNTABILITY = 3
HID_DNS = 4
FIRST_HOST_HID = 0x0001_0000


@dataclass
class HostRecord:
    """One registered host (or AS service endpoint)."""

    hid: int
    keys: HostAsKeys
    subscriber_id: int | None = None
    revoked: bool = False
    ephids_issued: int = 0
    ephids_revoked: int = 0


class HostDatabase:
    """``host_info``: the per-AS registry of authenticated hosts."""

    def __init__(self) -> None:
        self._records: dict[int, HostRecord] = {}
        #: subscriber_id -> live HID (one HID per host), maintained on
        #: register/revoke_hid so subscriber lookup is O(1) instead of a
        #: scan over every record.
        self._by_subscriber: dict[int, int] = {}
        self._next_hid = FIRST_HOST_HID
        #: Live (non-revoked) record count, so ``len()`` is O(1) instead
        #: of a scan.  Kept exact by register/revoke_hid and by the
        #: direct-mutation healing paths below.
        self._live_count = 0
        #: Optional observers, called after a successful register /
        #: revoke_hid — how a sharded data plane keeps its worker
        #: processes' host views in sync (see :mod:`repro.sharding`).
        self.on_register: Callable[[HostRecord], None] | None = None
        self.on_revoke_hid: Callable[[int], None] | None = None

    def allocate_hid(self) -> int:
        """Assign a fresh, never-reused HID."""
        hid = self._next_hid
        if hid > 0xFFFF_FFFF:
            raise UnknownHostError("HID space exhausted")
        self._next_hid += 1
        return hid

    def register(self, record: HostRecord) -> None:
        if record.hid in self._records:
            raise UnknownHostError(f"HID {record.hid} already registered")
        if record.subscriber_id is not None and not record.revoked:
            previous = self.find_by_subscriber(record.subscriber_id)
            if previous is not None:
                # One live HID per host: the registry must revoke the old
                # HID before re-bootstrapping a subscriber.  Registering a
                # second live record would silently shadow the first in
                # the subscriber index.
                raise UnknownHostError(
                    f"subscriber {record.subscriber_id} already has live "
                    f"HID {previous.hid}"
                )
            self._by_subscriber[record.subscriber_id] = record.hid
        self._records[record.hid] = record
        if not record.revoked:
            self._live_count += 1
        if self.on_register is not None:
            self.on_register(record)

    def get(self, hid: int) -> HostRecord:
        """Look up a live host; raises for unknown or revoked HIDs."""
        record = self._records.get(hid)
        if record is None:
            raise UnknownHostError(f"HID {hid} is not registered")
        if record.revoked:
            raise RevokedError(f"HID {hid} is revoked")
        return record

    def is_valid(self, hid: int) -> bool:
        record = self._records.get(hid)
        return record is not None and not record.revoked

    def revoke_hid(self, hid: int) -> None:
        """Revoke a host identity (Section VIII-G2's escalation)."""
        record = self._records.get(hid)
        if record is None:
            raise UnknownHostError(f"HID {hid} is not registered")
        if not record.revoked:
            record.revoked = True
            self._live_count -= 1
        elif (
            record.subscriber_id is not None
            and self._by_subscriber.get(record.subscriber_id) == hid
        ):
            # Revoked by direct mutation (the subscriber index was never
            # healed, so the counter hasn't seen this record yet).
            self._live_count -= 1
        if (
            record.subscriber_id is not None
            and self._by_subscriber.get(record.subscriber_id) == hid
        ):
            del self._by_subscriber[record.subscriber_id]
        if self.on_revoke_hid is not None:
            self.on_revoke_hid(hid)

    def find_by_subscriber(self, subscriber_id: int) -> HostRecord | None:
        """Current live HID for a subscriber, if any (one HID per host)."""
        hid = self._by_subscriber.get(subscriber_id)
        if hid is None:
            return None
        record = self._records[hid]
        if record.revoked:
            # The record was revoked directly (not via revoke_hid); heal
            # the index so the stale mapping cannot be returned again,
            # and account the revocation the mutation bypassed.
            del self._by_subscriber[subscriber_id]
            self._live_count -= 1
            return None
        return record

    def records(self):
        """Iterate every record, revoked included (for shard snapshots)."""
        return iter(self._records.values())

    def __contains__(self, hid: int) -> bool:
        return self.is_valid(hid)

    def __len__(self) -> int:
        return self._live_count

    @property
    def total_registered(self) -> int:
        return len(self._records)
