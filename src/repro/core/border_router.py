"""The APNA border router data plane (paper Fig. 4 and Section V-B).

Two pipelines, both built purely from symmetric cryptography:

* **Outgoing** (host -> Internet): decrypt the source EphID, check
  expiry / revocation / HID validity, verify the per-packet MAC with the
  host's kHA.  Only authenticated packets from authorized EphIDs leave
  the AS — this is the accountability enforcement point.
* **Incoming** (Internet -> host): transit packets are forwarded toward
  the destination AID untouched; at the destination AS the destination
  EphID is decrypted and checked, then the packet is forwarded
  intra-domain by HID.

The router is sans-IO: it turns a packet into a :class:`Verdict`, and the
AS assembly (or a benchmark loop) acts on it.  Per-host CMAC instances
are cached so steady-state verification costs one AES pass over the
packet.  With the ``openssl`` crypto backend active (see
:mod:`repro.crypto.backend`) that pass — and the EphID open before it —
runs on AES-NI, which *is* the data path of the paper's DPDK prototype
rather than a simulation of it.

Burst pipeline
--------------

The paper's DPDK prototype hits line rate by computing verdicts over
*bursts* rather than single packets; :meth:`BorderRouter.process_batch`
(egress) and :meth:`BorderRouter.process_incoming_batch` (ingress) are
that loop.  A burst pays one clock read and one revocation prune; the
burst's distinct source/destination EphIDs are opened together through
:meth:`repro.core.ephid.EphIdCodec.open_batch` (two bulk ECB calls per
burst on the ``openssl`` backend, whatever the burst size); and the
per-packet MACs are verified grouped by HID through each host's cached
reusable CMAC context (:meth:`repro.crypto.cmac.Cmac.tag_many`).

Equivalence guarantee: for any packet list, ``process_batch(packets)``
returns exactly the list of :class:`Verdict` objects the scalar loop
``[process_outgoing(p) for p in packets]`` would return when the clock
does not advance between packets (the simulator's case — verdicts are
computed at one instant), and leaves the router in the identical state:
same drop counters, same forwarded counters, and the same replay-filter
inserts performed in the same packet order.  The batch path is pure
amortisation, not a semantic change; ``tests/test_batch_equivalence.py``
fuzzes this property under both crypto backends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..crypto.cmac import Cmac
from ..crypto.util import ct_eq
from ..wire import icmp as icmp_wire
from ..wire.apna import ApnaPacket
from .ephid import EphIdCodec
from .errors import EphIdError
from .hostdb import HostDatabase
from .replay_filter import RotatingReplayFilter
from .revocation import RevocationList


class Action(enum.Enum):
    FORWARD_INTER = "forward-inter"  # toward another AS
    FORWARD_INTRA = "forward-intra"  # to a local HID
    DROP = "drop"


class DropReason(enum.Enum):
    SRC_FORGED = "src-ephid-forged"
    SRC_EXPIRED = "src-ephid-expired"
    SRC_REVOKED = "src-ephid-revoked"
    SRC_HID_INVALID = "src-hid-invalid"
    BAD_MAC = "packet-mac-invalid"
    DST_FORGED = "dst-ephid-forged"
    DST_EXPIRED = "dst-ephid-expired"
    DST_REVOKED = "dst-ephid-revoked"
    DST_HID_INVALID = "dst-hid-invalid"
    NOT_LOCAL_SOURCE = "src-aid-foreign"
    REPLAYED = "packet-replayed"
    #: Dispatcher-side synthetic drop: the packet was in flight to a
    #: worker shard that crashed/hung before replying, so its real
    #: verdict is unknowable (:mod:`repro.sharding.supervisor` counts
    #: every such drop).  Single-process routers never emit it.
    SHARD_FAILURE = "shard-failure"


#: ICMP codes attached to (incoming-side) drops so the source can learn
#: why its packets die (Section VIII-B: ICMP works by default in APNA).
ICMP_CODES = {
    DropReason.DST_EXPIRED: icmp_wire.CODE_EPHID_EXPIRED,
    DropReason.DST_REVOKED: icmp_wire.CODE_EPHID_REVOKED,
    DropReason.DST_HID_INVALID: icmp_wire.CODE_HID_INVALID,
}


@dataclass(frozen=True)
class Verdict:
    """The router's decision for one packet."""

    action: Action
    reason: DropReason | None = None
    hid: int | None = None  # set for FORWARD_INTRA
    next_aid: int | None = None  # set for FORWARD_INTER

    @property
    def dropped(self) -> bool:
        return self.action is Action.DROP


class InterVerdicts(dict):
    """Interned FORWARD_INTER verdicts keyed by destination AID.

    Verdicts are frozen value objects, so bursts reuse one instance per
    destination instead of constructing thousands of equal dataclasses.
    Shared by the in-process router and the shard dispatcher's transit
    short-circuit (:mod:`repro.sharding.pool`).
    """

    def __missing__(self, dst_aid: int) -> Verdict:
        verdict = Verdict(Action.FORWARD_INTER, next_aid=dst_aid)
        self[dst_aid] = verdict
        return verdict


class BorderRouter:
    """One AS's border router."""

    def __init__(
        self,
        aid: int,
        codec: EphIdCodec,
        hostdb: HostDatabase,
        revocations: RevocationList,
        clock: Callable[[], float],
        *,
        packet_mac_size: int = 8,
        replay_filter: RotatingReplayFilter | None = None,
    ) -> None:
        self.aid = aid
        self._codec = codec
        self._hostdb = hostdb
        self._revocations = revocations
        self._clock = clock
        self._mac_size = packet_mac_size
        self._mac_cache: dict[int, Cmac] = {}
        #: Optional in-network replay detection (Section VIII-D future
        #: work; see :mod:`repro.core.replay_filter`).  Checked on both
        #: pipelines for packets that carry the replay nonce.
        self.replay_filter = replay_filter
        self.drops: dict[DropReason, int] = {reason: 0 for reason in DropReason}
        self.forwarded_inter = 0
        self.forwarded_intra = 0
        self._inter_verdicts = InterVerdicts()

    def _drop(self, reason: DropReason) -> Verdict:
        self.drops[reason] += 1
        return Verdict(Action.DROP, reason=reason)

    def _mac_for(self, hid: int) -> Cmac:
        mac = self._mac_cache.get(hid)
        if mac is None:
            mac = Cmac(self._hostdb.get(hid).keys.packet_mac)
            self._mac_cache[hid] = mac
        return mac

    # -- Fig. 4 bottom: outgoing packets --

    def process_outgoing(self, packet: ApnaPacket) -> Verdict:
        """Egress pipeline for a packet originated by a local host."""
        now = self._clock()
        self._revocations.maybe_prune(now)
        header = packet.header
        if header.src_aid != self.aid:
            return self._drop(DropReason.NOT_LOCAL_SOURCE)
        try:
            info = self._codec.open(header.src_ephid)
        except EphIdError:
            return self._drop(DropReason.SRC_FORGED)
        if info.exp_time < now:
            return self._drop(DropReason.SRC_EXPIRED)
        if self._revocations.contains(header.src_ephid):
            return self._drop(DropReason.SRC_REVOKED)
        if not self._hostdb.is_valid(info.hid):
            return self._drop(DropReason.SRC_HID_INVALID)
        expected = self._mac_for(info.hid).tag(packet.mac_input(), self._mac_size)
        if not ct_eq(expected, header.mac):
            return self._drop(DropReason.BAD_MAC)
        # Replay detection runs after the MAC check so that spoofed
        # packets cannot pollute the filter against a victim's nonces.
        if not self._replay_fresh(header, now):
            return self._drop(DropReason.REPLAYED)
        if header.dst_aid == self.aid:
            # Intra-AS communication: run the destination-side checks too.
            return self._deliver_local(packet, now)
        self.forwarded_inter += 1
        return Verdict(Action.FORWARD_INTER, next_aid=header.dst_aid)

    # -- Fig. 4 top: incoming packets --

    def process_incoming(self, packet: ApnaPacket) -> Verdict:
        """Ingress pipeline for a packet arriving from a neighbor AS."""
        header = packet.header
        if header.dst_aid != self.aid:
            # Transit: forward toward the destination AS.
            self.forwarded_inter += 1
            return Verdict(Action.FORWARD_INTER, next_aid=header.dst_aid)
        now = self._clock()
        self._revocations.maybe_prune(now)
        if not self._replay_fresh(header, now):
            return self._drop(DropReason.REPLAYED)
        return self._deliver_local(packet, now)

    def _replay_fresh(self, header, now: float) -> bool:
        """True unless the filter says this (EphID, nonce) was seen before.

        Packets without a nonce (the base Fig. 7 header) always pass;
        in-network replay detection needs the Section VIII-D nonce.
        ``now`` is the pipeline's single clock read, so the expiry and
        replay checks can never disagree on time across a filter
        rotation boundary.
        """
        if self.replay_filter is None or header.nonce is None:
            return True
        return self.replay_filter.observe(header.src_ephid, header.nonce, now)

    # -- burst pipelines (paper §V-B: verdicts are computed per burst) --

    def process_batch(self, packets: "list[ApnaPacket]") -> "list[Verdict]":
        """Egress pipeline over a burst; see the module docstring for the
        equivalence guarantee with the scalar :meth:`process_outgoing`.
        """
        if not packets:
            return []
        now = self._clock()
        self._revocations.maybe_prune(now)
        verdicts: list[Verdict | None] = [None] * len(packets)
        local_src: list[int] = []
        for i, packet in enumerate(packets):
            if packet.header.src_aid != self.aid:
                verdicts[i] = self._drop(DropReason.NOT_LOCAL_SOURCE)
            else:
                local_src.append(i)
        infos = self._open_many(
            [packets[i].header.src_ephid for i in local_src]
        )
        # Expiry / revocation / HID validity, then MAC work grouped by
        # HID so each group reuses one cached CMAC key schedule.
        by_hid: dict[int, list[int]] = {}
        for i in local_src:
            header = packets[i].header
            info = infos[header.src_ephid]
            if info is None:
                verdicts[i] = self._drop(DropReason.SRC_FORGED)
            elif info.exp_time < now:
                verdicts[i] = self._drop(DropReason.SRC_EXPIRED)
            elif self._revocations.contains(header.src_ephid):
                verdicts[i] = self._drop(DropReason.SRC_REVOKED)
            elif not self._hostdb.is_valid(info.hid):
                verdicts[i] = self._drop(DropReason.SRC_HID_INVALID)
            else:
                by_hid.setdefault(info.hid, []).append(i)
        authentic: list[int] = []
        for hid, indexes in by_hid.items():
            tags = self._mac_for(hid).tag_many(
                [packets[i].mac_input() for i in indexes], self._mac_size
            )
            for i, expected in zip(indexes, tags):
                if ct_eq(expected, packets[i].header.mac):
                    authentic.append(i)
                else:
                    verdicts[i] = self._drop(DropReason.BAD_MAC)
        # Replay inserts must happen in packet order so that a duplicate
        # nonce inside one burst is flagged exactly as the scalar loop
        # would flag it.
        authentic.sort()
        deliver: list[int] = []
        for i in authentic:
            header = packets[i].header
            if not self._replay_fresh(header, now):
                verdicts[i] = self._drop(DropReason.REPLAYED)
            elif header.dst_aid == self.aid:
                deliver.append(i)
            else:
                self.forwarded_inter += 1
                verdicts[i] = self._inter_verdicts[header.dst_aid]
        self._deliver_local_batch(packets, deliver, verdicts, now)
        return verdicts  # type: ignore[return-value]  # every slot is filled

    def process_incoming_batch(
        self, packets: "list[ApnaPacket]"
    ) -> "list[Verdict]":
        """Ingress pipeline over a burst; equivalence mirror of
        :meth:`process_incoming`."""
        verdicts: list[Verdict | None] = [None] * len(packets)
        local: list[int] = []
        for i, packet in enumerate(packets):
            if packet.header.dst_aid != self.aid:
                self.forwarded_inter += 1
                verdicts[i] = self._inter_verdicts[packet.header.dst_aid]
            else:
                local.append(i)
        if local:
            now = self._clock()
            self._revocations.maybe_prune(now)
            deliver: list[int] = []
            for i in local:
                if self._replay_fresh(packets[i].header, now):
                    deliver.append(i)
                else:
                    verdicts[i] = self._drop(DropReason.REPLAYED)
            self._deliver_local_batch(packets, deliver, verdicts, now)
        return verdicts  # type: ignore[return-value]  # every slot is filled

    def process_mixed_batch(
        self, packets: "list[ApnaPacket]", egress: "list[bool]"
    ) -> "list[Verdict]":
        """A burst of mixed directions: the egress subset through
        :meth:`process_batch`, the ingress subset through
        :meth:`process_incoming_batch`, verdicts merged back
        positionally.

        This is *the* drain loop of a burst-accumulating router node —
        shared by :class:`~repro.core.autonomous_system.BorderRouterNode`
        and the shard worker (:mod:`repro.sharding.worker`), so the
        sharded plane's equivalence with the in-process plane is
        structural rather than re-implemented.
        """
        verdicts: "list[Verdict | None]" = [None] * len(packets)
        egress_idx = [i for i, out in enumerate(egress) if out]
        ingress_idx = [i for i, out in enumerate(egress) if not out]
        for indexes, process in (
            (egress_idx, self.process_batch),
            (ingress_idx, self.process_incoming_batch),
        ):
            for i, verdict in zip(indexes, process([packets[i] for i in indexes])):
                verdicts[i] = verdict
        return verdicts  # type: ignore[return-value]  # every slot is filled

    def _open_many(self, ephids: "list[bytes]") -> dict:
        """Open the distinct EphIDs of a burst in one batched call.

        Bursts repeat EphIDs heavily (a flow's packets share one), so
        deduplication alone removes most of the per-packet open cost
        before the bulk AES calls amortise the rest.
        """
        unique = list(dict.fromkeys(ephids))
        return dict(zip(unique, self._codec.open_batch(unique)))

    def _deliver_local_batch(
        self,
        packets: "list[ApnaPacket]",
        indexes: "list[int]",
        verdicts: "list[Verdict | None]",
        now: float,
    ) -> None:
        """Destination-side checks for the burst's intra-delivery subset."""
        if not indexes:
            return
        infos = self._open_many(
            [packets[i].header.dst_ephid for i in indexes]
        )
        for i in indexes:
            header = packets[i].header
            info = infos[header.dst_ephid]
            if info is None:
                verdicts[i] = self._drop(DropReason.DST_FORGED)
            elif info.exp_time < now:
                verdicts[i] = self._drop(DropReason.DST_EXPIRED)
            elif self._revocations.contains(header.dst_ephid):
                verdicts[i] = self._drop(DropReason.DST_REVOKED)
            elif not self._hostdb.is_valid(info.hid):
                verdicts[i] = self._drop(DropReason.DST_HID_INVALID)
            else:
                self.forwarded_intra += 1
                verdicts[i] = Verdict(Action.FORWARD_INTRA, hid=info.hid)

    def _deliver_local(self, packet: ApnaPacket, now: float) -> Verdict:
        header = packet.header
        try:
            info = self._codec.open(header.dst_ephid)
        except EphIdError:
            return self._drop(DropReason.DST_FORGED)
        if info.exp_time < now:
            return self._drop(DropReason.DST_EXPIRED)
        if self._revocations.contains(header.dst_ephid):
            return self._drop(DropReason.DST_REVOKED)
        if not self._hostdb.is_valid(info.hid):
            return self._drop(DropReason.DST_HID_INVALID)
        self.forwarded_intra += 1
        return Verdict(Action.FORWARD_INTRA, hid=info.hid)

    # -- observability --

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def drop_counts(self) -> dict[str, int]:
        return {reason.value: count for reason, count in self.drops.items() if count}
