"""The APNA border router data plane (paper Fig. 4 and Section V-B).

Two pipelines, both built purely from symmetric cryptography:

* **Outgoing** (host -> Internet): decrypt the source EphID, check
  expiry / revocation / HID validity, verify the per-packet MAC with the
  host's kHA.  Only authenticated packets from authorized EphIDs leave
  the AS — this is the accountability enforcement point.
* **Incoming** (Internet -> host): transit packets are forwarded toward
  the destination AID untouched; at the destination AS the destination
  EphID is decrypted and checked, then the packet is forwarded
  intra-domain by HID.

The router is sans-IO: it turns a packet into a :class:`Verdict`, and the
AS assembly (or a benchmark loop) acts on it.  Per-host CMAC instances
are cached so steady-state verification costs one AES pass over the
packet.  With the ``openssl`` crypto backend active (see
:mod:`repro.crypto.backend`) that pass — and the EphID open before it —
runs on AES-NI, which *is* the data path of the paper's DPDK prototype
rather than a simulation of it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..crypto.cmac import Cmac
from ..crypto.util import ct_eq
from ..wire import icmp as icmp_wire
from ..wire.apna import ApnaPacket
from .ephid import EphIdCodec
from .errors import EphIdError
from .hostdb import HostDatabase
from .replay_filter import RotatingReplayFilter
from .revocation import RevocationList


class Action(enum.Enum):
    FORWARD_INTER = "forward-inter"  # toward another AS
    FORWARD_INTRA = "forward-intra"  # to a local HID
    DROP = "drop"


class DropReason(enum.Enum):
    SRC_FORGED = "src-ephid-forged"
    SRC_EXPIRED = "src-ephid-expired"
    SRC_REVOKED = "src-ephid-revoked"
    SRC_HID_INVALID = "src-hid-invalid"
    BAD_MAC = "packet-mac-invalid"
    DST_FORGED = "dst-ephid-forged"
    DST_EXPIRED = "dst-ephid-expired"
    DST_REVOKED = "dst-ephid-revoked"
    DST_HID_INVALID = "dst-hid-invalid"
    NOT_LOCAL_SOURCE = "src-aid-foreign"
    REPLAYED = "packet-replayed"


#: ICMP codes attached to (incoming-side) drops so the source can learn
#: why its packets die (Section VIII-B: ICMP works by default in APNA).
ICMP_CODES = {
    DropReason.DST_EXPIRED: icmp_wire.CODE_EPHID_EXPIRED,
    DropReason.DST_REVOKED: icmp_wire.CODE_EPHID_REVOKED,
    DropReason.DST_HID_INVALID: icmp_wire.CODE_HID_INVALID,
}


@dataclass(frozen=True)
class Verdict:
    """The router's decision for one packet."""

    action: Action
    reason: DropReason | None = None
    hid: int | None = None  # set for FORWARD_INTRA
    next_aid: int | None = None  # set for FORWARD_INTER

    @property
    def dropped(self) -> bool:
        return self.action is Action.DROP


class BorderRouter:
    """One AS's border router."""

    def __init__(
        self,
        aid: int,
        codec: EphIdCodec,
        hostdb: HostDatabase,
        revocations: RevocationList,
        clock: Callable[[], float],
        *,
        packet_mac_size: int = 8,
        replay_filter: RotatingReplayFilter | None = None,
    ) -> None:
        self.aid = aid
        self._codec = codec
        self._hostdb = hostdb
        self._revocations = revocations
        self._clock = clock
        self._mac_size = packet_mac_size
        self._mac_cache: dict[int, Cmac] = {}
        #: Optional in-network replay detection (Section VIII-D future
        #: work; see :mod:`repro.core.replay_filter`).  Checked on both
        #: pipelines for packets that carry the replay nonce.
        self.replay_filter = replay_filter
        self.drops: dict[DropReason, int] = {reason: 0 for reason in DropReason}
        self.forwarded_inter = 0
        self.forwarded_intra = 0

    def _drop(self, reason: DropReason) -> Verdict:
        self.drops[reason] += 1
        return Verdict(Action.DROP, reason=reason)

    def _mac_for(self, hid: int) -> Cmac:
        mac = self._mac_cache.get(hid)
        if mac is None:
            mac = Cmac(self._hostdb.get(hid).keys.packet_mac)
            self._mac_cache[hid] = mac
        return mac

    # -- Fig. 4 bottom: outgoing packets --

    def process_outgoing(self, packet: ApnaPacket) -> Verdict:
        """Egress pipeline for a packet originated by a local host."""
        now = self._clock()
        self._revocations.maybe_prune(now)
        header = packet.header
        if header.src_aid != self.aid:
            return self._drop(DropReason.NOT_LOCAL_SOURCE)
        try:
            info = self._codec.open(header.src_ephid)
        except EphIdError:
            return self._drop(DropReason.SRC_FORGED)
        if info.exp_time < now:
            return self._drop(DropReason.SRC_EXPIRED)
        if self._revocations.contains(header.src_ephid):
            return self._drop(DropReason.SRC_REVOKED)
        if not self._hostdb.is_valid(info.hid):
            return self._drop(DropReason.SRC_HID_INVALID)
        expected = self._mac_for(info.hid).tag(packet.mac_input(), self._mac_size)
        if not ct_eq(expected, header.mac):
            return self._drop(DropReason.BAD_MAC)
        # Replay detection runs after the MAC check so that spoofed
        # packets cannot pollute the filter against a victim's nonces.
        if not self._replay_fresh(header):
            return self._drop(DropReason.REPLAYED)
        if header.dst_aid == self.aid:
            # Intra-AS communication: run the destination-side checks too.
            return self._deliver_local(packet, now)
        self.forwarded_inter += 1
        return Verdict(Action.FORWARD_INTER, next_aid=header.dst_aid)

    # -- Fig. 4 top: incoming packets --

    def process_incoming(self, packet: ApnaPacket) -> Verdict:
        """Ingress pipeline for a packet arriving from a neighbor AS."""
        header = packet.header
        if header.dst_aid != self.aid:
            # Transit: forward toward the destination AS.
            self.forwarded_inter += 1
            return Verdict(Action.FORWARD_INTER, next_aid=header.dst_aid)
        now = self._clock()
        self._revocations.maybe_prune(now)
        if not self._replay_fresh(header):
            return self._drop(DropReason.REPLAYED)
        return self._deliver_local(packet, now)

    def _replay_fresh(self, header) -> bool:
        """True unless the filter says this (EphID, nonce) was seen before.

        Packets without a nonce (the base Fig. 7 header) always pass;
        in-network replay detection needs the Section VIII-D nonce.
        """
        if self.replay_filter is None or header.nonce is None:
            return True
        return self.replay_filter.observe(
            header.src_ephid, header.nonce, self._clock()
        )

    def _deliver_local(self, packet: ApnaPacket, now: float) -> Verdict:
        header = packet.header
        try:
            info = self._codec.open(header.dst_ephid)
        except EphIdError:
            return self._drop(DropReason.DST_FORGED)
        if info.exp_time < now:
            return self._drop(DropReason.DST_EXPIRED)
        if self._revocations.contains(header.dst_ephid):
            return self._drop(DropReason.DST_REVOKED)
        if not self._hostdb.is_valid(info.hid):
            return self._drop(DropReason.DST_HID_INVALID)
        self.forwarded_intra += 1
        return Verdict(Action.FORWARD_INTRA, hid=info.hid)

    # -- observability --

    @property
    def total_drops(self) -> int:
        return sum(self.drops.values())

    def drop_counts(self) -> dict[str, int]:
        return {reason.value: count for reason, count in self.drops.items() if count}
