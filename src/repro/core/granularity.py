"""EphID granularity policies (paper Section VIII-A).

APNA deliberately does not impose how hosts spread traffic across
EphIDs.  The four granularities the paper discusses are implemented as
interchangeable policies a host stack is configured with:

* **per-flow** (the typical case): a fresh EphID per flow — flows are
  unlinkable and a shutoff kills exactly one flow;
* **per-host**: one EphID for everything — cheapest, but all flows are
  linkable and fate-share under shutoff;
* **per-application**: one EphID per application label — lets host and
  AS cooperate to pinpoint a malicious app;
* **per-packet**: a fresh EphID for every packet — strongest privacy,
  at the cost of per-packet issuance and custom demultiplexing.

E5 quantifies the trade-offs (MS request load, linkability, shutoff
blast radius).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from .session import OwnedEphId

#: ``request(flags, lifetime)`` -> a freshly issued EphID.
Requester = Callable[[int, float | None], OwnedEphId]


@dataclass(frozen=True)
class FlowKey:
    """What identifies a flow for EphID assignment purposes."""

    peer_aid: int
    peer_ephid: bytes
    src_port: int
    dst_port: int


class GranularityPolicy:
    """Base class: maps (flow, app) to the EphID to use as source."""

    name = "abstract"

    def __init__(self, requester: Requester, clock: Callable[[], float]) -> None:
        self._request = requester
        self._clock = clock
        self.requests_made = 0

    def _fresh(self, flags: int = 0, lifetime: float | None = None) -> OwnedEphId:
        self.requests_made += 1
        return self._request(flags, lifetime)

    def ephid_for(
        self, flow: FlowKey | None = None, app: str | None = None
    ) -> OwnedEphId:
        raise NotImplementedError

    def invalidate(self, owned: OwnedEphId) -> None:
        """Forget an EphID (it was shut off or expired)."""


class _CachingPolicy(GranularityPolicy):
    """Shared machinery: cache EphIDs under a policy-specific key."""

    def __init__(self, requester: Requester, clock: Callable[[], float]) -> None:
        super().__init__(requester, clock)
        self._cache: dict[Hashable, OwnedEphId] = {}

    def _key(self, flow: FlowKey | None, app: str | None) -> Hashable:
        raise NotImplementedError

    def ephid_for(
        self, flow: FlowKey | None = None, app: str | None = None
    ) -> OwnedEphId:
        key = self._key(flow, app)
        owned = self._cache.get(key)
        if owned is None or owned.expired(self._clock()):
            owned = self._fresh()
            self._cache[key] = owned
        return owned

    def invalidate(self, owned: OwnedEphId) -> None:
        stale = [k for k, v in self._cache.items() if v.ephid == owned.ephid]
        for key in stale:
            del self._cache[key]

    @property
    def active_count(self) -> int:
        return len(self._cache)


class PerHostPolicy(_CachingPolicy):
    """One EphID for all traffic."""

    name = "per-host"

    def _key(self, flow: FlowKey | None, app: str | None) -> Hashable:
        return "host"


class PerFlowPolicy(_CachingPolicy):
    """A distinct EphID per flow (the paper's typical use case)."""

    name = "per-flow"

    def _key(self, flow: FlowKey | None, app: str | None) -> Hashable:
        if flow is None:
            raise ValueError("per-flow policy needs a FlowKey")
        return flow


class PerApplicationPolicy(_CachingPolicy):
    """A distinct EphID per application label."""

    name = "per-application"

    def _key(self, flow: FlowKey | None, app: str | None) -> Hashable:
        if app is None:
            raise ValueError("per-application policy needs an app label")
        return app


class PerPacketPolicy(GranularityPolicy):
    """A fresh EphID for every single packet."""

    name = "per-packet"

    def ephid_for(
        self, flow: FlowKey | None = None, app: str | None = None
    ) -> OwnedEphId:
        return self._fresh()


POLICIES = {
    policy.name: policy
    for policy in (PerHostPolicy, PerFlowPolicy, PerApplicationPolicy, PerPacketPolicy)
}


def make_policy(
    name: str, requester: Requester, clock: Callable[[], float]
) -> GranularityPolicy:
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown granularity policy {name!r}") from None
    return cls(requester, clock)
