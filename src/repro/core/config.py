"""Deployment-wide APNA configuration knobs.

Defaults follow the paper's parameter discussion (Section VIII-G): data
EphIDs live 15 minutes (98% of Internet flows are shorter, per the
Brownlee/Claffy measurement the paper cites), control EphIDs live a
DHCP-lease-like day, and a host that gets too many EphIDs revoked has its
HID revoked.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ApnaConfig:
    """Knobs shared by all entities of a deployment."""

    #: Lifetime of control EphIDs ("e.g., DHCP lease time", Section IV-B).
    control_ephid_lifetime: float = 86_400.0

    #: Default lifetime of data-plane EphIDs (15 min, Section VIII-G1).
    data_ephid_lifetime: float = 900.0

    #: Three lifetime classes hosts may request (Section VIII-G1 suggests
    #: short/medium/long-term categories).
    lifetime_classes: tuple[float, float, float] = (60.0, 900.0, 3600.0)

    #: Hard cap on any requested EphID lifetime.
    max_ephid_lifetime: float = 86_400.0

    #: Whether packets carry the per-packet replay nonce (Section VIII-D).
    #: Off by default: the base header of Fig. 7 has no nonce.
    replay_protection: bool = False

    #: Whether border routers run in-network replay detection (the
    #: Section VIII-D future-work mechanism; see
    #: :mod:`repro.core.replay_filter`).  Requires ``replay_protection``.
    in_network_replay_filter: bool = False

    #: Rotation window of the in-network replay filter, in seconds.
    #: Should be at least the data EphID lifetime so that a nonce cannot
    #: outlive its filter generations while the EphID is still valid.
    replay_filter_window: float = 900.0

    #: Bits per Bloom-filter generation (power of two).  The default
    #: 2^20 bits = 128 KiB/generation keeps the false-positive rate
    #: under 1% up to ~90k packets per window with 4 hashes.
    replay_filter_bits: int = 1 << 20

    #: Max packets a border router accumulates before running the batched
    #: verdict pipeline (:meth:`repro.core.border_router.BorderRouter.
    #: process_batch`).  1 = per-packet dispatch (the legacy behaviour);
    #: larger values amortise clock reads, revocation prunes and crypto
    #: across the burst, as the paper's DPDK prototype does (§V-B).
    forwarding_batch_size: int = 1

    #: Max virtual seconds a partially-filled burst may wait before it is
    #: flushed anyway.  Only meaningful with ``forwarding_batch_size > 1``;
    #: this is the latency cost of batching.
    forwarding_batch_window: float = 0.0002

    #: Number of persistent worker processes the border-router data plane
    #: is sharded over (the paper's §V-A3 share-nothing scale-out; see
    #: :mod:`repro.sharding`).  ``0``/``1`` keeps the single-process
    #: in-line pipeline.  Values >= 2 make EphID issuance pin each IV to
    #: its HID's owning shard so the dispatcher can route packed frames
    #: without decrypting, and make world builds spawn a
    #: :class:`repro.sharding.ShardedDataPlane` per AS.
    forwarding_shards: int = 0

    #: Consecutive host HIDs per contiguous shard-ownership block
    #: (``repro.sharding.ShardPlan.block``).  1 = round-robin over
    #: registration order.
    shard_block: int = 1

    #: IV -> shard dispatch map (``repro.sharding.ShardPlan.mode``).
    #: ``"keyed"`` (default) routes by ``CMAC_kR(iv) % nshards`` under an
    #: AS-internal routing key derived from the AS secret, so the clear
    #: IV bytes leak nothing about which EphIDs share a host.
    #: ``"residue"`` is the legacy unkeyed ``iv % nshards`` map, kept only
    #: for bit-compatibility with worlds built before keyed routing: it
    #: lets any on-path observer link one host's EphIDs by residue
    #: (log2(nshards) bits of the cross-EphID linkage Section IV/V-A1
    #: rules out), so never deploy it.
    shard_routing: str = "keyed"

    #: Wall-clock seconds the shard dispatcher waits for any single
    #: worker reply before declaring the worker hung and restarting it
    #: (bounded ``Connection.poll``; see
    #: :mod:`repro.sharding.supervisor`).  ``None`` restores the
    #: unbounded blocking waits of the unsupervised plane — a hung
    #: worker then wedges the dispatcher forever, so leave it bounded in
    #: anything resembling production.
    shard_reply_timeout: float | None = 5.0

    #: Worker restarts allowed per shard before the plane stops trying
    #: and applies its degradation policy.  ``0`` disables recovery:
    #: the first failure immediately degrades (or poisons, see
    #: ``shard_degraded_fallback``).
    shard_max_restarts: int = 3

    #: Base of the capped exponential backoff between restart attempts
    #: of one shard (delay ``min(base * 2**attempt, 50 * base)``).
    shard_restart_backoff: float = 0.05

    #: Degradation policy once a shard exhausts its restart budget:
    #: ``True`` falls back to an in-process border router over the
    #: authoritative AS state (traffic keeps flowing, ``stats()``
    #: reports ``degraded``), ``False`` poisons the plane — every later
    #: submit/collect raises, the pre-supervision behaviour.
    shard_degraded_fallback: bool = True

    #: Backing store for the per-AS state (``host_info``, ``revoked_ids``
    #: and the shard workers' replicas): ``"columnar"`` keeps dense
    #: array/bytes columns keyed by HID row (see :mod:`repro.state` —
    #: zero per-host objects, the million-host default), ``"object"``
    #: keeps the original per-record dataclass stores.
    state_backend: str = "columnar"

    #: Data-plane AEAD ("etm" or "gcm"); any CCA-secure scheme is allowed.
    aead_scheme: str = "etm"

    #: Truncated per-packet MAC length in the APNA header (Fig. 7: 8 B).
    packet_mac_size: int = 8

    #: Preemptive revocations per host before the AS revokes the HID
    #: itself (Section VIII-G2's "maximum number of EphIDs that can be
    #: preemptively revoked for each host").
    revocation_threshold: int = 32

    #: Whether border routers emit ICMP errors for dropped inbound packets.
    icmp_on_drop: bool = True

    def clamp_lifetime(self, requested: float | None) -> float:
        """Resolve a requested lifetime to a granted one."""
        if requested is None:
            return self.data_ephid_lifetime
        if requested <= 0:
            raise ValueError(f"lifetime must be positive, got {requested}")
        return min(requested, self.max_ephid_lifetime)


DEFAULT_CONFIG = ApnaConfig()
