"""The EphID construction of paper Fig. 6 — a 16-byte CCA-secure token.

An EphID encrypts ``(HID, ExpTime)`` under the AS secret so that the AS
can recover the host identity *statelessly* ("the use of encryption
enables the issuing AS to obtain the HID and expiration time from an
EphID ... without an additional mapping table", Section IV-C).

Construction (Encrypt-then-MAC, Bellare–Namprempre generic composition):

1. keystream = AES_kA'( IV(4) || 0^12 ) — single-block CTR.
2. ciphertext = (HID(4) || ExpTime(4)) XOR keystream[:8].
3. tag = CBC-MAC_kA''( IV(4) || 0^4 || ciphertext(8) )[:4] — one fixed
   16-byte block, which is exactly the regime where CBC-MAC is secure.
4. EphID = ciphertext(8) || IV(4) || tag(4).

The IV makes every EphID for the same (HID, ExpTime) distinct, which is
what lets a host hold many unlinkable EphIDs simultaneously.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass

from ..crypto.aes import AES
from ..crypto.modes import cbc_mac
from ..crypto.rng import Rng, SystemRng
from ..crypto.util import ct_eq, xor_bytes
from .errors import EphIdError

EPHID_SIZE = 16
HID_SIZE = 4
EXPTIME_SIZE = 4
IV_SIZE = 4
CIPHERTEXT_SIZE = HID_SIZE + EXPTIME_SIZE
TAG_SIZE = 4

_MAX_HID = 2**32 - 1
_MAX_EXPTIME = 2**32 - 1
_MAX_IV = 2**32 - 1


@dataclass(frozen=True)
class EphIdInfo:
    """The plaintext content of an EphID."""

    hid: int
    exp_time: int

    def expired(self, now: float) -> bool:
        return self.exp_time < now


class EphIdCodec:
    """Seals and opens EphIDs for one AS (holder of kA' and kA'').

    The two AES instances route through the active crypto backend (see
    :mod:`repro.crypto.backend`), so on the ``openssl`` backend a seal or
    open costs two AES-NI block operations — the paper's "one MAC check
    plus one AES operation" data path.  Pass ``backend=`` to pin a codec
    to a specific provider (EphIDs sealed under one backend open under
    the other; the differential suite relies on this).
    """

    __slots__ = ("_enc", "_mac_cipher")

    def __init__(self, enc_key: bytes, mac_key: bytes, *, backend=None) -> None:
        if enc_key == mac_key:
            raise ValueError("encryption and MAC keys must differ (EtM composition)")
        self._enc = AES(enc_key, backend=backend)
        self._mac_cipher = AES(mac_key, backend=backend)

    def _keystream(self, iv: int) -> bytes:
        block = struct.pack(">I", iv) + bytes(12)
        return self._enc.encrypt_block(block)[:CIPHERTEXT_SIZE]

    def _tag(self, iv: int, ciphertext: bytes) -> bytes:
        block = struct.pack(">I", iv) + bytes(4) + ciphertext
        return cbc_mac(self._mac_cipher, block, expected_length=16)[:TAG_SIZE]

    def seal(self, hid: int, exp_time: int, iv: int) -> bytes:
        """Create an EphID binding (hid, exp_time) under a fresh IV."""
        if not 0 <= hid <= _MAX_HID:
            raise EphIdError(f"HID out of range: {hid}")
        if not 0 <= exp_time <= _MAX_EXPTIME:
            raise EphIdError(f"ExpTime out of range: {exp_time}")
        if not 0 <= iv <= _MAX_IV:
            raise EphIdError(f"IV out of range: {iv}")
        plaintext = struct.pack(">II", hid, exp_time)
        ciphertext = xor_bytes(plaintext, self._keystream(iv))
        return ciphertext + struct.pack(">I", iv) + self._tag(iv, ciphertext)

    def open(self, ephid: bytes) -> EphIdInfo:
        """Authenticate and decrypt an EphID; raises :class:`EphIdError`.

        This is the stateless lookup border routers perform on every
        packet (Fig. 4): one MAC check plus one AES operation.
        """
        if len(ephid) != EPHID_SIZE:
            raise EphIdError(f"EphID must be {EPHID_SIZE} bytes, got {len(ephid)}")
        ciphertext = ephid[:CIPHERTEXT_SIZE]
        (iv,) = struct.unpack_from(">I", ephid, CIPHERTEXT_SIZE)
        tag = ephid[CIPHERTEXT_SIZE + IV_SIZE :]
        if not ct_eq(self._tag(iv, ciphertext), tag):
            raise EphIdError("EphID authentication failed")
        hid, exp_time = struct.unpack(">II", xor_bytes(ciphertext, self._keystream(iv)))
        return EphIdInfo(hid=hid, exp_time=exp_time)

    def open_batch(self, ephids: "list[bytes]") -> "list[EphIdInfo | None]":
        """Open a burst of EphIDs with two bulk AES calls.

        The CBC-MAC input and the CTR keystream of every EphID are one
        16-byte block each, so a whole burst's MACs (under kA'') and
        keystreams (under kA') are computed as two ECB passes over
        concatenated blocks — on the ``openssl`` backend that is two EVP
        updates regardless of burst size.  Entries that :meth:`open`
        would reject come back as ``None`` instead of raising, so the
        result is positionally aligned with the input.
        """
        results: list[EphIdInfo | None] = [None] * len(ephids)
        well_formed = [
            i for i, ephid in enumerate(ephids) if len(ephid) == EPHID_SIZE
        ]
        if not well_formed:
            return results
        mac_blocks = bytearray()
        ctr_blocks = bytearray()
        zero4 = bytes(4)
        zero12 = bytes(12)
        for i in well_formed:
            ephid = ephids[i]
            iv_bytes = ephid[CIPHERTEXT_SIZE : CIPHERTEXT_SIZE + IV_SIZE]
            mac_blocks += iv_bytes + zero4 + ephid[:CIPHERTEXT_SIZE]
            ctr_blocks += iv_bytes + zero12
        tags = self._mac_cipher.encrypt_blocks(bytes(mac_blocks))
        streams = self._enc.encrypt_blocks(bytes(ctr_blocks))
        for k, i in enumerate(well_formed):
            ephid = ephids[i]
            offset = 16 * k
            if not ct_eq(
                tags[offset : offset + TAG_SIZE],
                ephid[CIPHERTEXT_SIZE + IV_SIZE :],
            ):
                continue
            hid, exp_time = struct.unpack(
                ">II",
                xor_bytes(
                    ephid[:CIPHERTEXT_SIZE],
                    streams[offset : offset + CIPHERTEXT_SIZE],
                ),
            )
            results[i] = EphIdInfo(hid=hid, exp_time=exp_time)
        return results

    def is_valid(self, ephid: bytes) -> bool:
        """Authenticity-only check (no expiry/revocation semantics)."""
        try:
            self.open(ephid)
        except EphIdError:
            return False
        return True


class IvAllocator:
    """Allocates unique IVs for EphID generation.

    CTR-mode security requires that an IV never repeat under the same key
    ("Secure operation of this mode requires a unique initialization
    vector for every encryption", Section V-A1).  A counter starting at a
    random offset guarantees uniqueness for up to 2^32 issuances; after
    that the AS must rotate kA.

    Shard pinning
    -------------

    With a shard ``plan`` (any object exposing ``nshards``, ``owner_of``
    and ``owners_of_iv_bytes``, normally a
    :class:`repro.sharding.plan.ShardPlan`) the allocator additionally
    *pins* each IV to a shard under the plan's IV -> shard map:
    :meth:`next_iv_for` hands HID ``h`` an IV with
    ``plan.owner_of_iv(iv) == plan.owner_of(h)``, so a sharded data
    plane's dispatcher can recover the owning shard from the EphID's four
    clear IV bytes without touching the AS secret (see
    :mod:`repro.sharding.plan`).

    Pinning works by drawing candidate IVs off the one global sequential
    counter, classifying each candidate through the plan's map (one bulk
    call per chunk), and banking them in per-shard buckets; a pinned draw
    pops its shard's bucket, refilling from the counter until a candidate
    lands there.  Every IV still comes from the single counter, so
    uniqueness is exactly the unsharded argument.  Under the keyed map
    a chunk scatters ~uniformly, so the expected overdraw per pinned IV
    is ``nshards`` candidates; under the legacy ``"residue"`` map this
    enumeration yields, per shard, the identical stride-``nshards``
    sequence the pre-keyed allocator produced (ascending from the first
    class member at or above the random start, wrapping to the class
    bottom) — seed streams stay bit-compatible.

    Issuance accounting (:attr:`issued`) counts only IVs actually handed
    out, never banked candidates, and is broken down per shard
    (:attr:`issued_by_shard`).  Plan-less :meth:`next_iv` calls under a
    plan — service identities, callers with no HID — are pinned to shard
    0 (they must route somewhere, and shard 0 owns all service HIDs) but
    tallied separately in :attr:`issued_unattributed` so that draw no
    longer drains shard 0's budget silently.
    """

    __slots__ = (
        "_next",
        "_remaining",
        "_plan",
        "_buckets",
        "_issued_unpinned",
        "_issued_by_shard",
        "_issued_unattributed",
    )

    def __init__(
        self,
        rng: Rng | None = None,
        *,
        start: int | None = None,
        plan=None,
    ) -> None:
        if start is None:
            rng = rng or SystemRng()
            start = rng.randint(2**32)
        self._next = start % 2**32
        self._remaining = 2**32
        self._plan = plan if plan is not None and plan.nshards > 1 else None
        self._buckets: dict[int, deque[int]] = {}
        self._issued_unpinned = 0
        self._issued_by_shard: dict[int, int] = {}
        self._issued_unattributed = 0

    def next_iv(self) -> int:
        """An arbitrary fresh IV (pinned to shard 0 under a shard plan)."""
        if self._plan is not None:
            iv = self._pinned_next(0)
            self._issued_unattributed += 1
            return iv
        if self._remaining == 0:
            raise EphIdError("IV space exhausted: rotate the AS secret kA")
        iv = self._next
        self._next = (self._next + 1) % 2**32
        self._remaining -= 1
        self._issued_unpinned += 1
        return iv

    def next_iv_for(self, hid: int) -> int:
        """A fresh IV for an EphID bound to ``hid``.

        Without a shard plan this is plain :meth:`next_iv`; with one, the
        IV is pinned to ``hid``'s owning shard under the plan's map.
        """
        if self._plan is None:
            return self.next_iv()
        return self._pinned_next(self._plan.owner_of(hid))

    def _pinned_next(self, shard: int) -> int:
        bucket = self._buckets.get(shard)
        while not bucket:
            self._draw_candidates()
            bucket = self._buckets.get(shard)
        iv = bucket.popleft()
        if not bucket:
            del self._buckets[shard]
        self._issued_by_shard[shard] = self._issued_by_shard.get(shard, 0) + 1
        return iv

    def _draw_candidates(self) -> None:
        """Advance the global counter by one chunk and bank by shard."""
        if self._remaining == 0:
            raise EphIdError(
                "IV space exhausted while searching the shard map: "
                "rotate the AS secret kA"
            )
        count = min(self._remaining, max(self._plan.nshards * 2, 8))
        nxt = self._next
        candidates = []
        for _ in range(count):
            candidates.append(nxt)
            nxt = (nxt + 1) % 2**32
        self._next = nxt
        self._remaining -= count
        owners = self._plan.owners_of_iv_bytes(
            [iv.to_bytes(4, "big") for iv in candidates]
        )
        for iv, shard in zip(candidates, owners):
            bucket = self._buckets.get(shard)
            if bucket is None:
                bucket = self._buckets[shard] = deque()
            bucket.append(iv)

    @property
    def issued(self) -> int:
        """IVs actually handed out (banked candidates excluded)."""
        return self._issued_unpinned + sum(self._issued_by_shard.values())

    @property
    def issued_by_shard(self) -> "dict[int, int]":
        """Pinned issuance per shard (a copy)."""
        return dict(self._issued_by_shard)

    @property
    def issued_unattributed(self) -> int:
        """Pinned draws that carried no HID (service identities etc.).

        These land on shard 0 and are also counted there in
        :attr:`issued_by_shard`.
        """
        return self._issued_unattributed
