"""A minimal RPKI substrate (paper Section IV-A assumption).

The paper assumes "participating parties can retrieve and verify the
public keys of ASes. For example, a scheme such as RPKI can be used."
This module provides exactly that: a trust anchor that signs AS
certificates and a directory from which any party can retrieve and
verify them.
"""

from __future__ import annotations

from typing import Callable

from ..crypto.rng import Rng
from .certs import AsCertificate
from .errors import CertError
from .keys import AsKeyMaterial, SigningKeyPair


class TrustAnchor:
    """The RPKI root: signs AS certificates."""

    def __init__(self, rng: Rng | None = None) -> None:
        self._keys = SigningKeyPair.generate(rng)

    @property
    def public_key(self) -> bytes:
        return self._keys.public

    def certify(
        self, aid: int, key_material: AsKeyMaterial, *, exp_time: int = 2**32 - 1
    ) -> AsCertificate:
        return AsCertificate.issue(
            self._keys,
            aid=aid,
            signing_public=key_material.signing.public,
            exchange_public=key_material.exchange.public,
            exp_time=exp_time,
        )


class RpkiDirectory:
    """A verified directory of AS certificates, shared by all parties."""

    def __init__(self, anchor_public: bytes, clock: Callable[[], float]) -> None:
        self._anchor_public = anchor_public
        self._clock = clock
        self._certs: dict[int, AsCertificate] = {}

    def publish(self, cert: AsCertificate) -> None:
        """Add a certificate after verifying it against the trust anchor."""
        cert.verify(self._anchor_public, now=self._clock())
        existing = self._certs.get(cert.aid)
        if existing is not None and existing.signing_public != cert.signing_public:
            raise CertError(f"conflicting AS certificate for AID {cert.aid}")
        self._certs[cert.aid] = cert

    def lookup(self, aid: int) -> AsCertificate:
        """Retrieve and re-verify the certificate for an AID."""
        cert = self._certs.get(aid)
        if cert is None:
            raise CertError(f"no AS certificate for AID {aid}")
        cert.verify(self._anchor_public, now=self._clock())
        return cert

    def signing_key_of(self, aid: int) -> bytes:
        return self.lookup(aid).signing_public

    def __contains__(self, aid: int) -> bool:
        return aid in self._certs

    def __len__(self) -> int:
        return len(self._certs)
