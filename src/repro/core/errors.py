"""Error taxonomy for the APNA core."""

from __future__ import annotations


class ApnaError(Exception):
    """Base class for all APNA protocol errors."""


class EphIdError(ApnaError):
    """An EphID failed authentication or decoding (forged or corrupted)."""


class ExpiredError(ApnaError):
    """An EphID or certificate is past its expiration time."""


class RevokedError(ApnaError):
    """An EphID or HID has been revoked."""


class UnknownHostError(ApnaError):
    """The HID is not registered in the AS host database."""


class MacError(ApnaError):
    """A per-packet MAC failed verification."""


class CertError(ApnaError):
    """A certificate failed signature verification or validation."""


class AuthError(ApnaError):
    """Host authentication to the AS failed."""


class ShutoffError(ApnaError):
    """A shutoff request was rejected (unauthorized or unverifiable)."""


class IssuanceError(ApnaError):
    """An EphID request could not be served."""
