"""APNA core: the paper's primary contribution.

* :mod:`repro.core.ephid` — the Fig. 6 EphID construction.
* :mod:`repro.core.certs` / :mod:`repro.core.rpki` — certificates & trust.
* :mod:`repro.core.keys` — kA/kHA/EphID key material.
* :mod:`repro.core.registry` — host bootstrapping (Fig. 2).
* :mod:`repro.core.management` — EphID issuance (Fig. 3).
* :mod:`repro.core.border_router` — data-plane pipelines (Fig. 4).
* :mod:`repro.core.accountability` — the shutoff protocol (Fig. 5).
* :mod:`repro.core.host` / :mod:`repro.core.session` — the host stack.
* :mod:`repro.core.granularity` — EphID granularity policies (VIII-A).
* :mod:`repro.core.revocation` — revocation management (VIII-G2).
* :mod:`repro.core.autonomous_system` — the simulated AS assembly.
"""

from .accountability import AccountabilityAgent
from .autonomous_system import (
    ApnaAutonomousSystem,
    ApnaHostNode,
    BorderRouterNode,
    ServiceIdentity,
)
from .border_router import Action, BorderRouter, DropReason, Verdict
from .certs import AsCertificate, EphIdCertificate, FLAG_CONTROL, FLAG_RECEIVE_ONLY
from .config import ApnaConfig, DEFAULT_CONFIG
from .ephid import EphIdCodec, EphIdInfo, IvAllocator
from .errors import (
    ApnaError,
    AuthError,
    CertError,
    EphIdError,
    ExpiredError,
    IssuanceError,
    MacError,
    RevokedError,
    ShutoffError,
    UnknownHostError,
)
from .granularity import (
    FlowKey,
    GranularityPolicy,
    PerApplicationPolicy,
    PerFlowPolicy,
    PerHostPolicy,
    PerPacketPolicy,
    make_policy,
)
from .host import HostStack
from .hostdb import HostDatabase, HostRecord
from .infrabus import InfraBus
from .keys import (
    AsKeyMaterial,
    AsSecret,
    EphIdKeyPair,
    ExchangeKeyPair,
    HostAsKeys,
    SigningKeyPair,
)
from .management import ManagementService
from .messages import (
    BootstrapReply,
    BootstrapRequest,
    EphIdReply,
    EphIdRequest,
    IdInfo,
    InfraUpdate,
    RevocationPush,
    ShutoffRequest,
    ShutoffResponse,
)
from .onetime import DemuxError, FlowTagger, TagDemuxer
from .registry import RegistryService, credential_proof
from .replay import ReplayWindow
from .replay_filter import BloomFilter, RotatingReplayFilter
from .revocation import RevocationList, RevocationPolicy
from .rpki import RpkiDirectory, TrustAnchor
from .session import (
    ConnectionAccept,
    ConnectionRequest,
    OwnedEphId,
    Session,
    SessionError,
    derive_session_key,
)

__all__ = [
    "AccountabilityAgent",
    "Action",
    "ApnaAutonomousSystem",
    "ApnaConfig",
    "ApnaError",
    "ApnaHostNode",
    "AsCertificate",
    "AsKeyMaterial",
    "AsSecret",
    "AuthError",
    "BloomFilter",
    "BootstrapReply",
    "BootstrapRequest",
    "BorderRouter",
    "BorderRouterNode",
    "CertError",
    "ConnectionAccept",
    "ConnectionRequest",
    "DEFAULT_CONFIG",
    "DemuxError",
    "DropReason",
    "EphIdCertificate",
    "EphIdCodec",
    "EphIdError",
    "EphIdInfo",
    "EphIdKeyPair",
    "EphIdReply",
    "EphIdRequest",
    "ExchangeKeyPair",
    "ExpiredError",
    "FLAG_CONTROL",
    "FLAG_RECEIVE_ONLY",
    "FlowKey",
    "FlowTagger",
    "GranularityPolicy",
    "HostAsKeys",
    "HostDatabase",
    "HostRecord",
    "HostStack",
    "IdInfo",
    "InfraBus",
    "InfraUpdate",
    "IssuanceError",
    "IvAllocator",
    "MacError",
    "ManagementService",
    "OwnedEphId",
    "PerApplicationPolicy",
    "PerFlowPolicy",
    "PerHostPolicy",
    "PerPacketPolicy",
    "RegistryService",
    "ReplayWindow",
    "RevocationList",
    "RevocationPolicy",
    "RevocationPush",
    "RevokedError",
    "RotatingReplayFilter",
    "RpkiDirectory",
    "ServiceIdentity",
    "Session",
    "SessionError",
    "ShutoffError",
    "ShutoffRequest",
    "ShutoffResponse",
    "SigningKeyPair",
    "TagDemuxer",
    "TrustAnchor",
    "UnknownHostError",
    "Verdict",
    "credential_proof",
    "derive_session_key",
    "make_policy",
]
