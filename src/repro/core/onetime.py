"""Per-packet EphID demultiplexing (paper Section VIII-A, reference [23]).

"A host could use different EphIDs per each packet.  Hence, it would be
difficult to link different packets even to a single flow, providing the
strongest privacy guarantee.  However, even the destination host cannot
demultiplex packets into flows based on the APNA headers in the packets.
An additional protocol is necessary to demultiplex packets [23]."

This module is that additional protocol, following the one-time-address
idea of the paper's reference [23] (Lee et al., ICNP 2016): both session
endpoints derive a *flow-tag* sequence from the established session key,

    tag_i = CMAC(k_demux, i)[:8]      k_demux = HKDF(session key),

the sender prepends the next tag to each data payload, and the receiver
keeps a window of live tags per session.  To any observer the tags are
indistinguishable from random and never repeat, so they leak nothing the
per-packet EphIDs were hiding; to the receiver each tag names exactly one
session, restoring demultiplexing without readable headers.

Each tag is single-use (a reused tag is rejected — the session layer
already rejects replayed *payloads*, this keeps the demux layer from
becoming a cheaper oracle).  Reordering is tolerated up to ``window``
positions behind and ahead of the newest delivered packet; memory is
bounded at ``2 x window`` precomputed tags per session.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto.cmac import Cmac
from ..crypto.kdf import hkdf
from .errors import ApnaError
from .session import Session

TAG_SIZE = 8

#: Reordering horizon (positions) a receiver tolerates per session.
DEFAULT_WINDOW = 64


class DemuxError(ApnaError):
    """A one-time-tagged payload could not be demultiplexed."""


def derive_demux_key(session: Session) -> bytes:
    """The tag key both endpoints derive from the session key."""
    return hkdf(session.key, info=b"apna-ota-demux-v1", length=16)


def flow_tag(demux_key: bytes, index: int) -> bytes:
    """The ``index``-th tag of a session's tag sequence."""
    return Cmac(demux_key).tag(struct.pack(">Q", index), TAG_SIZE)


class FlowTagger:
    """Sender side: hands out consecutive tags for one session."""

    def __init__(self, session: Session) -> None:
        self._mac = Cmac(derive_demux_key(session))
        self._next = 0

    def next_tag(self) -> bytes:
        tag = self._mac.tag(struct.pack(">Q", self._next), TAG_SIZE)
        self._next += 1
        return tag

    @property
    def issued(self) -> int:
        return self._next


@dataclass
class _SessionWindow:
    session: Session
    key: bytes
    low: int  # lowest still-live index
    high: int  # first index not yet precomputed


class TagDemuxer:
    """Receiver side: maps incoming tags back to their sessions.

    All live tags of all registered sessions share one dictionary, so
    matching costs a single lookup — no per-session scan, no trial
    decryption.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._by_tag: dict[bytes, tuple[int, int]] = {}  # tag -> (handle, index)
        self._windows: dict[int, _SessionWindow] = {}  # handle -> state
        self.matched = 0
        self.unmatched = 0

    def register(self, session: Session) -> None:
        """Start demultiplexing for ``session``."""
        handle = id(session)
        if handle in self._windows:
            return
        key = derive_demux_key(session)
        state = _SessionWindow(session=session, key=key, low=0, high=0)
        self._windows[handle] = state
        self._extend(handle, state, self.window)

    def unregister(self, session: Session) -> None:
        handle = id(session)
        state = self._windows.pop(handle, None)
        if state is None:
            return
        for index in range(state.low, state.high):
            self._by_tag.pop(flow_tag(state.key, index), None)

    def _extend(self, handle: int, state: _SessionWindow, up_to: int) -> None:
        """Precompute tags so indexes < ``up_to`` are live, trim the tail."""
        for index in range(state.high, up_to):
            self._by_tag[flow_tag(state.key, index)] = (handle, index)
        state.high = max(state.high, up_to)
        floor = state.high - 2 * self.window
        while state.low < floor:
            self._by_tag.pop(flow_tag(state.key, state.low), None)
            state.low += 1

    def match(self, tag: bytes) -> Session:
        """The session a tag belongs to; raises :class:`DemuxError`.

        The matched tag is retired (single-use) and the session's window
        advances so a burst ``window`` positions ahead stays matchable.
        """
        entry = self._by_tag.pop(tag, None)
        if entry is None:
            self.unmatched += 1
            raise DemuxError("unknown, reused or out-of-window flow tag")
        handle, index = entry
        state = self._windows[handle]
        self._extend(handle, state, index + 1 + self.window)
        self.matched += 1
        return state.session

    @property
    def sessions(self) -> int:
        return len(self._windows)

    def live_tags(self) -> int:
        return len(self._by_tag)


def pack_tagged(tag: bytes, sealed: bytes) -> bytes:
    """Wire form of a one-time-tagged payload: ``tag || sealed data``."""
    if len(tag) != TAG_SIZE:
        raise DemuxError(f"tag must be {TAG_SIZE} bytes")
    return tag + sealed


def unpack_tagged(body: bytes) -> tuple[bytes, bytes]:
    if len(body) < TAG_SIZE:
        raise DemuxError("tagged payload shorter than its tag")
    return body[:TAG_SIZE], body[TAG_SIZE:]
