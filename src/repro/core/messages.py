"""Control-plane message formats (Figs. 2, 3 and 5 of the paper).

Every message has a fixed, explicit binary serialization so the full
protocol is exercised byte-for-byte.  Variable-length fields use 2-byte
big-endian length prefixes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..crypto import ed25519
from .certs import EPHID_CERT_SIZE, EphIdCertificate
from .errors import ApnaError
from .keys import SigningKeyPair

EPHID_SIZE = 16


class MessageError(ApnaError):
    """A control message failed to parse."""


def _take(data: bytes, offset: int, size: int) -> tuple[bytes, int]:
    if offset + size > len(data):
        raise MessageError(f"message truncated at offset {offset} (+{size})")
    return data[offset : offset + size], offset + size


def _take_var(data: bytes, offset: int) -> tuple[bytes, int]:
    raw, offset = _take(data, offset, 2)
    (size,) = struct.unpack(">H", raw)
    return _take(data, offset, size)


def _put_var(chunk: bytes) -> bytes:
    if len(chunk) > 0xFFFF:
        raise MessageError(f"variable field too large: {len(chunk)}")
    return struct.pack(">H", len(chunk)) + chunk


# ---------------------------------------------------------------------------
# Host bootstrapping (Fig. 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BootstrapRequest:
    """Host -> RS: authentication credential and the host public key K+H.

    The paper does not fix the authentication protocol (RADIUS, Diameter,
    ...); we model a subscriber id plus an HMAC proof over the presented
    public key computed with the subscriber secret, which gives the same
    guarantee the paper assumes: the RS learns an authenticated K+H.
    """

    subscriber_id: int
    host_public: bytes
    proof: bytes

    def pack(self) -> bytes:
        return (
            struct.pack(">Q", self.subscriber_id)
            + _put_var(self.host_public)
            + _put_var(self.proof)
        )

    @classmethod
    def parse(cls, data: bytes) -> "BootstrapRequest":
        raw, offset = _take(data, 0, 8)
        (subscriber_id,) = struct.unpack(">Q", raw)
        host_public, offset = _take_var(data, offset)
        proof, offset = _take_var(data, offset)
        return cls(subscriber_id, host_public, proof)


@dataclass(frozen=True)
class IdInfo:
    """The signed ``{EphID_ctrl, ExpTime}`` blob of Fig. 2."""

    ephid: bytes = field(repr=False)
    exp_time: int
    signature: bytes = field(default=bytes(ed25519.SIGNATURE_SIZE), repr=False)

    _CONTEXT = b"apna-id-info-v1:"
    _FMT = f">{EPHID_SIZE}sI"
    SIZE = struct.calcsize(_FMT) + ed25519.SIGNATURE_SIZE

    def tbs(self) -> bytes:
        return self._CONTEXT + struct.pack(self._FMT, self.ephid, self.exp_time)

    @classmethod
    def issue(cls, signer: SigningKeyPair, ephid: bytes, exp_time: int) -> "IdInfo":
        unsigned = cls(ephid=ephid, exp_time=exp_time)
        return cls(ephid=ephid, exp_time=exp_time, signature=signer.sign(unsigned.tbs()))

    def verify(self, as_public: bytes) -> bool:
        return ed25519.verify(as_public, self.tbs(), self.signature)

    def pack(self) -> bytes:
        return struct.pack(self._FMT, self.ephid, self.exp_time) + self.signature

    @classmethod
    def parse(cls, data: bytes) -> "IdInfo":
        if len(data) < cls.SIZE:
            raise MessageError(f"IdInfo needs {cls.SIZE} bytes, got {len(data)}")
        ephid, exp_time = struct.unpack_from(cls._FMT, data)
        body = struct.calcsize(cls._FMT)
        return cls(ephid=ephid, exp_time=exp_time, signature=data[body : cls.SIZE])


@dataclass(frozen=True)
class BootstrapReply:
    """RS -> host (m2): id_info plus MS and DNS service certificates."""

    id_info: IdInfo
    ms_cert: EphIdCertificate
    dns_cert: EphIdCertificate

    def pack(self) -> bytes:
        return self.id_info.pack() + self.ms_cert.pack() + self.dns_cert.pack()

    @classmethod
    def parse(cls, data: bytes) -> "BootstrapReply":
        id_info = IdInfo.parse(data)
        offset = IdInfo.SIZE
        ms_raw, offset = _take(data, offset, EPHID_CERT_SIZE)
        dns_raw, offset = _take(data, offset, EPHID_CERT_SIZE)
        return cls(
            id_info=id_info,
            ms_cert=EphIdCertificate.parse(ms_raw),
            dns_cert=EphIdCertificate.parse(dns_raw),
        )


@dataclass(frozen=True)
class InfraUpdate:
    """RS -> AS entities (m1): the new host's (HID, kHA) pair.

    Sealed with the AS infrastructure key so that only AS entities learn
    host bindings (Fig. 2's ``m1 = E_kA(HID, kHA)``).
    """

    hid: int
    control_key: bytes
    packet_mac_key: bytes

    def pack(self) -> bytes:
        return (
            struct.pack(">I", self.hid)
            + _put_var(self.control_key)
            + _put_var(self.packet_mac_key)
        )

    @classmethod
    def parse(cls, data: bytes) -> "InfraUpdate":
        raw, offset = _take(data, 0, 4)
        (hid,) = struct.unpack(">I", raw)
        control_key, offset = _take_var(data, offset)
        packet_mac_key, offset = _take_var(data, offset)
        return cls(hid, control_key, packet_mac_key)


# ---------------------------------------------------------------------------
# EphID issuance (Fig. 3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EphIdRequest:
    """Host -> MS (inside E_kHA): the host-generated EphID public keys.

    ``lifetime`` expresses the Section VIII-G1 extension letting hosts
    choose an expiration class; 0 means "AS default".
    """

    dh_public: bytes
    sig_public: bytes
    flags: int = 0
    lifetime: float = 0.0

    def pack(self) -> bytes:
        return struct.pack(
            ">32s32sBd", self.dh_public, self.sig_public, self.flags, self.lifetime
        )

    @classmethod
    def parse(cls, data: bytes) -> "EphIdRequest":
        if len(data) < struct.calcsize(">32s32sBd"):
            raise MessageError("EphIdRequest truncated")
        dh_public, sig_public, flags, lifetime = struct.unpack_from(">32s32sBd", data)
        return cls(dh_public, sig_public, flags, lifetime)


@dataclass(frozen=True)
class EphIdReply:
    """MS -> host (inside E_kHA): the issued certificate."""

    cert: EphIdCertificate

    def pack(self) -> bytes:
        return self.cert.pack()

    @classmethod
    def parse(cls, data: bytes) -> "EphIdReply":
        return cls(cert=EphIdCertificate.parse(data))


# ---------------------------------------------------------------------------
# Shutoff protocol (Fig. 5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShutoffRequest:
    """Recipient -> AA of the source AS.

    Carries the unwanted packet (the proof the source actually sent it),
    the recipient's signature over that packet with K-EphID_d, and the
    recipient's EphID certificate (proof it owns the destination EphID).
    """

    packet: bytes
    signature: bytes
    cert: EphIdCertificate

    def pack(self) -> bytes:
        return _put_var(self.packet) + _put_var(self.signature) + self.cert.pack()

    @classmethod
    def parse(cls, data: bytes) -> "ShutoffRequest":
        packet, offset = _take_var(data, 0)
        signature, offset = _take_var(data, offset)
        cert_raw, offset = _take(data, offset, EPHID_CERT_SIZE)
        return cls(packet, signature, EphIdCertificate.parse(cert_raw))

    SIGN_CONTEXT = b"apna-shutoff-v1:"

    def signed_bytes(self) -> bytes:
        return self.SIGN_CONTEXT + self.packet


@dataclass(frozen=True)
class ShutoffResponse:
    """AA -> requester: outcome of the shutoff request."""

    accepted: bool
    reason: str = ""

    def pack(self) -> bytes:
        return struct.pack(">B", int(self.accepted)) + _put_var(
            self.reason.encode("utf-8")
        )

    @classmethod
    def parse(cls, data: bytes) -> "ShutoffResponse":
        raw, offset = _take(data, 0, 1)
        reason, offset = _take_var(data, offset)
        try:
            text = reason.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise MessageError(f"reason is not valid UTF-8: {exc}") from exc
        return cls(bool(raw[0]), text)


@dataclass(frozen=True)
class RevocationPush:
    """AA -> border routers: ``MAC_kAS(revoke EphID_s)`` of Fig. 5."""

    ephid: bytes
    exp_time: int
    mac: bytes = b""

    _FMT = f">{EPHID_SIZE}sI"

    def mac_input(self) -> bytes:
        return b"apna-revoke-v1:" + struct.pack(self._FMT, self.ephid, self.exp_time)

    def pack(self) -> bytes:
        return struct.pack(self._FMT, self.ephid, self.exp_time) + _put_var(self.mac)

    @classmethod
    def parse(cls, data: bytes) -> "RevocationPush":
        raw, offset = _take(data, 0, struct.calcsize(cls._FMT))
        ephid, exp_time = struct.unpack(cls._FMT, raw)
        mac, offset = _take_var(data, offset)
        return cls(ephid, exp_time, mac)
