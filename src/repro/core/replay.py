"""Anti-replay detection (paper Section VIII-D).

"Replay attacks can be prevented by making every packet unique ... the
destination host performs replay detection based on the nonces in the
packets and discards all duplicates."  The standard realisation is a
sliding window over sequence numbers: values too far in the past are
rejected outright, recent values are tracked exactly.
"""

from __future__ import annotations


class ReplayWindow:
    """Sliding-window duplicate detector over monotonically-ish nonces."""

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._max_seen = -1
        self._seen: set[int] = set()
        self.accepted = 0
        self.rejected = 0

    def check(self, nonce: int) -> bool:
        """True (and record it) if ``nonce`` is fresh; False for replays."""
        if nonce < 0:
            self.rejected += 1
            return False
        floor = self._max_seen - self.window
        if nonce <= floor or nonce in self._seen:
            self.rejected += 1
            return False
        self._seen.add(nonce)
        if nonce > self._max_seen:
            self._max_seen = nonce
            # Evict entries that fell out of the window.
            new_floor = self._max_seen - self.window
            if len(self._seen) > 2 * self.window:
                self._seen = {n for n in self._seen if n > new_floor}
        self.accepted += 1
        return True

    @property
    def max_seen(self) -> int:
        return self._max_seen
