"""Short-lived EphID certificates (paper Section IV-C).

An AS certifies the binding between an EphID and the host-generated
public key by signing::

    C_EphID = { EphID, ExpTime, K+EphID, AID_AS, EphID_aa } signed K-AS

From the certificate a peer learns the public key bound to the EphID, the
expiration time, the issuing AS (AID) and the EphID of the AS's
accountability agent — the address shutoff requests go to.

Because the reproduction splits K+EphID into a DH key and a signing key
(see :mod:`repro.core.keys`), the certificate carries both public keys.
A flags byte marks receive-only EphIDs (Section VII-A) so that host
stacks refuse to use them as source identifiers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..crypto import ed25519
from .errors import CertError
from .keys import SigningKeyPair

EPHID_SIZE = 16

FLAG_RECEIVE_ONLY = 0x01
FLAG_CONTROL = 0x02

_EPHID_CERT_CONTEXT = b"apna-ephid-cert-v1:"
_EPHID_CERT_FMT = f">{EPHID_SIZE}sI32s32sI{EPHID_SIZE}sB"
_EPHID_CERT_TBS_SIZE = struct.calcsize(_EPHID_CERT_FMT)
EPHID_CERT_SIZE = _EPHID_CERT_TBS_SIZE + ed25519.SIGNATURE_SIZE


@dataclass(frozen=True)
class EphIdCertificate:
    """A short-lived certificate for one EphID."""

    ephid: bytes = field(repr=False)
    exp_time: int
    dh_public: bytes = field(repr=False)
    sig_public: bytes = field(repr=False)
    aid: int = 0
    aa_ephid: bytes = field(default=bytes(EPHID_SIZE), repr=False)
    flags: int = 0
    signature: bytes = field(default=bytes(ed25519.SIGNATURE_SIZE), repr=False)

    def __post_init__(self) -> None:
        if len(self.ephid) != EPHID_SIZE:
            raise CertError("ephid must be 16 bytes")
        if len(self.dh_public) != 32 or len(self.sig_public) != 32:
            raise CertError("public keys must be 32 bytes")
        if len(self.aa_ephid) != EPHID_SIZE:
            raise CertError("aa_ephid must be 16 bytes")
        if not 0 <= self.exp_time <= 2**32 - 1:
            raise CertError("exp_time out of range")
        if not 0 <= self.aid <= 2**32 - 1:
            raise CertError("aid out of range")
        if not 0 <= self.flags <= 255:
            raise CertError("flags out of range")
        if len(self.signature) != ed25519.SIGNATURE_SIZE:
            raise CertError("signature must be 64 bytes")

    def tbs(self) -> bytes:
        """The to-be-signed serialization."""
        return _EPHID_CERT_CONTEXT + struct.pack(
            _EPHID_CERT_FMT,
            self.ephid,
            self.exp_time,
            self.dh_public,
            self.sig_public,
            self.aid,
            self.aa_ephid,
            self.flags,
        )

    @classmethod
    def issue(
        cls,
        signer: SigningKeyPair,
        *,
        ephid: bytes,
        exp_time: int,
        dh_public: bytes,
        sig_public: bytes,
        aid: int,
        aa_ephid: bytes,
        flags: int = 0,
    ) -> "EphIdCertificate":
        unsigned = cls(
            ephid=ephid,
            exp_time=exp_time,
            dh_public=dh_public,
            sig_public=sig_public,
            aid=aid,
            aa_ephid=aa_ephid,
            flags=flags,
        )
        signature = signer.sign(unsigned.tbs())
        return cls(
            ephid=ephid,
            exp_time=exp_time,
            dh_public=dh_public,
            sig_public=sig_public,
            aid=aid,
            aa_ephid=aa_ephid,
            flags=flags,
            signature=signature,
        )

    def verify(self, as_public: bytes, *, now: float | None = None) -> None:
        """Check signature (and optionally freshness); raises :class:`CertError`."""
        if not ed25519.verify(as_public, self.tbs(), self.signature):
            raise CertError("EphID certificate signature invalid")
        if now is not None and self.exp_time < now:
            raise CertError(f"EphID certificate expired at {self.exp_time}")

    @property
    def receive_only(self) -> bool:
        return bool(self.flags & FLAG_RECEIVE_ONLY)

    def pack(self) -> bytes:
        return self.tbs()[len(_EPHID_CERT_CONTEXT) :] + self.signature

    @classmethod
    def parse(cls, data: bytes) -> "EphIdCertificate":
        if len(data) < EPHID_CERT_SIZE:
            raise CertError(
                f"EphID certificate needs {EPHID_CERT_SIZE} bytes, got {len(data)}"
            )
        ephid, exp_time, dh_public, sig_public, aid, aa_ephid, flags = struct.unpack_from(
            _EPHID_CERT_FMT, data
        )
        signature = data[_EPHID_CERT_TBS_SIZE:EPHID_CERT_SIZE]
        return cls(
            ephid=ephid,
            exp_time=exp_time,
            dh_public=dh_public,
            sig_public=sig_public,
            aid=aid,
            aa_ephid=aa_ephid,
            flags=flags,
            signature=signature,
        )


_AS_CERT_CONTEXT = b"apna-as-cert-v1:"
_AS_CERT_FMT = ">I32s32sI"
_AS_CERT_TBS_SIZE = struct.calcsize(_AS_CERT_FMT)
AS_CERT_SIZE = _AS_CERT_TBS_SIZE + ed25519.SIGNATURE_SIZE


@dataclass(frozen=True)
class AsCertificate:
    """An RPKI-style certificate binding an AID to the AS public keys."""

    aid: int
    signing_public: bytes = field(repr=False)
    exchange_public: bytes = field(repr=False)
    exp_time: int = 2**32 - 1
    signature: bytes = field(default=bytes(ed25519.SIGNATURE_SIZE), repr=False)

    def __post_init__(self) -> None:
        if len(self.signing_public) != 32 or len(self.exchange_public) != 32:
            raise CertError("AS public keys must be 32 bytes")
        if not 0 <= self.aid <= 2**32 - 1:
            raise CertError("aid out of range")
        if not 0 <= self.exp_time <= 2**32 - 1:
            raise CertError("exp_time out of range")

    def tbs(self) -> bytes:
        return _AS_CERT_CONTEXT + struct.pack(
            _AS_CERT_FMT,
            self.aid,
            self.signing_public,
            self.exchange_public,
            self.exp_time,
        )

    @classmethod
    def issue(
        cls,
        anchor: SigningKeyPair,
        *,
        aid: int,
        signing_public: bytes,
        exchange_public: bytes,
        exp_time: int = 2**32 - 1,
    ) -> "AsCertificate":
        unsigned = cls(
            aid=aid,
            signing_public=signing_public,
            exchange_public=exchange_public,
            exp_time=exp_time,
        )
        return cls(
            aid=aid,
            signing_public=signing_public,
            exchange_public=exchange_public,
            exp_time=exp_time,
            signature=anchor.sign(unsigned.tbs()),
        )

    def verify(self, anchor_public: bytes, *, now: float | None = None) -> None:
        if not ed25519.verify(anchor_public, self.tbs(), self.signature):
            raise CertError("AS certificate signature invalid")
        if now is not None and self.exp_time < now:
            raise CertError(f"AS certificate expired at {self.exp_time}")

    def pack(self) -> bytes:
        return self.tbs()[len(_AS_CERT_CONTEXT) :] + self.signature

    @classmethod
    def parse(cls, data: bytes) -> "AsCertificate":
        if len(data) < AS_CERT_SIZE:
            raise CertError(f"AS certificate needs {AS_CERT_SIZE} bytes, got {len(data)}")
        aid, signing_public, exchange_public, exp_time = struct.unpack_from(
            _AS_CERT_FMT, data
        )
        return cls(
            aid=aid,
            signing_public=signing_public,
            exchange_public=exchange_public,
            exp_time=exp_time,
            signature=data[_AS_CERT_TBS_SIZE:AS_CERT_SIZE],
        )
