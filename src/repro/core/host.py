"""The APNA host stack (sans-IO).

Everything a host does in the paper, as pure request/response building
blocks: bootstrapping (Fig. 2), EphID acquisition (Fig. 3), per-packet
source authentication (Section IV-D2), session establishment
(Section IV-D1) and shutoff requests (Fig. 5).  Transport (the simulator
or a benchmark loop) is supplied by the caller; the
:class:`repro.core.autonomous_system.ApnaHostNode` adapter wires this
stack onto the simulated network.
"""

from __future__ import annotations

from typing import Callable

from ..crypto.aead import EtmScheme
from ..crypto.cmac import Cmac
from ..crypto.rng import Rng, SystemRng
from ..wire.apna import ApnaHeader, ApnaPacket, Endpoint
from .certs import EphIdCertificate
from .config import ApnaConfig, DEFAULT_CONFIG
from .errors import ApnaError, CertError, MacError
from .keys import EphIdKeyPair, ExchangeKeyPair, HostAsKeys, host_as_dh
from .messages import (
    BootstrapReply,
    BootstrapRequest,
    EphIdReply,
    EphIdRequest,
    ShutoffRequest,
)
from .registry import credential_proof
from .rpki import RpkiDirectory
from .session import OwnedEphId, Session


class HostStack:
    """Protocol engine for one APNA host."""

    def __init__(
        self,
        aid: int,
        subscriber_id: int,
        subscriber_secret: bytes,
        rpki: RpkiDirectory,
        clock: Callable[[], float],
        *,
        config: ApnaConfig = DEFAULT_CONFIG,
        rng: Rng | None = None,
    ) -> None:
        self.aid = aid
        self.subscriber_id = subscriber_id
        self._subscriber_secret = subscriber_secret
        self._rpki = rpki
        self._clock = clock
        self.config = config
        self._rng = rng or SystemRng()
        self.keys = ExchangeKeyPair.generate(self._rng)  # K+H / K-H

        # Populated by bootstrapping.
        self.kha: HostAsKeys | None = None
        self.control_ephid: bytes | None = None
        self.control_exp: int | None = None
        self.ms_cert: EphIdCertificate | None = None
        self.dns_cert: EphIdCertificate | None = None
        self._packet_mac: Cmac | None = None
        self._ctrl_scheme: EtmScheme | None = None

    # -- Fig. 2: bootstrapping --

    def build_bootstrap_request(self) -> BootstrapRequest:
        return BootstrapRequest(
            subscriber_id=self.subscriber_id,
            host_public=self.keys.public,
            proof=credential_proof(self._subscriber_secret, self.keys.public),
        )

    def accept_bootstrap_reply(self, reply: BootstrapReply) -> None:
        """Verify m2 and derive kHA; raises :class:`CertError` on forgery."""
        as_cert = self._rpki.lookup(self.aid)
        if not reply.id_info.verify(as_cert.signing_public):
            raise CertError("id_info signature invalid")
        reply.ms_cert.verify(as_cert.signing_public, now=self._clock())
        reply.dns_cert.verify(as_cert.signing_public, now=self._clock())
        self.kha = host_as_dh(self.keys, as_cert.exchange_public)
        self._packet_mac = Cmac(self.kha.packet_mac)
        self._ctrl_scheme = EtmScheme(self.kha.control)
        self.control_ephid = reply.id_info.ephid
        self.control_exp = reply.id_info.exp_time
        self.ms_cert = reply.ms_cert
        self.dns_cert = reply.dns_cert

    @property
    def bootstrapped(self) -> bool:
        return self.kha is not None

    def _require_bootstrap(self) -> HostAsKeys:
        if self.kha is None:
            raise ApnaError("host is not bootstrapped")
        return self.kha

    # -- Fig. 3: EphID acquisition --

    def build_ephid_request(
        self, flags: int = 0, lifetime: float | None = None
    ) -> tuple[EphIdKeyPair, bytes]:
        """Generate the EphID key pair and the sealed request bytes."""
        self._require_bootstrap()
        assert self._ctrl_scheme is not None
        keypair = EphIdKeyPair.generate(self._rng)
        request = EphIdRequest(
            dh_public=keypair.exchange.public,
            sig_public=keypair.signing.public,
            flags=flags,
            lifetime=lifetime or 0.0,
        )
        nonce = self._rng.read(12)
        sealed = self._ctrl_scheme.seal(nonce, request.pack(), b"ephid-request")
        return keypair, nonce + sealed

    def build_ephid_request_for(
        self,
        dh_public: bytes,
        sig_public: bytes,
        flags: int = 0,
        lifetime: float | None = None,
    ) -> bytes:
        """Request an EphID bound to *someone else's* public keys.

        Used by NAT-mode access points (Section VII-B): "when requesting
        an EphID to the MS of the AS, the AP uses an ephemeral public key
        that is supplied by its host."
        """
        self._require_bootstrap()
        assert self._ctrl_scheme is not None
        request = EphIdRequest(
            dh_public=dh_public,
            sig_public=sig_public,
            flags=flags,
            lifetime=lifetime or 0.0,
        )
        nonce = self._rng.read(12)
        return nonce + self._ctrl_scheme.seal(nonce, request.pack(), b"ephid-request")

    def accept_ephid_reply_cert(self, sealed: bytes) -> EphIdCertificate:
        """Open a sealed issuance reply without binding it to a local key
        pair (the AP side of proxied issuance)."""
        self._require_bootstrap()
        assert self._ctrl_scheme is not None
        if len(sealed) < 12:
            raise ApnaError("EphID reply too short")
        nonce, body = sealed[:12], sealed[12:]
        try:
            plain = self._ctrl_scheme.open(nonce, body, b"ephid-reply")
        except ValueError as exc:
            raise MacError("EphID reply failed authentication") from exc
        cert = EphIdReply.parse(plain).cert
        as_cert = self._rpki.lookup(self.aid)
        cert.verify(as_cert.signing_public, now=self._clock())
        return cert

    def accept_ephid_reply(self, keypair: EphIdKeyPair, sealed: bytes) -> OwnedEphId:
        """Open and verify the sealed certificate reply."""
        self._require_bootstrap()
        assert self._ctrl_scheme is not None
        if len(sealed) < 12:
            raise ApnaError("EphID reply too short")
        nonce, body = sealed[:12], sealed[12:]
        try:
            plain = self._ctrl_scheme.open(nonce, body, b"ephid-reply")
        except ValueError as exc:
            raise MacError("EphID reply failed authentication") from exc
        cert = EphIdReply.parse(plain).cert
        as_cert = self._rpki.lookup(self.aid)
        cert.verify(as_cert.signing_public, now=self._clock())
        if cert.dh_public != keypair.exchange.public:
            raise CertError("certificate does not match our DH key")
        if cert.sig_public != keypair.signing.public:
            raise CertError("certificate does not match our signing key")
        return OwnedEphId(cert=cert, keypair=keypair)

    # -- Section IV-D2: per-packet source authentication --

    def make_packet(
        self,
        src_ephid: bytes,
        dst: Endpoint,
        payload: bytes,
        *,
        nonce: int | None = None,
    ) -> ApnaPacket:
        """Build a MAC'd APNA packet from one of our EphIDs."""
        self._require_bootstrap()
        assert self._packet_mac is not None
        header = ApnaHeader(
            src_aid=self.aid,
            src_ephid=src_ephid,
            dst_ephid=dst.ephid,
            dst_aid=dst.aid,
            nonce=nonce,
        )
        mac = self._packet_mac.tag(
            header.mac_input(payload), self.config.packet_mac_size
        )
        return ApnaPacket(header.with_mac(mac), payload)

    def verify_own_packet(self, packet: ApnaPacket) -> bool:
        """Check a packet's MAC against our kHA (testing/diagnostics)."""
        self._require_bootstrap()
        assert self._packet_mac is not None
        expected = self._packet_mac.tag(
            packet.mac_input(), self.config.packet_mac_size
        )
        return expected == packet.header.mac

    # -- Section IV-D1: sessions --

    def verify_peer_cert(self, cert: EphIdCertificate) -> None:
        """Validate a peer's EphID certificate via RPKI (MitM defence)."""
        as_key = self._rpki.signing_key_of(cert.aid)
        cert.verify(as_key, now=self._clock())

    def open_session(
        self, local: OwnedEphId, peer_cert: EphIdCertificate, *, verify: bool = True
    ) -> Session:
        if verify:
            self.verify_peer_cert(peer_cert)
        if local.receive_only:
            raise ApnaError("receive-only EphIDs must not source a session")
        return Session(local, peer_cert, scheme=self.config.aead_scheme)

    # -- Fig. 5: shutoff requests --

    def build_shutoff_request(
        self, offending_packet: bytes, owned: OwnedEphId
    ) -> ShutoffRequest:
        """Sign a shutoff request as the recipient of ``offending_packet``."""
        unsigned = ShutoffRequest(
            packet=offending_packet,
            signature=b"",
            cert=owned.cert,
        )
        signature = owned.keypair.signing.sign(unsigned.signed_bytes())
        return ShutoffRequest(
            packet=offending_packet, signature=signature, cert=owned.cert
        )
