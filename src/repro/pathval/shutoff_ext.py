"""The strengthened shutoff protocol of paper Section VIII-C.

The base protocol (Fig. 5) authorizes only the packet's recipient to
request a shutoff.  "When such proposals [Passport, ICING, OPT] are
combined with our architecture, the list of authorized entities can be
extended to include on-path ASes (or their routers)."

An on-path AS presents:

1. the offending packet exactly as it forwarded it;
2. the Passport stamp addressed to it (its proof of being on the path);
3. an Ed25519 signature with its RPKI-registered AS key.

The source AS's accountability agent then checks, mirroring Fig. 5:

* the signature authenticates a real AS (RPKI lookup);
* its own customer really sent the packet (EphID decrypt + kHA MAC —
  the same no-rogue-packet check as the base protocol);
* the presented stamp equals the stamp its own border router computes
  for that (packet, requester) pair — since the pairwise key is known
  only to the two ASes, a valid stamp proves the source AS emitted this
  exact packet toward a path containing the requester.

A requester technically holds the pairwise key and could mint the stamp
itself, but it cannot mint the *packet*: the kHA MAC check means every
accepted complaint concerns genuine customer traffic, so a forged stamp
only lets an AS complain about traffic it provably could have observed —
the same power the destination already has.
"""

from __future__ import annotations

import struct

from ..core.accountability import AccountabilityAgent
from ..core.errors import CertError
from ..core.messages import ShutoffResponse
from ..crypto import ed25519
from ..crypto.util import ct_eq
from ..wire.apna import ApnaPacket, HEADER_SIZE
from .keys import AsPairwiseKeys
from .passport import PASSPORT_MAC_SIZE, PassportStamper

_SIGN_CONTEXT = b"apna-onpath-shutoff-v1:"


class OnPathShutoffRequest:
    """A shutoff request issued by an on-path AS (not the recipient)."""

    def __init__(
        self,
        packet: bytes,
        requester_aid: int,
        stamp: bytes,
        signature: bytes = b"",
    ) -> None:
        if len(stamp) != PASSPORT_MAC_SIZE:
            raise ValueError(f"stamp must be {PASSPORT_MAC_SIZE} bytes")
        self.packet = packet
        self.requester_aid = requester_aid
        self.stamp = stamp
        self.signature = signature

    def signed_bytes(self) -> bytes:
        return (
            _SIGN_CONTEXT
            + struct.pack(">I", self.requester_aid)
            + self.stamp
            + self.packet
        )

    @classmethod
    def build(
        cls,
        packet: bytes,
        requester_aid: int,
        stamp: bytes,
        signer,
    ) -> "OnPathShutoffRequest":
        """Create and sign a request with the requester AS's signing key."""
        request = cls(packet, requester_aid, stamp)
        request.signature = signer.sign(request.signed_bytes())
        return request

    def pack(self) -> bytes:
        return (
            struct.pack(">I", self.requester_aid)
            + self.stamp
            + self.signature
            + struct.pack(">H", len(self.packet))
            + self.packet
        )

    @classmethod
    def parse(cls, data: bytes) -> "OnPathShutoffRequest":
        fixed = 4 + PASSPORT_MAC_SIZE + ed25519.SIGNATURE_SIZE + 2
        if len(data) < fixed:
            raise ValueError("on-path shutoff request truncated")
        (requester_aid,) = struct.unpack_from(">I", data)
        offset = 4
        stamp = data[offset : offset + PASSPORT_MAC_SIZE]
        offset += PASSPORT_MAC_SIZE
        signature = data[offset : offset + ed25519.SIGNATURE_SIZE]
        offset += ed25519.SIGNATURE_SIZE
        (size,) = struct.unpack_from(">H", data, offset)
        offset += 2
        packet = data[offset : offset + size]
        if len(packet) != size:
            raise ValueError("on-path shutoff packet truncated")
        return cls(packet, requester_aid, stamp, signature)


class ExtendedAccountabilityAgent(AccountabilityAgent):
    """An accountability agent that also accepts on-path shutoffs.

    The base Fig. 5 recipient path is inherited unchanged; this class
    adds :meth:`handle_onpath_shutoff` backed by the AS's Passport
    stamper (the pairwise-key holder).
    """

    def __init__(self, *args, pairwise: AsPairwiseKeys, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stamper = PassportStamper(pairwise)
        self.onpath_accepted = 0

    def handle_onpath_shutoff(
        self, request: OnPathShutoffRequest, *, with_nonce: bool = False
    ) -> ShutoffResponse:
        """Validate an on-path AS's shutoff request and revoke the EphID."""
        if len(request.packet) < HEADER_SIZE:
            return self._reject("packet-too-short")
        try:
            packet = ApnaPacket.from_wire(request.packet, with_nonce=with_nonce)
        except ValueError:
            return self._reject("packet-unparseable")
        header = packet.header
        if header.src_aid != self.aid:
            return self._reject("not-our-source")
        if request.requester_aid == self.aid:
            return self._reject("requester-is-self")

        # The requester must be a real AS: RPKI key, valid signature.
        # Only a certificate problem means "unknown AS" — anything else
        # (a bug in the RPKI store) must propagate, not become a reject.
        try:
            requester_key = self._rpki.signing_key_of(request.requester_aid)
        except CertError:
            return self._reject("requester-unknown-as")
        if not ed25519.verify(
            requester_key, request.signed_bytes(), request.signature
        ):
            return self._reject("requester-signature-invalid")

        # Our customer really sent this packet (no rogue-packet shutoffs).
        info, reason = self._customer_check(packet)
        if info is None:
            return self._reject(reason)

        # The stamp proves the packet was emitted toward the requester.
        expected = self._stamper.restamp_mac(packet, request.requester_aid)
        if not ct_eq(expected, request.stamp):
            return self._reject("stamp-invalid")

        self.onpath_accepted += 1
        return self._revoke_source(header.src_ephid, info)


def upgrade_to_onpath(assembly) -> ExtendedAccountabilityAgent:
    """Swap an AS assembly's agent for the on-path-capable variant.

    Takes an :class:`repro.core.autonomous_system.ApnaAutonomousSystem`,
    replaces its ``aa`` in place (the base Fig. 5 behaviour is inherited,
    so recipient shutoffs keep working) and returns the new agent.
    """
    pairwise = AsPairwiseKeys(assembly.aid, assembly.keys.exchange, assembly.rpki)
    agent = ExtendedAccountabilityAgent(
        assembly.aid,
        assembly.codec,
        assembly.hostdb,
        assembly.bus,
        assembly.rpki,
        assembly.clock,
        assembly.config,
        pairwise=pairwise,
    )
    assembly.aa = agent
    return agent
