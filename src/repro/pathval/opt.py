"""OPT-style session path validation.

OPT (Kim et al., SIGCOMM 2014 — reference [22] of the paper) gives the
*endpoints* a proof of the path a packet actually traversed: each on-path
AS holds a per-session key and folds a MAC into a chained Path
Verification Field (PVF) as the packet passes.  The destination, knowing
all the per-session keys, recomputes the chain and compares.

Key setup follows OPT's DRKey idea in simulator form: every AS derives
its per-session key locally from a secret it alone holds and the session
identifier (no per-session state on routers), and the endpoints fetch the
derived keys over the APNA control channel during connection
establishment.  Here :meth:`OptSession.for_endpoints` performs that
fetch directly from the AS key materials, which stands in for the
encrypted key-delivery of DRKey without changing what is computed.
"""

from __future__ import annotations

import hashlib
import struct

from ..crypto.cmac import Cmac
from ..crypto.kdf import derive_subkey
from ..crypto.util import ct_eq
from ..wire.apna import ApnaPacket

PVF_SIZE = 16
SESSION_ID_SIZE = 16

_DIGEST_CONTEXT = b"apna-opt-digest-v1:"


class OptValidationError(Exception):
    """The PVF chain did not verify."""


def session_key(as_opt_secret: bytes, session_id: bytes) -> bytes:
    """One AS's per-session OPT key, derived statelessly (DRKey-style)."""
    if len(session_id) != SESSION_ID_SIZE:
        raise ValueError(f"session id must be {SESSION_ID_SIZE} bytes")
    return Cmac(as_opt_secret).tag(session_id, 16)


def opt_secret_of(as_master: bytes) -> bytes:
    """The AS-local secret that OPT session keys derive from."""
    return derive_subkey(as_master, "opt-drkey", 16)


def _packet_field(packet: ApnaPacket) -> bytes:
    return hashlib.sha256(_DIGEST_CONTEXT + packet.to_wire()).digest()[:PVF_SIZE]


class OptSession:
    """The endpoint view of one OPT-validated session.

    ``path_keys`` are the per-session keys of the on-path ASes in
    forwarding order (source AS first, destination AS last).
    """

    def __init__(self, session_id: bytes, path_keys: list[bytes]) -> None:
        if len(session_id) != SESSION_ID_SIZE:
            raise ValueError(f"session id must be {SESSION_ID_SIZE} bytes")
        if not path_keys:
            raise ValueError("OPT needs at least one on-path AS")
        self.session_id = session_id
        self._path_keys = list(path_keys)
        self.validated = 0
        self.failed = 0

    @classmethod
    def for_endpoints(
        cls, session_id: bytes, as_masters: list[bytes]
    ) -> "OptSession":
        """Build the endpoint view from the on-path AS master secrets.

        Stands in for DRKey's encrypted key fetch; see the module
        docstring.
        """
        keys = [session_key(opt_secret_of(m), session_id) for m in as_masters]
        return cls(session_id, keys)

    # -- data-plane operations ------------------------------------------

    def initial_pvf(self, packet: ApnaPacket) -> bytes:
        """PVF value the source writes into the packet."""
        return Cmac(self._path_keys[0]).tag(
            self.session_id + _packet_field(packet), PVF_SIZE
        )

    @staticmethod
    def update_pvf(as_session_key: bytes, pvf: bytes, packet: ApnaPacket) -> bytes:
        """The per-hop router operation: fold this AS's MAC into the PVF."""
        return Cmac(as_session_key).tag(pvf + _packet_field(packet), PVF_SIZE)

    def traverse(self, packet: ApnaPacket) -> bytes:
        """Compute the PVF a packet accumulates over the whole path."""
        pvf = self.initial_pvf(packet)
        for key in self._path_keys[1:]:
            pvf = self.update_pvf(key, pvf, packet)
        return pvf

    def validate(self, packet: ApnaPacket, received_pvf: bytes) -> None:
        """Destination check: recompute the chain, compare in constant time.

        Raises :class:`OptValidationError` if the packet did not traverse
        exactly the expected path (an AS skipped, reordered or injected).
        """
        expected = self.traverse(packet)
        if not ct_eq(expected, received_pvf):
            self.failed += 1
            raise OptValidationError(
                f"PVF mismatch for session {self.session_id.hex()[:8]}"
            )
        self.validated += 1

    @property
    def path_length(self) -> int:
        return len(self._path_keys)


def pack_pvf(session_id: bytes, pvf: bytes) -> bytes:
    """Wire form of the OPT extension: session id plus current PVF."""
    return struct.pack(f">{SESSION_ID_SIZE}s{PVF_SIZE}s", session_id, pvf)


def parse_pvf(data: bytes) -> tuple[bytes, bytes]:
    if len(data) < SESSION_ID_SIZE + PVF_SIZE:
        raise ValueError("OPT extension truncated")
    session_id, pvf = struct.unpack_from(f">{SESSION_ID_SIZE}s{PVF_SIZE}s", data)
    return session_id, pvf
