"""Path validation extensions (paper Section VIII-C).

The paper restricts shutoff authorization to the destination host and
destination AS — "the only two parties that will provably receive the
packet based on the APNA header" — and notes that proposals which encode
the forwarding path into packets (Packet Passport, ICING, OPT) "can be
combined with our architecture" to extend the authorized entities to
on-path ASes, strengthening the shutoff protocol.

This subpackage implements that combination:

* :mod:`repro.pathval.keys` — pairwise AS keys derived from the
  RPKI-registered X25519 keys (the Passport trust substrate).
* :mod:`repro.pathval.passport` — Passport-style per-AS MACs stamped by
  the source AS, verified by each transit AS.
* :mod:`repro.pathval.opt` — OPT-style session path validation: a chained
  Path Verification Field the endpoints can check.
* :mod:`repro.pathval.shutoff_ext` — the extended shutoff protocol: an
  on-path AS presents a stamped packet and is accepted as an authorized
  shutoff requester.
"""

from .keys import AsPairwiseKeys, pairwise_key
from .opt import OptSession, OptValidationError, PVF_SIZE
from .passport import (
    PASSPORT_MAC_SIZE,
    PassportHeader,
    PassportStamper,
    PassportVerifier,
    packet_digest,
)
from .shutoff_ext import (
    ExtendedAccountabilityAgent,
    OnPathShutoffRequest,
    upgrade_to_onpath,
)

__all__ = [
    "AsPairwiseKeys",
    "ExtendedAccountabilityAgent",
    "OnPathShutoffRequest",
    "OptSession",
    "OptValidationError",
    "PASSPORT_MAC_SIZE",
    "PVF_SIZE",
    "PassportHeader",
    "PassportStamper",
    "PassportVerifier",
    "packet_digest",
    "pairwise_key",
    "upgrade_to_onpath",
]
