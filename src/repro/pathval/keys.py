"""Pairwise AS keys for path validation.

Passport's trust substrate is a symmetric key shared by every pair of
ASes, established from their long-term public keys.  APNA already
assumes exactly the required directory — RPKI registers each AS's key
material (Section IV-A) — so the pairwise key falls out of an X25519
exchange between the two ASes' registered exchange keys, with HKDF
binding it to the (order-independent) AID pair.
"""

from __future__ import annotations

import struct

from ..core.certs import AsCertificate
from ..core.keys import ExchangeKeyPair
from ..core.rpki import RpkiDirectory
from ..crypto.kdf import hkdf

PAIRWISE_KEY_SIZE = 16

_CONTEXT = b"apna-pathval-pairwise-v1:"


def pairwise_key(
    local_aid: int,
    local_exchange: ExchangeKeyPair,
    peer_cert: AsCertificate,
) -> bytes:
    """Derive the symmetric key shared by ``local_aid`` and ``peer_cert.aid``.

    Both sides derive the same key: X25519 is symmetric and the AID pair
    is sorted into the HKDF info, so the derivation is order-independent.
    """
    shared = local_exchange.shared_secret(peer_cert.exchange_public)
    low, high = sorted((local_aid, peer_cert.aid))
    info = _CONTEXT + struct.pack(">II", low, high)
    return hkdf(shared, info=info, length=PAIRWISE_KEY_SIZE)


class AsPairwiseKeys:
    """One AS's lazily-built cache of pairwise keys with every other AS."""

    def __init__(
        self,
        aid: int,
        exchange: ExchangeKeyPair,
        rpki: RpkiDirectory,
    ) -> None:
        self.aid = aid
        self._exchange = exchange
        self._rpki = rpki
        self._cache: dict[int, bytes] = {}

    def key_for(self, peer_aid: int) -> bytes:
        """The pairwise key with ``peer_aid`` (RPKI lookup on first use)."""
        if peer_aid == self.aid:
            raise ValueError("an AS has no pairwise key with itself")
        key = self._cache.get(peer_aid)
        if key is None:
            key = pairwise_key(self.aid, self._exchange, self._rpki.lookup(peer_aid))
            self._cache[peer_aid] = key
        return key

    def forget(self, peer_aid: int) -> None:
        """Drop a cached key (e.g. after the peer rotates its AS keys)."""
        self._cache.pop(peer_aid, None)

    def __len__(self) -> int:
        return len(self._cache)
