"""Passport-style path MACs for APNA packets.

Following Passport (Liu et al., NSDI 2008), the *source AS* stamps one
MAC per downstream AS into every outgoing packet, each computed with the
pairwise key it shares with that AS.  A transit AS verifies (and strips
nothing — the stamp doubles as evidence for the extended shutoff
protocol, see :mod:`repro.pathval.shutoff_ext`).

The stamps are computed over a digest of the full APNA packet — header
*including* the host's per-packet MAC, plus payload — so a stamp binds an
on-path AS's evidence to one specific, source-authenticated packet.

Wire layout of the passport extension (appended after the APNA payload
by the deploying AS, mirrored from how the paper appends the optional
replay nonce after the fixed header)::

    count (1 B) || count x [ AID (4 B) || MAC (8 B) ]
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from ..crypto.cmac import Cmac
from ..crypto.util import ct_eq
from ..wire.apna import ApnaPacket
from ..wire.errors import ParseError
from .keys import AsPairwiseKeys

PASSPORT_MAC_SIZE = 8
_ENTRY_FMT = ">I8s"
_ENTRY_SIZE = struct.calcsize(_ENTRY_FMT)
_MAX_ENTRIES = 255

_DIGEST_CONTEXT = b"apna-passport-digest-v1:"


def packet_digest(packet: ApnaPacket) -> bytes:
    """The per-packet value every stamp authenticates.

    Covers the complete wire representation (header with the host MAC in
    place, payload, nonce if present) so no on-path entity can transplant
    stamps between packets.
    """
    return hashlib.sha256(_DIGEST_CONTEXT + packet.to_wire()).digest()


@dataclass(frozen=True)
class PassportHeader:
    """An ordered list of (AID, MAC) stamps, one per downstream AS."""

    entries: tuple[tuple[int, bytes], ...]

    def __post_init__(self) -> None:
        if len(self.entries) > _MAX_ENTRIES:
            raise ValueError(f"passport limited to {_MAX_ENTRIES} entries")
        for aid, mac in self.entries:
            if not 0 <= aid <= 2**32 - 1:
                raise ValueError(f"aid out of range: {aid}")
            if len(mac) != PASSPORT_MAC_SIZE:
                raise ValueError(f"stamp must be {PASSPORT_MAC_SIZE} bytes")

    def mac_for(self, aid: int) -> bytes | None:
        """The stamp addressed to ``aid``, or ``None`` if absent."""
        for entry_aid, mac in self.entries:
            if entry_aid == aid:
                return mac
        return None

    @property
    def aids(self) -> tuple[int, ...]:
        return tuple(aid for aid, _mac in self.entries)

    @property
    def wire_size(self) -> int:
        return 1 + len(self.entries) * _ENTRY_SIZE

    def pack(self) -> bytes:
        parts = [bytes([len(self.entries)])]
        parts.extend(struct.pack(_ENTRY_FMT, aid, mac) for aid, mac in self.entries)
        return b"".join(parts)

    @classmethod
    def parse(cls, data: bytes) -> "PassportHeader":
        if not data:
            raise ParseError("empty passport header")
        count = data[0]
        needed = 1 + count * _ENTRY_SIZE
        if len(data) < needed:
            raise ParseError(f"passport needs {needed} bytes, got {len(data)}")
        entries = tuple(
            struct.unpack_from(_ENTRY_FMT, data, 1 + i * _ENTRY_SIZE)
            for i in range(count)
        )
        return cls(entries)


class PassportStamper:
    """The source-AS side: stamps outgoing packets for a known AS path."""

    def __init__(self, keys: AsPairwiseKeys) -> None:
        self._keys = keys
        self._macs: dict[int, Cmac] = {}
        self.stamped_packets = 0

    def _cmac_for(self, aid: int) -> Cmac:
        mac = self._macs.get(aid)
        if mac is None:
            mac = Cmac(self._keys.key_for(aid))
            self._macs[aid] = mac
        return mac

    def stamp(self, packet: ApnaPacket, path_aids: list[int]) -> PassportHeader:
        """Stamp ``packet`` for every downstream AS on ``path_aids``.

        ``path_aids`` is the AS-level forwarding path *excluding* the
        source AS itself (a packet needs no stamp for its origin).
        """
        digest = packet_digest(packet)
        entries = tuple(
            (aid, self._cmac_for(aid).tag(digest, PASSPORT_MAC_SIZE))
            for aid in path_aids
        )
        self.stamped_packets += 1
        return PassportHeader(entries)

    def restamp_mac(self, packet: ApnaPacket, aid: int) -> bytes:
        """Recompute the stamp for one AS (used to verify shutoff evidence)."""
        return self._cmac_for(aid).tag(packet_digest(packet), PASSPORT_MAC_SIZE)


class PassportVerifier:
    """The transit-AS side: checks the stamp addressed to this AS."""

    def __init__(self, keys: AsPairwiseKeys) -> None:
        self._keys = keys
        self._macs: dict[int, Cmac] = {}
        self.verified = 0
        self.missing = 0
        self.invalid = 0

    def _cmac_for(self, aid: int) -> Cmac:
        mac = self._macs.get(aid)
        if mac is None:
            mac = Cmac(self._keys.key_for(aid))
            self._macs[aid] = mac
        return mac

    def verify(self, packet: ApnaPacket, passport: PassportHeader) -> bool:
        """True iff the packet carries a valid stamp for this AS.

        The stamp is keyed with the pairwise key shared with the packet's
        *source AS* — only that AS (or we ourselves) could have produced
        it, so a valid stamp proves the source AS emitted this exact
        packet toward a path containing us.
        """
        presented = passport.mac_for(self._keys.aid)
        if presented is None:
            self.missing += 1
            return False
        expected = self._cmac_for(packet.header.src_aid).tag(
            packet_digest(packet), PASSPORT_MAC_SIZE
        )
        if not ct_eq(presented, expected):
            self.invalid += 1
            return False
        self.verified += 1
        return True
