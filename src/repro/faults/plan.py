"""Deterministic fault schedules for the sharded data plane.

A :class:`FaultPlan` maps ``(shard, burst_seq)`` — the *n*-th burst the
dispatcher sends to a given worker shard — to one :class:`Fault`.  The
plane consults the plan at its pool/wire boundary
(:meth:`repro.sharding.ShardedDataPlane.install_faults`), so a fault
fires at exactly the same point of the packet stream on every run with
the same plan: chaos testing without the chaos.

Fault kinds, and the failure they model:

``kill``
    The worker process is SIGKILLed (and reaped) just before the burst
    is sent — an OOM kill, a segfault, an operator ``kill -9``.  The
    send hits a widowed pipe and fails deterministically.
``hang``
    The burst message is swallowed: the worker stays alive but never
    sees the request, so it never replies — a worker stuck in a lock or
    an unbounded syscall.  Only the bounded reply timeout can catch it.
``error``
    The burst message is truncated so the worker's decoder raises and
    it answers with an error frame — a poisoned request, a worker-side
    bug.
``garbage``
    The worker's (real) reply is replaced by undecodable bytes — frame
    corruption on the transport.
``delay``
    The dispatcher sleeps ``delay`` seconds before reading the reply —
    benign scheduling jitter.  A supervised plane must absorb delays
    shorter than its reply timeout with **no** recovery action; this is
    the false-positive check of the suite.
``drop``
    The worker's reply is lost in transit: the worker computed and sent
    it, but the dispatcher never sees it — a dropped datagram on the
    socket transports the ROADMAP points at.  The bounded wait is
    charged immediately (no real sleep), so recovery follows exactly
    the timeout path: the sub-burst is dropped-and-counted and the
    worker restarted.
``duplicate``
    The worker's reply arrives **twice**: once normally, and again
    (stale) ahead of the shard's next real reply — datagram replay on
    the transport.  Benign by construction: every reply echoes its
    burst seq, so the stale copy is discarded by the dispatcher's seq
    check (counted in ``stats()["stale_replies"]``) with no drops and
    no restarts — the duplicate analogue of ``delay``'s false-positive
    bar.

Every consulted injection is appended to :attr:`FaultPlan.injected`
(``(shard, seq, kind)``), so a test can assert that the storm it asked
for is the storm it got.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "crash_storm_plan",
]

#: Recognised fault kinds, in the order :func:`crash_storm_plan` cycles
#: through them.
FAULT_KINDS = ("kill", "hang", "error", "garbage", "delay", "drop", "duplicate")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault; ``delay`` only matters for kind ``delay``."""

    kind: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


class FaultPlan:
    """A deterministic ``(shard, burst_seq) -> Fault`` schedule."""

    def __init__(
        self, faults: "Mapping[tuple[int, int], Fault | str] | None" = None
    ) -> None:
        self._faults: "dict[tuple[int, int], Fault]" = {}
        for key, fault in (faults or {}).items():
            self.add(key[0], key[1], fault)
        #: ``(shard, seq, kind)`` log of every fault actually injected.
        self.injected: "list[tuple[int, int, str]]" = []

    def add(self, shard: int, seq: int, fault: "Fault | str") -> "FaultPlan":
        if isinstance(fault, str):
            fault = Fault(fault)
        self._faults[(shard, seq)] = fault
        return self

    def fault_for(self, shard: int, seq: int) -> "Fault | None":
        """The fault scheduled for burst ``seq`` of ``shard``, if any."""
        return self._faults.get((shard, seq))

    def mark_injected(self, shard: int, seq: int, kind: str) -> None:
        self.injected.append((shard, seq, kind))

    def schedule(self) -> "list[tuple[int, int, Fault]]":
        """The full schedule, sorted — for reproducibility assertions."""
        return sorted(
            (shard, seq, fault) for (shard, seq), fault in self._faults.items()
        )

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        kinds: dict[str, int] = {}
        for fault in self._faults.values():
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        summary = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        return f"<FaultPlan {len(self._faults)} faults ({summary or 'empty'})>"


def crash_storm_plan(
    nshards: int,
    bursts: int,
    *,
    seed: int = 0,
    rate: float = 0.08,
    kinds: "Iterable[str]" = FAULT_KINDS,
    delay: float = 0.01,
    spare_first: int = 2,
) -> FaultPlan:
    """A seeded storm: every burst slot of every shard draws a fault
    with probability ``rate``, cycling kinds through a shuffled deck so
    each kind appears (the ``crash-storm`` scenario's schedule).

    ``spare_first`` keeps the opening bursts clean so a run always
    establishes a healthy baseline before the weather starts;
    ``delay`` is the sleep for ``delay`` faults.  Same arguments, same
    storm — byte for byte.
    """
    if not 0 <= rate <= 1:
        raise ValueError(f"rate must be within [0, 1], got {rate}")
    kinds = tuple(kinds)
    if not kinds:
        raise ValueError("kinds must not be empty")
    rng = random.Random(seed)
    plan = FaultPlan()
    deck: "list[str]" = []
    for shard in range(nshards):
        for seq in range(spare_first, bursts):
            if rng.random() >= rate:
                continue
            if not deck:
                deck = list(kinds)
                rng.shuffle(deck)
            kind = deck.pop()
            plan.add(shard, seq, Fault(kind, delay=delay if kind == "delay" else 0.0))
    return plan
