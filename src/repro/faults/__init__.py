"""Deterministic fault injection for the self-healing shard data plane.

The supervision machinery of :mod:`repro.sharding` (bounded reply
waits, worker restart with state resync, graceful degradation) is only
trustworthy if every one of its paths is driven on purpose, repeatably
— not discovered by luck when a CI box hiccups.  This package is that
driver:

* :class:`FaultPlan` — a seeded ``(shard, burst_seq) -> Fault``
  schedule, hooked into the dispatcher at the pool/wire boundary via
  :meth:`repro.sharding.ShardedDataPlane.install_faults`;
* :class:`Fault` — one scheduled failure: worker ``kill``, silent
  ``hang``, worker-side ``error`` frame, ``garbage`` reply bytes, or a
  benign reply ``delay``;
* :func:`crash_storm_plan` — the ``crash-storm`` scenario's schedule: a
  seeded storm mixing every kind across a run of bursts.

Pair a plan with the ``crash-storm`` scenario preset
(``repro.scenarios.build("crash-storm:4", config=...)``) for a world
sized for chaos runs; ``tests/test_sharding_faults.py`` holds the
acceptance suite that pins verdict-stream integrity under storms.
"""

from .plan import FAULT_KINDS, Fault, FaultPlan, crash_storm_plan

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "crash_storm_plan"]
