"""Adversary harness for the Section VI security analysis (E10).

Each class implements one attack from the paper's analysis and reports
whether it succeeded; the security tests and the E10 experiment assert
that every one of them fails against APNA.
"""

from .adversaries import (
    EphIdMinter,
    EphIdSpoofer,
    FlowLinker,
    IdentityMinter,
    MitmAs,
    PfsBreaker,
    ShutoffAbuser,
)

__all__ = [
    "EphIdMinter",
    "EphIdSpoofer",
    "FlowLinker",
    "IdentityMinter",
    "MitmAs",
    "PfsBreaker",
    "ShutoffAbuser",
]
