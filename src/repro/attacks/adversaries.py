"""Attack implementations mirroring Section VI of the paper.

Every adversary works only with what its threat model grants it — sniffed
packets, control of foreign ASes, long-term keys obtained *after* the
fact — and returns measurable success counters.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..core.autonomous_system import ApnaAutonomousSystem, ApnaHostNode
from ..core.border_router import Action
from ..core.certs import EphIdCertificate
from ..core.ephid import EPHID_SIZE
from ..core.keys import EphIdKeyPair, SigningKeyPair
from ..core.session import OwnedEphId, Session, derive_session_key
from ..crypto.rng import DeterministicRng, Rng
from ..wire.apna import ApnaHeader, ApnaPacket, Endpoint


class EphIdSpoofer:
    """Section VI-A, EphID Spoofing: use a *sniffed* (valid) EphID.

    The adversary shares the access network with the victim, sees valid
    EphIDs in flight, and injects packets using them — but cannot compute
    the per-packet MAC without the victim's kHA.
    """

    def __init__(self, assembly: ApnaAutonomousSystem, rng: Rng | None = None) -> None:
        self.assembly = assembly
        self._rng = rng or DeterministicRng(0xBAD)
        self.attempts = 0
        self.successes = 0

    def spoof(self, sniffed_ephid: bytes, dst: Endpoint, payload: bytes = b"spoof") -> bool:
        header = ApnaHeader(
            src_aid=self.assembly.aid,
            src_ephid=sniffed_ephid,
            dst_ephid=dst.ephid,
            dst_aid=dst.aid,
            mac=self._rng.read(8),  # best effort: a guessed MAC
        )
        packet = ApnaPacket(header, payload)
        verdict = self.assembly.br.process_outgoing(packet)
        self.attempts += 1
        success = verdict.action is not Action.DROP
        self.successes += int(success)
        return success


class EphIdMinter:
    """Section VI-A, Unauthorized EphID Generation: forge tokens.

    Tries random tokens and structured variants (bit-flips of a valid
    EphID) against the AS codec; CCA security means acceptance is
    negligible.
    """

    def __init__(self, assembly: ApnaAutonomousSystem, seed: int = 0xF0F0) -> None:
        self.assembly = assembly
        self._rng = DeterministicRng(seed)
        self.attempts = 0
        self.accepted = 0

    def mint_random(self, tries: int) -> int:
        for _ in range(tries):
            self.attempts += 1
            if self.assembly.codec.is_valid(self._rng.read(EPHID_SIZE)):
                self.accepted += 1
        return self.accepted

    def mint_malleated(self, valid_ephid: bytes) -> int:
        """All 128 single-bit malleations of a genuine EphID."""
        for bit in range(8 * EPHID_SIZE):
            tampered = bytearray(valid_ephid)
            tampered[bit // 8] ^= 1 << (bit % 8)
            self.attempts += 1
            if self.assembly.codec.is_valid(bytes(tampered)):
                self.accepted += 1
        return self.accepted


class IdentityMinter:
    """Section VI-A, Identity Minting: amass live HIDs.

    A subscriber re-bootstraps repeatedly hoping to accumulate usable
    identities; the AS revokes the previous HID each time, so the number
    of *live* identities never exceeds one.
    """

    def __init__(self, host: ApnaHostNode) -> None:
        self.host = host

    def mint(self, rounds: int) -> int:
        """Returns the number of live HIDs after ``rounds`` re-bootstraps."""
        for _ in range(rounds):
            self.host.bootstrap()
        db = self.host.assembly.hostdb
        return sum(
            1
            for record in db.records()
            if record.subscriber_id == self.host.subscriber_id and not record.revoked
        )


@dataclass
class MitmAs:
    """Section VI-B: a malicious AS substituting certificates.

    The attacker controls an AS on the path (or the destination AS's
    infrastructure) and swaps the victim's certificate for one binding
    the attacker's keys.  It CAN forge a cert signed by *its own* key,
    but cannot produce the victim-AS signature the peer checks via RPKI.
    """

    attacker_signer: SigningKeyPair
    intercepted: int = 0
    successes: int = 0

    def substitute(self, genuine: EphIdCertificate, rng: Rng) -> EphIdCertificate:
        """The substituted certificate (attacker keys, forged binding)."""
        self.intercepted += 1
        attacker_keys = EphIdKeyPair.generate(rng)
        return EphIdCertificate.issue(
            self.attacker_signer,
            ephid=genuine.ephid,
            exp_time=genuine.exp_time,
            dh_public=attacker_keys.exchange.public,
            sig_public=attacker_keys.signing.public,
            aid=genuine.aid,
            aa_ephid=genuine.aa_ephid,
        )

    def attempt(self, victim_host, genuine: EphIdCertificate, rng: Rng) -> bool:
        """Returns True if the victim accepts the substituted cert."""
        from ..core.errors import CertError

        fake = self.substitute(genuine, rng)
        try:
            victim_host.stack.verify_peer_cert(fake)
        except CertError:
            return False
        self.successes += 1
        return True


class ShutoffAbuser:
    """Section VI-C: unauthorized shutoff requests as a DoS tool."""

    def __init__(self, assembly_of_victim_source: ApnaAutonomousSystem) -> None:
        self.aa = assembly_of_victim_source.aa
        self.attempts = 0
        self.successes = 0

    def attempt(self, request) -> bool:
        self.attempts += 1
        response = self.aa.handle_shutoff(request)
        self.successes += int(response.accepted)
        return response.accepted


class FlowLinker:
    """Section II-B sender-flow unlinkability: a passive observer groups
    flows by what the headers reveal and scores against ground truth.

    With per-flow EphIDs the best header-only strategy (group by source
    EphID) recovers nothing beyond singleton groups; with per-host EphIDs
    it recovers the full sender<->flows mapping.
    """

    def __init__(self) -> None:
        self.observed: list[tuple[bytes, int]] = []  # (src_ephid, true_host)

    def observe(self, src_ephid: bytes, true_host: int) -> None:
        self.observed.append((src_ephid, true_host))

    def linkage_score(self) -> float:
        """Fraction of same-host flow *pairs* the observer can link.

        1.0 — every pair of flows from the same host is linkable
        (per-host EphIDs); 0.0 — none are (per-flow EphIDs).
        """
        by_host: dict[int, list[bytes]] = defaultdict(list)
        for ephid, host in self.observed:
            by_host[host].append(ephid)
        total_pairs = 0
        linked_pairs = 0
        for ephids in by_host.values():
            n = len(ephids)
            total_pairs += n * (n - 1) // 2
            counts: dict[bytes, int] = defaultdict(int)
            for e in ephids:
                counts[e] += 1
            linked_pairs += sum(c * (c - 1) // 2 for c in counts.values())
        if total_pairs == 0:
            return 0.0
        return linked_pairs / total_pairs


class PfsBreaker:
    """Section VI-B: retrospective decryption with captured long-term keys.

    The adversary records ciphertext, then later obtains *all long-term
    secrets* (K-AS, K-H, even the AS master kA).  PFS holds iff those
    secrets do not yield the session key.  We check the strongest
    structural claim: the session key is a function of the ephemeral
    EphID secrets only, which were deleted at session end.
    """

    def __init__(self) -> None:
        self.recorded: list[bytes] = []

    def record(self, frame: bytes) -> None:
        self.recorded.append(frame)

    @staticmethod
    def try_decrypt_with(
        session_a_cert: EphIdCertificate,
        session_b_cert: EphIdCertificate,
        long_term_secrets: dict[str, bytes],
        sealed_payload: bytes,
        true_key: bytes,
    ) -> bool:
        """Attempt every key derivable from long-term secrets; succeed only
        if one reproduces the true session key (it cannot: the DH secrets
        behind the certs are not derivable from any input here)."""
        from ..crypto.kdf import hkdf

        first, second = sorted((session_a_cert.ephid, session_b_cert.ephid))
        info = b"apna-session-v1:" + first + second
        for secret in long_term_secrets.values():
            candidate = hkdf(secret, info=info, length=32)
            if candidate == true_key:
                return True
        return False
