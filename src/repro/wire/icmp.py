"""APNA ICMP messages (paper Section VIII-B).

ICMP in APNA works like ordinary data: the sender uses one of its own
EphIDs as the source, its AS authenticates the packet, and the recipient
can hold the sender accountable via the sender's AS.  The message format
mirrors classic ICMP (type/code/identifier/sequence) and rides inside the
APNA payload with ``proto = PROTO_ICMP`` in the transport header.

Per the paper, ICMP payloads are *not* end-to-end encrypted (the sender
generally has no certificate for the source EphID of the packet that
triggered the message); encrypting them is listed as future work.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import FieldError, ParseError

HEADER_SIZE = 8

ECHO_REPLY = 0
DEST_UNREACHABLE = 3
ECHO_REQUEST = 8
TIME_EXCEEDED = 11
PACKET_TOO_BIG = 2  # mirrors ICMPv6 semantics for MTU discovery

# Destination-unreachable codes used by the border router pipeline.
CODE_EPHID_EXPIRED = 100
CODE_EPHID_REVOKED = 101
CODE_HID_INVALID = 102

_MAX_16 = 0xFFFF

TYPE_NAMES = {
    ECHO_REPLY: "echo-reply",
    PACKET_TOO_BIG: "packet-too-big",
    DEST_UNREACHABLE: "dest-unreachable",
    ECHO_REQUEST: "echo-request",
    TIME_EXCEEDED: "time-exceeded",
}


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP message: 8-byte header plus payload.

    For error messages the payload carries the leading bytes of the
    offending packet (classic ICMP behaviour) so the receiver can match it
    to a flow; for echo it carries user data.
    """

    type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.type <= 255:
            raise FieldError(f"type out of range: {self.type}")
        if not 0 <= self.code <= 255:
            raise FieldError(f"code out of range: {self.code}")
        if not 0 <= self.identifier <= _MAX_16:
            raise FieldError(f"identifier out of range: {self.identifier}")
        if not 0 <= self.sequence <= _MAX_16:
            raise FieldError(f"sequence out of range: {self.sequence}")

    def pack(self) -> bytes:
        return (
            struct.pack(">BBHHH", self.type, self.code, 0, self.identifier, self.sequence)
            + self.payload
        )

    @classmethod
    def parse(cls, data: bytes) -> "IcmpMessage":
        if len(data) < HEADER_SIZE:
            raise ParseError(f"ICMP needs {HEADER_SIZE} bytes, got {len(data)}")
        msg_type, code, _zero, identifier, sequence = struct.unpack_from(">BBHHH", data)
        return cls(msg_type, code, identifier, sequence, data[HEADER_SIZE:])

    def reply(self, payload: bytes | None = None) -> "IcmpMessage":
        """Build the echo reply for an echo request."""
        if self.type != ECHO_REQUEST:
            raise FieldError("only echo requests have replies")
        return IcmpMessage(
            type=ECHO_REPLY,
            code=0,
            identifier=self.identifier,
            sequence=self.sequence,
            payload=self.payload if payload is None else payload,
        )

    @property
    def type_name(self) -> str:
        return TYPE_NAMES.get(self.type, f"type-{self.type}")
