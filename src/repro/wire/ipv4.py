"""Minimal IPv4 header, used for the GRE-based deployment path (paper VII-D).

In the incremental-deployment story, APNA packets travel inside GRE
tunnels over today's IPv4 network; IPv4 addresses double as HIDs inside an
AS and as AIDs between APNA routers.  This module implements the 20-byte
IPv4 header (no options) with a correct ones'-complement checksum.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from .errors import FieldError, ParseError

HEADER_SIZE = 20
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47

_MAX_16 = 0xFFFF
_MAX_32 = 0xFFFFFFFF


def checksum(data: bytes) -> int:
    """RFC 1071 ones'-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def ip_to_int(address: str) -> int:
    """Dotted-quad to integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise FieldError(f"bad IPv4 address {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise FieldError(f"bad IPv4 address {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Integer to dotted-quad."""
    if not 0 <= value <= _MAX_32:
        raise FieldError(f"IPv4 address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Ipv4Header:
    """IPv4 header without options (IHL = 5)."""

    src: int
    dst: int
    protocol: int
    total_length: int = HEADER_SIZE
    ttl: int = 64
    identification: int = 0
    tos: int = 0
    flags_fragment: int = 0

    def __post_init__(self) -> None:
        for name in ("src", "dst"):
            value = getattr(self, name)
            if not 0 <= value <= _MAX_32:
                raise FieldError(f"{name} out of range: {value}")
        if not 0 <= self.protocol <= 255:
            raise FieldError(f"protocol out of range: {self.protocol}")
        if not 0 <= self.ttl <= 255:
            raise FieldError(f"ttl out of range: {self.ttl}")
        if not HEADER_SIZE <= self.total_length <= _MAX_16:
            raise FieldError(f"total_length out of range: {self.total_length}")
        if not 0 <= self.identification <= _MAX_16:
            raise FieldError(f"identification out of range: {self.identification}")

    def pack(self) -> bytes:
        header = struct.pack(
            ">BBHHHBBHII",
            (4 << 4) | 5,
            self.tos,
            self.total_length,
            self.identification,
            self.flags_fragment,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        )
        cksum = checksum(header)
        return header[:10] + struct.pack(">H", cksum) + header[12:]

    @classmethod
    def parse(cls, data: bytes, *, verify_checksum: bool = True) -> "Ipv4Header":
        if len(data) < HEADER_SIZE:
            raise ParseError(f"IPv4 header needs {HEADER_SIZE} bytes, got {len(data)}")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            _cksum,
            src,
            dst,
        ) = struct.unpack_from(">BBHHHBBHII", data)
        if version_ihl >> 4 != 4:
            raise ParseError(f"not an IPv4 packet (version={version_ihl >> 4})")
        if version_ihl & 0x0F != 5:
            raise ParseError("IPv4 options are not supported")
        if verify_checksum and checksum(data[:HEADER_SIZE]) != 0:
            raise ParseError("IPv4 header checksum mismatch")
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            tos=tos,
            flags_fragment=flags_fragment,
        )

    def decrement_ttl(self) -> "Ipv4Header":
        """Forwarding step; raises when the TTL expires."""
        if self.ttl <= 1:
            raise ParseError("TTL expired in transit")
        return replace(self, ttl=self.ttl - 1)
