"""Wire formats for the APNA reproduction.

* :mod:`repro.wire.apna` — the 48-byte APNA header of paper Fig. 7.
* :mod:`repro.wire.ipv4` — IPv4 header for the GRE deployment path.
* :mod:`repro.wire.gre` — GRE encapsulation per paper Fig. 9.
* :mod:`repro.wire.transport` — the in-payload (encrypted) transport shim.
* :mod:`repro.wire.icmp` — ICMP message format (paper Section VIII-B).
"""

from .apna import (
    AID_SIZE,
    EPHID_SIZE,
    HEADER_SIZE,
    HEADER_SIZE_WITH_NONCE,
    MAC_SIZE,
    NONCE_SIZE,
    ApnaHeader,
    ApnaPacket,
    Endpoint,
)
from .errors import FieldError, ParseError, WireError
from .gre import ENCAP_OVERHEAD, ETHERTYPE_APNA, GreHeader, decapsulate, encapsulate
from .icmp import IcmpMessage
from .ipv4 import Ipv4Header, checksum, int_to_ip, ip_to_int
from .transport import (
    FLAG_CERT,
    FLAG_FIN,
    FLAG_SYN,
    PROTO_CONTROL,
    PROTO_DATA,
    PROTO_DNS,
    PROTO_ICMP,
    PROTO_SHUTOFF,
    TransportHeader,
    build_segment,
    split_segment,
)

__all__ = [
    "AID_SIZE",
    "ENCAP_OVERHEAD",
    "EPHID_SIZE",
    "ETHERTYPE_APNA",
    "FLAG_CERT",
    "FLAG_FIN",
    "FLAG_SYN",
    "HEADER_SIZE",
    "HEADER_SIZE_WITH_NONCE",
    "MAC_SIZE",
    "NONCE_SIZE",
    "PROTO_CONTROL",
    "PROTO_DATA",
    "PROTO_DNS",
    "PROTO_ICMP",
    "PROTO_SHUTOFF",
    "ApnaHeader",
    "ApnaPacket",
    "Endpoint",
    "FieldError",
    "GreHeader",
    "IcmpMessage",
    "Ipv4Header",
    "ParseError",
    "TransportHeader",
    "WireError",
    "build_segment",
    "checksum",
    "decapsulate",
    "encapsulate",
    "int_to_ip",
    "ip_to_int",
    "split_segment",
]
