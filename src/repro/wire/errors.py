"""Wire-format error types."""

from __future__ import annotations


class WireError(ValueError):
    """Base class for serialization/parsing failures."""


class ParseError(WireError):
    """Raised when bytes on the wire cannot be parsed into a header."""


class FieldError(WireError):
    """Raised when a header field is out of range at construction time."""
