"""Minimal transport header carried inside the encrypted APNA payload.

APNA is a network-layer architecture; hosts still need ports and sequence
numbers to demultiplex flows (per-packet EphIDs even require a dedicated
demux protocol, Section VIII-A).  This 12-byte header is the upper-layer
shim every payload starts with *before* encryption — it is never visible
on the wire, which is what gives APNA its sender-flow unlinkability even
for port information.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import FieldError, ParseError

HEADER_SIZE = 12

PROTO_DATA = 1
PROTO_CONTROL = 2
PROTO_ICMP = 3
PROTO_DNS = 4
PROTO_SHUTOFF = 5

FLAG_SYN = 0x01
FLAG_FIN = 0x02
FLAG_CERT = 0x04  # payload carries a certificate (connection establishment)

_MAX_16 = 0xFFFF
_MAX_32 = 0xFFFFFFFF


@dataclass(frozen=True)
class TransportHeader:
    """``src_port, dst_port, seq, flags, proto, length`` — 12 bytes."""

    src_port: int
    dst_port: int
    seq: int = 0
    flags: int = 0
    proto: int = PROTO_DATA
    length: int = 0

    def __post_init__(self) -> None:
        for name in ("src_port", "dst_port", "length"):
            value = getattr(self, name)
            if not 0 <= value <= _MAX_16:
                raise FieldError(f"{name} out of range: {value}")
        if not 0 <= self.seq <= _MAX_32:
            raise FieldError(f"seq out of range: {self.seq}")
        if not 0 <= self.flags <= 255:
            raise FieldError(f"flags out of range: {self.flags}")
        if not 0 <= self.proto <= 255:
            raise FieldError(f"proto out of range: {self.proto}")

    def pack(self) -> bytes:
        return struct.pack(
            ">HHIBBH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.flags,
            self.proto,
            self.length,
        )

    @classmethod
    def parse(cls, data: bytes) -> "TransportHeader":
        if len(data) < HEADER_SIZE:
            raise ParseError(
                f"transport header needs {HEADER_SIZE} bytes, got {len(data)}"
            )
        src_port, dst_port, seq, flags, proto, length = struct.unpack_from(
            ">HHIBBH", data
        )
        return cls(src_port, dst_port, seq, flags, proto, length)


def build_segment(header: TransportHeader, data: bytes) -> bytes:
    """Attach the transport header, filling in the length field."""
    if len(data) > _MAX_16:
        raise FieldError(f"segment too large: {len(data)}")
    sized = TransportHeader(
        src_port=header.src_port,
        dst_port=header.dst_port,
        seq=header.seq,
        flags=header.flags,
        proto=header.proto,
        length=len(data),
    )
    return sized.pack() + data


def split_segment(segment: bytes) -> tuple[TransportHeader, bytes]:
    """Parse a segment into (header, data), validating the length field."""
    header = TransportHeader.parse(segment)
    data = segment[HEADER_SIZE : HEADER_SIZE + header.length]
    if len(data) != header.length:
        raise ParseError(
            f"segment truncated: header says {header.length}, have {len(data)}"
        )
    return header, data
