"""GRE encapsulation of APNA packets over IPv4 (paper Fig. 9).

The deployment path in Section VII-D carries APNA packets inside GRE
(RFC 2784) over the existing IPv4 network.  GRE identifies the payload
protocol with an EtherType; the paper notes a dedicated number would be
requested from IANA, so this reproduction uses ``0x88B7`` (the IEEE 802a
OUI-extended experimental EtherType) as the APNA protocol type.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .errors import ParseError
from .ipv4 import HEADER_SIZE as IPV4_HEADER_SIZE
from .ipv4 import Ipv4Header, PROTO_GRE

HEADER_SIZE = 4
ETHERTYPE_APNA = 0x88B7
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD


@dataclass(frozen=True)
class GreHeader:
    """Basic GRE header (RFC 2784: no checksum, key or sequence)."""

    protocol_type: int = ETHERTYPE_APNA

    def pack(self) -> bytes:
        return struct.pack(">HH", 0, self.protocol_type)

    @classmethod
    def parse(cls, data: bytes) -> "GreHeader":
        if len(data) < HEADER_SIZE:
            raise ParseError(f"GRE header needs {HEADER_SIZE} bytes, got {len(data)}")
        flags_version, protocol_type = struct.unpack_from(">HH", data)
        if flags_version & 0x0007:
            raise ParseError(f"unsupported GRE version {flags_version & 7}")
        if flags_version & 0xB000:
            raise ParseError("GRE optional fields are not supported")
        return cls(protocol_type)


#: Fixed per-packet encapsulation overhead of the IPv4 deployment:
#: IPv4 (20) + GRE (4) bytes in front of the APNA header.
ENCAP_OVERHEAD = IPV4_HEADER_SIZE + HEADER_SIZE


def encapsulate(apna_wire: bytes, src_ip: int, dst_ip: int, *, ttl: int = 64) -> bytes:
    """Wrap APNA packet bytes in GRE + IPv4 for transport between APNA routers."""
    total = IPV4_HEADER_SIZE + HEADER_SIZE + len(apna_wire)
    if total > 0xFFFF:
        raise ParseError(f"encapsulated packet too large: {total}")
    ip = Ipv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_GRE, total_length=total, ttl=ttl)
    return ip.pack() + GreHeader().pack() + apna_wire


def decapsulate(wire: bytes) -> tuple[Ipv4Header, bytes]:
    """Strip the IPv4+GRE encapsulation, returning (outer header, APNA bytes)."""
    ip = Ipv4Header.parse(wire)
    if ip.protocol != PROTO_GRE:
        raise ParseError(f"not a GRE packet (protocol={ip.protocol})")
    gre = GreHeader.parse(wire[IPV4_HEADER_SIZE:])
    if gre.protocol_type != ETHERTYPE_APNA:
        raise ParseError(f"not an APNA payload (ethertype=0x{gre.protocol_type:04x})")
    if ip.total_length > len(wire):
        raise ParseError("truncated encapsulated packet")
    return ip, wire[IPV4_HEADER_SIZE + HEADER_SIZE : ip.total_length]
