"""The APNA network header (paper Fig. 7).

The header carries the communication endpoints as AID:EphID tuples plus a
MAC over the packet computed with the host<->AS shared key:

====================  ========
Field                 Size
====================  ========
Source AID            4 bytes
Source EphID          16 bytes
Dest EphID            16 bytes
Dest AID              4 bytes
MAC                   8 bytes
====================  ========

Total: 48 bytes.  Section VIII-D of the paper proposes an additional
per-packet nonce for replay protection; this is supported as an optional
8-byte extension negotiated deployment-wide (the base header stays 48
bytes so that the paper's overhead numbers hold by default).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from .errors import FieldError, ParseError

EPHID_SIZE = 16
AID_SIZE = 4
MAC_SIZE = 8
HEADER_SIZE = 48
NONCE_SIZE = 8
HEADER_SIZE_WITH_NONCE = HEADER_SIZE + NONCE_SIZE

_MAX_AID = 2**32 - 1
_MAX_NONCE = 2**64 - 1

#: Wire layout of the fixed Fig. 7 header; the optional nonce extension
#: is a ``>Q`` suffix.  Shared by pack/parse/mac_input so the MAC is
#: always computed over exactly the bytes the wire carries.
_HEADER_FMT = f">I{EPHID_SIZE}s{EPHID_SIZE}sI{MAC_SIZE}s"


@dataclass(frozen=True)
class ApnaHeader:
    """Parsed APNA header.

    ``mac`` is filled in by the sending host (see
    :meth:`repro.core.host.Host.send`); a zero MAC is used while computing
    the MAC input itself.  ``nonce`` is ``None`` unless the deployment
    enables replay protection (paper Section VIII-D).
    """

    src_aid: int
    src_ephid: bytes
    dst_ephid: bytes
    dst_aid: int
    mac: bytes = bytes(MAC_SIZE)
    nonce: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.src_aid <= _MAX_AID:
            raise FieldError(f"src_aid out of range: {self.src_aid}")
        if not 0 <= self.dst_aid <= _MAX_AID:
            raise FieldError(f"dst_aid out of range: {self.dst_aid}")
        if len(self.src_ephid) != EPHID_SIZE:
            raise FieldError(f"src_ephid must be {EPHID_SIZE} bytes")
        if len(self.dst_ephid) != EPHID_SIZE:
            raise FieldError(f"dst_ephid must be {EPHID_SIZE} bytes")
        if len(self.mac) != MAC_SIZE:
            raise FieldError(f"mac must be {MAC_SIZE} bytes")
        if self.nonce is not None and not 0 <= self.nonce <= _MAX_NONCE:
            raise FieldError(f"nonce out of range: {self.nonce}")

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE_WITH_NONCE if self.nonce is not None else HEADER_SIZE

    def pack(self) -> bytes:
        """Serialize the header."""
        head = struct.pack(
            _HEADER_FMT,
            self.src_aid,
            self.src_ephid,
            self.dst_ephid,
            self.dst_aid,
            self.mac,
        )
        if self.nonce is not None:
            head += struct.pack(">Q", self.nonce)
        return head

    @classmethod
    def parse(cls, data: bytes, *, with_nonce: bool = False) -> "ApnaHeader":
        """Parse a header from the start of ``data``.

        Whether a nonce is present is a deployment-wide configuration, not
        self-describing on the wire (the paper's header has no version
        field), so the caller must say which format it expects.
        """
        expected = HEADER_SIZE_WITH_NONCE if with_nonce else HEADER_SIZE
        if len(data) < expected:
            raise ParseError(
                f"APNA header needs {expected} bytes, got {len(data)}"
            )
        src_aid, src_ephid, dst_ephid, dst_aid, mac = struct.unpack_from(
            _HEADER_FMT, data
        )
        nonce = None
        if with_nonce:
            (nonce,) = struct.unpack_from(">Q", data, HEADER_SIZE)
        return cls(src_aid, src_ephid, dst_ephid, dst_aid, mac, nonce)

    def mac_input(self, payload: bytes) -> bytes:
        """Bytes the per-packet MAC is computed over (header w/ zero MAC + payload)."""
        head = struct.pack(
            _HEADER_FMT,
            self.src_aid,
            self.src_ephid,
            self.dst_ephid,
            self.dst_aid,
            bytes(MAC_SIZE),
        )
        if self.nonce is not None:
            head += struct.pack(">Q", self.nonce)
        return head + payload

    def with_mac(self, mac: bytes) -> "ApnaHeader":
        return replace(self, mac=mac)

    def reversed(self) -> "ApnaHeader":
        """Header for a reply packet (endpoints swapped, MAC cleared)."""
        return ApnaHeader(
            src_aid=self.dst_aid,
            src_ephid=self.dst_ephid,
            dst_ephid=self.src_ephid,
            dst_aid=self.src_aid,
            nonce=self.nonce,
        )


@dataclass(frozen=True)
class ApnaPacket:
    """An APNA packet: header plus (typically encrypted) payload."""

    header: ApnaHeader
    payload: bytes = b""

    def to_wire(self) -> bytes:
        return self.header.pack() + self.payload

    @classmethod
    def from_wire(cls, data: bytes, *, with_nonce: bool = False) -> "ApnaPacket":
        header = ApnaHeader.parse(data, with_nonce=with_nonce)
        return cls(header, data[header.wire_size :])

    @property
    def wire_size(self) -> int:
        return self.header.wire_size + len(self.payload)

    def mac_input(self) -> bytes:
        return self.header.mac_input(self.payload)


@dataclass(frozen=True)
class Endpoint:
    """A fully-qualified APNA endpoint: the AID:EphID tuple of Section III-B."""

    aid: int
    ephid: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.aid <= _MAX_AID:
            raise FieldError(f"aid out of range: {self.aid}")
        if len(self.ephid) != EPHID_SIZE:
            raise FieldError(f"ephid must be {EPHID_SIZE} bytes")

    def __str__(self) -> str:
        return f"{self.aid}:{self.ephid.hex()[:8]}…"
