"""Columnar ``host_info``: dense-HID columns instead of per-host objects.

Host HIDs are allocated sequentially from ``FIRST_HOST_HID``, so
``row = hid - FIRST_HOST_HID`` is a dense index: every per-host field
lives at that offset in a flat column (a flags byte, a 32-byte kHA key
slot, a subscriber id, two EphID counters).  A registered host costs
~53 bytes of column storage and **zero** Python objects; the
:class:`HostRef` row proxy is materialised only when a caller actually
asks for a record, and reads/writes through to the columns.  Service
HIDs (below ``FIRST_HOST_HID``, a handful per AS) keep their real
:class:`~repro.core.hostdb.HostRecord` objects.

Duck-type compatible with :class:`~repro.core.hostdb.HostDatabase`
(``allocate_hid``/``register``/``get``/``is_valid``/``revoke_hid``/
``find_by_subscriber``/``records``/``on_register``/``on_revoke_hid``/
``__len__``/``total_registered``), plus two bulk entry points:
``bulk_register`` admits a population from one keystream blob, and
``shard_columns`` slices the columns per shard for the snapshot codec
(numpy-gathered when available).
"""

from __future__ import annotations

from array import array
from typing import Callable

from ..core.errors import RevokedError, UnknownHostError
from ..core.hostdb import FIRST_HOST_HID, HostRecord
from ..core.keys import SYMMETRIC_KEY_SIZE, HostAsKeys
from .snapshot import KEY_BYTES, pack_u32s

try:  # optional acceleration; shard_columns has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

F_REGISTERED = 1
F_REVOKED = 2
_NO_SUBSCRIBER = -1
_MAX_HID = 0xFFFF_FFFF


class HostRef:
    """A row proxy over the columns, attribute-compatible with
    :class:`~repro.core.hostdb.HostRecord`; mutations (``revoked``,
    ``ephids_issued += 1``...) write through to the columns."""

    __slots__ = ("_db", "hid", "_row")

    def __init__(self, db: "ColumnarHostDatabase", hid: int, row: int) -> None:
        self._db = db
        self.hid = hid
        self._row = row

    @property
    def keys(self) -> HostAsKeys:
        base = self._row * KEY_BYTES
        blob = self._db._keys
        return HostAsKeys(
            control=bytes(blob[base : base + SYMMETRIC_KEY_SIZE]),
            packet_mac=bytes(blob[base + SYMMETRIC_KEY_SIZE : base + KEY_BYTES]),
        )

    @property
    def subscriber_id(self) -> "int | None":
        sub = self._db._subs[self._row]
        return None if sub == _NO_SUBSCRIBER else sub

    @property
    def revoked(self) -> bool:
        return bool(self._db._flags[self._row] & F_REVOKED)

    @revoked.setter
    def revoked(self, value: bool) -> None:
        db = self._db
        current = db._flags[self._row] & F_REVOKED
        if value and not current:
            db._flags[self._row] |= F_REVOKED
            db._live_hosts -= 1
        elif not value and current:
            db._flags[self._row] &= 0xFF ^ F_REVOKED
            db._live_hosts += 1

    @property
    def ephids_issued(self) -> int:
        return self._db._issued[self._row]

    @ephids_issued.setter
    def ephids_issued(self, value: int) -> None:
        self._db._issued[self._row] = value

    @property
    def ephids_revoked(self) -> int:
        return self._db._erevoked[self._row]

    @ephids_revoked.setter
    def ephids_revoked(self, value: int) -> None:
        self._db._erevoked[self._row] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HostRef(hid={self.hid}, subscriber_id={self.subscriber_id}, "
            f"revoked={self.revoked})"
        )


class ColumnarHostDatabase:
    """``host_info`` over dense columns (the ``"columnar"`` backend)."""

    def __init__(self) -> None:
        self._flags = bytearray()
        self._keys = bytearray()
        self._subs = array("q")
        self._issued = array("I")
        self._erevoked = array("I")
        #: Service endpoints (hid < FIRST_HOST_HID) keep real records;
        #: insertion order first in ``records()``, like the object store.
        self._services: dict[int, HostRecord] = {}
        self._by_subscriber: dict[int, int] = {}
        self._next_hid = FIRST_HOST_HID
        self._live_hosts = 0
        self._registered_hosts = 0
        self.on_register: Callable[[HostRecord], None] | None = None
        self.on_revoke_hid: Callable[[int], None] | None = None

    # -- row plumbing ------------------------------------------------------

    def _ensure_rows(self, count: int) -> None:
        grow = count - len(self._flags)
        if grow <= 0:
            return
        self._flags += bytes(grow)
        self._keys += bytes(grow * KEY_BYTES)
        self._subs.frombytes(b"\xff" * (8 * grow))  # -1 == no subscriber
        self._issued.frombytes(bytes(4 * grow))
        self._erevoked.frombytes(bytes(4 * grow))

    # -- HostDatabase duck API ---------------------------------------------

    def allocate_hid(self) -> int:
        """Assign a fresh, never-reused HID."""
        hid = self._next_hid
        if hid > _MAX_HID:
            raise UnknownHostError("HID space exhausted")
        self._next_hid += 1
        return hid

    def _check_subscriber(self, record: HostRecord) -> None:
        if record.subscriber_id is not None and not record.revoked:
            previous = self.find_by_subscriber(record.subscriber_id)
            if previous is not None:
                raise UnknownHostError(
                    f"subscriber {record.subscriber_id} already has live "
                    f"HID {previous.hid}"
                )
            self._by_subscriber[record.subscriber_id] = record.hid

    def register(self, record: HostRecord) -> None:
        hid = record.hid
        if hid < FIRST_HOST_HID:
            if hid in self._services:
                raise UnknownHostError(f"HID {hid} already registered")
            self._check_subscriber(record)
            self._services[hid] = record
            if self.on_register is not None:
                self.on_register(record)
            return
        row = hid - FIRST_HOST_HID
        if row < len(self._flags) and self._flags[row] & F_REGISTERED:
            raise UnknownHostError(f"HID {hid} already registered")
        keys = record.keys
        if (
            len(keys.control) != SYMMETRIC_KEY_SIZE
            or len(keys.packet_mac) != SYMMETRIC_KEY_SIZE
        ):
            raise ValueError("kHA subkeys must be 16 bytes each")
        self._check_subscriber(record)
        self._ensure_rows(row + 1)
        base = row * KEY_BYTES
        self._keys[base : base + SYMMETRIC_KEY_SIZE] = keys.control
        self._keys[base + SYMMETRIC_KEY_SIZE : base + KEY_BYTES] = keys.packet_mac
        self._flags[row] = F_REGISTERED | (F_REVOKED if record.revoked else 0)
        self._subs[row] = (
            _NO_SUBSCRIBER if record.subscriber_id is None else record.subscriber_id
        )
        self._issued[row] = record.ephids_issued
        self._erevoked[row] = record.ephids_revoked
        self._registered_hosts += 1
        if not record.revoked:
            self._live_hosts += 1
        if self.on_register is not None:
            self.on_register(record)

    def get(self, hid: int):
        """Look up a live host; raises for unknown or revoked HIDs."""
        if hid < FIRST_HOST_HID:
            record = self._services.get(hid)
            if record is None:
                raise UnknownHostError(f"HID {hid} is not registered")
            if record.revoked:
                raise RevokedError(f"HID {hid} is revoked")
            return record
        row = hid - FIRST_HOST_HID
        if row >= len(self._flags) or not self._flags[row] & F_REGISTERED:
            raise UnknownHostError(f"HID {hid} is not registered")
        if self._flags[row] & F_REVOKED:
            raise RevokedError(f"HID {hid} is revoked")
        return HostRef(self, hid, row)

    def is_valid(self, hid: int) -> bool:
        if hid < FIRST_HOST_HID:
            record = self._services.get(hid)
            return record is not None and not record.revoked
        row = hid - FIRST_HOST_HID
        return row < len(self._flags) and self._flags[row] == F_REGISTERED

    def revoke_hid(self, hid: int) -> None:
        """Revoke a host identity (Section VIII-G2's escalation)."""
        if hid < FIRST_HOST_HID:
            record = self._services.get(hid)
            if record is None:
                raise UnknownHostError(f"HID {hid} is not registered")
            record.revoked = True
            subscriber_id = record.subscriber_id
        else:
            row = hid - FIRST_HOST_HID
            if row >= len(self._flags) or not self._flags[row] & F_REGISTERED:
                raise UnknownHostError(f"HID {hid} is not registered")
            if not self._flags[row] & F_REVOKED:
                self._flags[row] |= F_REVOKED
                self._live_hosts -= 1
            sub = self._subs[row]
            subscriber_id = None if sub == _NO_SUBSCRIBER else sub
        if (
            subscriber_id is not None
            and self._by_subscriber.get(subscriber_id) == hid
        ):
            del self._by_subscriber[subscriber_id]
        if self.on_revoke_hid is not None:
            self.on_revoke_hid(hid)

    def find_by_subscriber(self, subscriber_id: int):
        """Current live HID for a subscriber, if any (one HID per host)."""
        hid = self._by_subscriber.get(subscriber_id)
        if hid is None:
            return None
        if hid < FIRST_HOST_HID:
            record = self._services[hid]
            if record.revoked:
                del self._by_subscriber[subscriber_id]
                return None
            return record
        row = hid - FIRST_HOST_HID
        if self._flags[row] & F_REVOKED:
            # Revoked via direct HostRef mutation (which keeps the live
            # counter exact); heal the stale index entry.
            del self._by_subscriber[subscriber_id]
            return None
        return HostRef(self, hid, row)

    def records(self):
        """Iterate every record, revoked included (for shard snapshots)."""
        yield from self._services.values()
        flags = self._flags
        for row in range(len(flags)):
            if flags[row] & F_REGISTERED:
                yield HostRef(self, FIRST_HOST_HID + row, row)

    def __contains__(self, hid: int) -> bool:
        return self.is_valid(hid)

    def __len__(self) -> int:
        return self._live_hosts + sum(
            1 for record in self._services.values() if not record.revoked
        )

    @property
    def total_registered(self) -> int:
        return len(self._services) + self._registered_hosts

    # -- bulk entry points -------------------------------------------------

    def bulk_register(self, count: int, key_material: bytes) -> int:
        """Register ``count`` subscriber-less hosts from one keystream.

        ``key_material`` is ``count`` 32-byte rows (control || packet_mac)
        copied straight into the key column — no per-host record objects.
        Returns the first HID of the contiguous range.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        if len(key_material) != count * KEY_BYTES:
            raise ValueError(
                f"key material is {len(key_material)} bytes, "
                f"expected {count * KEY_BYTES}"
            )
        first = self._next_hid
        if first + count - 1 > _MAX_HID:
            raise UnknownHostError("HID space exhausted")
        row = first - FIRST_HOST_HID
        if row == len(self._flags):
            self._flags += b"\x01" * count
            self._keys += key_material
            self._subs.frombytes(b"\xff" * (8 * count))
            self._issued.frombytes(bytes(4 * count))
            self._erevoked.frombytes(bytes(4 * count))
        else:
            # Rows past _next_hid already exist (out-of-order explicit
            # registration); fall back to per-row writes with collision
            # checks.
            self._ensure_rows(row + count)
            for r in range(row, row + count):
                if self._flags[r] & F_REGISTERED:
                    raise UnknownHostError(
                        f"HID {FIRST_HOST_HID + r} already registered"
                    )
            for i in range(count):
                r = row + i
                self._flags[r] = F_REGISTERED
                base = r * KEY_BYTES
                self._keys[base : base + KEY_BYTES] = key_material[
                    i * KEY_BYTES : (i + 1) * KEY_BYTES
                ]
                self._subs[r] = _NO_SUBSCRIBER
                self._issued[r] = 0
                self._erevoked[r] = 0
        self._next_hid = first + count
        self._live_hosts += count
        self._registered_hosts += count
        if self.on_register is not None:
            for hid in range(first, first + count):
                self.on_register(self.get(hid))
        return first

    def shard_columns(self, plan, shard: int):
        """One shard's owned/live sections as packed column bytes.

        Returns ``(owned_hids, owned_flags, owned_keys, live_hids)`` in
        the snapshot codec's layout; service records come first (they
        all route to shard 0), host rows follow in HID order.
        """
        svc_hids: list[int] = []
        svc_flags = bytearray()
        svc_keys: list[bytes] = []
        svc_live: list[int] = []
        for record in self._services.values():
            if not record.revoked:
                svc_live.append(record.hid)
            if plan.owner_of(record.hid) == shard:
                svc_hids.append(record.hid)
                svc_flags.append(1 if record.revoked else 0)
                svc_keys.append(record.keys.control)
                svc_keys.append(record.keys.packet_mac)
        nshards, block = plan.nshards, plan.block
        if _np is not None:
            flags = _np.frombuffer(self._flags, dtype=_np.uint8)
            rows = _np.flatnonzero(flags & F_REGISTERED)
            hids = rows.astype(_np.uint32) + _np.uint32(FIRST_HOST_HID)
            row_flags = flags[rows]
            live_hids = hids[(row_flags & F_REVOKED) == 0].astype(">u4").tobytes()
            owned = ((rows // block) % nshards) == shard
            owned_rows = rows[owned]
            owned_hids = hids[owned].astype(">u4").tobytes()
            owned_flags = ((row_flags[owned] & F_REVOKED) >> 1).tobytes()
            keymat = _np.frombuffer(self._keys, dtype=_np.uint8)
            owned_keys = keymat.reshape(-1, KEY_BYTES)[owned_rows].tobytes()
        else:
            host_hids: list[int] = []
            host_flags = bytearray()
            key_parts: list[bytes] = []
            live: list[int] = []
            flags_col = self._flags
            keys_col = self._keys
            for row in range(len(flags_col)):
                f = flags_col[row]
                if not f & F_REGISTERED:
                    continue
                hid = FIRST_HOST_HID + row
                if not f & F_REVOKED:
                    live.append(hid)
                if (row // block) % nshards == shard:
                    host_hids.append(hid)
                    host_flags.append(1 if f & F_REVOKED else 0)
                    base = row * KEY_BYTES
                    key_parts.append(bytes(keys_col[base : base + KEY_BYTES]))
            owned_hids = pack_u32s(host_hids)
            owned_flags = bytes(host_flags)
            owned_keys = b"".join(key_parts)
            live_hids = pack_u32s(live)
        return (
            pack_u32s(svc_hids) + owned_hids,
            bytes(svc_flags) + owned_flags,
            b"".join(svc_keys) + owned_keys,
            pack_u32s(svc_live) + live_hids,
        )
