"""Columnar ``revoked_ids``: packed expiry/EphID columns, dict membership.

Drop-in duck type for :class:`~repro.core.revocation.RevocationList`
(``add``/``contains``/``prune``/``maybe_prune``/``snapshot``/``on_add``)
that stores entries as an ``array('d')`` expiry column plus one pooled
16-byte-per-row EphID blob instead of a ``set[bytes]`` + tuple heap, and
adds two bulk entry points the snapshot codec uses:
``packed_snapshot()`` emits the columns as big-endian wire bytes and
``load_packed()`` ingests them without per-entry ``add`` calls.
"""

from __future__ import annotations

import heapq
from typing import Callable

from .snapshot import EPHID_BYTES, pack_f64s, unpack_f64s

#: Compact the columns once pruned holes outnumber live rows (and the
#: store is big enough for the copy to be worth it).
_COMPACT_MIN_ROWS = 64


class ColumnarRevocationList:
    """``revoked_ids`` over packed columns with expiry-based pruning."""

    def __init__(self, *, auto_prune: bool = True) -> None:
        self._exp = self._new_exp()
        self._ephids = bytearray()
        #: ephid -> row; membership truth and snapshot order (insertion).
        self._index: dict[bytes, int] = {}
        self._heap: list[tuple[float, int]] = []
        self.auto_prune = auto_prune
        self.total_added = 0
        self.on_add: Callable[[bytes, float], None] | None = None

    @staticmethod
    def _new_exp():
        from array import array

        return array("d")

    def add(self, ephid: bytes, exp_time: float) -> None:
        if ephid in self._index:
            return
        row = len(self._exp)
        self._exp.append(exp_time)
        self._ephids += ephid
        self._index[ephid] = row
        heapq.heappush(self._heap, (exp_time, row))
        self.total_added += 1
        if self.on_add is not None:
            self.on_add(ephid, exp_time)

    def contains(self, ephid: bytes) -> bool:
        return ephid in self._index

    __contains__ = contains

    def prune(self, now: float) -> int:
        """Drop entries whose EphIDs have expired; returns how many."""
        pruned = 0
        while self._heap and self._heap[0][0] < now:
            _, row = heapq.heappop(self._heap)
            base = row * EPHID_BYTES
            ephid = bytes(self._ephids[base : base + EPHID_BYTES])
            # The row owns its index entry unless the EphID was pruned
            # and later re-added (which allocates a fresh row).
            if self._index.get(ephid) == row:
                del self._index[ephid]
            pruned += 1
        if pruned:
            live = len(self._index)
            if len(self._exp) >= _COMPACT_MIN_ROWS and live * 2 < len(self._exp):
                self._compact()
        return pruned

    def maybe_prune(self, now: float) -> int:
        return self.prune(now) if self.auto_prune else 0

    def _compact(self) -> None:
        """Rewrite the columns hole-free; row numbers (and the heap that
        references them) are rebuilt in insertion order."""
        exp = self._new_exp()
        ephids = bytearray()
        index: dict[bytes, int] = {}
        heap: list[tuple[float, int]] = []
        for ephid, row in self._index.items():
            new_row = len(exp)
            exp.append(self._exp[row])
            ephids += ephid
            index[ephid] = new_row
            heap.append((exp[new_row], new_row))
        heapq.heapify(heap)
        self._exp, self._ephids = exp, ephids
        self._index, self._heap = index, heap

    def snapshot(self) -> "list[tuple[bytes, float]]":
        """The live ``(ephid, exp_time)`` entries (for seeding replicas)."""
        return [(ephid, self._exp[row]) for ephid, row in self._index.items()]

    def packed_snapshot(self) -> "tuple[bytes, bytes]":
        """The live entries as packed ``(exp_be_blob, ephid_blob)`` columns."""
        if len(self._index) == len(self._exp):
            return pack_f64s(self._exp), bytes(self._ephids)
        exps = []
        ephids = bytearray()
        for ephid, row in self._index.items():
            exps.append(self._exp[row])
            ephids += ephid
        return pack_f64s(exps), bytes(ephids)

    def load_packed(self, exp_blob: bytes, ephid_blob: bytes) -> int:
        """Bulk-ingest packed columns (a fresh replica's resync path)."""
        exps = unpack_f64s(exp_blob)
        n = len(exps)
        if len(ephid_blob) != n * EPHID_BYTES:
            raise ValueError(
                f"revocation columns disagree: {n} expiries, "
                f"{len(ephid_blob)} ephid bytes"
            )
        self._exp = exps
        self._ephids = bytearray(ephid_blob)
        self._index = {
            bytes(ephid_blob[i * EPHID_BYTES : (i + 1) * EPHID_BYTES]): i
            for i in range(n)
        }
        if len(self._index) != n:
            raise ValueError("duplicate EphIDs in packed revocation columns")
        heap = list(zip(exps, range(n)))
        heapq.heapify(heap)
        self._heap = heap
        self.total_added += n
        return n

    def __len__(self) -> int:
        return len(self._index)
