"""Columnar shard host view: the worker-process side of the columns.

Duck-type compatible with :class:`~repro.sharding.worker.ShardHostView`
(``add_owned``/``set_live``/``revoke``/``is_valid``/``get``/
``owned_count``), but backed by dense columns instead of per-host
dicts.  A shard owns the HID blocks ``blk % nshards == shard`` of the
dense row space, so its owned rows compact to their own dense index::

    row  = hid - FIRST_HOST_HID
    blk, off = divmod(row, block)          # owned iff blk % nshards == shard
    orow = (blk // nshards) * block + off  # dense per-shard row

Owned keys live in one pooled bytearray at ``orow``; the replicated
live-HID view is one byte per dense row.  ``load_snapshot`` ingests a
:class:`~repro.state.snapshot.ShardSnapshot` with numpy scatter stores
when available (stdlib loop otherwise), so a worker resync at
million-host scale is a handful of vectorised copies.  ``get`` hands
out cached :class:`_ViewRecord` proxies only for HIDs actually looked
up (i.e. hosts that send traffic), never per registered host.
"""

from __future__ import annotations

from ..core.errors import RevokedError, UnknownHostError
from ..core.hostdb import FIRST_HOST_HID
from ..core.keys import HostAsKeys
from .snapshot import KEY_BYTES, ShardSnapshot

try:  # optional acceleration; load_snapshot has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

_ABSENT = 0
_PRESENT = 1
_REVOKED = 2


class _ViewRecord:
    """What ``get`` returns: hid + kHA keys + a live ``revoked`` flag."""

    __slots__ = ("hid", "keys", "revoked")

    def __init__(self, hid: int, keys: HostAsKeys, revoked: bool) -> None:
        self.hid = hid
        self.keys = keys
        self.revoked = revoked


class ColumnarShardView:
    """A shard's ``host_info`` view over dense columns."""

    def __init__(self, *, shard: int, nshards: int, block: int = 1) -> None:
        self._shard = shard
        self._nshards = nshards
        self._block = block
        self._owned_flags = bytearray()  # by orow: _ABSENT/_PRESENT[|_REVOKED]
        self._keys = bytearray()  # by orow: 32 B (control || packet_mac)
        self._owned_n = 0
        self._live = bytearray()  # by dense row: 1 == live
        self._service_live: set[int] = set()
        #: Out-of-plan entries: service HIDs (< FIRST_HOST_HID) and any
        #: host HID add_owned put here despite not mapping to this shard.
        self._extra: dict[int, _ViewRecord] = {}
        #: hid -> materialised record, populated lazily by ``get`` so
        #: repeat lookups for active senders stay one dict hit.
        self._cache: dict[int, _ViewRecord] = {}

    # -- row math ----------------------------------------------------------

    def _orow(self, hid: int) -> int:
        """Dense per-shard row for ``hid``; -1 if not in this shard's plan."""
        if hid < FIRST_HOST_HID:
            return -1
        blk, off = divmod(hid - FIRST_HOST_HID, self._block)
        if blk % self._nshards != self._shard:
            return -1
        return (blk // self._nshards) * self._block + off

    def _ensure_orows(self, count: int) -> None:
        grow = count - len(self._owned_flags)
        if grow > 0:
            self._owned_flags += bytes(grow)
            self._keys += bytes(grow * KEY_BYTES)

    def _ensure_live(self, count: int) -> None:
        grow = count - len(self._live)
        if grow > 0:
            self._live += bytes(grow)

    # -- ShardHostView duck API --------------------------------------------

    def add_owned(
        self, hid: int, control: bytes, packet_mac: bytes, *, revoked: bool = False
    ) -> None:
        orow = self._orow(hid)
        if orow < 0:
            if hid not in self._extra:
                self._owned_n += 1
            self._extra[hid] = _ViewRecord(
                hid, HostAsKeys(control=control, packet_mac=packet_mac), revoked
            )
        else:
            self._ensure_orows(orow + 1)
            if self._owned_flags[orow] == _ABSENT:
                self._owned_n += 1
            self._owned_flags[orow] = _PRESENT | (_REVOKED if revoked else 0)
            base = orow * KEY_BYTES
            self._keys[base : base + 16] = control
            self._keys[base + 16 : base + KEY_BYTES] = packet_mac
            self._cache.pop(hid, None)
        if not revoked:
            self.set_live(hid)

    def set_live(self, hid: int) -> None:
        if hid < FIRST_HOST_HID:
            self._service_live.add(hid)
            return
        row = hid - FIRST_HOST_HID
        self._ensure_live(row + 1)
        self._live[row] = 1

    def revoke(self, hid: int) -> None:
        if hid < FIRST_HOST_HID:
            self._service_live.discard(hid)
        else:
            row = hid - FIRST_HOST_HID
            if row < len(self._live):
                self._live[row] = 0
        record = self._extra.get(hid)
        if record is not None:
            record.revoked = True
            return
        orow = self._orow(hid)
        if orow >= 0 and orow < len(self._owned_flags):
            if self._owned_flags[orow] & _PRESENT:
                self._owned_flags[orow] |= _REVOKED
            cached = self._cache.get(hid)
            if cached is not None:
                cached.revoked = True

    def is_valid(self, hid: int) -> bool:
        if hid < FIRST_HOST_HID:
            return hid in self._service_live
        row = hid - FIRST_HOST_HID
        return row < len(self._live) and self._live[row] == 1

    def get(self, hid: int) -> _ViewRecord:
        record = self._cache.get(hid)
        if record is None:
            record = self._extra.get(hid)
            if record is None:
                orow = self._orow(hid)
                if (
                    orow < 0
                    or orow >= len(self._owned_flags)
                    or not self._owned_flags[orow] & _PRESENT
                ):
                    raise UnknownHostError(
                        f"HID {hid} is not owned by this shard (misrouted packet?)"
                    )
                base = orow * KEY_BYTES
                record = _ViewRecord(
                    hid,
                    HostAsKeys(
                        control=bytes(self._keys[base : base + 16]),
                        packet_mac=bytes(self._keys[base + 16 : base + KEY_BYTES]),
                    ),
                    bool(self._owned_flags[orow] & _REVOKED),
                )
                self._cache[hid] = record
        if record.revoked:
            raise RevokedError(f"HID {hid} is revoked")
        return record

    @property
    def owned_count(self) -> int:
        return self._owned_n

    # -- bulk ingest -------------------------------------------------------

    def load_snapshot(self, snap: ShardSnapshot) -> None:
        """Replace this view's contents with a packed shard snapshot."""
        self._owned_flags = bytearray()
        self._keys = bytearray()
        self._owned_n = 0
        self._live = bytearray()
        self._service_live = set()
        self._extra = {}
        self._cache = {}
        if _np is not None and snap.owned_count + snap.live_count > 0:
            self._load_snapshot_np(snap)
            return
        for hid, control, packet_mac, revoked in snap.iter_owned():
            self.add_owned(hid, control, packet_mac, revoked=revoked)
        for hid in snap.iter_live():
            self.set_live(hid)

    def _load_snapshot_np(self, snap: ShardSnapshot) -> None:
        block, nshards, shard = self._block, self._nshards, self._shard
        hids = _np.frombuffer(snap.owned_hids, dtype=">u4").astype(_np.int64)
        flags = _np.frombuffer(snap.owned_flags, dtype=_np.uint8)
        rows = hids - FIRST_HOST_HID
        blk, off = _np.divmod(rows, block)
        in_plan = (rows >= 0) & (blk % nshards == shard)
        plan_idx = _np.flatnonzero(in_plan)
        if plan_idx.size:
            orows = (blk[plan_idx] // nshards) * block + off[plan_idx]
            self._ensure_orows(int(orows.max()) + 1)
            dest_flags = _np.frombuffer(self._owned_flags, dtype=_np.uint8)
            dest_flags[orows] = _PRESENT | (flags[plan_idx] * _REVOKED)
            src_keys = _np.frombuffer(snap.owned_keys, dtype=_np.uint8)
            dest_keys = _np.frombuffer(self._keys, dtype=_np.uint8)
            dest_keys.reshape(-1, KEY_BYTES)[orows] = src_keys.reshape(
                -1, KEY_BYTES
            )[plan_idx]
            self._owned_n += int(plan_idx.size)
        for i in _np.flatnonzero(~in_plan):
            hid = int(hids[i])
            base = int(i) * KEY_BYTES
            self._extra[hid] = _ViewRecord(
                hid,
                HostAsKeys(
                    control=snap.owned_keys[base : base + 16],
                    packet_mac=snap.owned_keys[base + 16 : base + KEY_BYTES],
                ),
                bool(flags[i]),
            )
            self._owned_n += 1
        live = _np.frombuffer(snap.live_hids, dtype=">u4").astype(_np.int64)
        live_rows = live - FIRST_HOST_HID
        host_live = live_rows >= 0
        rows_live = live_rows[host_live]
        if rows_live.size:
            self._ensure_live(int(rows_live.max()) + 1)
            dest_live = _np.frombuffer(self._live, dtype=_np.uint8)
            dest_live[rows_live] = 1
        self._service_live = {int(h) for h in live[~host_live]}
