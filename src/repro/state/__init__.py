"""``repro.state`` — columnar million-host state storage.

The paper's accountability machinery keeps three per-AS stores:
``host_info`` (HID -> kHA subkeys, Section V-A2), ``revoked_ids``
(the revocation list, IV-E), and — in this reproduction's sharded data
plane — per-worker replicas of both.  The default implementations are
per-host Python objects; at the ROADMAP's "millions of users" scale,
RAM and GC, not crypto, become the cap.  This package re-backs all of
them with columnar storage behind the exact same duck-typed APIs:

**Dense-HID index.**  Host HIDs are allocated sequentially from
``FIRST_HOST_HID``, so ``row = hid - FIRST_HOST_HID`` indexes flat
columns directly — no hash table, no per-host key objects.  Service
HIDs (a handful per AS, below ``FIRST_HOST_HID``) keep ordinary
:class:`~repro.core.hostdb.HostRecord` objects.

**Column layout.**  :class:`ColumnarHostDatabase` holds one flags byte
(registered/revoked), one 32-byte kHA key slot (control || packet_mac,
pooled in a single ``bytearray``), one subscriber id (``array('q')``,
-1 for none) and two EphID counters (``array('I')``) per row — ~53 B
per registered host and zero Python objects until a caller materialises
a :class:`~repro.state.columns.HostRef` row proxy.
:class:`ColumnarRevocationList` stores ``revoked_ids`` as an expiry
column plus a pooled EphID blob; :class:`ColumnarShardView` compacts a
shard's owned block-stripe to its own dense row space worker-side.

**Snapshot codec.**  :class:`ShardSnapshot` packs one shard's owned
keys, replicated live-HID view and revocation replica as length-
prefixed big-endian columns.  ``MSG_RESYNC`` frames carry its
``encode()`` output verbatim and the initial ``ShardSpec`` embeds the
same bytes, so spawning and resyncing a million-host shard is a few
buffer copies (numpy-gathered when available, stdlib ``array``
otherwise) instead of per-record ``struct.pack`` loops.

The ``state_backend`` config knob ("columnar" by default, "object" for
the original stores) selects the implementation through the factories
below; everything downstream sees only the shared duck-typed surface
(``get``/``is_valid``/``records``/``on_register``/``on_revoke_hid``/
``on_add``).
"""

from __future__ import annotations

import hashlib

from ..core.hostdb import HostDatabase
from ..core.revocation import RevocationList
from .columns import ColumnarHostDatabase, HostRef
from .revlist import ColumnarRevocationList
from .snapshot import HAVE_NUMPY, KEY_BYTES, ShardSnapshot, build_shard_snapshot
from .view import ColumnarShardView

__all__ = [
    "HAVE_NUMPY",
    "ColumnarHostDatabase",
    "ColumnarRevocationList",
    "ColumnarShardView",
    "HostRef",
    "ShardSnapshot",
    "build_shard_snapshot",
    "make_host_database",
    "make_revocation_list",
    "population_key_material",
]

_BACKENDS = ("object", "columnar")


def _check_backend(backend: str) -> None:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown state backend {backend!r}; expected one of {_BACKENDS}"
        )


def make_host_database(backend: str = "columnar"):
    """``host_info`` for the requested ``state_backend``."""
    _check_backend(backend)
    return ColumnarHostDatabase() if backend == "columnar" else HostDatabase()


def make_revocation_list(backend: str = "columnar", *, auto_prune: bool = True):
    """``revoked_ids`` for the requested ``state_backend``."""
    _check_backend(backend)
    if backend == "columnar":
        return ColumnarRevocationList(auto_prune=auto_prune)
    return RevocationList(auto_prune=auto_prune)


def population_key_material(seed: bytes, count: int) -> bytes:
    """Deterministic kHA keystream for a bulk-registered population.

    One SHAKE-256 squeeze of ``count`` 32-byte rows (control ||
    packet_mac per host) — drawing a million hosts' keys through the
    per-call AES rng would dominate build time.  The same seed yields
    the same keystream on every backend, which is what keeps
    object/columnar worlds bit-identical.
    """
    return hashlib.shake_256(seed).digest(KEY_BYTES * count)
