"""The packed shard-state snapshot: one codec for resync and spawn.

A :class:`ShardSnapshot` is the column-oriented serialisation of one
shard's complete state — exactly what a worker needs to (re)build its
:class:`~repro.sharding.worker.ShardState`:

* the **owned section**: the HIDs this shard holds MAC keys for, a
  revoked flag per row, and the 32-byte kHA key pair (control ||
  packet_mac) per row;
* the **live section**: every live HID of the AS (the replicated
  validity view destination-side checks consult);
* the **revocation section**: the ``(exp_time, ephid)`` replica of the
  AS revocation list.

Each section is stored as packed parallel columns (u32 HIDs, u8 flags,
fixed-width byte pools, f64 expiries — all big-endian), so encoding a
million-host shard is a handful of buffer copies instead of a
million-iteration ``struct.pack`` loop, and the wire image *is* the
in-memory image.  Both the initial :class:`~repro.sharding.worker.
ShardSpec` and the supervisor's ``MSG_RESYNC`` replay carry one of
these, so there is exactly one serialisation of shard state in the
system.
"""

from __future__ import annotations

import struct
import sys
from array import array
from dataclasses import dataclass

try:  # optional acceleration; every path below has a stdlib fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "EPHID_BYTES",
    "HAVE_NUMPY",
    "KEY_BYTES",
    "ShardSnapshot",
    "build_shard_snapshot",
    "pack_f64s",
    "pack_u32s",
    "unpack_f64s",
    "unpack_u32s",
]

#: One owned row's key payload: control subkey || packet-MAC subkey.
KEY_BYTES = 32
EPHID_BYTES = 16

_NEEDS_SWAP = sys.byteorder == "little"
_HEAD = struct.Struct(">III")  # n_owned, n_live, n_revoked

#: Routing-trailer mode flags (u8).  Snapshots encoded before the keyed
#: routing change have no trailer at all; :meth:`ShardSnapshot.decode`
#: still accepts those blobs and reports ``routing_mode == ""``.
_ROUTING_FLAG = {"": 0, "residue": 1, "keyed": 2}
_ROUTING_MODE = {flag: mode for mode, flag in _ROUTING_FLAG.items()}


def pack_u32s(values) -> bytes:
    """Pack an iterable of ints into big-endian u32 bytes."""
    arr = array("I", values)
    if _NEEDS_SWAP:
        arr.byteswap()
    return arr.tobytes()


def unpack_u32s(buf) -> array:
    """Big-endian u32 bytes back into a native ``array('I')``."""
    arr = array("I")
    arr.frombytes(buf)
    if _NEEDS_SWAP:
        arr.byteswap()
    return arr


def pack_f64s(values) -> bytes:
    """Pack an iterable of floats into big-endian f64 bytes."""
    arr = array("d", values)
    if _NEEDS_SWAP:
        arr.byteswap()
    return arr.tobytes()


def unpack_f64s(buf) -> array:
    """Big-endian f64 bytes back into a native ``array('d')``."""
    arr = array("d")
    arr.frombytes(buf)
    if _NEEDS_SWAP:
        arr.byteswap()
    return arr


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's packed state: owned keys, live view, revocations.

    Fields hold the packed column bytes directly (not decoded rows), so
    a snapshot round-trips through :meth:`encode`/:meth:`decode` without
    ever materialising per-record objects.
    """

    owned_hids: bytes  # n x u32 BE
    owned_flags: bytes  # n x u8, 1 = revoked
    owned_keys: bytes  # n x 32 B (control || packet_mac)
    live_hids: bytes  # m x u32 BE
    rev_exp: bytes  # k x f64 BE
    rev_ephids: bytes  # k x 16 B
    #: IV -> shard routing the snapshot's plan uses (``""`` on legacy
    #: blobs that predate keyed routing).  Carried so a restarted worker
    #: can sanity-check that its spec and the resync'd state agree on
    #: how packets reach it.
    routing_mode: str = ""
    #: kR when ``routing_mode == "keyed"`` (else empty).
    routing_key: bytes = b""

    def __post_init__(self) -> None:
        n = self.owned_count
        if len(self.owned_flags) != n or len(self.owned_keys) != n * KEY_BYTES:
            raise ValueError(
                f"owned columns disagree: {n} hids, "
                f"{len(self.owned_flags)} flags, {len(self.owned_keys)} key bytes"
            )
        if len(self.rev_ephids) != self.revoked_count * EPHID_BYTES:
            raise ValueError(
                f"revocation columns disagree: {self.revoked_count} expiries, "
                f"{len(self.rev_ephids)} ephid bytes"
            )
        if self.routing_mode not in _ROUTING_FLAG:
            raise ValueError(f"unknown routing mode {self.routing_mode!r}")
        if len(self.routing_key) > 255:
            raise ValueError("routing key too long for the u8 length field")

    @property
    def owned_count(self) -> int:
        return len(self.owned_hids) // 4

    @property
    def live_count(self) -> int:
        return len(self.live_hids) // 4

    @property
    def revoked_count(self) -> int:
        return len(self.rev_exp) // 8

    # -- codec ------------------------------------------------------------

    def encode(self) -> bytes:
        """The wire image: a 12-byte header, the six columns, then the
        routing trailer (u8 mode flag, u8 key length, kR bytes)."""
        return b"".join(
            (
                _HEAD.pack(self.owned_count, self.live_count, self.revoked_count),
                self.owned_hids,
                self.owned_flags,
                self.owned_keys,
                self.live_hids,
                self.rev_exp,
                self.rev_ephids,
                bytes((_ROUTING_FLAG[self.routing_mode], len(self.routing_key))),
                self.routing_key,
            )
        )

    @classmethod
    def decode(cls, buf) -> "ShardSnapshot":
        view = memoryview(buf)
        n, m, k = _HEAD.unpack_from(view)
        offset = _HEAD.size
        sections = []
        for size in (n * 4, n, n * KEY_BYTES, m * 4, k * 8, k * EPHID_BYTES):
            sections.append(bytes(view[offset : offset + size]))
            offset += size
        if offset == len(view):
            # Legacy blob without the routing trailer.
            return cls(*sections)
        if offset + 2 > len(view):
            raise ValueError(
                f"snapshot is {len(view)} bytes, columns end at {offset} "
                "with a truncated routing trailer"
            )
        flag, keylen = view[offset], view[offset + 1]
        offset += 2
        mode = _ROUTING_MODE.get(flag)
        if mode is None:
            raise ValueError(f"unknown routing-mode flag {flag}")
        key = bytes(view[offset : offset + keylen])
        offset += keylen
        if offset != len(view):
            raise ValueError(
                f"snapshot is {len(view)} bytes, header implies {offset}"
            )
        return cls(*sections, routing_mode=mode, routing_key=key)

    @classmethod
    def empty(cls) -> "ShardSnapshot":
        return cls(b"", b"", b"", b"", b"", b"")

    @classmethod
    def from_rows(cls, owned_rows, live_hids, revoked_entries) -> "ShardSnapshot":
        """Build from per-record rows (the object-backend path).

        ``owned_rows`` is an iterable of ``(hid, control, packet_mac,
        revoked)``, ``live_hids`` of ints, ``revoked_entries`` of
        ``(ephid, exp_time)``.
        """
        hids = []
        flags = bytearray()
        keys = []
        for hid, control, packet_mac, revoked in owned_rows:
            hids.append(hid)
            flags.append(1 if revoked else 0)
            keys.append(control)
            keys.append(packet_mac)
        entries = list(revoked_entries)
        return cls(
            owned_hids=pack_u32s(hids),
            owned_flags=bytes(flags),
            owned_keys=b"".join(keys),
            live_hids=pack_u32s(live_hids),
            rev_exp=pack_f64s(exp for _, exp in entries),
            rev_ephids=b"".join(ephid for ephid, _ in entries),
        )

    # -- row iteration (the object-backend consumption path) ---------------

    def iter_owned(self):
        """Yield ``(hid, control, packet_mac, revoked)`` per owned row."""
        hids = unpack_u32s(self.owned_hids)
        flags = self.owned_flags
        keys = self.owned_keys
        for i, hid in enumerate(hids):
            base = i * KEY_BYTES
            yield (
                hid,
                keys[base : base + 16],
                keys[base + 16 : base + KEY_BYTES],
                flags[i] != 0,
            )

    def iter_live(self):
        return iter(unpack_u32s(self.live_hids))

    def iter_revoked(self):
        """Yield ``(ephid, exp_time)`` per revocation entry."""
        exps = unpack_f64s(self.rev_exp)
        ephids = self.rev_ephids
        for i, exp in enumerate(exps):
            base = i * EPHID_BYTES
            yield ephids[base : base + EPHID_BYTES], exp


def build_shard_snapshot(hostdb, revocations, plan, shard: int) -> ShardSnapshot:
    """One shard's snapshot from the authoritative AS state.

    Dispatches to the columnar fast paths when the store provides them
    (``hostdb.shard_columns`` / ``revocations.packed_snapshot``) and
    falls back to per-record iteration for the object-backed stores, so
    the supervisor and the pool builder never care which backend an AS
    runs.
    """
    columns = getattr(hostdb, "shard_columns", None)
    if columns is not None:
        owned_hids, owned_flags, owned_keys, live_hids = columns(plan, shard)
    else:
        hids = []
        flags = bytearray()
        keys = []
        live = []
        for record in hostdb.records():
            if not record.revoked:
                live.append(record.hid)
            if plan.owner_of(record.hid) == shard:
                hids.append(record.hid)
                flags.append(1 if record.revoked else 0)
                keys.append(record.keys.control)
                keys.append(record.keys.packet_mac)
        owned_hids = pack_u32s(hids)
        owned_flags = bytes(flags)
        owned_keys = b"".join(keys)
        live_hids = pack_u32s(live)
    packed = getattr(revocations, "packed_snapshot", None)
    if packed is not None:
        rev_exp, rev_ephids = packed()
    else:
        entries = revocations.snapshot()
        rev_exp = pack_f64s(exp for _, exp in entries)
        rev_ephids = b"".join(ephid for ephid, _ in entries)
    return ShardSnapshot(
        owned_hids=owned_hids,
        owned_flags=owned_flags,
        owned_keys=owned_keys,
        live_hids=live_hids,
        rev_exp=rev_exp,
        rev_ephids=rev_ephids,
        routing_mode=getattr(plan, "mode", ""),
        routing_key=getattr(plan, "key", None) or b"",
    )
