"""APNA — *Source Accountability with Domain-brokered Privacy* (CoNEXT 2016).

A from-scratch Python reproduction of the Accountable and Private Network
Architecture (APNA) by Lee, Pappas, Barrera, Szalachowski and Perrig
(ETH Zurich, arXiv:1610.00461).

APNA enlists ISPs (autonomous systems) as *accountability agents* and
*privacy brokers*.  Hosts address each other with 16-byte **Ephemeral
Identifiers (EphIDs)** — CCA-secure encrypted tokens only the issuing AS can
link back to a host — instead of long-lived addresses.  Every packet carries
a MAC keyed with a host<->AS shared key (source accountability), EphIDs hide
host identity from everyone but the issuing AS (host privacy), and EphIDs
are bound to short-lived certified key pairs used for end-to-end key
agreement with perfect forward secrecy (data privacy).

Package map
-----------

=================== ========================================================
``repro.crypto``    From-scratch crypto substrate: AES, CTR/CBC-MAC/CMAC/
                    GCM, HKDF, X25519, Ed25519, AEAD schemes, RNGs.
``repro.wire``      Wire formats: the 48 B APNA header (Fig. 7), replay-
                    nonce extension, IPv4/GRE encapsulation (Fig. 9),
                    transport, ICMP.
``repro.core``      The paper's contribution: EphID codec (Fig. 6),
                    certificates, registry (Fig. 2), management service
                    (Fig. 3), border router (Fig. 4), accountability agent /
                    shutoff (Fig. 5), host stack, sessions, granularity
                    policies, revocation, and the AS assembly.
``repro.netsim``    Discrete-event network simulator (clock, links,
                    routing).
``repro.topology``  Declarative topologies: ``TopologySpec``, the fluent
                    ``WorldBuilder`` and the unified ``World`` every
                    scenario builds into.
``repro.scenarios`` Named presets ("fig1", "chain:N", "star:N",
                    "transit-stub:TxS") resolvable by string, plus a
                    registry for custom scenarios.
``repro.dns``       DNS substrate with signed records and receive-only
                    EphIDs (Section VII-A).
``repro.gateway``   Deployment bridges: IPv4<->APNA gateway (VII-D),
                    bridge/NAT access points (VII-B), APNA-as-a-Service
                    (VIII-E).
``repro.pathval``   Path validation + on-path shutoff authorization
                    (Section VIII-C, built).
``repro.tls``       Authentication-only TLS over APNA, channel-bound to the
                    session key (Section VIII-F, built).
``repro.baselines`` Comparators: plain IP, APIP, AIP, Persona (Section IX).
``repro.sharding``  Share-nothing multi-process scale-out (Section V-A3):
                    HID-range worker shards behind a burst dispatcher
                    (``ShardedDataPlane``), enabled via
                    ``ApnaConfig(forwarding_shards=N)`` or
                    ``WorldBuilder.sharding(N)``; also E1's sharded MS
                    issuance runner.
``repro.workload``  Synthetic 24 h flow traces, packet pools (Section V)
                    and ``TrafficProfile`` — replay a trace against any
                    built ``World`` in one call.
``repro.attacks``   Adversary harness for the security analysis (Section
                    VI).
``repro.experiments`` Runnable paper-artifact reproductions (E1-E15).
``repro.metrics``   Small timing/table helpers shared by the experiments.
=================== ========================================================

Quickstart
----------

>>> from repro import scenarios
>>> world = scenarios.build("fig1", seed=7)          # the paper's Fig. 1
>>> alice = world.attach_host("alice", at="a")
>>> bob = world.attach_host("bob", at="b")
>>> bob_ephid = bob.acquire_ephid_direct()
>>> session = alice.connect(bob_ephid.cert, early_data=b"hello, private internet")
>>> world.run()

Arbitrary shapes come from the fluent builder:

>>> from repro import WorldBuilder
>>> world = (
...     WorldBuilder(seed=7)
...     .transit("T1").transit("T2").link("T1", "T2")
...     .stub("S1", parent="T1").stub("S2", parent="T2")
...     .host("alice", at="S1").host("bob", at="S2")
...     .build()
... )
>>> world.as_path("S1", "S2")
[100, 1, 2, 200]

and heavy multi-flow traffic from a profile:

>>> from repro.workload import TrafficProfile
>>> report = TrafficProfile(clients=8, servers=2, max_flows=500).drive(world)

See ``examples/quickstart.py`` for the full narrated version.
"""

from . import scenarios
from .core import (
    AccountabilityAgent,
    ApnaAutonomousSystem,
    ApnaConfig,
    ApnaError,
    ApnaHostNode,
    AsCertificate,
    BorderRouter,
    EphIdCertificate,
    EphIdCodec,
    EphIdInfo,
    HostStack,
    ManagementService,
    RegistryService,
    RevocationList,
    RpkiDirectory,
    Session,
    TrustAnchor,
    make_policy,
)
from .netsim import Network
from .topology import (
    AsSpec,
    DuplicateHostError,
    HostSpec,
    LinkSpec,
    TopologyError,
    TopologySpec,
    UnknownAsError,
    World,
    WorldBuilder,
)
from .version import __version__
from .world import (
    MultiAsWorld,
    TwoAsWorld,
    build_as_chain,
    build_as_star,
    build_transit_stub,
    build_two_as_internet,
)

__all__ = [
    "AccountabilityAgent",
    "ApnaAutonomousSystem",
    "ApnaConfig",
    "ApnaError",
    "ApnaHostNode",
    "AsCertificate",
    "AsSpec",
    "BorderRouter",
    "DuplicateHostError",
    "EphIdCertificate",
    "EphIdCodec",
    "EphIdInfo",
    "HostSpec",
    "HostStack",
    "LinkSpec",
    "ManagementService",
    "MultiAsWorld",
    "Network",
    "RegistryService",
    "RevocationList",
    "RpkiDirectory",
    "Session",
    "TopologyError",
    "TopologySpec",
    "TrafficProfile",
    "TrafficReport",
    "TrustAnchor",
    "TwoAsWorld",
    "UnknownAsError",
    "World",
    "WorldBuilder",
    "build_as_chain",
    "build_as_star",
    "build_transit_stub",
    "build_two_as_internet",
    "make_policy",
    "scenarios",
    "__version__",
]

#: Lazily re-exported so ``import repro`` doesn't pay for the workload
#: stack (numpy) unless traffic profiles are actually used.
_LAZY_WORKLOAD = ("TrafficProfile", "TrafficReport")


def __getattr__(name: str):
    if name in _LAZY_WORKLOAD:
        from . import workload

        return getattr(workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
