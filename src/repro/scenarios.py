"""Named scenario presets, resolvable by string.

One registry maps preset names to :class:`~repro.topology.TopologySpec`
factories, so experiments, benchmarks and one-liners can summon any of
the paper's evaluation shapes without touching builder code::

    >>> from repro import scenarios
    >>> world = scenarios.build("fig1", seed=7)          # the Fig. 1 pair
    >>> chain = scenarios.build("chain:4", seed=1)       # VIII-C path-val
    >>> aaas = scenarios.build("transit-stub:3x2")       # VIII-E hierarchy

Parameterised presets take their arguments after a colon: ``"chain:N"``,
``"star:N"``, ``"transit-stub:TxS"``.  Custom scenarios register with
:func:`register`::

    >>> @scenarios.register("dumbbell", description="two hubs, N leaves each")
    ... def _dumbbell(arg):
    ...     n = int(arg or 2)
    ...     ...
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from .core.config import ApnaConfig
from .topology import TopologyError, TopologySpec, World

__all__ = ["Scenario", "build", "describe", "names", "register", "spec"]


@dataclass(frozen=True)
class Scenario:
    """One registered preset: a name, a blurb and a spec factory.

    The factory receives the raw argument string after the colon (or
    ``None`` when the preset is invoked bare) and returns a
    :class:`TopologySpec`.
    """

    name: str
    description: str
    factory: Callable[[str | None], TopologySpec]


_REGISTRY: dict[str, Scenario] = {}


def register(
    name: str, *, description: str = ""
) -> Callable[[Callable[[str | None], TopologySpec]], Callable]:
    """Decorator: register ``factory(arg) -> TopologySpec`` under ``name``."""

    def _register(factory: Callable[[str | None], TopologySpec]) -> Callable:
        if name in _REGISTRY:
            raise TopologyError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = Scenario(name, description, factory)
        return factory

    return _register


def names() -> list[str]:
    """All registered preset names, sorted."""
    return sorted(_REGISTRY)


def describe() -> list[tuple[str, str]]:
    """``(name, description)`` pairs for every registered preset."""
    return [(s.name, s.description) for _, s in sorted(_REGISTRY.items())]


def spec(preset: str) -> TopologySpec:
    """Resolve a preset string (``"fig1"``, ``"chain:5"``, ...) to a spec."""
    name, _, arg = preset.partition(":")
    name = name.strip()
    try:
        scenario = _REGISTRY[name]
    except KeyError:
        raise TopologyError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(names())}"
        ) from None
    return scenario.factory(arg.strip() or None)


def build(
    preset: str, *, seed: int | str = 0, config: ApnaConfig | None = None
) -> World:
    """Build the :class:`World` for a preset string in one call."""
    return World.from_spec(spec(preset), seed=seed, config=config)


# --------------------------------------------------------------------------
# Built-in presets


def _int_arg(arg: str | None, usage: str) -> int:
    if arg is None:
        raise TopologyError(f"this scenario needs a parameter: {usage}")
    try:
        return int(arg)
    except ValueError:
        raise TopologyError(f"bad scenario parameter {arg!r}; usage: {usage}") from None


@register("fig1", description="the paper's Fig. 1: two peered ASes (AIDs 100, 200)")
def _fig1(arg: str | None) -> TopologySpec:
    if arg is not None:
        raise TopologyError('"fig1" takes no parameter')
    return TopologySpec.fig1()


@register("two-as", description='alias of "fig1"')
def _two_as(arg: str | None) -> TopologySpec:
    return _fig1(arg)


@register("chain", description="linear chain of N ASes, as chain:N (Section VIII-C)")
def _chain(arg: str | None) -> TopologySpec:
    return TopologySpec.chain(_int_arg(arg, "chain:N"))


@register(
    "crash-storm",
    description=(
        "fig1 pair with N hosts per AS, sized for sharded chaos runs "
        "(crash-storm:N, default 4); pair with a forwarding_shards config "
        "and a repro.faults plan"
    ),
)
def _crash_storm(arg: str | None) -> TopologySpec:
    """The chaos-testing shape: the fig1 pair, densely hosted.

    The storm itself is orthogonal to topology — build this world with a
    sharded config, then arm a :func:`repro.faults.crash_storm_plan` on
    each AS's pool::

        config = replace(ApnaConfig(), forwarding_shards=2,
                         forwarding_batch_size=8)
        world = scenarios.build("crash-storm:4", seed=7, config=config)
        world.asys("a").shard_pool.install_faults(
            crash_storm_plan(2, bursts=100, seed=7))

    Enough hosts per AS that every shard owns several HIDs, so kills and
    hangs always have verdicts at stake.
    """
    hosts_per_as = 4 if arg is None else _int_arg(arg, "crash-storm:N")
    if hosts_per_as < 1:
        raise TopologyError(
            f"crash-storm needs at least one host per AS, got {hosts_per_as}"
        )
    from .topology import HostSpec

    spec = TopologySpec.fig1()
    return spec.with_hosts(
        *(
            HostSpec(f"{asys}{i}", at=asys)
            for asys in ("a", "b")
            for i in range(hosts_per_as)
        )
    )


def _scale_int(arg: str, usage: str) -> int:
    """Parse a host count with optional ``k``/``M`` suffix (``250k``, ``1M``)."""
    text = arg.strip()
    multiplier = 1
    if text and text[-1] in ("k", "K"):
        multiplier, text = 1_000, text[:-1]
    elif text and text[-1] in ("m", "M"):
        multiplier, text = 1_000_000, text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise TopologyError(
            f"bad scenario parameter {arg!r}; usage: {usage}"
        ) from None
    return value * multiplier


@register(
    "metro",
    description=(
        "fig1 pair with a bulk population of N registered HIDs per AS "
        "(metro:N, k/M suffixes allowed, default 1M); registry state "
        "only — pair with the columnar state_backend for bounded memory"
    ),
)
def _metro(arg: str | None) -> TopologySpec:
    """The scale shape: the Fig. 1 pair carrying a metro-sized registry.

    ``metro:1M`` registers 10^6 hosts per AS as packed columns (no
    per-host objects on the columnar ``state_backend``), plus the named
    ``alice``/``bob`` pair so protocol-level traffic still works.  The
    population is pure ``host_info`` state — the paper's §V-A2 registry
    at the AS sizes its tables are dimensioned for.
    """
    usage = "metro:N (e.g. metro:250k, metro:1M)"
    hosts_per_as = 1_000_000 if arg is None else _scale_int(arg, usage)
    if hosts_per_as < 1:
        raise TopologyError(
            f"metro needs at least one host per AS, got {hosts_per_as}"
        )
    from .topology import HostSpec, PopulationSpec

    spec = TopologySpec.fig1()
    return replace(
        spec.with_hosts(HostSpec("alice", at="a"), HostSpec("bob", at="b")),
        populations=(
            PopulationSpec("a", hosts_per_as),
            PopulationSpec("b", hosts_per_as),
        ),
    )


def _population_pair(hosts_per_as: int, *, preset: str) -> TopologySpec:
    """The metro shape shared by the adversarial/churn presets.

    Fig. 1 pair, ``alice``/``bob`` attached for protocol-level traffic,
    plus a bulk population of ``hosts_per_as`` registered HIDs per AS.
    The presets below differ in the *traffic and fault pattern* their
    :mod:`repro.evaluation` case drives through this shape, not in the
    wiring itself.
    """
    if hosts_per_as < 1:
        raise TopologyError(
            f"{preset} needs at least one population host per AS, "
            f"got {hosts_per_as}"
        )
    from .topology import HostSpec, PopulationSpec

    spec = TopologySpec.fig1()
    return replace(
        spec.with_hosts(HostSpec("alice", at="a"), HostSpec("bob", at="b")),
        populations=(
            PopulationSpec("a", hosts_per_as),
            PopulationSpec("b", hosts_per_as),
        ),
    )


@register(
    "flash-crowd",
    description=(
        "fig1 pair with an N-host population per AS for sudden many-source "
        "surges (flash-crowd:N, k/M suffixes, default 10k); the evaluation "
        "case floods cold sources at the border in one burst wave"
    ),
)
def _flash_crowd(arg: str | None) -> TopologySpec:
    """The surge shape: a metro population that all speaks at once.

    Every source is cold — no verdict cache, no warmed EphID — so a
    flash crowd stresses exactly the paper's §V-B per-packet verification
    budget.  The matching :mod:`repro.evaluation` case sweeps the whole
    population through the border in interleaved bursts and holds the
    zero-false-drop and bounded-p99 invariants.
    """
    usage = "flash-crowd:N (e.g. flash-crowd:10k)"
    n = 10_000 if arg is None else _scale_int(arg, usage)
    return _population_pair(n, preset="flash-crowd")


@register(
    "revocation-wave",
    description=(
        "fig1 pair with an N-host population per AS where a rolling slice "
        "of sources is revoked mid-traffic (revocation-wave:N, k/M "
        "suffixes, default 10k)"
    ),
)
def _revocation_wave(arg: str | None) -> TopologySpec:
    """The revocation shape: live traffic racing a wave of revocations.

    The evaluation case revokes successive slices of the population's
    EphIDs *between* bursts that keep using them, asserting the exact
    flip from ``FORWARD`` to ``DROP(SRC_REVOKED)`` with no collateral
    drops of unrevoked neighbours (§IV-D's shutoff end state).
    """
    usage = "revocation-wave:N (e.g. revocation-wave:10k)"
    n = 10_000 if arg is None else _scale_int(arg, usage)
    return _population_pair(n, preset="revocation-wave")


@register(
    "migration",
    description=(
        "fig1 pair with an N-host population per AS where sources are "
        "deregistered at one AS and re-admitted at the peer "
        "(migration:N, k/M suffixes, default 10k)"
    ),
)
def _migration(arg: str | None) -> TopologySpec:
    """The mobility shape: hosts leaving one AS and joining the peer.

    The evaluation case tears a slice of ``a``'s population out of the
    host database (their stale EphIDs must drop as ``SRC_HID_INVALID``)
    and registers replacements at ``b`` whose fresh EphIDs must forward
    immediately — the churn half of the §V-A2 registry lifecycle.
    """
    usage = "migration:N (e.g. migration:10k)"
    n = 10_000 if arg is None else _scale_int(arg, usage)
    return _population_pair(n, preset="migration")


@register(
    "churn",
    description=(
        "fig1 pair with an N-host population per AS run under a "
        "repro.faults crash-storm while traffic flows (churn:N, k/M "
        "suffixes, default 10k); the composition layer over flash-crowd"
    ),
)
def _churn(arg: str | None) -> TopologySpec:
    """The composition shape: flash-crowd traffic under a fault storm.

    Topology-wise identical to ``flash-crowd:N``; the evaluation case
    arms a :func:`repro.faults.crash_storm_plan` on the sharded data
    plane and holds the exact-accounting invariant — every packet either
    matches the single-process oracle's verdict or is charged to
    ``SHARD_FAILURE``, with the two tallies reconciling to the burst.
    """
    usage = "churn:N (e.g. churn:10k)"
    n = 10_000 if arg is None else _scale_int(arg, usage)
    return _population_pair(n, preset="churn")


@register(
    "shutoff-storm",
    description=(
        "3-AS chain with an N-host population at the source AS for "
        "on-path shutoff complaint storms via pathval.shutoff_ext "
        "(shutoff-storm:N, k/M suffixes, default 1k)"
    ),
)
def _shutoff_storm(arg: str | None) -> TopologySpec:
    """The on-path complaint shape: a transit AS flooding Fig. 5 shutoffs.

    A ``src — transit — dst`` chain with named endpoints and a bulk
    population at the source AS.  The evaluation case upgrades the
    source's accountability agent with
    :func:`repro.pathval.upgrade_to_onpath`, then fires a storm of
    passport-stamped on-path shutoff requests from the transit —
    interleaving valid, forged-signature and wrong-stamp complaints —
    and asserts the accept/reject ledger and the resulting
    ``SRC_REVOKED`` drops, while unaccused sources keep forwarding.
    """
    usage = "shutoff-storm:N (e.g. shutoff-storm:1k)"
    n = 1_000 if arg is None else _scale_int(arg, usage)
    if n < 1:
        raise TopologyError(
            f"shutoff-storm needs at least one population host, got {n}"
        )
    from .topology import HostSpec, PopulationSpec

    spec = TopologySpec.chain(3)
    return replace(
        spec.with_hosts(HostSpec("src", at="as1"), HostSpec("dst", at="as3")),
        populations=(PopulationSpec("as1", n),),
    )


@register("star", description="one transit hub with N stub leaves")
def _star(arg: str | None) -> TopologySpec:
    return TopologySpec.star(_int_arg(arg, "star:N"))


@register(
    "transit-stub",
    description="T-transit full-mesh core with S stubs per transit (VIII-E)",
)
def _transit_stub(arg: str | None) -> TopologySpec:
    usage = "transit-stub:TxS (e.g. transit-stub:3x2)"
    if arg is None:
        raise TopologyError(f"this scenario needs a parameter: {usage}")
    t, sep, s = arg.partition("x")
    if not sep:
        raise TopologyError(f"bad scenario parameter {arg!r}; usage: {usage}")
    try:
        n_transits, stubs = int(t), int(s)
    except ValueError:
        raise TopologyError(
            f"bad scenario parameter {arg!r}; usage: {usage}"
        ) from None
    return TopologySpec.transit_stub(n_transits, stubs)
