"""Baseline: Persona-style ISP address rewriting (Mallios et al., 2009),
as characterised in the paper's related work.

The source ISP replaces the IP address of each outgoing packet with an
address drawn from a pool.  This hides the host, but — as the APNA paper
notes — "it breaks the notion of flow and prevents the destination from
demultiplexing connections": two packets of the same flow can leave with
different source addresses, so the classic 5-tuple no longer identifies
a flow at the receiver.  APNA's EphIDs avoid this by being *stable within
a flow* while still unlinkable across flows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.rng import Rng, SystemRng


@dataclass(frozen=True)
class PersonaPacket:
    src_addr: int  # rewritten by the ISP
    dst_addr: int
    src_port: int
    dst_port: int
    payload: bytes = b""

    @property
    def flow_tuple(self) -> tuple[int, int, int, int]:
        return (self.src_addr, self.dst_addr, self.src_port, self.dst_port)


class PersonaNat:
    """The ISP-side rewriting box."""

    def __init__(self, pool: list[int], rng: Rng | None = None) -> None:
        if not pool:
            raise ValueError("address pool must not be empty")
        self.pool = pool
        self._rng = rng or SystemRng()
        self.rewritten = 0

    def process(self, packet: PersonaPacket) -> PersonaPacket:
        """Rewrite the source address with a random pool member."""
        new_src = self.pool[self._rng.randint(len(self.pool))]
        self.rewritten += 1
        return PersonaPacket(
            src_addr=new_src,
            dst_addr=packet.dst_addr,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            payload=packet.payload,
        )


class FlowDemuxer:
    """A receiver trying to group packets into flows by 5-tuple."""

    def __init__(self) -> None:
        self.flows: dict[tuple[int, int, int, int], list[PersonaPacket]] = {}

    def receive(self, packet: PersonaPacket) -> None:
        self.flows.setdefault(packet.flow_tuple, []).append(packet)

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    def demux_accuracy(self, true_flow_count: int) -> float:
        """1.0 when the observed flow count matches reality; degrades as
        rewriting splinters flows into spurious ones."""
        if self.flow_count == 0:
            return 0.0
        return min(1.0, true_flow_count / self.flow_count)
