"""Baseline: APIP — Accountable and Private Internet Protocol (Naylor et
al., SIGCOMM 2014), the paper's main comparison point.

In APIP the source address field carries the address of an
*accountability delegate*; the real return address is hidden at a higher
layer.  Senders **brief** their delegate with a fingerprint of every
packet; on-path verifiers sample packets and ask the delegate to vouch;
victims send shutoffs to the delegate.

The properties the APNA paper criticises, reproduced faithfully:

* extra control traffic: one brief per packet (amortisable) plus one
  verification round trip per sampled flow, where APNA needs only an
  in-packet MAC;
* the *whitelisting hole*: once a flow is whitelisted, verifiers stop
  checking, so a malicious host can stop briefing those packets — they
  are then unaccounted for (no unforgeable per-packet link);
* data privacy is out of scope (delegated to upper layers).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..crypto.kdf import hmac_sha256


@dataclass(frozen=True)
class ApipPacket:
    delegate_addr: int  # visible "accountability address"
    dst_addr: int
    flow_id: int  # transport-layer flow identifier
    payload: bytes = b""
    #: The true return address, invisible to the network layer.
    hidden_return: int = 0

    def fingerprint(self, key: bytes = b"") -> bytes:
        h = hashlib.sha256()
        h.update(self.delegate_addr.to_bytes(4, "big"))
        h.update(self.dst_addr.to_bytes(4, "big"))
        h.update(self.flow_id.to_bytes(8, "big"))
        h.update(self.payload)
        digest = h.digest()
        return hmac_sha256(key, digest) if key else digest


class ApipDelegate:
    """An accountability delegate: stores briefs, vouches, shuts off."""

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self._briefs: set[bytes] = set()
        self._clients: dict[int, bytes] = {}  # client id -> briefing key
        self._shutoff_flows: set[int] = set()
        self.briefs_received = 0
        self.verifications = 0

    def enroll(self, client_id: int, briefing_key: bytes) -> None:
        self._clients[client_id] = briefing_key

    def brief(self, client_id: int, fingerprint: bytes) -> bool:
        """Store a packet fingerprint from an enrolled client."""
        if client_id not in self._clients:
            return False
        self._briefs.add(fingerprint)
        self.briefs_received += 1
        return True

    def verify(self, packet: ApipPacket) -> bool:
        """A verifier asks: do you vouch for this packet?"""
        self.verifications += 1
        if packet.flow_id in self._shutoff_flows:
            return False
        return packet.fingerprint() in self._briefs

    def shutoff(self, flow_id: int) -> None:
        self._shutoff_flows.add(flow_id)


class ApipSender:
    """A sender that (usually) briefs its delegate."""

    def __init__(self, client_id: int, delegate: ApipDelegate, return_addr: int) -> None:
        self.client_id = client_id
        self.delegate = delegate
        self.return_addr = return_addr
        self.briefs_sent = 0
        delegate.enroll(client_id, briefing_key=b"")

    def send(
        self, dst_addr: int, flow_id: int, payload: bytes, *, brief: bool = True
    ) -> ApipPacket:
        """Build a packet; ``brief=False`` models the whitelisting hole —
        a malicious sender that skips briefing once verifiers stop
        sampling its flow."""
        packet = ApipPacket(
            delegate_addr=self.delegate.addr,
            dst_addr=dst_addr,
            flow_id=flow_id,
            payload=payload,
            hidden_return=self.return_addr,
        )
        if brief:
            self.delegate.brief(self.client_id, packet.fingerprint())
            self.briefs_sent += 1
        return packet


class ApipVerifier:
    """An on-path verifier with flow whitelisting.

    The first packet of every flow is verified against the delegate;
    verified flows are whitelisted and subsequent packets pass unchecked
    (Section 5 of APIP, as summarised by the APNA paper's footnote).
    """

    def __init__(self, delegate: ApipDelegate) -> None:
        self.delegate = delegate
        self._whitelist: set[int] = set()
        self.checked = 0
        self.passed_unchecked = 0
        self.rejected = 0

    def process(self, packet: ApipPacket) -> bool:
        if packet.flow_id in self._whitelist:
            self.passed_unchecked += 1
            return True
        self.checked += 1
        if self.delegate.verify(packet):
            self._whitelist.add(packet.flow_id)
            return True
        self.rejected += 1
        return False
