"""Baseline: a plain IPv4 router (no accountability, no privacy).

This is the "theoretical maximum" comparator for the Fig. 8 forwarding
experiment: the same packet loop with only classic IPv4 processing —
parse, checksum verify, TTL decrement, checksum update, longest-prefix
route lookup.
"""

from __future__ import annotations

from ..wire.errors import ParseError
from ..wire.ipv4 import HEADER_SIZE, Ipv4Header


class RoutingTable:
    """Longest-prefix-match over /0../32 prefixes."""

    def __init__(self) -> None:
        self._by_length: dict[int, dict[int, str]] = {}
        self._lengths: list[int] = []

    def add(self, prefix: int, length: int, next_hop: str) -> None:
        if not 0 <= length <= 32:
            raise ValueError(f"bad prefix length {length}")
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        table = self._by_length.setdefault(length, {})
        table[prefix & mask] = next_hop
        self._lengths = sorted(self._by_length, reverse=True)

    def lookup(self, address: int) -> str | None:
        for length in self._lengths:
            mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
            next_hop = self._by_length[length].get(address & mask)
            if next_hop is not None:
                return next_hop
        return None

    def __len__(self) -> int:
        return sum(len(t) for t in self._by_length.values())


class PlainIpRouter:
    """The baseline forwarding pipeline."""

    def __init__(self, routes: RoutingTable | None = None) -> None:
        self.routes = routes or RoutingTable()
        self.forwarded = 0
        self.dropped = 0

    def process(self, packet: bytes) -> tuple[str, bytes] | None:
        """Forward one packet; returns (next_hop, rewritten bytes) or None."""
        try:
            header = Ipv4Header.parse(packet)
            header = header.decrement_ttl()
        except ParseError:
            self.dropped += 1
            return None
        next_hop = self.routes.lookup(header.dst)
        if next_hop is None:
            self.dropped += 1
            return None
        self.forwarded += 1
        return next_hop, header.pack() + packet[HEADER_SIZE:]
