"""Baseline: AIP — Accountable Internet Protocol (Andersen et al.,
SIGCOMM 2008), as characterised in the paper's related work.

AIP makes addresses *self-certifying*: a host's EID is the hash of its
public key, so anyone can check that a signature "belongs to" an
address.  A shutoff protocol is enforced by the host's (smart) NIC.

The comparison points against APNA (E7):

* accountability is bound to a **long-lived** identity — every flow from
  a host carries the same EID, so there is no sender-flow unlinkability
  and no host privacy;
* shutoff is enforced at the *host NIC*, not at the ISP, so it depends
  on tamper-proof NICs;
* no data privacy is provided.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core.keys import SigningKeyPair
from ..crypto import ed25519
from ..crypto.rng import Rng, SystemRng

EID_SIZE = 20


def eid_of(public_key: bytes) -> bytes:
    """EID = hash of the host public key (self-certification)."""
    return hashlib.sha256(public_key).digest()[:EID_SIZE]


@dataclass(frozen=True)
class AipPacket:
    src_ad: int  # accountability domain (AS analogue)
    src_eid: bytes
    dst_ad: int
    dst_eid: bytes
    payload: bytes = b""

    def fingerprint(self) -> bytes:
        h = hashlib.sha256()
        h.update(self.src_ad.to_bytes(4, "big"))
        h.update(self.src_eid)
        h.update(self.dst_ad.to_bytes(4, "big"))
        h.update(self.dst_eid)
        h.update(self.payload)
        return h.digest()


class AipNic:
    """The trusted NIC that enforces shutoffs at the source."""

    def __init__(self, host: "AipHost") -> None:
        self._host = host
        self._blocked: set[bytes] = set()  # destination EIDs we must not reach
        self.enforced_drops = 0

    def transmit(self, packet: AipPacket) -> AipPacket | None:
        if packet.dst_eid in self._blocked:
            self.enforced_drops += 1
            return None
        return packet

    def handle_shutoff(
        self, offending: AipPacket, victim_public: bytes, signature: bytes
    ) -> bool:
        """Verify and honor a shutoff: the victim proves it owns the
        packet's destination EID and signs the offending packet."""
        if eid_of(victim_public) != offending.dst_eid:
            return False
        if offending.src_eid != self._host.eid:
            return False
        if not ed25519.verify(victim_public, offending.fingerprint(), signature):
            return False
        self._blocked.add(offending.dst_eid)
        return True


class AipHost:
    """An AIP host: self-certifying identity plus an enforcing NIC."""

    def __init__(self, ad: int, rng: Rng | None = None) -> None:
        self.ad = ad
        self._keys = SigningKeyPair.generate(rng or SystemRng())
        self.eid = eid_of(self._keys.public)
        self.nic = AipNic(self)
        self.sent = 0

    @property
    def public_key(self) -> bytes:
        return self._keys.public

    def send(self, dst: "AipHost", payload: bytes) -> AipPacket | None:
        packet = AipPacket(
            src_ad=self.ad,
            src_eid=self.eid,
            dst_ad=dst.ad,
            dst_eid=dst.eid,
            payload=payload,
        )
        accepted = self.nic.transmit(packet)
        if accepted is not None:
            self.sent += 1
        return accepted

    def request_shutoff(self, offending: AipPacket) -> tuple[bytes, bytes]:
        """Victim side: sign the offending packet to demand a shutoff."""
        if offending.dst_eid != self.eid:
            raise ValueError("can only shut off traffic addressed to us")
        return self._keys.public, self._keys.sign(offending.fingerprint())

    def verify_source(self, packet: AipPacket, claimed_public: bytes) -> bool:
        """First-packet verification: does the public key hash to the EID?"""
        return eid_of(claimed_public) == packet.src_eid
