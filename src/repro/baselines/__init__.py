"""Baseline systems the paper compares against (Section IX).

* :mod:`repro.baselines.plain_ip` — classic IPv4 forwarding (the
  "theoretical maximum" comparator for Fig. 8).
* :mod:`repro.baselines.apip` — APIP's accountability delegate, briefs
  and verifiers, including the whitelisting hole.
* :mod:`repro.baselines.aip` — AIP's self-certifying addresses and
  NIC-enforced shutoff.
* :mod:`repro.baselines.persona` — Persona-style ISP address rewriting
  and its flow-demultiplexing failure.
"""

from .aip import AipHost, AipNic, AipPacket, eid_of
from .apip import ApipDelegate, ApipPacket, ApipSender, ApipVerifier
from .persona import FlowDemuxer, PersonaNat, PersonaPacket
from .plain_ip import PlainIpRouter, RoutingTable

__all__ = [
    "AipHost",
    "AipNic",
    "AipPacket",
    "ApipDelegate",
    "ApipPacket",
    "ApipSender",
    "ApipVerifier",
    "FlowDemuxer",
    "PersonaNat",
    "PersonaPacket",
    "PlainIpRouter",
    "RoutingTable",
    "eid_of",
]
