"""Declarative topologies and the unified :class:`World`.

The paper's evaluation spans many deployment shapes — the two-AS world of
Fig. 1, transit chains for the Section VIII-C path-validation experiments,
stars, and transit-stub hierarchies for APNA-as-a-Service (VIII-E).  Rather
than one bespoke builder per shape, this module provides three layers:

* :class:`TopologySpec` — a declarative description of an internet: ASes,
  links, host placements and granularity policies.  Pure data; it can be
  inspected, composed, serialised and diffed before anything is built.
* :class:`WorldBuilder` — a fluent front-end that accumulates a spec::

      world = (
          WorldBuilder(seed=7)
          .transit("T1")
          .stub("S1", parent="T1")
          .host("alice", at="S1")
          .build()
      )

* :class:`World` — the single runtime class every topology builds into:
  uniform ``attach_host(name, at=<as-name>)`` addressing, host lookup and
  lifecycle (``run``, ``run_until``, ``advance``) regardless of shape.

Named presets ("fig1", "chain:4", ...) live in :mod:`repro.scenarios`; the
legacy ``build_two_as_internet`` / ``build_as_chain`` / ... entry points in
:mod:`repro.world` are deprecation shims over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .core.autonomous_system import ApnaAutonomousSystem, ApnaHostNode
from .core.config import ApnaConfig
from .core.errors import ApnaError
from .core.granularity import POLICIES, GranularityPolicy
from .core.rpki import RpkiDirectory, TrustAnchor
from .crypto.rng import DeterministicRng, Rng
from .netsim import Network

__all__ = [
    "AsSpec",
    "DuplicateHostError",
    "HostSpec",
    "LinkSpec",
    "PopulationSpec",
    "TopologyError",
    "TopologySpec",
    "UnknownAsError",
    "World",
    "WorldBuilder",
]


class TopologyError(ApnaError, ValueError):
    """A topology spec or builder call is invalid.

    Also a :class:`ValueError` so pre-redesign callers that caught
    ``ValueError`` from the ``build_*`` helpers keep working.
    """


class UnknownAsError(TopologyError, KeyError):
    """An AS reference (``at=...``) did not resolve.

    Also a :class:`KeyError` for compatibility with the old
    ``MultiAsWorld.as_by_aid`` contract.
    """

    def __init__(self, ref: object, known: list[str]) -> None:
        self.ref = ref
        self.known = known
        listing = ", ".join(known) if known else "(none)"
        super().__init__(f"unknown AS {ref!r}; known ASes: {listing}")

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class DuplicateHostError(ApnaError):
    """A host name is already attached to this world."""


def _resolve_policy(
    policy: "str | type[GranularityPolicy] | None",
) -> "type[GranularityPolicy] | None":
    """Map a granularity policy name to its class (pass classes through)."""
    if not isinstance(policy, str):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise TopologyError(
            f"unknown granularity policy {policy!r}; "
            f"choose from {', '.join(sorted(POLICIES))}"
        ) from None


# --------------------------------------------------------------------------
# Declarative specs


@dataclass(frozen=True)
class AsSpec:
    """One autonomous system: a name for addressing, an AID for the wire."""

    name: str
    aid: int
    role: str = "as"  # "as" | "transit" | "stub" — informational


@dataclass(frozen=True)
class LinkSpec:
    """A bidirectional inter-AS link between two named ASes."""

    a: str
    b: str
    latency: float = 0.010
    bandwidth: float = 1e10
    weight: float | None = None


@dataclass(frozen=True)
class HostSpec:
    """A host placement: which AS it homes on and its access link."""

    name: str
    at: str
    latency: float = 0.001
    bandwidth: float = 1e8
    policy: str | None = None  # a repro.core.granularity policy name


@dataclass(frozen=True)
class PopulationSpec:
    """A bulk host population: ``hosts`` registered HIDs on one AS.

    Unlike :class:`HostSpec`, a population creates no simulated host
    nodes, no access links and no protocol bootstrap — only registry
    state (HIDs and kHA subkeys in the AS's ``host_info``), which is
    what million-host scale experiments need.  Registered via
    :meth:`repro.core.autonomous_system.ApnaAutonomousSystem.
    register_population`, so a columnar ``state_backend`` holds the
    whole population in packed columns with no per-host objects.
    """

    at: str
    hosts: int


@dataclass(frozen=True)
class TopologySpec:
    """A declarative internet: ASes, links and host placements.

    Build it directly, through :class:`WorldBuilder`, or from a preset
    (:meth:`fig1`, :meth:`chain`, :meth:`star`, :meth:`transit_stub` — the
    same shapes :mod:`repro.scenarios` resolves from strings).
    """

    ases: tuple[AsSpec, ...] = ()
    links: tuple[LinkSpec, ...] = ()
    hosts: tuple[HostSpec, ...] = ()
    populations: tuple[PopulationSpec, ...] = ()

    # -- validation --------------------------------------------------------

    def validate(self) -> "TopologySpec":
        """Check internal consistency; returns self so calls chain."""
        if not self.ases:
            raise TopologyError("a topology needs at least one AS")
        names = [a.name for a in self.ases]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TopologyError(f"duplicate AS name(s): {', '.join(dupes)}")
        aids = [a.aid for a in self.ases]
        if len(set(aids)) != len(aids):
            dupes = sorted({a for a in aids if aids.count(a) > 1})
            raise TopologyError(
                f"duplicate AID(s): {', '.join(map(str, dupes))}"
            )
        known = set(names)
        seen_edges: set[frozenset[str]] = set()
        for link in self.links:
            for end in (link.a, link.b):
                if end not in known:
                    raise UnknownAsError(end, sorted(known))
            if link.a == link.b:
                raise TopologyError(f"link {link.a!r} -> itself")
            edge = frozenset((link.a, link.b))
            if edge in seen_edges:
                raise TopologyError(
                    f"duplicate link {link.a!r} <-> {link.b!r}"
                )
            seen_edges.add(edge)
        host_names = [h.name for h in self.hosts]
        if len(set(host_names)) != len(host_names):
            dupes = sorted({n for n in host_names if host_names.count(n) > 1})
            raise TopologyError(f"duplicate host name(s): {', '.join(dupes)}")
        for host in self.hosts:
            if host.at not in known:
                raise UnknownAsError(host.at, sorted(known))
            _resolve_policy(host.policy)
        for population in self.populations:
            if population.at not in known:
                raise UnknownAsError(population.at, sorted(known))
            if population.hosts < 1:
                raise TopologyError(
                    f"population at {population.at!r} needs at least one "
                    f"host, got {population.hosts}"
                )
        return self

    # -- composition -------------------------------------------------------

    def with_hosts(self, *hosts: HostSpec) -> "TopologySpec":
        return replace(self, hosts=self.hosts + tuple(hosts))

    # -- presets (the paper's evaluation shapes) ----------------------------

    @classmethod
    def fig1(
        cls,
        *,
        aid_a: int = 100,
        aid_b: int = 200,
        latency: float = 0.020,
        bandwidth: float = 1e10,
    ) -> "TopologySpec":
        """The canonical two-AS world of the paper's Fig. 1."""
        return cls(
            ases=(AsSpec("a", aid_a), AsSpec("b", aid_b)),
            links=(LinkSpec("a", "b", latency=latency, bandwidth=bandwidth),),
        )

    @classmethod
    def chain(
        cls,
        n_ases: int,
        *,
        first_aid: int = 100,
        aid_step: int = 100,
        latency: float = 0.010,
        bandwidth: float = 1e10,
    ) -> "TopologySpec":
        """A linear chain ``as1 — as2 — ... — asN`` (Section VIII-C).

        A single-AS "chain" is allowed: one AS, no links — the intra-domain
        world of the Section VI-B analysis.
        """
        if n_ases < 1:
            raise TopologyError("a chain needs at least one AS")
        ases = tuple(
            AsSpec(f"as{i + 1}", first_aid + i * aid_step) for i in range(n_ases)
        )
        links = tuple(
            LinkSpec(left.name, right.name, latency=latency, bandwidth=bandwidth)
            for left, right in zip(ases, ases[1:])
        )
        return cls(ases=ases, links=links)

    @classmethod
    def star(
        cls,
        n_leaves: int,
        *,
        hub_aid: int = 1,
        first_leaf_aid: int = 100,
        latency: float = 0.010,
        bandwidth: float = 1e10,
    ) -> "TopologySpec":
        """One transit hub (``"hub"``) with ``n_leaves`` stub leaves."""
        if n_leaves < 1:
            raise TopologyError("a star needs at least one leaf")
        hub = AsSpec("hub", hub_aid, role="transit")
        leaves = tuple(
            AsSpec(f"leaf{i + 1}", first_leaf_aid + i * 100, role="stub")
            for i in range(n_leaves)
        )
        links = tuple(
            LinkSpec("hub", leaf.name, latency=latency, bandwidth=bandwidth)
            for leaf in leaves
        )
        return cls(ases=(hub,) + leaves, links=links)

    @classmethod
    def transit_stub(
        cls,
        n_transits: int,
        stubs_per_transit: int,
        *,
        core_latency: float = 0.005,
        edge_latency: float = 0.015,
        bandwidth: float = 1e10,
    ) -> "TopologySpec":
        """A two-tier internet: full-mesh transit core with stub ASes.

        Transits are ``t1..tN`` (AIDs 1..N); stubs are ``t<i>s<k>`` with
        AIDs ``100 * i + k`` — the AID plan of the VIII-E AAaS model.
        """
        if n_transits < 1:
            raise TopologyError("need at least one transit AS")
        if stubs_per_transit < 0:
            raise TopologyError("stubs_per_transit must be non-negative")
        transits = tuple(
            AsSpec(f"t{i + 1}", i + 1, role="transit") for i in range(n_transits)
        )
        core = tuple(
            LinkSpec(a.name, b.name, latency=core_latency, bandwidth=bandwidth)
            for i, a in enumerate(transits)
            for b in transits[i + 1 :]
        )
        stubs: list[AsSpec] = []
        edges: list[LinkSpec] = []
        for tier, transit in enumerate(transits, start=1):
            for k in range(stubs_per_transit):
                stub = AsSpec(f"t{tier}s{k}", 100 * tier + k, role="stub")
                stubs.append(stub)
                edges.append(
                    LinkSpec(
                        transit.name,
                        stub.name,
                        latency=edge_latency,
                        bandwidth=bandwidth,
                    )
                )
        return cls(ases=transits + tuple(stubs), links=core + tuple(edges))


# --------------------------------------------------------------------------
# The unified runtime world


class World:
    """A built simulated internet, whatever its shape.

    One class supersedes the old ``TwoAsWorld``/``MultiAsWorld`` split:
    every topology exposes the same addressing (`asys`, `as_by_aid`,
    `as_names`), host management (`attach_host(name, at=...)`, `host`)
    and lifecycle (`run`, `run_until`, `advance`) surface.
    """

    def __init__(
        self,
        *,
        network: Network,
        rng: Rng,
        anchor: TrustAnchor,
        rpki: RpkiDirectory,
        config: ApnaConfig,
        ases: list[ApnaAutonomousSystem],
        names: dict[str, ApnaAutonomousSystem] | None = None,
        spec: TopologySpec | None = None,
    ) -> None:
        self.network = network
        self.rng = rng
        self.anchor = anchor
        self.rpki = rpki
        self.config = config
        self.ases = list(ases)
        self.spec = spec
        self.hosts: dict[str, ApnaHostNode] = {}
        self._by_name: dict[str, ApnaAutonomousSystem] = dict(names or {})
        self._by_aid: dict[int, ApnaAutonomousSystem] = {
            asys.aid: asys for asys in self.ases
        }
        #: AS name -> bulk-registered HID range (populated by from_spec).
        self._populations: dict[str, range] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec: TopologySpec,
        *,
        seed: int | str = 0,
        config: ApnaConfig | None = None,
    ) -> "World":
        """Instantiate a validated spec into a running world.

        Entities are created in spec order (ASes, then links, then hosts,
        each host bootstrapped on attach) so equal seeds give bit-identical
        worlds — keys, EphIDs and traffic included.
        """
        spec.validate()
        rng = DeterministicRng(seed)
        network = Network()
        config = config or ApnaConfig()
        anchor = TrustAnchor(rng)
        rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
        by_name: dict[str, ApnaAutonomousSystem] = {}
        ases: list[ApnaAutonomousSystem] = []
        for as_spec in spec.ases:
            asys = ApnaAutonomousSystem(
                as_spec.aid, network, rpki, anchor, config=config, rng=rng
            )
            by_name[as_spec.name] = asys
            ases.append(asys)
        for link in spec.links:
            network.connect(
                by_name[link.a].node,
                by_name[link.b].node,
                latency=link.latency,
                bandwidth=link.bandwidth,
                weight=link.weight,
            )
        world = cls(
            network=network,
            rng=rng,
            anchor=anchor,
            rpki=rpki,
            config=config,
            ases=ases,
            names=by_name,
            spec=spec,
        )
        for host in spec.hosts:
            world._attach(
                host.name,
                by_name[host.at],
                latency=host.latency,
                bandwidth=host.bandwidth,
                policy=host.policy,
            )
        # Bulk populations register before any shard pool spawns, so
        # they ship with the workers' spawn snapshots instead of as
        # per-host control frames.
        for population in spec.populations:
            world._populations[population.at] = by_name[
                population.at
            ].register_population(population.hosts)
        network.compute_routes()
        if config.forwarding_shards >= 2:
            # Spawn each AS's persistent worker shards now that every
            # build-time host is registered (the database hooks keep the
            # shards in sync for hosts attached later).  Call
            # ``world.close()`` (or use the world as a context manager)
            # when done with a sharded world.
            for asys in ases:
                asys.start_shard_pool()
        return world

    # -- AS addressing ------------------------------------------------------

    def as_names(self) -> list[str]:
        """The addressable AS names, in creation order."""
        return list(self._by_name)

    def asys(
        self, at: "str | int | ApnaAutonomousSystem"
    ) -> ApnaAutonomousSystem:
        """Resolve an AS reference: a spec name, an AID, or the AS itself."""
        if isinstance(at, ApnaAutonomousSystem):
            if at not in self.ases:
                raise UnknownAsError(at, self._known_refs())
            return at
        if isinstance(at, bool):  # bool is an int; reject it explicitly
            raise UnknownAsError(at, self._known_refs())
        if isinstance(at, int):
            try:
                return self._by_aid[at]
            except KeyError:
                raise UnknownAsError(at, self._known_refs()) from None
        try:
            return self._by_name[at]
        except KeyError:
            raise UnknownAsError(at, self._known_refs()) from None

    def population(self, at: "str | int | ApnaAutonomousSystem") -> range:
        """The bulk-registered HID range of an AS (empty when it has none).

        Scenario drivers use this to synthesize traffic for population
        hosts, which are database rows rather than attached host nodes.
        """
        asys = self.asys(at)
        for name, candidate in self._by_name.items():
            if candidate is asys:
                return self._populations.get(name, range(0))
        return range(0)

    def as_by_name(self, name: str) -> ApnaAutonomousSystem:
        return self.asys(name)

    def as_by_aid(self, aid: int) -> ApnaAutonomousSystem:
        return self.asys(aid)

    def _known_refs(self) -> list[str]:
        refs = list(self._by_name)
        named_aids = {asys.aid for asys in self._by_name.values()}
        refs += [
            f"AID {asys.aid}" for asys in self.ases if asys.aid not in named_aids
        ]
        return refs

    @property
    def as_a(self) -> ApnaAutonomousSystem:
        """First AS — defined for two-AS worlds (Fig. 1 style)."""
        self._require_two_ases("as_a")
        return self.ases[0]

    @property
    def as_b(self) -> ApnaAutonomousSystem:
        """Second AS — defined for two-AS worlds (Fig. 1 style)."""
        self._require_two_ases("as_b")
        return self.ases[1]

    def _require_two_ases(self, attr: str) -> None:
        if len(self.ases) != 2:
            raise TopologyError(
                f"World.{attr} is only defined for two-AS worlds; this world "
                f"has {len(self.ases)} ASes — address them with "
                f"asys(<name-or-AID>) instead"
            )

    # -- hosts ---------------------------------------------------------------

    def attach_host(
        self,
        name: str,
        *,
        at: "str | int | ApnaAutonomousSystem | None" = None,
        latency: float = 0.001,
        bandwidth: float = 1e8,
        policy: "str | type[GranularityPolicy] | None" = None,
        recompute_routes: bool = True,
        **node_kwargs,
    ) -> ApnaHostNode:
        """Attach and bootstrap a host on the AS addressed by ``at``.

        ``at`` accepts a spec name (``"T1"``), an AID (``200``) or an
        :class:`ApnaAutonomousSystem`; single-AS worlds may omit it.  The
        host is bootstrapped (Fig. 2) and routes are recomputed so it can
        immediately acquire EphIDs and open sessions.  When attaching
        many hosts, pass ``recompute_routes=False`` and call
        ``world.network.compute_routes()`` once at the end — the
        recomputation is all-pairs over the whole topology.
        """
        if at is None:
            if len(self.ases) != 1:
                raise TopologyError(
                    f"this world has {len(self.ases)} ASes; pass "
                    f"at=<one of: {', '.join(self._known_refs())}>"
                )
            assembly = self.ases[0]
        else:
            assembly = self.asys(at)
        host = self._attach(
            name,
            assembly,
            latency=latency,
            bandwidth=bandwidth,
            policy=policy,
            **node_kwargs,
        )
        if recompute_routes:
            self.network.compute_routes()
        return host

    def _attach(
        self,
        name: str,
        assembly: ApnaAutonomousSystem,
        *,
        latency: float,
        bandwidth: float,
        policy: "str | type[GranularityPolicy] | None",
        **node_kwargs,
    ) -> ApnaHostNode:
        if name in self.hosts:
            raise DuplicateHostError(
                f"host {name!r} is already attached to this world "
                f"(on AS {self.hosts[name].assembly.aid})"
            )
        policy = _resolve_policy(policy)
        if policy is not None:
            node_kwargs["policy"] = policy
        host = assembly.attach_host(
            name, latency=latency, bandwidth=bandwidth, **node_kwargs
        )
        host.bootstrap()
        self.hosts[name] = host
        return host

    def host(self, name: str) -> ApnaHostNode:
        """Look up an attached host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            known = ", ".join(self.hosts) or "(none attached)"
            raise ApnaError(
                f"no host named {name!r}; attached hosts: {known}"
            ) from None

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release out-of-process resources (the per-AS shard pools).

        Idempotent and a no-op for unsharded worlds; sharded worlds
        should be closed (or used as context managers) so their worker
        processes do not linger until interpreter exit.
        """
        for asys in self.ases:
            asys.stop_shard_pool(final=True)

    def __enter__(self) -> "World":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, **kwargs) -> int:
        """Drain the event queue; returns the number of events processed."""
        return self.network.run(**kwargs)

    def run_until(self, deadline: float, **kwargs) -> int:
        return self.network.run_until(deadline, **kwargs)

    def advance(self, dt: float, **kwargs) -> int:
        """Advance virtual time by ``dt`` seconds, processing due events."""
        if dt < 0:
            raise ValueError(f"cannot advance backwards (dt={dt})")
        return self.network.run_until(self.network.now + dt, **kwargs)

    @property
    def now(self) -> float:
        return self.network.now

    # -- routing introspection -------------------------------------------------

    def as_path(
        self,
        src: "str | int | ApnaAutonomousSystem",
        dst: "str | int | ApnaAutonomousSystem",
    ) -> list[int]:
        """The AID sequence packets take from ``src`` to ``dst``."""
        src_node = self.asys(src).node.name
        dst_node = self.asys(dst).node.name
        return [int(name[2:]) for name in self.network.path(src_node, dst_node)]

    # -- traffic ----------------------------------------------------------------

    def drive(self, profile) -> "object":
        """Run a :class:`repro.workload.TrafficProfile` against this world."""
        return profile.drive(self)

    def __repr__(self) -> str:
        return (
            f"<World ases={len(self.ases)} hosts={len(self.hosts)} "
            f"t={self.network.now:.3f}>"
        )


# --------------------------------------------------------------------------
# Fluent builder


class WorldBuilder:
    """Fluent accumulation of a :class:`TopologySpec`, then one `build()`.

    >>> world = (
    ...     WorldBuilder(seed=7)
    ...     .transit("T1")
    ...     .stub("S1", parent="T1")
    ...     .host("alice", at="S1")
    ...     .build()
    ... )

    AIDs may be given explicitly or auto-assigned: transits count up from
    1, everything else from 100 in steps of 100 (the conventions of the
    old per-shape builders).
    """

    def __init__(
        self, *, seed: int | str = 0, config: ApnaConfig | None = None
    ) -> None:
        self._seed = seed
        self._config = config
        self._sharding: dict[str, object] = {}
        self._ases: list[AsSpec] = []
        self._links: list[LinkSpec] = []
        self._hosts: list[HostSpec] = []
        self._populations: list[PopulationSpec] = []

    # -- deployment knobs ----------------------------------------------------

    def sharding(
        self,
        shards: int,
        *,
        batch_size: int | None = None,
        block: int | None = None,
        reply_timeout: float | None | str = "unset",
        max_restarts: int | None = None,
        restart_backoff: float | None = None,
        degraded_fallback: bool | None = None,
        routing: str | None = None,
    ) -> "WorldBuilder":
        """Shard every AS's data plane over ``shards`` worker processes.

        Overlays ``forwarding_shards`` (and optionally the burst size and
        the HID block width) onto the builder's config; the built world
        spawns one :class:`repro.sharding.ShardedDataPlane` per AS and
        should be closed when done.  ``shards=1`` switches sharding back
        off.

        The supervision knobs mirror the ``shard_*`` config fields:
        ``reply_timeout`` bounds every worker reply wait (``None``
        restores the unbounded pre-supervision wait), ``max_restarts`` /
        ``restart_backoff`` budget and pace worker restarts, and
        ``degraded_fallback`` picks what happens once the budget is
        spent — fall back to in-process forwarding (default) or poison
        the plane.  ``routing`` picks the IV -> shard dispatch map
        (``config.shard_routing``): ``"keyed"`` (default) or the legacy,
        linkage-leaking ``"residue"``.
        """
        if shards < 1:
            raise TopologyError(f"shards must be >= 1, got {shards}")
        # Each call restates the whole sharding overlay: sharding(1)
        # after sharding(4, batch_size=64) reverts the batch/block
        # overrides too, not just the shard count.
        self._sharding.clear()
        self._sharding["forwarding_shards"] = 0 if shards == 1 else shards
        if batch_size is not None:
            if batch_size < 1:
                raise TopologyError(f"batch_size must be >= 1, got {batch_size}")
            self._sharding["forwarding_batch_size"] = batch_size
        if block is not None:
            if block < 1:
                raise TopologyError(f"block must be >= 1, got {block}")
            self._sharding["shard_block"] = block
        if reply_timeout != "unset":
            if reply_timeout is not None and reply_timeout <= 0:
                raise TopologyError(
                    f"reply_timeout must be > 0 (or None), got {reply_timeout}"
                )
            self._sharding["shard_reply_timeout"] = reply_timeout
        if max_restarts is not None:
            if max_restarts < 0:
                raise TopologyError(
                    f"max_restarts must be >= 0, got {max_restarts}"
                )
            self._sharding["shard_max_restarts"] = max_restarts
        if restart_backoff is not None:
            if restart_backoff < 0:
                raise TopologyError(
                    f"restart_backoff must be >= 0, got {restart_backoff}"
                )
            self._sharding["shard_restart_backoff"] = restart_backoff
        if degraded_fallback is not None:
            self._sharding["shard_degraded_fallback"] = degraded_fallback
        if routing is not None:
            if routing not in ("keyed", "residue"):
                raise TopologyError(
                    f"routing must be 'keyed' or 'residue', got {routing!r}"
                )
            self._sharding["shard_routing"] = routing
        return self

    # -- ASes ----------------------------------------------------------------

    def autonomous_system(
        self, name: str, *, aid: int | None = None, role: str = "as"
    ) -> "WorldBuilder":
        """Declare an AS; ``aid`` is auto-assigned when omitted."""
        if any(a.name == name for a in self._ases):
            raise TopologyError(f"AS {name!r} already declared")
        if aid is None:
            aid = self._next_aid(role)
        if any(a.aid == aid for a in self._ases):
            raise TopologyError(f"AID {aid} already taken")
        self._ases.append(AsSpec(name, aid, role=role))
        return self

    #: Short alias — ``builder.asys("a")``.
    asys = autonomous_system

    def transit(self, name: str, *, aid: int | None = None) -> "WorldBuilder":
        """A transit AS (small auto-AID, mesh-core convention)."""
        return self.autonomous_system(name, aid=aid, role="transit")

    def stub(
        self,
        name: str,
        *,
        parent: str | None = None,
        aid: int | None = None,
        latency: float = 0.015,
        bandwidth: float = 1e10,
    ) -> "WorldBuilder":
        """A stub AS, optionally linked to its ``parent`` provider."""
        self.autonomous_system(name, aid=aid, role="stub")
        if parent is not None:
            self.link(parent, name, latency=latency, bandwidth=bandwidth)
        return self

    def _next_aid(self, role: str) -> int:
        taken = {a.aid for a in self._ases}
        if role == "transit":
            aid = 1
            while aid in taken:
                aid += 1
        else:
            aid = 100
            while aid in taken:
                aid += 100
        return aid

    # -- links and hosts --------------------------------------------------------

    def link(
        self,
        a: str,
        b: str,
        *,
        latency: float = 0.010,
        bandwidth: float = 1e10,
        weight: float | None = None,
    ) -> "WorldBuilder":
        """Peer two declared ASes."""
        known = {spec.name for spec in self._ases}
        for end in (a, b):
            if end not in known:
                raise UnknownAsError(end, sorted(known))
        if a == b:
            raise TopologyError(f"link {a!r} -> itself")
        if any({a, b} == {link.a, link.b} for link in self._links):
            raise TopologyError(f"duplicate link {a!r} <-> {b!r}")
        self._links.append(
            LinkSpec(a, b, latency=latency, bandwidth=bandwidth, weight=weight)
        )
        return self

    def host(
        self,
        name: str,
        *,
        at: str,
        latency: float = 0.001,
        bandwidth: float = 1e8,
        policy: str | None = None,
    ) -> "WorldBuilder":
        """Place a host on a declared AS (attached+bootstrapped at build)."""
        if any(h.name == name for h in self._hosts):
            raise TopologyError(f"host {name!r} already declared")
        known = {spec.name for spec in self._ases}
        if at not in known:
            raise UnknownAsError(at, sorted(known))
        self._hosts.append(
            HostSpec(name, at, latency=latency, bandwidth=bandwidth, policy=policy)
        )
        return self

    def population(self, hosts: int, *, at: str) -> "WorldBuilder":
        """Register ``hosts`` bulk HIDs on a declared AS at build time.

        Registry state only (no host nodes, no links, no bootstrap) —
        the scale substrate for ``metro:N``-style worlds.
        """
        known = {spec.name for spec in self._ases}
        if at not in known:
            raise UnknownAsError(at, sorted(known))
        if hosts < 1:
            raise TopologyError(
                f"population at {at!r} needs at least one host, got {hosts}"
            )
        self._populations.append(PopulationSpec(at, hosts))
        return self

    # -- output -------------------------------------------------------------------

    def spec(self) -> TopologySpec:
        """The accumulated (validated) declarative spec."""
        return TopologySpec(
            ases=tuple(self._ases),
            links=tuple(self._links),
            hosts=tuple(self._hosts),
            populations=tuple(self._populations),
        ).validate()

    def build(self) -> World:
        """Instantiate the accumulated spec into a :class:`World`."""
        config = self._config
        if self._sharding:
            config = replace(config or ApnaConfig(), **self._sharding)
        return World.from_spec(self.spec(), seed=self._seed, config=config)
