"""Encrypted DNS resolution for APNA hosts (paper Section VII-A).

The resolver opens an APNA session to a DNS server's EphID (by default
the one its own AS handed out at bootstrap; a privacy-conscious host can
point it at any trusted DNS server's certificate instead) and sends the
query as 0-RTT early data.  Responses are verified against the zone key
before the record is handed to the application.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..core.certs import EphIdCertificate
from ..wire.transport import PROTO_DNS
from .records import DnsError, DnsQuery, DnsRecord, DnsResponse

if TYPE_CHECKING:
    from ..core.autonomous_system import ApnaHostNode


class DnsClient:
    """A resolver bound to one host node."""

    def __init__(
        self,
        host: "ApnaHostNode",
        zone_public: bytes,
        *,
        server_cert: EphIdCertificate | None = None,
        port: int = 5353,
    ) -> None:
        self.host = host
        self.zone_public = zone_public
        cert = server_cert if server_cert is not None else host.stack.dns_cert
        if cert is None:
            raise DnsError("host has no DNS server certificate (not bootstrapped?)")
        self.server_cert = cert
        self.port = port
        self._pending: dict[str, list[Callable[[DnsRecord | None], None]]] = {}
        self.resolved = 0
        self.failures = 0
        host.listen(port, self._on_response)

    def resolve(self, name: str, callback: Callable[[DnsRecord | None], None]) -> None:
        """Resolve ``name``; the callback gets a verified record or None.

        The query rides as 0-RTT early data on a fresh session, so a
        lookup costs a single round trip and is encrypted end to end.
        """
        self._pending.setdefault(name, []).append(callback)
        self.host.connect(
            self.server_cert,
            early_data=DnsQuery(name).pack(),
            src_port=self.port,
            dst_port=53,
            proto=PROTO_DNS,
        )

    def _on_response(self, session, transport, data: bytes) -> None:
        if transport.proto != PROTO_DNS:
            return
        response = DnsResponse.parse(data)
        if not response.found or response.record is None:
            self.failures += 1
            self._complete_any(None)
            return
        record = response.record
        try:
            record.verify(self.zone_public)
        except DnsError:
            self.failures += 1
            self._complete_any(None)
            return
        self.resolved += 1
        callbacks = self._pending.pop(record.name, [])
        for callback in callbacks:
            callback(record)

    def _complete_any(self, result: DnsRecord | None) -> None:
        # Negative responses carry no name; complete the oldest query.
        for name in list(self._pending):
            callbacks = self._pending.pop(name)
            for callback in callbacks:
                callback(result)
            break
