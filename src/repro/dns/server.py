"""The APNA DNS service (paper Section VII-A).

The zone stores signed (name -> receive-only EphID certificate) records.
The serving endpoint attaches to an AS's DNS service identity and answers
queries **over encrypted APNA sessions** — "DNS queries are encrypted
just like any other data communication" — so only the resolver and the
DNS server learn the queried name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import framing
from ..core.certs import FLAG_RECEIVE_ONLY
from ..core.hostdb import HID_DNS
from ..core.keys import SigningKeyPair
from ..core.session import ConnectionRequest, Session, SessionError
from ..crypto.rng import Rng, SystemRng
from ..wire.apna import ApnaPacket, Endpoint
from ..wire.transport import PROTO_DNS, TransportHeader, build_segment, split_segment
from .records import DnsQuery, DnsRecord, DnsResponse

if TYPE_CHECKING:
    from ..core.autonomous_system import ApnaAutonomousSystem, ApnaHostNode


class DnsZone:
    """A signed record store (the DNSSEC stand-in)."""

    def __init__(self, rng: Rng | None = None) -> None:
        self._signer = SigningKeyPair.generate(rng or SystemRng())
        self._records: dict[str, DnsRecord] = {}
        self.updates = 0

    @property
    def public_key(self) -> bytes:
        return self._signer.public

    def register(self, name: str, cert, *, ipv4_hint: int = 0) -> DnsRecord:
        """Sign and store a record; later registrations replace earlier ones
        (the paper's 'update the DNS entry with a new EphID' flow)."""
        record = DnsRecord.issue(self._signer, name, cert, ipv4_hint=ipv4_hint)
        self._records[name] = record
        self.updates += 1
        return record

    def lookup(self, name: str) -> DnsRecord | None:
        return self._records.get(name)

    def __len__(self) -> int:
        return len(self._records)


class DnsServer:
    """Session-terminating DNS endpoint bound to an AS's DNS identity."""

    def __init__(self, assembly: "ApnaAutonomousSystem", zone: DnsZone) -> None:
        self.assembly = assembly
        self.zone = zone
        self._sessions: dict[tuple[bytes, bytes], Session] = {}
        self.queries = 0
        assembly.register_service_handler(HID_DNS, self.handle_packet)

    def handle_packet(self, packet: ApnaPacket) -> None:
        payload_type, body = framing.unframe(packet.payload)
        if payload_type == framing.PT_CONN_REQUEST:
            self._on_conn_request(packet, body)
        elif payload_type == framing.PT_DATA:
            self._on_data(packet, body)

    def _on_conn_request(self, packet: ApnaPacket, body: bytes) -> None:
        request = ConnectionRequest.parse(body)
        # Verify the client certificate against its AS key (MitM defence).
        as_key = self.assembly.rpki.signing_key_of(request.cert.aid)
        request.cert.verify(as_key, now=self.assembly.clock())
        local = self.assembly.dns_identity.owned
        key = (local.ephid, request.cert.ephid)
        session = self._sessions.get(key)
        if session is None:
            session = Session(
                local, request.cert, scheme=self.assembly.config.aead_scheme
            )
            self._sessions[key] = session
        if request.early_data:
            self._serve(session, request.early_data)

    def _on_data(self, packet: ApnaPacket, body: bytes) -> None:
        key = (packet.header.dst_ephid, packet.header.src_ephid)
        session = self._sessions.get(key)
        if session is None:
            return
        self._serve(session, body)

    def _serve(self, session: Session, sealed: bytes) -> None:
        try:
            segment = session.open(sealed)
        except SessionError:
            return
        transport, data = split_segment(segment)
        if transport.proto != PROTO_DNS:
            return
        query = DnsQuery.parse(data)
        self.queries += 1
        record = self.zone.lookup(query.name)
        response = DnsResponse(found=record is not None, record=record)
        reply_segment = build_segment(
            TransportHeader(
                src_port=transport.dst_port,
                dst_port=transport.src_port,
                proto=PROTO_DNS,
            ),
            response.pack(),
        )
        reply = self.assembly.dns_identity.make_packet(
            self.assembly.aid,
            Endpoint(session.peer_cert.aid, session.peer_cert.ephid),
            framing.frame(framing.PT_DATA, session.seal(reply_segment)),
            mac_size=self.assembly.config.packet_mac_size,
            nonce=self.assembly.next_service_nonce(),
        )
        self.assembly.route_packet(reply)


def publish_service(
    host: "ApnaHostNode", zone: DnsZone, name: str, *, ipv4_hint: int = 0
) -> DnsRecord:
    """Server-side registration (Section VII-A): acquire a receive-only
    EphID from the AS and register its certificate under ``name``."""
    receive_only = host.acquire_ephid_direct(flags=FLAG_RECEIVE_ONLY)
    host.owned[receive_only.ephid] = receive_only
    return zone.register(name, receive_only.cert, ipv4_hint=ipv4_hint)
