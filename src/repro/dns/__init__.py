"""APNA DNS substrate (paper Section VII-A).

Receive-only EphIDs published under domain names, DNSSEC-style record
signing, and encrypted query/response over APNA sessions.
"""

from .client import DnsClient
from .records import DnsError, DnsQuery, DnsRecord, DnsResponse
from .server import DnsServer, DnsZone, publish_service

__all__ = [
    "DnsClient",
    "DnsError",
    "DnsQuery",
    "DnsRecord",
    "DnsResponse",
    "DnsServer",
    "DnsZone",
    "publish_service",
]
