"""DNS record and message formats for APNA (paper Section VII-A).

In APNA, DNS maps a domain name to the server's *receive-only* EphID and
its certificate: "the DNS server returns the EphID with the corresponding
certificate for a requested domain name."  Records are DNSSEC-style
signed by the zone so a resolver can detect tampering (the paper assumes
DNSSEC for record authentication).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..core.certs import EPHID_CERT_SIZE, EphIdCertificate
from ..core.errors import CertError
from ..core.keys import SigningKeyPair
from ..crypto import ed25519

_MAX_NAME = 255


class DnsError(CertError):
    """DNS lookup or record validation failure."""


def _pack_name(name: str) -> bytes:
    raw = name.encode("idna") if any(ord(c) > 127 for c in name) else name.encode()
    if not raw or len(raw) > _MAX_NAME:
        raise DnsError(f"bad domain name {name!r}")
    return struct.pack(">B", len(raw)) + raw


def _unpack_name(data: bytes, offset: int) -> tuple[str, int]:
    if offset >= len(data):
        raise DnsError("truncated name")
    size = data[offset]
    end = offset + 1 + size
    if end > len(data):
        raise DnsError("truncated name")
    return data[offset + 1 : end].decode(), end


@dataclass(frozen=True)
class DnsRecord:
    """A signed binding: domain name -> (receive-only EphID, certificate).

    ``ipv4_hint`` supports the gateway deployment (Section VII-D), where
    legacy clients still need an A-record-like address; it may be zero
    (absent) — the paper suggests removing it for server host privacy.
    """

    name: str
    cert: EphIdCertificate
    ipv4_hint: int = 0
    signature: bytes = field(default=bytes(ed25519.SIGNATURE_SIZE), repr=False)

    _CONTEXT = b"apna-dns-record-v1:"

    def tbs(self) -> bytes:
        return (
            self._CONTEXT
            + _pack_name(self.name)
            + self.cert.pack()
            + struct.pack(">I", self.ipv4_hint)
        )

    @classmethod
    def issue(
        cls,
        zone_signer: SigningKeyPair,
        name: str,
        cert: EphIdCertificate,
        *,
        ipv4_hint: int = 0,
    ) -> "DnsRecord":
        unsigned = cls(name=name, cert=cert, ipv4_hint=ipv4_hint)
        return cls(
            name=name,
            cert=cert,
            ipv4_hint=ipv4_hint,
            signature=zone_signer.sign(unsigned.tbs()),
        )

    def verify(self, zone_public: bytes) -> None:
        if not ed25519.verify(zone_public, self.tbs(), self.signature):
            raise DnsError(f"DNS record for {self.name!r} failed zone signature")

    def pack(self) -> bytes:
        return (
            _pack_name(self.name)
            + self.cert.pack()
            + struct.pack(">I", self.ipv4_hint)
            + self.signature
        )

    @classmethod
    def parse(cls, data: bytes) -> "DnsRecord":
        name, offset = _unpack_name(data, 0)
        cert_end = offset + EPHID_CERT_SIZE
        if cert_end + 4 + ed25519.SIGNATURE_SIZE > len(data):
            raise DnsError("truncated DNS record")
        cert = EphIdCertificate.parse(data[offset:cert_end])
        (ipv4_hint,) = struct.unpack_from(">I", data, cert_end)
        sig_start = cert_end + 4
        signature = data[sig_start : sig_start + ed25519.SIGNATURE_SIZE]
        return cls(name=name, cert=cert, ipv4_hint=ipv4_hint, signature=signature)

    @property
    def wire_size(self) -> int:
        return len(self.pack())


@dataclass(frozen=True)
class DnsQuery:
    """A name lookup."""

    name: str

    def pack(self) -> bytes:
        return _pack_name(self.name)

    @classmethod
    def parse(cls, data: bytes) -> "DnsQuery":
        name, _ = _unpack_name(data, 0)
        return cls(name)


@dataclass(frozen=True)
class DnsResponse:
    """Lookup result: found record or authenticated denial."""

    found: bool
    record: DnsRecord | None = None

    def pack(self) -> bytes:
        if self.found:
            assert self.record is not None
            return b"\x01" + self.record.pack()
        return b"\x00"

    @classmethod
    def parse(cls, data: bytes) -> "DnsResponse":
        if not data:
            raise DnsError("empty DNS response")
        if data[0] == 0:
            return cls(found=False)
        return cls(found=True, record=DnsRecord.parse(data[1:]))
