"""X25519 Diffie-Hellman (RFC 7748).

APNA uses Curve25519 key exchange both for the host<->AS shared key kHA
(paper Fig. 2) and for the per-session key k_EaEb between EphID key pairs
(Section IV-D1).  ``public_key`` and ``shared_secret`` dispatch to the
active crypto backend (see :mod:`repro.crypto.backend`); the raw
:func:`x25519` ladder and the ``pure_*`` variants are the from-scratch
implementation, following RFC 7748 Section 5 and pinned to the RFC test
vectors.  Both backends apply the same scalar clamping and reject the
all-zero shared secret, so their outputs agree byte-for-byte.
"""

from __future__ import annotations

from .backend import active_backend

P = 2**255 - 19
_A24 = 121665
KEY_SIZE = 32
BASE_POINT = (9).to_bytes(32, "little")


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != KEY_SIZE:
        raise ValueError("X25519 scalar must be 32 bytes")
    value = bytearray(scalar)
    value[0] &= 248
    value[31] &= 127
    value[31] |= 64
    return int.from_bytes(value, "little")


def _decode_u(u: bytes) -> int:
    if len(u) != KEY_SIZE:
        raise ValueError("X25519 point must be 32 bytes")
    value = bytearray(u)
    value[31] &= 127  # mask the high bit per RFC 7748
    return int.from_bytes(value, "little") % P


def x25519(scalar: bytes, u_point: bytes = BASE_POINT) -> bytes:
    """Scalar multiplication on Curve25519's u-coordinate."""
    k = _decode_scalar(scalar)
    u = _decode_u(u_point)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0

    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        if swap ^ k_t:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t

        a = (x2 + z2) % P
        aa = (a * a) % P
        b = (x2 - z2) % P
        bb = (b * b) % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = (d * a) % P
        cb = (c * b) % P
        x3 = (da + cb) % P
        x3 = (x3 * x3) % P
        z3 = (da - cb) % P
        z3 = (z3 * z3 * x1) % P
        x2 = (aa * bb) % P
        z2 = (e * (aa + _A24 * e)) % P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2

    result = (x2 * pow(z2, P - 2, P)) % P
    return result.to_bytes(KEY_SIZE, "little")


def public_key(private: bytes) -> bytes:
    """Derive the public u-coordinate for a 32-byte private scalar."""
    return active_backend().x25519_public_key(private)


def shared_secret(private: bytes, peer_public: bytes) -> bytes:
    """Compute the raw shared secret; raises on the all-zero output.

    RFC 7748 recommends rejecting the all-zero result, which arises when
    the peer supplies a low-order point.
    """
    return active_backend().x25519_shared_secret(private, peer_public)


def pure_public_key(private: bytes) -> bytes:
    """Derive the public u-coordinate for a 32-byte private scalar."""
    return x25519(private, BASE_POINT)


def pure_shared_secret(private: bytes, peer_public: bytes) -> bytes:
    """Compute the raw shared secret; raises on the all-zero output."""
    secret = x25519(private, peer_public)
    if secret == bytes(KEY_SIZE):
        raise ValueError("X25519 produced the all-zero shared secret")
    return secret
