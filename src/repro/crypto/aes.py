"""AES block cipher facade plus the from-scratch FIPS-197 implementation.

:class:`AES` is a thin facade that dispatches to the active crypto
backend (see :mod:`repro.crypto.backend`): ``"openssl"`` routes each
block through an AES-NI-capable OpenSSL context, ``"pure"`` uses
:class:`PureAES` below.

:class:`PureAES` is the from-scratch implementation.  Its encryption
path uses the classic 32-bit T-table formulation, which is the fastest
formulation available to pure Python.  The decryption path uses the
straightforward byte-oriented inverse cipher; APNA only ever *encrypts*
blocks on the fast path (CTR mode and CBC-MAC both use the forward
direction), so decryption speed is irrelevant.

Key sizes 128, 192 and 256 bits are supported.  Correctness is pinned to
the FIPS-197 appendix vectors in ``tests/test_crypto_aes.py`` (run under
whichever backend is active) and the cross-backend differential suite in
``tests/test_crypto_backends.py``.
"""

from __future__ import annotations

from .backend import resolve_backend

BLOCK_SIZE = 16


def _xtime(b: int) -> int:
    """Multiply ``b`` by x in GF(2^8) modulo the AES polynomial."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    """Compute the AES S-box and its inverse from first principles."""
    # Exponentiation/log tables over GF(2^8) with generator 0x03.
    exp = [0] * 255
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value ^= _xtime(value)  # multiply by 0x03 = x + 1

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for v in range(256):
        inverse = 0 if v == 0 else exp[(255 - log[v]) % 255]
        s = inverse
        r = inverse
        for _ in range(4):
            r = ((r << 1) | (r >> 7)) & 0xFF
            s ^= r
        s ^= 0x63
        sbox[v] = s
        inv_sbox[s] = v
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()


def _build_enc_tables() -> tuple[list[int], list[int], list[int], list[int]]:
    """Build the four 32-bit encryption T-tables from the S-box."""
    t0 = [0] * 256
    t1 = [0] * 256
    t2 = [0] * 256
    t3 = [0] * 256
    for b in range(256):
        s = SBOX[b]
        s2 = _xtime(s)
        s3 = s2 ^ s
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        t0[b] = word
        t1[b] = ((word >> 8) | (word << 24)) & 0xFFFFFFFF
        t2[b] = ((word >> 16) | (word << 16)) & 0xFFFFFFFF
        t3[b] = ((word >> 24) | (word << 8)) & 0xFFFFFFFF
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_enc_tables()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8]


def _sub_word(word: int) -> int:
    return (
        (SBOX[(word >> 24) & 0xFF] << 24)
        | (SBOX[(word >> 16) & 0xFF] << 16)
        | (SBOX[(word >> 8) & 0xFF] << 8)
        | SBOX[word & 0xFF]
    )


def _rot_word(word: int) -> int:
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


class AES:
    """An AES cipher instance bound to one key.

    A facade over the active backend's block cipher: construction
    captures the backend (or an explicit ``backend=`` provider/name), so
    an instance keeps its implementation even if the active backend is
    switched later.

    >>> cipher = AES(bytes(16))
    >>> ct = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(ct) == bytes(16)
    True
    """

    __slots__ = ("_impl", "key_size")

    def __init__(self, key: bytes, *, backend=None) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self._impl = resolve_backend(backend).new_aes(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        return self._impl.encrypt_block(block)

    def encrypt_blocks(self, data: bytes) -> bytes:
        """ECB-encrypt a concatenation of independent 16-byte blocks.

        Backends with a native bulk path (OpenSSL) run the whole buffer
        in one call; otherwise this falls back to a per-block loop.  Used
        by :meth:`repro.core.ephid.EphIdCodec.open_batch` to amortise a
        burst of EphID opens.
        """
        if len(data) % BLOCK_SIZE:
            raise ValueError(
                f"data must be a multiple of {BLOCK_SIZE} bytes, got {len(data)}"
            )
        impl = self._impl
        native = getattr(impl, "encrypt_blocks", None)
        if native is not None:
            return native(data)
        encrypt = impl.encrypt_block
        return b"".join(
            encrypt(data[i : i + BLOCK_SIZE])
            for i in range(0, len(data), BLOCK_SIZE)
        )

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        return self._impl.decrypt_block(block)


class PureAES:
    """The from-scratch AES instance bound to one key (the "pure" backend).

    >>> cipher = PureAES(bytes(16))
    >>> ct = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(ct) == bytes(16)
    True
    """

    __slots__ = ("_round_keys", "rounds", "key_size")

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        nk = len(key) // 4
        self.rounds = nk + 6
        self._round_keys = self._expand_key(key, nk, self.rounds)

    @staticmethod
    def _expand_key(key: bytes, nk: int, rounds: int) -> list[int]:
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = _sub_word(_rot_word(temp)) ^ (_RCON[i // nk - 1] << 24)
            elif nk > 6 and i % nk == 4:
                temp = _sub_word(temp)
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        rk = self._round_keys
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = SBOX

        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        k = 4
        for _ in range(self.rounds - 1):
            u0 = (
                t0[(s0 >> 24) & 0xFF]
                ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF]
                ^ t3[s3 & 0xFF]
                ^ rk[k]
            )
            u1 = (
                t0[(s1 >> 24) & 0xFF]
                ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF]
                ^ t3[s0 & 0xFF]
                ^ rk[k + 1]
            )
            u2 = (
                t0[(s2 >> 24) & 0xFF]
                ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF]
                ^ t3[s1 & 0xFF]
                ^ rk[k + 2]
            )
            u3 = (
                t0[(s3 >> 24) & 0xFF]
                ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF]
                ^ t3[s2 & 0xFF]
                ^ rk[k + 3]
            )
            s0, s1, s2, s3 = u0, u1, u2, u3
            k += 4

        o0 = (
            (sbox[(s0 >> 24) & 0xFF] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ rk[k]
        o1 = (
            (sbox[(s1 >> 24) & 0xFF] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ rk[k + 1]
        o2 = (
            (sbox[(s2 >> 24) & 0xFF] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ rk[k + 2]
        o3 = (
            (sbox[(s3 >> 24) & 0xFF] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ rk[k + 3]

        return (
            o0.to_bytes(4, "big")
            + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big")
            + o3.to_bytes(4, "big")
        )

    # -- Decryption (byte-oriented inverse cipher; not on the fast path) --

    def _round_key_bytes(self, round_index: int) -> list[int]:
        words = self._round_keys[4 * round_index : 4 * round_index + 4]
        out: list[int] = []
        for word in words:
            out.extend(word.to_bytes(4, "big"))
        return out

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        state = [b ^ k for b, k in zip(state, self._round_key_bytes(self.rounds))]
        for rnd in range(self.rounds - 1, 0, -1):
            state = _inv_shift_rows(state)
            state = [INV_SBOX[b] for b in state]
            state = [b ^ k for b, k in zip(state, self._round_key_bytes(rnd))]
            state = _inv_mix_columns(state)
        state = _inv_shift_rows(state)
        state = [INV_SBOX[b] for b in state]
        state = [b ^ k for b, k in zip(state, self._round_key_bytes(0))]
        return bytes(state)


def _inv_shift_rows(state: list[int]) -> list[int]:
    """Inverse ShiftRows on a column-major 16-byte state."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[4 * ((col + row) % 4) + row] = state[4 * col + row]
    return out


def _inv_mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for col in range(4):
        b0, b1, b2, b3 = state[4 * col : 4 * col + 4]
        out[4 * col + 0] = (
            _gf_mul(b0, 14) ^ _gf_mul(b1, 11) ^ _gf_mul(b2, 13) ^ _gf_mul(b3, 9)
        )
        out[4 * col + 1] = (
            _gf_mul(b0, 9) ^ _gf_mul(b1, 14) ^ _gf_mul(b2, 11) ^ _gf_mul(b3, 13)
        )
        out[4 * col + 2] = (
            _gf_mul(b0, 13) ^ _gf_mul(b1, 9) ^ _gf_mul(b2, 14) ^ _gf_mul(b3, 11)
        )
        out[4 * col + 3] = (
            _gf_mul(b0, 11) ^ _gf_mul(b1, 13) ^ _gf_mul(b2, 9) ^ _gf_mul(b3, 14)
        )
    return out
