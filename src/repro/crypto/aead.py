"""CCA-secure authenticated encryption for the APNA data plane.

The paper requires only that data encryption be CCA-secure and names
GCM/OCB as candidates (Section IV-A).  Two interchangeable schemes are
provided:

* :class:`GcmScheme` — AES-GCM (the paper's cited mode).
* :class:`EtmScheme` — AES-CTR + AES-CMAC Encrypt-then-MAC composition
  (the generic composition the EphID construction itself uses, per
  Bellare/Namprempre).  This is the default data-plane scheme in the
  reproduction because it is ~3x faster in pure Python, and E9 benchmarks
  the two against each other.

Both expose ``seal``/``open`` with a 12-byte nonce and associated data.
"""

from __future__ import annotations

from typing import Protocol

from .aes import AES
from .cmac import Cmac
from .gcm import AesGcm
from .kdf import derive_subkey
from .modes import ctr_xcrypt
from .util import ct_eq


class AeadScheme(Protocol):
    """Interface shared by all data-plane encryption schemes."""

    NONCE_SIZE: int
    tag_size: int

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes: ...

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes: ...


class GcmScheme:
    """AES-GCM wrapper conforming to :class:`AeadScheme`."""

    NONCE_SIZE = 12

    def __init__(self, key: bytes, tag_size: int = 16, *, backend=None) -> None:
        self._gcm = AesGcm(key, tag_size, backend=backend)
        self.tag_size = tag_size

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        return self._gcm.seal(nonce, plaintext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        return self._gcm.open(nonce, sealed, aad)


class EtmScheme:
    """Encrypt-then-MAC: AES-CTR for secrecy, AES-CMAC over nonce||aad||ct.

    Independent encryption and MAC keys are derived from the session key
    with domain separation, per the generic composition requirements.
    """

    NONCE_SIZE = 12

    def __init__(self, key: bytes, tag_size: int = 16, *, backend=None) -> None:
        if not 4 <= tag_size <= 16:
            raise ValueError("tag size must be between 4 and 16 bytes")
        self._enc = AES(derive_subkey(key, "etm-enc", 16), backend=backend)
        self._mac = Cmac(derive_subkey(key, "etm-mac", 16), backend=backend)
        self.tag_size = tag_size

    @staticmethod
    def _counter_block(nonce: bytes) -> bytes:
        if len(nonce) != 12:
            raise ValueError("nonce must be 12 bytes")
        return nonce + bytes(4)

    def _tag_input(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        # Unambiguous encoding: lengths are included so (aad, ct) splits
        # cannot be shifted against each other.
        return (
            len(aad).to_bytes(8, "big")
            + len(ciphertext).to_bytes(8, "big")
            + nonce
            + aad
            + ciphertext
        )

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        ciphertext = ctr_xcrypt(self._enc, self._counter_block(nonce), plaintext)
        tag = self._mac.tag(self._tag_input(nonce, aad, ciphertext), self.tag_size)
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(sealed) < self.tag_size:
            raise ValueError("ciphertext shorter than the authentication tag")
        ciphertext, tag = sealed[: -self.tag_size], sealed[-self.tag_size :]
        expected = self._mac.tag(self._tag_input(nonce, aad, ciphertext), self.tag_size)
        if not ct_eq(expected, tag):
            raise ValueError("EtM authentication failed")
        return ctr_xcrypt(self._enc, self._counter_block(nonce), ciphertext)


def new_aead(
    key: bytes, scheme: str = "etm", tag_size: int = 16, *, backend=None
) -> AeadScheme:
    """Factory for data-plane AEAD schemes ("etm" or "gcm")."""
    if scheme == "etm":
        return EtmScheme(key, tag_size, backend=backend)
    if scheme == "gcm":
        return GcmScheme(key, tag_size, backend=backend)
    raise ValueError(f"unknown AEAD scheme {scheme!r}")
