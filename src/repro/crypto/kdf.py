"""HMAC (RFC 2104) and HKDF (RFC 5869) key derivation.

The paper derives several symmetric keys from Diffie-Hellman results and
from the AS master secret kA (the EphID encryption key kA' and MAC key
kA'' "can be derived from the secret key of the AS").  HKDF-SHA256 is the
conventional realisation of those derivations.

:func:`hmac_sha256` dispatches to the active crypto backend (see
:mod:`repro.crypto.backend`): the ``"openssl"`` provider uses the
stdlib's OpenSSL-accelerated HMAC, :func:`pure_hmac_sha256` is the
direct RFC 2104 construction over the stdlib hash substrate.  The HKDF
extract/expand logic is backend-independent and built on whichever HMAC
is active; outputs are identical across backends by construction (and
pinned by the differential suite).
"""

from __future__ import annotations

import hashlib

from .backend import active_backend

_SHA256_BLOCK = 64
_SHA256_LEN = 32


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104, via the active backend."""
    return active_backend().hmac_sha256(key, message)


def pure_hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 implemented directly from RFC 2104 (the "pure" backend)."""
    if len(key) > _SHA256_BLOCK:
        key = hashlib.sha256(key).digest()
    key = key + bytes(_SHA256_BLOCK - len(key))
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    inner = hashlib.sha256(ipad + message).digest()
    return hashlib.sha256(opad + inner).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = bytes(_SHA256_LEN)
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand to ``length`` bytes."""
    if length > 255 * _SHA256_LEN:
        raise ValueError("HKDF output too long")
    hmac = active_backend().hmac_sha256
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot HKDF-SHA256 (extract-then-expand)."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def derive_subkey(master: bytes, label: str, length: int = 16) -> bytes:
    """Derive a named subkey from a master secret.

    Used for kA -> (kA', kA'') and kHA -> (control, mac) splits; the label
    provides domain separation between the derived keys.
    """
    return hkdf(master, info=label.encode("ascii"), length=length)
