"""From-scratch cryptographic substrate for the APNA reproduction.

Everything the paper's protocols need is implemented here directly:

* :mod:`repro.crypto.aes` — AES block cipher (FIPS-197).
* :mod:`repro.crypto.modes` — CTR, CBC, fixed-length CBC-MAC.
* :mod:`repro.crypto.cmac` — AES-CMAC (RFC 4493) for packet MACs.
* :mod:`repro.crypto.gcm` — AES-GCM (NIST SP 800-38D).
* :mod:`repro.crypto.aead` — pluggable CCA-secure data-plane encryption.
* :mod:`repro.crypto.kdf` — HMAC-SHA256 / HKDF key derivation.
* :mod:`repro.crypto.x25519` — Curve25519 Diffie-Hellman (RFC 7748).
* :mod:`repro.crypto.ed25519` — Ed25519 signatures (RFC 8032).
* :mod:`repro.crypto.rng` — system and deterministic randomness.
"""

from .aead import AeadScheme, EtmScheme, GcmScheme, new_aead
from .aes import AES, BLOCK_SIZE
from .cmac import Cmac, cmac
from .gcm import AesGcm
from .kdf import derive_subkey, hkdf, hkdf_expand, hkdf_extract, hmac_sha256
from .modes import cbc_decrypt, cbc_encrypt, cbc_mac, ctr_keystream, ctr_xcrypt
from .rng import DeterministicRng, Rng, SystemRng
from .util import ct_eq, inc_counter, xor_bytes
from . import ed25519, x25519

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "AeadScheme",
    "AesGcm",
    "Cmac",
    "DeterministicRng",
    "EtmScheme",
    "GcmScheme",
    "Rng",
    "SystemRng",
    "cbc_decrypt",
    "cbc_encrypt",
    "cbc_mac",
    "cmac",
    "ct_eq",
    "ctr_keystream",
    "ctr_xcrypt",
    "derive_subkey",
    "ed25519",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "inc_counter",
    "new_aead",
    "x25519",
    "xor_bytes",
]
