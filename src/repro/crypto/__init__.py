"""Cryptographic substrate for the APNA reproduction.

Everything the paper's protocols need is implemented here directly:

* :mod:`repro.crypto.aes` — AES block cipher (FIPS-197).
* :mod:`repro.crypto.modes` — CTR, CBC, fixed-length CBC-MAC.
* :mod:`repro.crypto.cmac` — AES-CMAC (RFC 4493) for packet MACs.
* :mod:`repro.crypto.gcm` — AES-GCM (NIST SP 800-38D).
* :mod:`repro.crypto.aead` — pluggable CCA-secure data-plane encryption.
* :mod:`repro.crypto.kdf` — HMAC-SHA256 / HKDF key derivation.
* :mod:`repro.crypto.x25519` — Curve25519 Diffie-Hellman (RFC 7748).
* :mod:`repro.crypto.ed25519` — Ed25519 signatures (RFC 8032).
* :mod:`repro.crypto.rng` — system and deterministic randomness.

Backend selection
-----------------

Every primitive above is a facade over a pluggable *backend* (see
:mod:`repro.crypto.backend`).  Two providers ship:

* ``"pure"`` — the from-scratch implementations in this package,
  dependency-free and byte-for-byte the reference semantics.
* ``"openssl"`` — delegation to the ``cryptography`` package (OpenSSL
  with AES-NI), mirroring the paper's DPDK/AES-NI data plane so the
  border-router verdict loop and EphID issuance run at hardware speed.

The backend is chosen once at import time: set
``REPRO_CRYPTO_BACKEND=pure`` (or ``openssl``) to force one, otherwise
``openssl`` is used when the ``cryptography`` package is importable and
``pure`` is the clean offline fallback.  Inspect the choice with
:func:`active_backend`; switch at runtime with :func:`set_backend` or
the :func:`use_backend` context manager (only objects constructed after
a switch pick up the new provider).  The two providers are pinned
against each other by the cross-backend differential suite in
``tests/test_crypto_backends.py``.
"""

from .aead import AeadScheme, EtmScheme, GcmScheme, new_aead
from .aes import AES, BLOCK_SIZE, PureAES
from .backend import (
    BackendUnavailable,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .cmac import Cmac, PureCmac, cmac
from .gcm import AesGcm, PureAesGcm
from .kdf import derive_subkey, hkdf, hkdf_expand, hkdf_extract, hmac_sha256
from .modes import cbc_decrypt, cbc_encrypt, cbc_mac, ctr_keystream, ctr_xcrypt
from .rng import DeterministicRng, Rng, SystemRng
from .util import ct_eq, inc_counter, xor_bytes
from . import ed25519, x25519

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "AeadScheme",
    "AesGcm",
    "BackendUnavailable",
    "Cmac",
    "DeterministicRng",
    "EtmScheme",
    "GcmScheme",
    "PureAES",
    "PureAesGcm",
    "PureCmac",
    "Rng",
    "SystemRng",
    "active_backend",
    "available_backends",
    "cbc_decrypt",
    "cbc_encrypt",
    "cbc_mac",
    "cmac",
    "ct_eq",
    "ctr_keystream",
    "ctr_xcrypt",
    "derive_subkey",
    "ed25519",
    "get_backend",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "inc_counter",
    "new_aead",
    "register_backend",
    "set_backend",
    "use_backend",
    "x25519",
    "xor_bytes",
]
