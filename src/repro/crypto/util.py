"""Small helpers shared across the crypto substrate."""

from __future__ import annotations

import hmac as _hmac


def ct_eq(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison.

    Delegates to :func:`hmac.compare_digest`, which accumulates a
    difference mask over the full input so the running time does not
    depend on the position of the first mismatch — and runs at C speed,
    which matters on the border router's per-packet MAC check.  Inputs
    of different lengths compare unequal (length is not secret).
    """
    return _hmac.compare_digest(a, b)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def inc_counter(block: bytes, width: int = 16) -> bytes:
    """Increment a big-endian counter block, wrapping modulo 2**(8*width)."""
    value = (int.from_bytes(block, "big") + 1) % (1 << (8 * width))
    return value.to_bytes(width, "big")
