"""Small helpers shared across the crypto substrate."""

from __future__ import annotations


def ct_eq(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison.

    Accumulates a difference mask over the full length of both inputs so
    that the running time does not depend on the position of the first
    mismatch.  Inputs of different lengths compare unequal (length is not
    considered secret).
    """
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} != {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def inc_counter(block: bytes, width: int = 16) -> bytes:
    """Increment a big-endian counter block, wrapping modulo 2**(8*width)."""
    value = (int.from_bytes(block, "big") + 1) % (1 << (8 * width))
    return value.to_bytes(width, "big")
