"""Random number generation for the APNA stack.

Two sources are provided behind one tiny interface:

* :class:`SystemRng` wraps ``os.urandom`` for real deployments.
* :class:`DeterministicRng` is an AES-CTR based DRBG so that simulations,
  tests and benchmarks are exactly reproducible from a seed.
"""

from __future__ import annotations

import os

from .aes import AES
from .kdf import hkdf


class SystemRng:
    """Operating-system randomness."""

    def read(self, n: int) -> bytes:
        return os.urandom(n)

    def randint(self, upper: int) -> int:
        """Uniform integer in [0, upper)."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        n_bytes = (upper.bit_length() + 7) // 8 + 1
        return int.from_bytes(self.read(n_bytes), "big") % upper


class DeterministicRng:
    """AES-CTR deterministic random bit generator seeded from bytes or int."""

    def __init__(self, seed: bytes | int | str) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(16, "big", signed=False) if seed >= 0 else str(seed).encode()
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        key = hkdf(seed, info=b"repro-drbg", length=16)
        self._cipher = AES(key)
        self._counter = 0
        self._buffer = b""

    def read(self, n: int) -> bytes:
        while len(self._buffer) < n:
            block = self._counter.to_bytes(16, "big")
            self._buffer += self._cipher.encrypt_block(block)
            self._counter += 1
        out, self._buffer = self._buffer[:n], self._buffer[n:]
        return out

    def randint(self, upper: int) -> int:
        """Uniform integer in [0, upper)."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        n_bytes = (upper.bit_length() + 7) // 8 + 1
        return int.from_bytes(self.read(n_bytes), "big") % upper

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""
        return int.from_bytes(self.read(7), "big") / (1 << 56)


Rng = SystemRng | DeterministicRng
