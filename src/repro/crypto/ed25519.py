"""Ed25519 signatures (RFC 8032).

The paper signs EphID certificates and shutoff requests with ed25519
("we use the ed25519 signature scheme", Section V-A2).  The public
``public_key`` / ``sign`` / ``verify`` functions dispatch to the active
crypto backend (see :mod:`repro.crypto.backend`); the ``pure_*``
variants below are the from-scratch implementation over extended
twisted-Edwards coordinates, pinned to the RFC 8032 Section 7.1 test
vectors.  Signing is deterministic, so both backends produce identical
signatures — the differential suite asserts this byte-for-byte.
"""

from __future__ import annotations

import hashlib

from .backend import active_backend

P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, P - 2, P)) % P
_SQRT_M1 = pow(2, (P - 1) // 4, P)

KEY_SIZE = 32
SIGNATURE_SIZE = 64

# Extended homogeneous coordinates (X, Y, Z, T) with x = X/Z, y = Y/Z, xy = T/Z.
_Point = tuple[int, int, int, int]

_IDENTITY: _Point = (0, 1, 1, 0)


def _point_add(p: _Point, q: _Point) -> _Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = ((y1 - x1) * (y2 - x2)) % P
    b = ((y1 + x1) * (y2 + x2)) % P
    c = (2 * t1 * t2 * _D) % P
    d = (2 * z1 * z2) % P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return ((e * f) % P, (g * h) % P, (f * g) % P, (e * h) % P)


def _point_double(p: _Point) -> _Point:
    x1, y1, z1, _ = p
    a = (x1 * x1) % P
    b = (y1 * y1) % P
    c = (2 * z1 * z1) % P
    h = (a + b) % P
    e = (h - (x1 + y1) * (x1 + y1)) % P
    g = (a - b) % P
    f = (c + g) % P
    return ((e * f) % P, (g * h) % P, (f * g) % P, (e * h) % P)


def _scalar_mult(scalar: int, point: _Point) -> _Point:
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_double(addend)
        scalar >>= 1
    return result


def _recover_x(y: int, sign: int) -> int:
    if y >= P:
        raise ValueError("invalid point encoding")
    x2 = ((y * y - 1) * pow(_D * y * y + 1, P - 2, P)) % P
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P:
        x = (x * _SQRT_M1) % P
    if (x * x - x2) % P:
        raise ValueError("point is not on the curve")
    if x == 0 and sign:
        raise ValueError("invalid sign bit for x=0")
    if x & 1 != sign:
        x = P - x
    return x


_BASE_Y = (4 * pow(5, P - 2, P)) % P
_BASE: _Point = (_recover_x(_BASE_Y, 0), _BASE_Y, 1, (_recover_x(_BASE_Y, 0) * _BASE_Y) % P)


def _compress(point: _Point) -> bytes:
    x, y, z, _ = point
    z_inv = pow(z, P - 2, P)
    x = (x * z_inv) % P
    y = (y * z_inv) % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decompress(data: bytes) -> _Point:
    if len(data) != 32:
        raise ValueError("point encoding must be 32 bytes")
    value = int.from_bytes(data, "little")
    sign = value >> 255
    y = value & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % P)


def _points_equal(p: _Point, q: _Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


def _sha512_int(*chunks: bytes) -> int:
    h = hashlib.sha512()
    for chunk in chunks:
        h.update(chunk)
    return int.from_bytes(h.digest(), "little")


def _expand_secret(secret: bytes) -> tuple[int, bytes]:
    digest = hashlib.sha512(secret).digest()
    scalar = bytearray(digest[:32])
    scalar[0] &= 248
    scalar[31] &= 127
    scalar[31] |= 64
    return int.from_bytes(scalar, "little"), digest[32:]


def public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    return active_backend().ed25519_public_key(secret)


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature."""
    return active_backend().ed25519_sign(secret, message)


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns False on any malformed input."""
    return active_backend().ed25519_verify(public, message, signature)


# -- the from-scratch implementation (the "pure" backend) --


def pure_public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    if len(secret) != KEY_SIZE:
        raise ValueError("Ed25519 secret must be 32 bytes")
    a, _ = _expand_secret(secret)
    return _compress(_scalar_mult(a, _BASE))


def pure_sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature."""
    if len(secret) != KEY_SIZE:
        raise ValueError("Ed25519 secret must be 32 bytes")
    a, prefix = _expand_secret(secret)
    pub = _compress(_scalar_mult(a, _BASE))
    r = _sha512_int(prefix, message) % L
    r_point = _compress(_scalar_mult(r, _BASE))
    k = _sha512_int(r_point, pub, message) % L
    s = (r + k * a) % L
    return r_point + s.to_bytes(32, "little")


def pure_verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns False on any malformed input."""
    if len(public) != KEY_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    try:
        a_point = _decompress(public)
        r_point = _decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    k = _sha512_int(signature[:32], public, message) % L
    lhs = _scalar_mult(s, _BASE)
    rhs = _point_add(r_point, _scalar_mult(k, a_point))
    return _points_equal(lhs, rhs)
