"""Block cipher modes of operation: CTR, CBC and CBC-MAC.

APNA's EphID construction (paper Fig. 6) uses single-block AES-CTR for
confidentiality and AES-CBC-MAC over a fixed-length input for integrity;
both are provided here.  CBC encryption/decryption is included for
completeness and for cross-checking against NIST SP 800-38A vectors.

Every function accepts any object exposing ``encrypt_block`` /
``decrypt_block`` (the :class:`~repro.crypto.aes.AES` facade, a backend
implementation, or the from-scratch :class:`~repro.crypto.aes.PureAES`).
When the underlying implementation offers a native bulk operation
(``ctr_xcrypt``, ``cbc_encrypt``, ``cbc_decrypt`` — the OpenSSL backend
does), multi-block work is handed over wholesale so it runs inside one
EVP call instead of a Python block loop.
"""

from __future__ import annotations

from .aes import AES, BLOCK_SIZE
from .util import xor_bytes

_MAX_COUNTER = (1 << 128) - 1


def _native(cipher, op: str):
    """The backend-native bulk operation for ``cipher``, if it has one."""
    impl = getattr(cipher, "_impl", cipher)
    return getattr(impl, op, None)


def ctr_keystream(cipher: AES, counter_block: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of CTR keystream starting at ``counter_block``."""
    if len(counter_block) != BLOCK_SIZE:
        raise ValueError("counter block must be 16 bytes")
    native = _native(cipher, "ctr_xcrypt")
    if native is not None:
        return native(counter_block, bytes(length))
    counter = int.from_bytes(counter_block, "big")
    blocks = []
    for _ in range((length + BLOCK_SIZE - 1) // BLOCK_SIZE):
        blocks.append(cipher.encrypt_block(counter.to_bytes(BLOCK_SIZE, "big")))
        counter = (counter + 1) & _MAX_COUNTER
    return b"".join(blocks)[:length]


def ctr_xcrypt(cipher: AES, counter_block: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` with AES-CTR (the operation is symmetric)."""
    if len(counter_block) != BLOCK_SIZE:
        raise ValueError("counter block must be 16 bytes")
    native = _native(cipher, "ctr_xcrypt")
    if native is not None:
        return native(counter_block, data)
    stream = ctr_keystream(cipher, counter_block, len(data))
    return xor_bytes(data, stream)


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encryption of a block-aligned plaintext (no padding)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be 16 bytes")
    if len(plaintext) % BLOCK_SIZE:
        raise ValueError("plaintext must be a multiple of the block size")
    native = _native(cipher, "cbc_encrypt")
    if native is not None:
        return native(iv, plaintext)
    out = []
    prev = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        block = cipher.encrypt_block(xor_bytes(plaintext[i : i + BLOCK_SIZE], prev))
        out.append(block)
        prev = block
    return b"".join(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decryption of a block-aligned ciphertext (no padding)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be 16 bytes")
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext must be a multiple of the block size")
    native = _native(cipher, "cbc_decrypt")
    if native is not None:
        return native(iv, ciphertext)
    out = []
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out.append(xor_bytes(cipher.decrypt_block(block), prev))
        prev = block
    return b"".join(out)


def cbc_mac(cipher: AES, message: bytes, *, expected_length: int | None = None) -> bytes:
    """Raw CBC-MAC over a block-aligned message.

    CBC-MAC is only secure for fixed-length messages (the paper cites
    Bellare/Kilian/Rogaway for this).  Callers that operate on a protocol
    field of known size should pass ``expected_length`` so that misuse on a
    different length raises instead of silently producing a forgeable tag.
    For variable-length messages use :mod:`repro.crypto.cmac` instead.
    """
    if len(message) % BLOCK_SIZE or not message:
        raise ValueError("CBC-MAC input must be a non-empty multiple of 16 bytes")
    if expected_length is not None and len(message) != expected_length:
        raise ValueError(
            f"CBC-MAC misuse: expected fixed length {expected_length}, "
            f"got {len(message)}"
        )
    if len(message) == BLOCK_SIZE:
        # Single-block MAC (the EphID hot path): E(0 ^ m) = E(m).
        return cipher.encrypt_block(message)
    native = _native(cipher, "cbc_encrypt")
    if native is not None:
        return native(bytes(BLOCK_SIZE), message)[-BLOCK_SIZE:]
    tag = bytes(BLOCK_SIZE)
    for i in range(0, len(message), BLOCK_SIZE):
        tag = cipher.encrypt_block(xor_bytes(tag, message[i : i + BLOCK_SIZE]))
    return tag
