"""AES-CMAC (RFC 4493): a variable-length-secure MAC built on AES.

APNA computes a MAC over *every packet* a host sends, keyed with the
host<->AS shared key (paper Section IV-D2).  Packets have variable length,
so plain CBC-MAC would be forgeable; CMAC is the standard fix and is what
this reproduction uses for packet authentication.

:class:`Cmac` is a facade over the active crypto backend (see
:mod:`repro.crypto.backend`); :class:`PureCmac` is the from-scratch
implementation that backs the ``"pure"`` provider.
"""

from __future__ import annotations

from .aes import BLOCK_SIZE, PureAES
from .backend import resolve_backend
from .util import ct_eq, xor_bytes

_R128 = 0x87


def _left_shift(block: bytes) -> bytes:
    value = int.from_bytes(block, "big") << 1
    out = value & ((1 << 128) - 1)
    if value >> 128:
        out ^= _R128
    return out.to_bytes(BLOCK_SIZE, "big")


class Cmac:
    """A reusable CMAC instance bound to one AES key.

    The key schedule (and, for the pure backend, the RFC 4493 subkeys
    K1/K2) is derived once at construction, making repeated ``tag`` calls
    cheap — the border router caches one instance per host.
    """

    __slots__ = ("_impl",)

    def __init__(self, key: bytes, *, backend=None) -> None:
        self._impl = resolve_backend(backend).new_cmac(key)

    def tag(self, message: bytes, length: int = BLOCK_SIZE) -> bytes:
        """Compute the CMAC tag, optionally truncated to ``length`` bytes."""
        if not 1 <= length <= BLOCK_SIZE:
            raise ValueError("tag length must be between 1 and 16 bytes")
        return self._impl.tag(message, length)

    def tag_many(self, messages, length: int = BLOCK_SIZE) -> list[bytes]:
        """Tag a burst of messages under the shared key schedule.

        Backends with a native bulk path (OpenSSL) keep the loop inside
        one call; the result is element-for-element identical to calling
        :meth:`tag` on each message.
        """
        if not 1 <= length <= BLOCK_SIZE:
            raise ValueError("tag length must be between 1 and 16 bytes")
        impl = self._impl
        native = getattr(impl, "tag_many", None)
        if native is not None:
            return native(messages, length)
        tag = impl.tag
        return [tag(message, length) for message in messages]

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Verify a (possibly truncated) tag in constant time."""
        return ct_eq(self.tag(message, len(tag)), tag)


class PureCmac:
    """The from-scratch RFC 4493 implementation (the "pure" backend).

    Subkeys K1/K2 are derived once at construction (RFC 4493 Section 2.3).
    """

    __slots__ = ("_cipher", "_k1", "_k2")

    def __init__(self, key: bytes) -> None:
        self._cipher = PureAES(key)
        zero = self._cipher.encrypt_block(bytes(BLOCK_SIZE))
        self._k1 = _left_shift(zero)
        self._k2 = _left_shift(self._k1)

    def tag(self, message: bytes, length: int = BLOCK_SIZE) -> bytes:
        if not 1 <= length <= BLOCK_SIZE:
            raise ValueError("tag length must be between 1 and 16 bytes")
        n_blocks = max(1, (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE)
        complete = bool(message) and len(message) % BLOCK_SIZE == 0

        last = message[(n_blocks - 1) * BLOCK_SIZE :]
        if complete:
            last = xor_bytes(last, self._k1)
        else:
            padded = last + b"\x80" + bytes(BLOCK_SIZE - len(last) - 1)
            last = xor_bytes(padded, self._k2)

        state = bytes(BLOCK_SIZE)
        encrypt = self._cipher.encrypt_block
        for i in range(n_blocks - 1):
            state = encrypt(xor_bytes(state, message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]))
        return encrypt(xor_bytes(state, last))[:length]


def cmac(key: bytes, message: bytes, length: int = BLOCK_SIZE) -> bytes:
    """One-shot AES-CMAC."""
    return Cmac(key).tag(message, length)
