"""Pluggable crypto backend registry (the AES-NI seam of paper §V).

The paper's data plane performs "one MAC check plus one AES operation"
per packet on AES-NI hardware (Fig. 4, §V-B); this reproduction's
primitives are implemented from scratch in pure Python.  This module is
the seam between the two worlds: every facade in :mod:`repro.crypto`
(:class:`~repro.crypto.aes.AES`, :class:`~repro.crypto.cmac.Cmac`,
:class:`~repro.crypto.gcm.AesGcm`, the :mod:`~repro.crypto.ed25519` /
:mod:`~repro.crypto.x25519` functions, HKDF) routes its work through the
*active provider*, so hot-path consumers — the EphID codec, the border
router verdict loop, the TLS attestation, path validation — pick up a
hardware-accelerated implementation without changing a line.

Two providers ship:

* ``"pure"`` — the repo's own from-scratch primitives, unchanged.
* ``"openssl"`` — delegation to the ``cryptography`` package (OpenSSL,
  AES-NI), reproducing the paper's software-vs-AES-NI comparison.

Selection happens once at import: the ``REPRO_CRYPTO_BACKEND`` env var
(``pure`` or ``openssl``) wins; otherwise ``openssl`` is used when the
``cryptography`` package is importable and ``pure`` is the clean
offline fallback.  ``active_backend()`` reports the choice;
``set_backend()`` / ``use_backend()`` change it at runtime (affecting
only objects constructed afterwards — existing instances keep the
provider they were built with).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .util import xor_bytes


class BackendUnavailable(RuntimeError):
    """Raised when a requested crypto backend cannot be loaded."""


_MASK128 = (1 << 128) - 1


class _PureProvider:
    """The from-scratch primitives already in this package."""

    name = "pure"

    def new_aes(self, key: bytes):
        from .aes import PureAES

        return PureAES(key)

    def new_cmac(self, key: bytes):
        from .cmac import PureCmac

        return PureCmac(key)

    def new_gcm(self, key: bytes, tag_size: int):
        from .gcm import PureAesGcm

        return PureAesGcm(key, tag_size)

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        from .kdf import pure_hmac_sha256

        return pure_hmac_sha256(key, message)

    def ed25519_public_key(self, secret: bytes) -> bytes:
        from . import ed25519

        return ed25519.pure_public_key(secret)

    def ed25519_sign(self, secret: bytes, message: bytes) -> bytes:
        from . import ed25519

        return ed25519.pure_sign(secret, message)

    def ed25519_verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        from . import ed25519

        return ed25519.pure_verify(public, message, signature)

    def x25519_public_key(self, private: bytes) -> bytes:
        from . import x25519

        return x25519.pure_public_key(private)

    def x25519_shared_secret(self, private: bytes, peer_public: bytes) -> bytes:
        from . import x25519

        return x25519.pure_shared_secret(private, peer_public)


class _OpenSSLAes:
    """AES via OpenSSL with a reusable ECB context per direction.

    ECB is stateless per block, so one ``encryptor()`` context serves
    every ``encrypt_block`` call — the per-block cost is a single EVP
    update instead of a context setup.  Bulk CTR and CBC get dedicated
    one-shot contexts; :mod:`repro.crypto.modes` dispatches to them when
    present so multi-block work runs entirely inside OpenSSL.
    """

    __slots__ = ("key_size", "_algorithm", "_cipher_cls", "_modes", "_ecb_enc", "_ecb_dec")

    def __init__(self, key: bytes, ciphers_mod) -> None:
        self.key_size = len(key)
        self._cipher_cls = ciphers_mod.Cipher
        self._modes = ciphers_mod.modes
        self._algorithm = ciphers_mod.algorithms.AES(key)
        self._ecb_enc = self._cipher_cls(self._algorithm, self._modes.ECB()).encryptor()
        self._ecb_dec = self._cipher_cls(self._algorithm, self._modes.ECB()).decryptor()

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        return self._ecb_enc.update(block)

    def encrypt_blocks(self, data: bytes) -> bytes:
        """ECB-encrypt a concatenation of independent 16-byte blocks.

        One EVP update covers the whole buffer — this is the bulk entry
        point the border router's batched verdict loop uses to open a
        burst's worth of EphIDs (their CTR keystream and CBC-MAC inputs
        are one block each) in two OpenSSL calls total.
        """
        if len(data) % 16:
            raise ValueError(
                f"data must be a multiple of 16 bytes, got {len(data)}"
            )
        return self._ecb_enc.update(data)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        return self._ecb_dec.update(block)

    def ctr_xcrypt(self, counter_block: bytes, data: bytes) -> bytes:
        # OpenSSL's CTR increments the full 128-bit big-endian counter
        # with wrap-around, matching the pure implementation.  For short
        # payloads (single-digit block counts: EphIDs, small packets) a
        # fresh CTR context costs more than the work itself, so the
        # keystream is generated through the reusable ECB context instead.
        if len(data) <= 128:
            counter = int.from_bytes(counter_block, "big")
            encrypt = self._ecb_enc.update
            stream = b"".join(
                encrypt(((counter + i) & _MASK128).to_bytes(16, "big"))
                for i in range((len(data) + 15) // 16)
            )
            return xor_bytes(data, stream[: len(data)]) if data else b""
        enc = self._cipher_cls(self._algorithm, self._modes.CTR(counter_block)).encryptor()
        return enc.update(data)

    def cbc_encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        enc = self._cipher_cls(self._algorithm, self._modes.CBC(iv)).encryptor()
        return enc.update(plaintext) + enc.finalize()

    def cbc_decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        dec = self._cipher_cls(self._algorithm, self._modes.CBC(iv)).decryptor()
        return dec.update(ciphertext) + dec.finalize()


class _OpenSSLCmac:
    """AES-CMAC via OpenSSL; the key schedule is shared across calls.

    A base CMAC context is initialised once (CMAC_CTX setup + subkey
    derivation) and ``copy()``-ed per tag, so the border router's cached
    per-host instances pay only the message pass on each packet.
    """

    __slots__ = ("_base",)

    def __init__(self, algorithm, cmac_cls) -> None:
        self._base = cmac_cls(algorithm)

    def tag(self, message: bytes, length: int = 16) -> bytes:
        if not 1 <= length <= 16:
            raise ValueError("tag length must be between 1 and 16 bytes")
        ctx = self._base.copy()
        ctx.update(message)
        return ctx.finalize()[:length]

    def tag_many(self, messages, length: int = 16) -> list[bytes]:
        """Tag a burst of messages off the shared key schedule.

        Each message still needs its own CMAC finalization, but the base
        context is copied locally and the loop stays inside one call, so
        a border-router burst pays the facade dispatch once.
        """
        if not 1 <= length <= 16:
            raise ValueError("tag length must be between 1 and 16 bytes")
        copy = self._base.copy
        out = []
        for message in messages:
            ctx = copy()
            ctx.update(message)
            out.append(ctx.finalize()[:length])
        return out


class _OpenSSLGcm:
    """AES-GCM via OpenSSL, with truncated-tag support.

    OpenSSL only accepts IVs of 8..128 bytes; shorter or longer nonces
    (legal per SP 800-38D via the GHASH J0 derivation) fall back to the
    pure implementation so both backends accept exactly the same inputs.
    """

    __slots__ = ("tag_size", "_key", "_algorithm", "_cipher_cls", "_modes", "_invalid_tag", "_pure")

    def __init__(self, key: bytes, tag_size: int, ciphers_mod, invalid_tag) -> None:
        if not 4 <= tag_size <= 16:
            raise ValueError("tag size must be between 4 and 16 bytes")
        self.tag_size = tag_size
        self._key = key
        self._cipher_cls = ciphers_mod.Cipher
        self._modes = ciphers_mod.modes
        self._algorithm = ciphers_mod.algorithms.AES(key)
        self._invalid_tag = invalid_tag
        self._pure = None

    def _pure_fallback(self):
        if self._pure is None:
            from .gcm import PureAesGcm

            self._pure = PureAesGcm(self._key, self.tag_size)
        return self._pure

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if not 8 <= len(nonce) <= 128:
            return self._pure_fallback().seal(nonce, plaintext, aad)
        enc = self._cipher_cls(self._algorithm, self._modes.GCM(nonce)).encryptor()
        if aad:
            enc.authenticate_additional_data(aad)
        ciphertext = enc.update(plaintext) + enc.finalize()
        return ciphertext + enc.tag[: self.tag_size]

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(sealed) < self.tag_size:
            raise ValueError("ciphertext shorter than the authentication tag")
        if not 8 <= len(nonce) <= 128:
            return self._pure_fallback().open(nonce, sealed, aad)
        ciphertext, tag = sealed[: -self.tag_size], sealed[-self.tag_size :]
        mode = self._modes.GCM(nonce, tag, min_tag_length=self.tag_size)
        dec = self._cipher_cls(self._algorithm, mode).decryptor()
        if aad:
            dec.authenticate_additional_data(aad)
        plaintext = dec.update(ciphertext)
        try:
            plaintext += dec.finalize()
        except self._invalid_tag:
            raise ValueError("GCM authentication failed") from None
        return plaintext


class _OpenSSLProvider:
    """Delegation to the ``cryptography`` package (OpenSSL, AES-NI)."""

    name = "openssl"

    def __init__(self) -> None:
        try:
            import hashlib as _hashlib
            import hmac as _hmac

            from cryptography.exceptions import InvalidSignature, InvalidTag
            from cryptography.hazmat.primitives import ciphers as _ciphers
            from cryptography.hazmat.primitives import cmac as _cmac_mod
            from cryptography.hazmat.primitives.asymmetric import ed25519 as _ed
            from cryptography.hazmat.primitives.asymmetric import x25519 as _x
            from cryptography.hazmat.primitives.ciphers import algorithms as _algorithms
        except ImportError as exc:  # pragma: no cover - exercised offline
            raise BackendUnavailable(
                "the 'cryptography' package is not importable; "
                "use the 'pure' backend instead"
            ) from exc
        self._hashlib = _hashlib
        self._hmac = _hmac
        self._ciphers = _ciphers
        self._algorithms = _algorithms
        self._cmac_cls = _cmac_mod.CMAC
        self._ed = _ed
        self._x = _x
        self._invalid_signature = InvalidSignature
        self._invalid_tag = InvalidTag

    def new_aes(self, key: bytes) -> _OpenSSLAes:
        return _OpenSSLAes(key, self._ciphers)

    def new_cmac(self, key: bytes) -> _OpenSSLCmac:
        return _OpenSSLCmac(self._algorithms.AES(key), self._cmac_cls)

    def new_gcm(self, key: bytes, tag_size: int) -> _OpenSSLGcm:
        return _OpenSSLGcm(key, tag_size, self._ciphers, self._invalid_tag)

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        return self._hmac.new(key, message, self._hashlib.sha256).digest()

    def ed25519_public_key(self, secret: bytes) -> bytes:
        if len(secret) != 32:
            raise ValueError("Ed25519 secret must be 32 bytes")
        return (
            self._ed.Ed25519PrivateKey.from_private_bytes(secret)
            .public_key()
            .public_bytes_raw()
        )

    def ed25519_sign(self, secret: bytes, message: bytes) -> bytes:
        if len(secret) != 32:
            raise ValueError("Ed25519 secret must be 32 bytes")
        return self._ed.Ed25519PrivateKey.from_private_bytes(secret).sign(message)

    @staticmethod
    def _ed25519_canonical_point(encoded: bytes) -> bool:
        """Match the pure decoder's rejections that OpenSSL is lax about.

        RFC 8032 decoding fails for y >= p (non-canonical encoding) and
        for a set sign bit when x = 0 (y in {1, p-1}); OpenSSL reduces
        such encodings instead of rejecting, which would make the two
        backends disagree on acceptance for the same input bytes.
        """
        p = 2**255 - 19
        value = int.from_bytes(encoded, "little")
        sign = value >> 255
        y = value & ((1 << 255) - 1)
        if y >= p:
            return False
        if sign and y in (1, p - 1):  # x = 0 admits no odd representative
            return False
        return True

    def ed25519_verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        if len(public) != 32 or len(signature) != 64:
            return False
        if not self._ed25519_canonical_point(public):
            return False
        if not self._ed25519_canonical_point(signature[:32]):
            return False
        try:
            key = self._ed.Ed25519PublicKey.from_public_bytes(public)
            key.verify(signature, message)
        except (ValueError, self._invalid_signature):
            return False
        return True

    def x25519_public_key(self, private: bytes) -> bytes:
        if len(private) != 32:
            raise ValueError("X25519 scalar must be 32 bytes")
        return (
            self._x.X25519PrivateKey.from_private_bytes(private)
            .public_key()
            .public_bytes_raw()
        )

    def x25519_shared_secret(self, private: bytes, peer_public: bytes) -> bytes:
        if len(private) != 32:
            raise ValueError("X25519 scalar must be 32 bytes")
        if len(peer_public) != 32:
            raise ValueError("X25519 point must be 32 bytes")
        key = self._x.X25519PrivateKey.from_private_bytes(private)
        try:
            return key.exchange(self._x.X25519PublicKey.from_public_bytes(peer_public))
        except ValueError:
            # OpenSSL rejects low-order peer points by refusing the
            # all-zero output, exactly as RFC 7748 recommends.
            raise ValueError("X25519 produced the all-zero shared secret") from None


_PROVIDER_CLASSES: dict[str, type] = {
    "pure": _PureProvider,
    "openssl": _OpenSSLProvider,
}
_INSTANCES: dict[str, object] = {}


def register_backend(name: str, provider_cls: type) -> None:
    """Register an additional provider class (e.g. a future DPDK-style one).

    Re-registering an existing name replaces it; if that name is the
    active backend, the active instance is refreshed so new crypto
    objects immediately use the replacement.
    """
    global _ACTIVE
    _PROVIDER_CLASSES[name] = provider_cls
    _INSTANCES.pop(name, None)
    if _ACTIVE is not None and getattr(_ACTIVE, "name", None) == name:
        _ACTIVE = get_backend(name)


def get_backend(name: str):
    """Return the provider instance for ``name``.

    Raises :class:`BackendUnavailable` if the provider exists but cannot
    be loaded (e.g. ``openssl`` without the ``cryptography`` package) and
    ``ValueError`` for unknown names.
    """
    provider = _INSTANCES.get(name)
    if provider is None:
        cls = _PROVIDER_CLASSES.get(name)
        if cls is None:
            raise ValueError(
                f"unknown crypto backend {name!r}; "
                f"known: {', '.join(sorted(_PROVIDER_CLASSES))}"
            )
        provider = cls()
        _INSTANCES[name] = provider
    return provider


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually be loaded on this machine."""
    names = []
    for name in _PROVIDER_CLASSES:
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        names.append(name)
    return tuple(names)


def active_backend():
    """The provider new crypto objects are currently built with."""
    return _ACTIVE


def set_backend(backend):
    """Switch the active provider; returns the previous one.

    ``backend`` may be a name or a provider instance.  Only objects
    constructed *after* the switch use the new provider; existing
    instances keep the one they captured at construction.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = get_backend(backend) if isinstance(backend, str) else backend
    return previous


@contextmanager
def use_backend(backend) -> Iterator[object]:
    """Context manager form of :func:`set_backend`."""
    previous = set_backend(backend)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)


def resolve_backend(backend=None):
    """Facade helper: explicit provider/name, or the active provider."""
    if backend is None:
        return _ACTIVE
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


def _auto_select():
    forced = os.environ.get("REPRO_CRYPTO_BACKEND", "").strip().lower()
    if forced:
        if forced not in _PROVIDER_CLASSES:
            raise ValueError(
                f"REPRO_CRYPTO_BACKEND={forced!r} is not a known backend; "
                f"known: {', '.join(sorted(_PROVIDER_CLASSES))}"
            )
        return get_backend(forced)
    try:
        return get_backend("openssl")
    except BackendUnavailable:
        return get_backend("pure")


_ACTIVE = _auto_select()
