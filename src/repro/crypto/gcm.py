"""AES-GCM authenticated encryption (NIST SP 800-38D).

The paper requires a CCA-secure scheme for data-plane encryption and cites
GCM as a suitable choice.  :class:`AesGcm` is a facade over the active
crypto backend (see :mod:`repro.crypto.backend`); :class:`PureAesGcm` is
the from-scratch implementation behind the ``"pure"`` provider.  GHASH is
implemented over GF(2^128) with a per-key table of the 128 multiples
H*x^i, so each block multiplication is a sparse XOR walk over the set bits
of the accumulator rather than a bit-serial shift loop.

Correctness is pinned to the NIST GCM validation vectors in
``tests/test_crypto_gcm.py`` and the cross-backend differential suite in
``tests/test_crypto_backends.py``.
"""

from __future__ import annotations

from .aes import BLOCK_SIZE, PureAES
from .backend import resolve_backend
from .modes import ctr_keystream
from .util import ct_eq, xor_bytes

_R = 0xE1 << 120  # GCM reduction polynomial (bit-reflected representation)


class _GHash:
    """GHASH universal hash keyed with H = AES_K(0^128)."""

    __slots__ = ("_table",)

    def __init__(self, h_block: bytes) -> None:
        # table[i] = H * x^i for i in 0..127, so that X*H is the XOR of
        # table[i] over the set bits of X (bit 0 = MSB per GCM convention).
        h = int.from_bytes(h_block, "big")
        table = []
        v = h
        for _ in range(128):
            table.append(v)
            if v & 1:
                v = (v >> 1) ^ _R
            else:
                v >>= 1
        self._table = table

    def _mul_h(self, x: int) -> int:
        table = self._table
        z = 0
        while x:
            low = x & -x
            z ^= table[127 - (low.bit_length() - 1)]
            x ^= low
        return z

    def digest(self, aad: bytes, ciphertext: bytes) -> bytes:
        y = 0
        for chunk in (aad, ciphertext):
            for i in range(0, len(chunk), BLOCK_SIZE):
                block = chunk[i : i + BLOCK_SIZE]
                if len(block) < BLOCK_SIZE:
                    block = block + bytes(BLOCK_SIZE - len(block))
                y = self._mul_h(y ^ int.from_bytes(block, "big"))
        lengths = ((len(aad) * 8) << 64) | (len(ciphertext) * 8)
        y = self._mul_h(y ^ lengths)
        return y.to_bytes(BLOCK_SIZE, "big")


class AesGcm:
    """AES-GCM with 96-bit nonces and configurable tag length.

    A facade over the active backend; ``seal``/``open`` semantics are
    identical across backends (the differential suite pins this).
    """

    NONCE_SIZE = 12

    __slots__ = ("_impl", "tag_size")

    def __init__(self, key: bytes, tag_size: int = 16, *, backend=None) -> None:
        if not 4 <= tag_size <= 16:
            raise ValueError("tag size must be between 4 and 16 bytes")
        self._impl = resolve_backend(backend).new_gcm(key, tag_size)
        self.tag_size = tag_size

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || tag."""
        return self._impl.seal(nonce, plaintext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises ``ValueError`` on authentication failure."""
        return self._impl.open(nonce, sealed, aad)


class PureAesGcm:
    """The from-scratch SP 800-38D implementation (the "pure" backend)."""

    NONCE_SIZE = 12

    __slots__ = ("_cipher", "_ghash", "tag_size")

    def __init__(self, key: bytes, tag_size: int = 16) -> None:
        if not 4 <= tag_size <= 16:
            raise ValueError("tag size must be between 4 and 16 bytes")
        self._cipher = PureAES(key)
        self._ghash = _GHash(self._cipher.encrypt_block(bytes(BLOCK_SIZE)))
        self.tag_size = tag_size

    def _counter0(self, nonce: bytes) -> bytes:
        if len(nonce) == self.NONCE_SIZE:
            return nonce + b"\x00\x00\x00\x01"
        # Non-96-bit nonces are GHASHed per the spec (J0 = GHASH(nonce)).
        return self._ghash.digest(b"", nonce)

    def _keystream(self, j0: bytes, length: int) -> bytes:
        counter1 = (int.from_bytes(j0, "big") + 1) & ((1 << 128) - 1)
        return ctr_keystream(self._cipher, counter1.to_bytes(BLOCK_SIZE, "big"), length)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || tag."""
        j0 = self._counter0(nonce)
        stream = self._keystream(j0, len(plaintext))
        ciphertext = xor_bytes(plaintext, stream) if plaintext else b""
        s = self._ghash.digest(aad, ciphertext)
        tag = xor_bytes(self._cipher.encrypt_block(j0), s)[: self.tag_size]
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises ``ValueError`` on authentication failure."""
        if len(sealed) < self.tag_size:
            raise ValueError("ciphertext shorter than the authentication tag")
        ciphertext, tag = sealed[: -self.tag_size], sealed[-self.tag_size :]
        j0 = self._counter0(nonce)
        s = self._ghash.digest(aad, ciphertext)
        expected = xor_bytes(self._cipher.encrypt_block(j0), s)[: self.tag_size]
        if not ct_eq(expected, tag):
            raise ValueError("GCM authentication failed")
        stream = self._keystream(j0, len(ciphertext))
        return xor_bytes(ciphertext, stream) if ciphertext else b""
