"""E13 — APNA-as-a-Service (paper Section VIII-E).

"The customer ASes, especially the small ASes that do not have a large
number of hosts (i.e., small anonymity set), can enjoy stronger level of
host privacy protection by mixing with customers of other (upstream)
ISPs."

Two measurements:

1. Anonymity amplification — the anonymity set of a stub AS's host when
   the stub deploys APNA itself, versus when it consumes AaaS from an
   upstream ISP of varying size.
2. Accountability preservation — the full chain still works through the
   service: a downstream host's traffic attributes to the upstream AID,
   a recipient's shutoff lands at the upstream agent, and the downstream
   border device (the NAT-mode AP of Section VII-B) pinpoints and blocks
   the offending client.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.autonomous_system import ApnaAutonomousSystem
from ..core.config import ApnaConfig
from ..core.rpki import RpkiDirectory, TrustAnchor
from ..crypto.rng import DeterministicRng
from ..gateway import DownstreamAs
from ..metrics import format_table
from ..netsim import Network
from .common import print_header


@dataclass
class AnonymityPoint:
    stub_hosts: int
    upstream_hosts: int
    own_deployment_set: int
    aaas_set: int

    @property
    def amplification(self) -> float:
        return self.aaas_set / self.own_deployment_set


@dataclass
class E13Result:
    points: list[AnonymityPoint]
    ephid_attributes_to_upstream: bool
    shutoff_accepted: bool
    ap_identified_client: bool
    client_blocked: bool

    @property
    def privacy_claim_holds(self) -> bool:
        """Small stubs gain the most; amplification is monotone in N/M."""
        amps = [p.amplification for p in self.points]
        return all(a > 1.0 for a in amps) and amps == sorted(amps, reverse=True)

    @property
    def accountability_preserved(self) -> bool:
        return (
            self.ephid_attributes_to_upstream
            and self.shutoff_accepted
            and self.ap_identified_client
            and self.client_blocked
        )


def _world(upstream_hosts: int, *, seed: int = 13):
    rng = DeterministicRng(seed)
    network = Network()
    config = ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    upstream = ApnaAutonomousSystem(3356, network, rpki, anchor, config=config, rng=rng)
    remote_as = ApnaAutonomousSystem(200, network, rpki, anchor, config=config, rng=rng)
    upstream.connect_to(remote_as, latency=0.010)
    for i in range(upstream_hosts):
        upstream.attach_host(f"isp-host-{i}").bootstrap()
    victim = remote_as.attach_host("victim")
    victim.bootstrap()
    network.compute_routes()
    return network, upstream, remote_as, victim


def run(
    *,
    stub_sizes: tuple[int, ...] = (5, 20, 50),
    upstream_hosts: int = 200,
    quiet: bool = False,
) -> E13Result:
    # -- 1. anonymity amplification --------------------------------------
    points = []
    for stub_hosts in stub_sizes:
        network, upstream, _remote, _victim = _world(upstream_hosts)
        downstream = DownstreamAs(64999, upstream)
        downstream.bootstrap()
        for i in range(stub_hosts):
            downstream.attach_host(f"stub-pc-{i}")
        network.compute_routes()
        points.append(
            AnonymityPoint(
                stub_hosts=stub_hosts,
                upstream_hosts=upstream_hosts,
                # Deploying itself, the stub's hosts hide only among
                # themselves (the host's own AS is the anonymity set).
                own_deployment_set=stub_hosts,
                aaas_set=downstream.anonymity_set_hint,
            )
        )

    # -- 2. accountability through the service ---------------------------
    network, upstream, _remote, victim = _world(50)
    downstream = DownstreamAs(64999, upstream)
    downstream.bootstrap()
    offender = downstream.attach_host("offender")
    network.compute_routes()

    acquired = []
    offender.acquire_ephid(callback=acquired.append)
    network.run()
    owned = acquired[0]
    attributes_upstream = owned.cert.aid == upstream.aid

    # The victim captures the offending packet off its access link (the
    # same evidence Fig. 5 requires it to present).
    captured: list[bytes] = []
    original_handle = victim.handle_frame

    def capture(frame_bytes, *, from_node):
        captured.append(frame_bytes)
        original_handle(frame_bytes, from_node=from_node)

    victim.handle_frame = capture
    victim_owned = victim.acquire_ephid_direct()
    offender.connect(victim_owned.cert, owned, early_data=b"unwanted")
    network.run()
    from ..wire.apna import ApnaPacket

    offending = ApnaPacket.from_wire(captured[-1])
    request = victim.stack.build_shutoff_request(offending.to_wire(), victim_owned)
    response = upstream.aa.handle_shutoff(request)

    identified = downstream.border.identify(owned.ephid)
    if identified is not None:
        downstream.border.block_client(identified)
    # Blocked: further packets from the client die at the AP.
    before = len(victim.inbox)
    offender.connect(victim_owned.cert, owned, early_data=b"again?")
    network.run()
    blocked = len(victim.inbox) == before

    result = E13Result(
        points=points,
        ephid_attributes_to_upstream=attributes_upstream,
        shutoff_accepted=response.accepted,
        ap_identified_client=identified == "offender",
        client_blocked=blocked,
    )
    if not quiet:
        report(result)
    return result


def report(result: E13Result) -> None:
    print_header("E13: APNA-as-a-Service", "paper Section VIII-E")
    rows = [
        (
            point.stub_hosts,
            point.own_deployment_set,
            f"{point.aaas_set:,}",
            f"{point.amplification:.1f}x",
        )
        for point in result.points
    ]
    print(
        format_table(
            (
                "stub AS hosts",
                "anonymity set (own APNA)",
                "anonymity set (AaaS)",
                "amplification",
            ),
            rows,
        )
    )
    print()
    checks = [
        ("EphIDs attribute to the upstream AID", result.ephid_attributes_to_upstream),
        ("recipient shutoff accepted by upstream agent", result.shutoff_accepted),
        ("downstream AP identified the offending client", result.ap_identified_client),
        ("offending client blocked at the AP", result.client_blocked),
    ]
    print(format_table(("accountability check", "result"),
                       [(name, "pass" if ok else "FAIL") for name, ok in checks]))
    privacy = "HOLDS" if result.privacy_claim_holds else "FAILS"
    print(f"\nshape claim (small stubs gain the largest anonymity boost): {privacy}")
    acct = "HOLDS" if result.accountability_preserved else "FAILS"
    print(f"shape claim (accountability is preserved through the service): {acct}")


if __name__ == "__main__":
    run()
