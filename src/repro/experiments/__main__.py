"""``python -m repro.experiments`` — run every paper reproduction."""

import importlib
import sys
import time

from . import ALL_RUNNERS


def main(argv: list[str]) -> int:
    selected = argv or ALL_RUNNERS
    unknown = [name for name in selected if name not in ALL_RUNNERS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_RUNNERS)}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    for name in selected:
        module = importlib.import_module(f".{name}", package=__package__)
        module.run()
    elapsed = time.perf_counter() - started
    print(f"\n{len(selected)} experiments completed in {elapsed:,.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
