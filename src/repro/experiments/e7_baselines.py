"""E7 — Baseline comparison (paper Section IX / Table-style summary).

Quantifies APNA against the related-work systems it is compared to in
prose: per-packet cost at the accountability enforcement point, extra
control messages to third parties, and the security-property matrix.
Also demonstrates APIP's whitelisting hole and Persona's flow-demux
failure — the two concrete criticisms the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import (
    AipHost,
    ApipDelegate,
    ApipSender,
    ApipVerifier,
    FlowDemuxer,
    PersonaNat,
    PersonaPacket,
    PlainIpRouter,
    RoutingTable,
)
from ..crypto.rng import DeterministicRng
from ..metrics import Timer, format_table, rate
from ..wire.apna import ApnaPacket
from ..workload.packets import build_apna_pool, build_ipv4_pool
from .common import build_bench_world, print_header

PROPERTY_MATRIX = [
    # system, per-pkt accountability, host privacy, data privacy+PFS, shutoff point
    ("APNA", "yes (in-packet MAC)", "yes (EphIDs)", "yes (native)", "source AS"),
    ("APIP", "no (whitelist hole)", "partial (delegate)", "no", "delegate"),
    ("AIP", "yes (self-certifying)", "no (static EID)", "no", "host NIC"),
    ("Persona", "no", "yes (pool NAT)", "no", "none"),
    ("IPv4", "no", "no", "no", "none"),
]


@dataclass
class E7Result:
    apna_pps: float
    apip_pps: float
    aip_pps: float
    ipv4_pps: float
    apip_msgs_per_packet: float
    apna_msgs_per_packet: float
    apip_hole_packets: int
    persona_demux_accuracy: float

    @property
    def claims_hold(self) -> bool:
        return (
            self.apip_hole_packets > 0  # APIP lets unbriefed packets through
            and self.persona_demux_accuracy < 0.9  # Persona breaks flows
            and self.apna_msgs_per_packet == 0.0  # APNA needs no third party
        )


def _measure_apna(count: int) -> float:
    world = build_bench_world(seed=7, hosts_per_as=2)
    pool = build_apna_pool(world.as_a, world.hosts_a, size=256, count=count, dst_aid=200)
    br = world.as_a.br
    with Timer() as timer:
        for frame in pool.wire_frames:
            br.process_outgoing(ApnaPacket.from_wire(frame))
    return rate(count, timer.elapsed)


def _measure_apip(count: int) -> tuple[float, float, int]:
    delegate = ApipDelegate(addr=1)
    sender = ApipSender(1, delegate, return_addr=7)
    verifier = ApipVerifier(delegate)
    packets = [sender.send(dst_addr=9, flow_id=i % 16, payload=b"x" * 200) for i in range(count)]
    with Timer() as timer:
        for packet in packets:
            verifier.process(packet)
    # The whitelisting hole: unbriefed packets on whitelisted flows pass.
    hole_packets = 0
    for i in range(16):
        sneaky = sender.send(dst_addr=9, flow_id=i, payload=b"evil", brief=False)
        if verifier.process(sneaky):
            hole_packets += 1
    msgs_per_packet = sender.briefs_sent / max(1, len(packets))
    return rate(count, timer.elapsed), msgs_per_packet, hole_packets


def _measure_aip(count: int) -> float:
    rng = DeterministicRng(77)
    a, b = AipHost(100, rng), AipHost(200, rng)
    packets = [a.send(b, b"y" * 200) for _ in range(count)]
    with Timer() as timer:
        for packet in packets:
            b.verify_source(packet, a.public_key)
    return rate(count, timer.elapsed)


def _measure_ipv4(count: int) -> float:
    routes = RoutingTable()
    routes.add(0, 0, "up")
    router = PlainIpRouter(routes)
    pool = build_ipv4_pool(size=256, count=count)
    with Timer() as timer:
        for frame in pool.wire_frames:
            router.process(frame)
    return rate(count, timer.elapsed)


def _measure_persona(flows: int, packets_per_flow: int) -> float:
    rng = DeterministicRng(78)
    nat = PersonaNat(pool=list(range(1000, 1064)), rng=rng)
    demux = FlowDemuxer()
    for f in range(flows):
        for p in range(packets_per_flow):
            packet = PersonaPacket(
                src_addr=5, dst_addr=9, src_port=2000 + f, dst_port=80, payload=bytes([p])
            )
            demux.receive(nat.process(packet))
    return demux.demux_accuracy(true_flow_count=flows)


def run(*, count: int = 400, quiet: bool = False) -> E7Result:
    apna_pps = _measure_apna(count)
    apip_pps, apip_msgs, hole = _measure_apip(count)
    aip_pps = _measure_aip(count)
    ipv4_pps = _measure_ipv4(count)
    persona_accuracy = _measure_persona(flows=10, packets_per_flow=20)

    result = E7Result(
        apna_pps=apna_pps,
        apip_pps=apip_pps,
        aip_pps=aip_pps,
        ipv4_pps=ipv4_pps,
        apip_msgs_per_packet=apip_msgs,
        apna_msgs_per_packet=0.0,
        apip_hole_packets=hole,
        persona_demux_accuracy=persona_accuracy,
    )
    if not quiet:
        report(result)
    return result


def report(result: E7Result) -> None:
    print_header("E7: baseline comparison", "paper Section IX")
    rows = [
        ("APNA (BR egress)", f"{result.apna_pps:,.0f}", f"{result.apna_msgs_per_packet:.1f}"),
        ("APIP (verify path)", f"{result.apip_pps:,.0f}", f"{result.apip_msgs_per_packet:.1f}"),
        ("AIP (first-pkt verify)", f"{result.aip_pps:,.0f}", "0.0"),
        ("plain IPv4", f"{result.ipv4_pps:,.0f}", "0.0"),
    ]
    print(format_table(("system", "packets/s (this machine)", "3rd-party msgs/pkt"), rows))
    print()
    print(format_table(
        ("system", "per-pkt accountability", "host privacy", "data privacy+PFS", "shutoff"),
        PROPERTY_MATRIX,
    ))
    print(
        f"\nAPIP whitelisting hole: {result.apip_hole_packets}/16 unbriefed packets "
        "passed verifiers on whitelisted flows (APNA: impossible, every packet MAC'd)"
    )
    print(
        f"Persona flow-demux accuracy at the receiver: "
        f"{result.persona_demux_accuracy:.2f} (APNA: 1.00 — EphIDs are stable per flow)"
    )
    verdict = "HOLDS" if result.claims_hold else "FAILS"
    print(f"shape claim (paper's criticisms of APIP/Persona are real): {verdict}")


if __name__ == "__main__":
    run()
