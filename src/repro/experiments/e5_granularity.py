"""E5 — EphID granularity ablation (paper Section VIII-A).

The paper describes four granularities qualitatively; this experiment
quantifies the trade-off triangle for a fixed workload (one host, F
flows, P packets per flow, A applications):

* issuance load on the MS (EphID requests),
* sender-flow linkability (fraction of same-host flow pairs an observer
  can link from headers alone),
* shutoff blast radius (how many flows die when one EphID is revoked).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import FlowLinker
from ..core.granularity import FlowKey, make_policy
from ..metrics import format_table
from .common import build_bench_world, print_header

PAPER_EXPECTATION = {
    "per-host": dict(linkability="total", blast="all flows"),
    "per-application": dict(linkability="per app", blast="app's flows"),
    "per-flow": dict(linkability="none", blast="one flow"),
    "per-packet": dict(linkability="none", blast="none (per packet)"),
}


@dataclass
class PolicyPoint:
    policy: str
    ms_requests: int
    linkage_score: float
    blast_radius_flows: int
    packets: int


@dataclass
class E5Result:
    points: list[PolicyPoint]
    flows: int

    def by_name(self, name: str) -> PolicyPoint:
        return next(p for p in self.points if p.policy == name)

    @property
    def ordering_holds(self) -> bool:
        """Requests: host <= app <= flow <= packet; privacy the reverse."""
        host = self.by_name("per-host")
        app = self.by_name("per-application")
        flow = self.by_name("per-flow")
        packet = self.by_name("per-packet")
        requests_ordered = (
            host.ms_requests <= app.ms_requests <= flow.ms_requests < packet.ms_requests
        )
        linkage_ordered = (
            host.linkage_score >= app.linkage_score > flow.linkage_score
            and flow.linkage_score == packet.linkage_score == 0.0
        )
        blast_ordered = (
            host.blast_radius_flows
            >= app.blast_radius_flows
            >= flow.blast_radius_flows
            >= packet.blast_radius_flows
        )
        return requests_ordered and linkage_ordered and blast_ordered


def run(
    *,
    flows: int = 12,
    packets_per_flow: int = 4,
    applications: int = 3,
    quiet: bool = False,
) -> E5Result:
    world = build_bench_world(seed=5)
    host = world.hosts_a[0]
    clock = world.network.scheduler.clock()

    points = []
    for name in ("per-host", "per-application", "per-flow", "per-packet"):
        policy = make_policy(
            name,
            lambda flags, lifetime: host.acquire_ephid_direct(flags, lifetime),
            clock,
        )
        linker = FlowLinker()
        flow_sources: dict[int, set[bytes]] = {}
        total_packets = 0
        for f in range(flows):
            flow = FlowKey(200, bytes([f]) * 16, 1000 + f, 443)
            app = f"app-{f % applications}"
            sources: set[bytes] = set()
            for _p in range(packets_per_flow):
                owned = policy.ephid_for(flow=flow, app=app)
                sources.add(owned.ephid)
                total_packets += 1
            flow_sources[f] = sources
            # One observation per flow for pair-linkability scoring.
            linker.observe(next(iter(sources)), true_host=1)

        # Blast radius: revoke the EphID used by flow 0; count flows that
        # share it (fate-sharing, Section III-B).
        victim = next(iter(flow_sources[0]))
        blast = sum(1 for sources in flow_sources.values() if victim in sources)
        if name == "per-packet":
            # Only a single packet dies, never a whole flow.
            blast = 0

        points.append(
            PolicyPoint(
                policy=name,
                ms_requests=policy.requests_made,
                linkage_score=linker.linkage_score(),
                blast_radius_flows=blast,
                packets=total_packets,
            )
        )
    result = E5Result(points=points, flows=flows)
    if not quiet:
        report(result)
    return result


def report(result: E5Result) -> None:
    print_header("E5: EphID granularity ablation", "paper Section VIII-A")
    rows = [
        (
            p.policy,
            p.ms_requests,
            f"{p.linkage_score:.2f}",
            f"{p.blast_radius_flows}/{result.flows}",
            PAPER_EXPECTATION[p.policy]["linkability"],
            PAPER_EXPECTATION[p.policy]["blast"],
        )
        for p in result.points
    ]
    print(
        format_table(
            (
                "policy",
                "MS requests",
                "linkability",
                "shutoff blast",
                "paper: linkability",
                "paper: blast",
            ),
            rows,
        )
    )
    verdict = "HOLDS" if result.ordering_holds else "FAILS"
    print(f"\nshape claim (privacy/cost/blast trade-off ordering): {verdict}")


if __name__ == "__main__":
    run()
