"""E12 — In-network replay detection (paper Section VIII-D).

The paper adds a header nonce so destinations can discard replays, and
leaves in-network filtering as future work because it "should not affect
routers' forwarding performance".  This experiment evaluates the
rotating-Bloom-filter design of :mod:`repro.core.replay_filter` against
exactly that bar:

1. effectiveness — replayed packets die at the source AS border router,
   before they consume inter-domain bandwidth;
2. forwarding cost — egress pipeline throughput with and without the
   filter;
3. memory/accuracy trade-off — false-positive probability as a function
   of filter size for a border-router-scale packet window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.border_router import DropReason
from ..core.config import ApnaConfig
from ..core.replay_filter import BloomFilter, RotatingReplayFilter
from ..metrics import format_table, time_loop
from ..wire.apna import Endpoint
from .common import build_bench_world, print_header


@dataclass
class E12Result:
    replayed: int
    caught_at_source: int
    egress_us_without: float
    egress_us_with: float
    fp_rows: list[tuple[int, int, float]]  # (bits, KiB, fp probability)

    @property
    def detection_complete(self) -> bool:
        return self.caught_at_source == self.replayed

    @property
    def overhead_fraction(self) -> float:
        if self.egress_us_without == 0:
            return 0.0
        return (self.egress_us_with - self.egress_us_without) / self.egress_us_without

    @property
    def overhead_negligible(self) -> bool:
        """The paper's bar: replay detection must not hurt forwarding."""
        return self.overhead_fraction < 0.15


def run(
    *,
    packets: int = 400,
    replay_factor: int = 3,
    iterations: int = 300,
    window_packets: int = 90_000,
    quiet: bool = False,
) -> E12Result:
    # -- 1. effectiveness ------------------------------------------------
    config = ApnaConfig(
        replay_protection=True,
        in_network_replay_filter=True,
        replay_filter_bits=1 << 20,
    )
    world = build_bench_world(seed=12, hosts_per_as=1, config=config)
    alice = world.hosts_a[0]
    bob = world.hosts_b[0]
    owned = alice.acquire_ephid_direct()
    peer = bob.acquire_ephid_direct()
    br = world.as_a.br

    originals = [
        alice.stack.make_packet(
            owned.ephid, Endpoint(world.as_b.aid, peer.ephid), b"data", nonce=n
        )
        for n in range(1, packets + 1)
    ]
    for packet in originals:
        verdict = br.process_outgoing(packet)
        assert not verdict.dropped

    replayed = 0
    caught = 0
    for packet in originals * (replay_factor - 1):
        replayed += 1
        verdict = br.process_outgoing(packet)
        if verdict.dropped and verdict.reason is DropReason.REPLAYED:
            caught += 1

    # -- 2. forwarding cost ----------------------------------------------
    plain_world = build_bench_world(
        seed=12, hosts_per_as=1, config=ApnaConfig(replay_protection=True)
    )
    p_alice = plain_world.hosts_a[0]
    p_bob = plain_world.hosts_b[0]
    p_owned = p_alice.acquire_ephid_direct()
    p_peer = p_bob.acquire_ephid_direct()

    state = {"plain": 0, "filtered": 1_000_000}

    peer_ep_plain = Endpoint(plain_world.as_b.aid, p_peer.ephid)
    peer_ep = Endpoint(world.as_b.aid, peer.ephid)

    def forward_plain():
        state["plain"] += 1
        packet = p_alice.stack.make_packet(
            p_owned.ephid, peer_ep_plain, b"x" * 512, nonce=state["plain"]
        )
        plain_world.as_a.br.process_outgoing(packet)

    def forward_filtered():
        state["filtered"] += 1  # fresh nonce range, no replays
        packet = alice.stack.make_packet(
            owned.ephid, peer_ep, b"x" * 512, nonce=state["filtered"]
        )
        br.process_outgoing(packet)

    # Interleave the two arms in alternating batches so that transient
    # background load perturbs both equally (a sequential A/B turns any
    # load spike into a phantom filter cost).
    batches = 20
    per_batch = max(1, iterations // batches)
    seconds_without = 0.0
    seconds_with = 0.0
    for _ in range(batches):
        seconds_without += time_loop(forward_plain, repeat=per_batch)
        seconds_with += time_loop(forward_filtered, repeat=per_batch)
    total = batches * per_batch
    egress_without = seconds_without / total * 1e6
    egress_with = seconds_with / total * 1e6

    # -- 3. memory/accuracy trade-off -------------------------------------
    fp_rows = []
    for bits_log2 in (16, 18, 20, 22):
        bloom = BloomFilter(1 << bits_log2, hashes=4)
        fp = bloom.fp_probability(window_packets)
        fp_rows.append((bits_log2, (1 << bits_log2) // 8 // 1024, fp))

    result = E12Result(
        replayed=replayed,
        caught_at_source=caught,
        egress_us_without=egress_without,
        egress_us_with=egress_with,
        fp_rows=fp_rows,
    )
    if not quiet:
        report(result)
    return result


def report(result: E12Result) -> None:
    print_header("E12: in-network replay detection", "paper Section VIII-D")
    print(
        f"replayed copies injected at the source AS: {result.replayed}; "
        f"caught at the border router: {result.caught_at_source}"
    )
    print(
        f"egress pipeline: {result.egress_us_without:.1f} us/pkt without filter, "
        f"{result.egress_us_with:.1f} us/pkt with filter "
        f"({result.overhead_fraction:+.1%})"
    )
    print()
    rows = [
        (f"2^{bits}", f"{kib} KiB/gen", f"{fp:.2e}")
        for bits, kib, fp in result.fp_rows
    ]
    print(
        format_table(
            ("filter bits", "memory", "FP probability @ 90k pkts/window"), rows
        )
    )
    detection = "HOLDS" if result.detection_complete else "FAILS"
    print(f"\nshape claim (replays are filtered near the replay location): {detection}")
    overhead = "HOLDS" if result.overhead_negligible else "FAILS"
    print(
        "shape claim (in-network replay detection without affecting "
        f"forwarding performance): {overhead}"
    )


if __name__ == "__main__":
    run()
