"""E6 — Revocation-list management (paper Section VIII-G2).

The paper proposes two mechanisms to keep the border routers'
``revoked_ids`` list small: (1) prune entries whose EphIDs have expired
("the expired EphIDs can be removed"), and (2) revoke the HID of a host
that accumulates too many revocations.  This experiment drives a
revocation churn workload and measures list growth with and without
pruning, plus the HID-escalation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.revocation import RevocationList, RevocationPolicy
from ..crypto.rng import DeterministicRng
from ..metrics import format_table
from .common import print_header


@dataclass
class E6Result:
    times: list[float]
    pruned_sizes: list[int]
    unpruned_sizes: list[int]
    hids_revoked: int
    total_revocations: int

    @property
    def pruning_wins(self) -> bool:
        """Pruned list stays bounded while the unpruned list grows ~linearly."""
        return (
            self.pruned_sizes[-1] < self.unpruned_sizes[-1] / 4
            and max(self.pruned_sizes) < self.unpruned_sizes[-1]
        )


def run(
    *,
    duration: float = 7200.0,
    revocations_per_second: float = 2.0,
    ephid_lifetime: float = 900.0,
    threshold: int = 32,
    hosts: int = 64,
    sample_every: float = 300.0,
    quiet: bool = False,
) -> E6Result:
    rng = DeterministicRng(66)
    pruned = RevocationList(auto_prune=True)
    unpruned = RevocationList(auto_prune=False)
    policy = RevocationPolicy(threshold)

    times: list[float] = []
    pruned_sizes: list[int] = []
    unpruned_sizes: list[int] = []

    total = 0
    now = 0.0
    next_sample = 0.0
    interval = 1.0 / revocations_per_second
    while now < duration:
        # A shutoff lands against a random host's EphID.
        ephid = rng.read(16)
        exp_time = now + ephid_lifetime * (0.25 + rng.uniform())
        pruned.add(ephid, exp_time)
        pruned.maybe_prune(now)
        unpruned.add(ephid, exp_time)
        policy.record(rng.randint(hosts))
        total += 1
        if now >= next_sample:
            times.append(now)
            pruned_sizes.append(len(pruned))
            unpruned_sizes.append(len(unpruned))
            next_sample += sample_every
        now += interval

    result = E6Result(
        times=times,
        pruned_sizes=pruned_sizes,
        unpruned_sizes=unpruned_sizes,
        hids_revoked=len(policy.hids_revoked),
        total_revocations=total,
    )
    if not quiet:
        report(result)
    return result


def report(result: E6Result) -> None:
    print_header("E6: revocation-list management", "paper Section VIII-G2")
    step = max(1, len(result.times) // 12)
    rows = [
        (f"{t:,.0f}", p, u)
        for t, p, u in zip(
            result.times[::step], result.pruned_sizes[::step], result.unpruned_sizes[::step]
        )
    ]
    print(format_table(("time (s)", "pruned list", "unpruned list"), rows))
    print(
        f"\n{result.total_revocations:,} revocations processed; "
        f"{result.hids_revoked} HIDs revoked by the threshold policy"
    )
    verdict = "HOLDS" if result.pruning_wins else "FAILS"
    print(
        "shape claim (expiry pruning keeps the border-router list bounded "
        f"while the naive list grows without bound): {verdict}"
    )


if __name__ == "__main__":
    run()
