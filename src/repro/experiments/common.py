"""Shared scaffolding for the experiment runners (E1-E15)."""

from __future__ import annotations

from ..core.config import ApnaConfig
from ..topology import World, WorldBuilder


def build_bench_world(
    *,
    seed: int = 1,
    hosts_per_as: int = 1,
    config: ApnaConfig | None = None,
    latency: float = 0.010,
    access_latency: float = 0.001,
) -> World:
    """A deterministic two-AS world sized for benchmarking.

    Built through the unified :class:`~repro.topology.WorldBuilder`; the
    returned world additionally carries ``hosts_a`` / ``hosts_b`` lists
    (the bootstrapped hosts per side) for the experiments' convenience.
    """
    builder = (
        WorldBuilder(seed=seed, config=config)
        .asys("a", aid=100)
        .asys("b", aid=200)
        .link("a", "b", latency=latency, bandwidth=1e10)
    )
    for i in range(hosts_per_as):
        builder.host(f"a{i}", at="a", latency=access_latency)
        builder.host(f"b{i}", at="b", latency=access_latency)
    world = builder.build()
    world.hosts_a = [world.hosts[f"a{i}"] for i in range(hosts_per_as)]
    world.hosts_b = [world.hosts[f"b{i}"] for i in range(hosts_per_as)]
    return world


def print_header(title: str, paper_reference: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print(f"(reproduces {paper_reference})")
    print("=" * 72)
