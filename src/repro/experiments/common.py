"""Shared scaffolding for the experiment runners (E1-E10)."""

from __future__ import annotations

from types import SimpleNamespace

from ..core.autonomous_system import ApnaAutonomousSystem
from ..core.config import ApnaConfig
from ..core.rpki import RpkiDirectory, TrustAnchor
from ..crypto.rng import DeterministicRng
from ..netsim import Network


def build_bench_world(
    *,
    seed: int = 1,
    hosts_per_as: int = 1,
    config: ApnaConfig | None = None,
    latency: float = 0.010,
    access_latency: float = 0.001,
) -> SimpleNamespace:
    """A deterministic two-AS world sized for benchmarking."""
    rng = DeterministicRng(seed)
    network = Network()
    config = config or ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    as_a = ApnaAutonomousSystem(100, network, rpki, anchor, config=config, rng=rng)
    as_b = ApnaAutonomousSystem(200, network, rpki, anchor, config=config, rng=rng)
    as_a.connect_to(as_b, latency=latency, bandwidth=1e10)
    hosts_a = []
    hosts_b = []
    for i in range(hosts_per_as):
        host = as_a.attach_host(f"a{i}", latency=access_latency)
        host.bootstrap()
        hosts_a.append(host)
        host = as_b.attach_host(f"b{i}", latency=access_latency)
        host.bootstrap()
        hosts_b.append(host)
    network.compute_routes()
    return SimpleNamespace(
        rng=rng,
        network=network,
        anchor=anchor,
        rpki=rpki,
        as_a=as_a,
        as_b=as_b,
        hosts_a=hosts_a,
        hosts_b=hosts_b,
        config=config,
    )


def print_header(title: str, paper_reference: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print(f"(reproduces {paper_reference})")
    print("=" * 72)
