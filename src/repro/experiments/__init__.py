"""Runnable reproductions of every paper artifact.

Each ``eN_*`` module regenerates one table/figure/claim of the paper
(the full index lives in DESIGN.md; measured-vs-paper numbers in
EXPERIMENTS.md).  Run one with ``python -m repro.experiments.eN_name``
or all of them with ``python -m repro.experiments``.

==== ==================================================================
E1   §V-A3 EphID Management Server performance
E2/3 Fig. 8(a)/(b) border-router forwarding throughput
E4   §VII-C connection-establishment latency
E5   §VIII-A EphID granularity ablation
E6   §VIII-G2 revocation-list management
E7   §IX baseline comparison (APIP, AIP, Persona, plain IP)
E8   Fig. 7 / §VII-D header & encapsulation overhead
E9   crypto micro-costs (pytest-benchmark only: bench_crypto.py)
E10  §VI security analysis, executed
E11  §VIII-C path validation & the strengthened shutoff
E12  §VIII-D in-network replay detection (future work, built)
E13  §VIII-E APNA-as-a-Service
E14  §VIII-G1 EphID expiration-time policy
E15  §VII-A receive-only EphIDs vs shutoff-DoS
==== ==================================================================
"""

#: Module names in run order, consumed by ``python -m repro.experiments``.
ALL_RUNNERS = [
    "e1_ms_performance",
    "e2_figure8",
    "e4_latency",
    "e5_granularity",
    "e6_revocation",
    "e7_baselines",
    "e8_overhead",
    "e10_security",
    "e11_pathval",
    "e12_replay",
    "e13_aaas",
    "e14_lifetimes",
    "e15_receive_only",
]
