"""E4 — Connection-establishment latency (paper Section VII-C).

The paper's accounting:

* host<->host: 1 RTT before communication, eliminable to 0 RTT by
  encrypting data on the very first packet;
* client<->server via a receive-only EphID from DNS: 1.5 RTT, reducible
  to 0.5 RTT (no data on the first packet) or 0 RTT (0-RTT data against
  the receive-only key, at the cost of first-packet PFS).

Reproduction: measured on the simulated topology in virtual time.  We
report time-to-first-application-byte (TTFB, when the server first holds
client data) in units of RTT; the *establishment overhead* is TTFB minus
the unavoidable 0.5 RTT one-way propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dns import DnsClient, DnsServer, DnsZone, publish_service
from ..metrics import format_table
from .common import build_bench_world, print_header

# Per scenario: (paper's number, which quantity it counts).  The paper
# quotes host-host as "one RTT before any communication can take place"
# (a wait, i.e. TTFB minus the 0.5 RTT propagation floor) but quotes the
# client-server flow as "requires 1.5 RTTs" (a TTFB), with its reduced
# variants again counted as penalties over the floor.
PAPER_NUMBERS = {
    "host-host, no early data": (1.0, "wait"),
    "host-host, 0-RTT data": (0.0, "wait"),
    "client-server, data after accept": (1.5, "ttfb"),
    "client-server, no first-packet data": (0.5, "wait"),
    "client-server, 0-RTT data": (0.0, "wait"),
}


@dataclass
class LatencyPoint:
    scenario: str
    ttfb_rtt: float
    paper_value: float
    paper_metric: str

    @property
    def measured_value(self) -> float:
        return self.ttfb_rtt if self.paper_metric == "ttfb" else self.ttfb_rtt - 0.5

    @property
    def matches_paper(self) -> bool:
        return abs(self.measured_value - self.paper_value) < 0.25


@dataclass
class E4Result:
    rtt: float
    points: list[LatencyPoint]

    @property
    def all_match(self) -> bool:
        return all(p.matches_paper for p in self.points)


def _world():
    # Dominant inter-AS latency makes RTT accounting crisp.
    return build_bench_world(seed=4, latency=0.050, access_latency=0.0001)


def _measure_rtt(world) -> float:
    """Ping RTT between the two hosts (the RTT unit for everything else)."""
    alice, bob = world.hosts_a[0], world.hosts_b[0]
    bob_owned = bob.acquire_ephid_direct()
    from ..wire.apna import Endpoint

    rtts = []
    alice.ping(Endpoint(200, bob_owned.ephid), callback=rtts.append)
    world.network.run()
    return rtts[0]


def _host_host(early: bool) -> float:
    """TTFB for direct host<->host establishment."""
    world = _world()
    rtt = _measure_rtt(world)
    alice, bob = world.hosts_a[0], world.hosts_b[0]
    bob_owned = bob.acquire_ephid_direct()
    arrivals: list[float] = []
    bob.listen(80, lambda s, t, d: arrivals.append(world.network.now))

    start = world.network.now
    if early:
        alice.connect(bob_owned.cert, early_data=b"request", dst_port=80)
    else:
        # Without first-packet data the initiator waits a full RTT (its
        # request reaches the peer, the peer's first data packet could
        # come back) before ITS first data goes out; model the paper's
        # accounting by sending data one RTT after the request.
        session = alice.connect(bob_owned.cert)

        def send_data():
            alice.send_data(session, b"request", dst_port=80)

        world.network.scheduler.schedule(rtt, send_data)
    world.network.run()
    return (arrivals[0] - start) / rtt


def _client_server(mode: str) -> float:
    """TTFB through the Section VII-A receive-only flow."""
    world = _world()
    rtt = _measure_rtt(world)
    zone = DnsZone(world.rng)
    DnsServer(world.as_a, zone)
    DnsServer(world.as_b, zone)
    server = world.hosts_b[0]
    record = publish_service(server, zone, "svc.example")
    arrivals: list[float] = []
    server.listen(80, lambda s, t, d: arrivals.append(world.network.now))
    client = world.hosts_a[0]

    start = world.network.now
    if mode == "0rtt":
        client.connect(record.cert, early_data=b"request", dst_port=80)
    elif mode == "after-accept":
        # Paper's 1.5 RTT: request (0.5) + accept (0.5) + data (0.5).
        def on_accept(session):
            client.send_data(session, b"request", dst_port=80)

        client.connect(record.cert, on_accept=on_accept)
    elif mode == "half-rtt":
        # Paper's 0.5 RTT penalty: the client sends NO data on the first
        # packet (preserving first-packet forward secrecy); the first
        # application bytes are the server's, riding right behind the
        # accept under the serving-EphID session key.  They reach the
        # client at 1.0 RTT — a 0.5 RTT penalty over the 0-RTT floor.
        client_arrivals: list[float] = []
        client.listen(8080, lambda s, t, d: client_arrivals.append(world.network.now))

        def server_speaks_first(session):
            server.send_data(session, b"server banner", dst_port=8080)

        server.on_connection = server_speaks_first
        client.connect(record.cert)
        world.network.run()
        return (client_arrivals[0] - start) / rtt
    else:
        raise ValueError(mode)
    world.network.run()
    return (arrivals[0] - start) / rtt


def run(*, quiet: bool = False) -> E4Result:
    world = _world()
    rtt = _measure_rtt(world)

    scenarios = [
        ("host-host, no early data", _host_host(early=False)),
        ("host-host, 0-RTT data", _host_host(early=True)),
        ("client-server, data after accept", _client_server("after-accept")),
        ("client-server, no first-packet data", _client_server("half-rtt")),
        ("client-server, 0-RTT data", _client_server("0rtt")),
    ]
    points = [
        LatencyPoint(
            scenario=name,
            ttfb_rtt=ttfb,
            paper_value=PAPER_NUMBERS[name][0],
            paper_metric=PAPER_NUMBERS[name][1],
        )
        for name, ttfb in scenarios
    ]
    result = E4Result(rtt=rtt, points=points)
    if not quiet:
        report(result)
    return result


def report(result: E4Result) -> None:
    print_header("E4: connection-establishment latency", "paper Section VII-C")
    print(f"measured base RTT: {1e3 * result.rtt:.1f} ms (simulated topology)")
    rows = [
        (
            p.scenario,
            f"{p.ttfb_rtt:.2f}",
            f"{p.measured_value:.2f} ({p.paper_metric})",
            f"{p.paper_value:.1f}",
            "yes" if p.matches_paper else "NO",
        )
        for p in result.points
    ]
    print(
        format_table(
            ("scenario", "TTFB (RTT)", "measured (paper's metric)", "paper", "matches"),
            rows,
        )
    )
    verdict = "HOLDS" if result.all_match else "FAILS"
    print(f"\nshape claim (establishment overhead 1/0 and 1.5/0.5/0 RTT): {verdict}")


if __name__ == "__main__":
    run()
