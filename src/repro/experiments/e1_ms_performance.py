"""E1 — Management Service performance (paper Section V-A3).

Paper setup: a 24-hour HTTP(S) trace from a national research network
(1,266,598 hosts, peak 3,888 new sessions/s) against an MS on a 4-core
desktop: 500,000 EphID requests in 6.9 s = 13.7 us/EphID = 72.8k
EphIDs/s, an 18.7x headroom over peak demand.

This reproduction scales the trace down (pure-Python crypto is orders of
magnitude slower than AES-NI + C ed25519) and measures the *same
quantities* over the full Fig. 3 request path, single-process and with
the paper's share-nothing 4-worker parallelisation.  The claim under
test is the shape: EphID generation rate comfortably exceeds the peak
per-flow demand of a trace with that many hosts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import Timer, format_table, rate
from ..sharding import run_issuance_shards, split_requests
from ..workload import TraceConfig, TraceGenerator, analyze
from .common import build_bench_world, print_header

PAPER = {
    "requests": 500_000,
    "total_seconds": 6.9,
    "us_per_ephid": 13.7,
    "ephids_per_sec": 72_800,
    "peak_demand": 3_888,
    "hosts": 1_266_598,
    "headroom": 72_800 / 3_888,
}


@dataclass
class E1Result:
    hosts: int
    peak_demand: float
    requests: int
    single_seconds: float
    single_rate: float
    parallel_seconds: float
    parallel_rate: float
    workers: int

    @property
    def headroom(self) -> float:
        return self.parallel_rate / self.peak_demand if self.peak_demand else float("inf")

    @property
    def us_per_ephid(self) -> float:
        return 1e6 * self.parallel_seconds / self.requests


def measure_issuance_rate(requests: int, *, seed: int = 7) -> float:
    """Sequential full-path (Fig. 3) issuance time for ``requests``."""
    world = build_bench_world(seed=seed)
    host = world.hosts_a[0]
    ms = world.as_a.ms
    ctrl = host.stack.control_ephid
    assert ctrl is not None
    prepared = [host.stack.build_ephid_request() for _ in range(requests)]
    with Timer() as timer:
        for _keypair, sealed in prepared:
            ms.handle_request(ctrl, sealed)
    return timer.elapsed


def measure_parallel_rate(
    requests: int, workers: int, *, reply_timeout: "float | None" = None
) -> float:
    """Share-nothing parallel issuance (the paper's 4-process setup).

    Each worker runs an independent MS instance on the shared
    :mod:`repro.sharding` process machinery; the paper notes the
    generation "does not require any coordination between the processes".
    The full request count is distributed exactly — a non-divisible load
    spreads its remainder over the first workers rather than dropping it,
    so a rate computed over ``requests`` is honest.  Workers time only
    their issuance loops (setup excluded, as in the sequential
    measurement); the effective duration for ``requests`` total is the
    slowest worker's loop.  ``reply_timeout`` bounds each worker's wait
    (default: the issuance runner's generous
    :data:`~repro.sharding.issuance.DEFAULT_REPLY_TIMEOUT`).
    """
    counts = split_requests(requests, workers)
    if reply_timeout is None:
        results = run_issuance_shards(counts)
    else:
        results = run_issuance_shards(counts, reply_timeout=reply_timeout)
    done = sum(count for count, _ in results)
    if done != requests:
        raise RuntimeError(
            f"issuance shards performed {done} requests, expected {requests}"
        )
    return max(elapsed for _, elapsed in results)


def run(
    *,
    requests: int = 400,
    trace_hosts: int = 12_666,
    workers: int | None = None,
    quiet: bool = False,
) -> E1Result:
    if workers is None:
        # The paper used 4 processes on a 4-core desktop; use what we have.
        import os

        workers = max(2, min(4, os.cpu_count() or 1))
    # 1) The trace side: peak per-flow EphID demand.
    trace_config = TraceConfig(hosts=trace_hosts, duration=86_400.0)
    trace = TraceGenerator(trace_config).generate_arrays()
    stats = analyze(trace, duration=trace_config.duration)

    # 2) The MS side.
    single_seconds = measure_issuance_rate(requests)
    parallel_seconds = measure_parallel_rate(requests, workers)

    result = E1Result(
        hosts=stats.unique_hosts,
        peak_demand=stats.peak_sessions_per_second,
        requests=requests,
        single_seconds=single_seconds,
        single_rate=rate(requests, single_seconds),
        parallel_seconds=parallel_seconds,
        parallel_rate=rate(requests, parallel_seconds),
        workers=workers,
    )
    if not quiet:
        report(result, stats)
    return result


def report(result: E1Result, stats) -> None:
    print_header(
        "E1: EphID Management Server performance", "paper Section V-A3"
    )
    print(f"trace: {stats.summary()}")
    rows = [
        (
            "paper (AES-NI, 4 cores)",
            f"{PAPER['hosts']:,}",
            f"{PAPER['peak_demand']:,}",
            f"{PAPER['requests']:,}",
            f"{PAPER['us_per_ephid']:.1f}",
            f"{PAPER['ephids_per_sec']:,}",
            f"{PAPER['headroom']:.1f}x",
        ),
        (
            f"repro 1 worker",
            f"{result.hosts:,}",
            f"{result.peak_demand:,.0f}",
            f"{result.requests:,}",
            f"{1e6 * result.single_seconds / result.requests:,.1f}",
            f"{result.single_rate:,.0f}",
            f"{result.single_rate / result.peak_demand:.1f}x",
        ),
        (
            f"repro {result.workers} workers",
            f"{result.hosts:,}",
            f"{result.peak_demand:,.0f}",
            f"{result.requests:,}",
            f"{result.us_per_ephid:,.1f}",
            f"{result.parallel_rate:,.0f}",
            f"{result.headroom:.1f}x",
        ),
    ]
    print(
        format_table(
            (
                "setup",
                "hosts",
                "peak demand/s",
                "requests",
                "us/EphID",
                "EphIDs/s",
                "headroom",
            ),
            rows,
        )
    )
    verdict = "HOLDS" if result.headroom > 1.0 else "FAILS"
    print(
        f"\nshape claim (issuance rate exceeds peak per-flow demand): {verdict} "
        f"({result.headroom:.1f}x vs paper's {PAPER['headroom']:.1f}x)"
    )


if __name__ == "__main__":
    run()
