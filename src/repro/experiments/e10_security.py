"""E10 — The Section VI security analysis, executed.

Runs every adversary of the paper's threat model against a live two-AS
deployment and reports a pass/fail matrix (pass = the attack failed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import (
    EphIdMinter,
    EphIdSpoofer,
    FlowLinker,
    IdentityMinter,
    MitmAs,
    PfsBreaker,
    ShutoffAbuser,
)
from ..core.granularity import FlowKey, make_policy
from ..core.keys import SigningKeyPair
from ..core.session import Session
from ..metrics import format_table
from ..wire.apna import ApnaPacket, Endpoint
from .common import build_bench_world, print_header


@dataclass
class AttackOutcome:
    attack: str
    paper_section: str
    attempts: int
    successes: int

    @property
    def defended(self) -> bool:
        return self.successes == 0


@dataclass
class E10Result:
    outcomes: list[AttackOutcome]
    per_flow_linkage: float
    per_host_linkage: float

    @property
    def all_defended(self) -> bool:
        return all(o.defended for o in self.outcomes)


def run(*, quiet: bool = False) -> E10Result:
    world = build_bench_world(seed=10)
    alice, bob = world.hosts_a[0], world.hosts_b[0]
    outcomes = []

    # VI-A: EphID spoofing.
    victim_ephid = alice.acquire_ephid_direct().ephid
    bob_owned = bob.acquire_ephid_direct()
    spoofer = EphIdSpoofer(world.as_a)
    for _ in range(50):
        spoofer.spoof(victim_ephid, Endpoint(200, bob_owned.ephid))
    outcomes.append(
        AttackOutcome("EphID spoofing", "VI-A", spoofer.attempts, spoofer.successes)
    )

    # VI-A: unauthorized EphID generation.
    minter = EphIdMinter(world.as_a)
    minter.mint_random(3000)
    minter.mint_malleated(victim_ephid)
    outcomes.append(
        AttackOutcome("EphID forgery/minting", "VI-A", minter.attempts, minter.accepted)
    )

    # VI-A: identity minting.
    id_minter = IdentityMinter(alice)
    live = id_minter.mint(rounds=6)
    outcomes.append(
        AttackOutcome("identity minting", "VI-A", 6, max(0, live - 1))
    )

    # VI-B: MitM certificate substitution (non-colluding AS).
    mitm = MitmAs(attacker_signer=SigningKeyPair.generate(world.rng))
    fresh_bob = bob.acquire_ephid_direct()
    for _ in range(10):
        mitm.attempt(alice, fresh_bob.cert, world.rng)
    outcomes.append(
        AttackOutcome("MitM cert substitution", "VI-B", mitm.intercepted, mitm.successes)
    )

    # VI-B: retrospective decryption (PFS).
    a_owned = alice.acquire_ephid_direct()
    session = Session(a_owned, fresh_bob.cert)
    sealed = session.seal(b"recorded")
    breaker = PfsBreaker()
    breaker.record(sealed)
    long_term = {
        "K-H alice": alice.stack.keys.secret,
        "K-H bob": bob.stack.keys.secret,
        "K-AS sig": world.as_a.keys.signing.secret,
        "K-AS dh": world.as_a.keys.exchange.secret,
        "kA": world.as_a.keys.secret.master,
    }
    pfs_broken = breaker.try_decrypt_with(
        a_owned.cert, fresh_bob.cert, long_term, sealed, session.key
    )
    outcomes.append(
        AttackOutcome("PFS break w/ long-term keys", "VI-B", len(long_term), int(pfs_broken))
    )

    # VI-C: shutoff abuse.
    abuser = ShutoffAbuser(world.as_a)
    legit = alice.stack.make_packet(
        a_owned.ephid, Endpoint(200, fresh_bob.cert.ephid), b"legit"
    )
    wrong_owner = bob.acquire_ephid_direct()
    abuser.attempt(bob.stack.build_shutoff_request(legit.to_wire(), wrong_owner))
    doctored = ApnaPacket(legit.header.with_mac(bytes(8)), b"rogue")
    abuser.attempt(bob.stack.build_shutoff_request(doctored.to_wire(), fresh_bob))
    outcomes.append(
        AttackOutcome("unauthorized shutoff", "VI-C", abuser.attempts, abuser.successes)
    )

    # II-B: sender-flow linkability under the two extreme policies.
    def linkage(policy_name: str) -> float:
        policy = make_policy(
            policy_name,
            lambda flags, lifetime: alice.acquire_ephid_direct(flags, lifetime),
            world.network.scheduler.clock(),
        )
        linker = FlowLinker()
        for i in range(10):
            flow = FlowKey(200, bytes([i]) * 16, 3000 + i, 443)
            linker.observe(policy.ephid_for(flow=flow).ephid, true_host=1)
        return linker.linkage_score()

    per_flow = linkage("per-flow")
    per_host = linkage("per-host")
    outcomes.append(
        AttackOutcome(
            "flow linking (per-flow EphIDs)", "II-B", 45, int(per_flow * 45)
        )
    )

    result = E10Result(
        outcomes=outcomes, per_flow_linkage=per_flow, per_host_linkage=per_host
    )
    if not quiet:
        report(result)
    return result


def report(result: E10Result) -> None:
    print_header("E10: security analysis, executed", "paper Section VI")
    rows = [
        (
            o.attack,
            o.paper_section,
            o.attempts,
            o.successes,
            "DEFENDED" if o.defended else "BROKEN",
        )
        for o in result.outcomes
    ]
    print(format_table(("attack", "paper §", "attempts", "successes", "verdict"), rows))
    print(
        f"\nlinkability: per-flow EphIDs {result.per_flow_linkage:.2f} "
        f"vs per-host {result.per_host_linkage:.2f} "
        "(the privacy knob of Section VIII-A)"
    )
    verdict = "HOLDS" if result.all_defended else "FAILS"
    print(f"shape claim (all Section VI attacks defeated): {verdict}")


if __name__ == "__main__":
    run()
