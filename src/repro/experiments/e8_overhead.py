"""E8 — Header and encapsulation overhead (paper Fig. 7 and Section VII-D).

The APNA header costs 48 bytes (56 with the replay nonce), plus the
GRE/IPv4 encapsulation of the incremental deployment (24 bytes) and the
AEAD tag + in-payload transport shim.  This experiment computes goodput
fractions across the Fig. 8 packet sizes against a plain IPv4+UDP stack,
making the privacy tax explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import format_table
from ..wire.apna import HEADER_SIZE, HEADER_SIZE_WITH_NONCE
from ..wire.gre import ENCAP_OVERHEAD
from ..wire.ipv4 import HEADER_SIZE as IPV4_HEADER_SIZE
from ..wire.transport import HEADER_SIZE as TRANSPORT_HEADER_SIZE
from ..workload.packets import PAPER_PACKET_SIZES
from .common import print_header

UDP_HEADER = 8
AEAD_TAG = 16
SESSION_SEQ = 8


@dataclass
class OverheadPoint:
    size: int
    ipv4_goodput: float
    apna_native_goodput: float
    apna_deployed_goodput: float  # with GRE/IPv4 encapsulation
    apna_nonce_goodput: float  # with the replay nonce


@dataclass
class E8Result:
    points: list[OverheadPoint]
    apna_fixed_overhead: int
    deployed_fixed_overhead: int

    @property
    def overhead_acceptable(self) -> bool:
        """At MTU-sized packets the deployed goodput stays above 90%."""
        largest = self.points[-1]
        return largest.apna_deployed_goodput > 0.90


def _goodput(total: int, overhead: int) -> float:
    if total <= overhead:
        return 0.0
    return (total - overhead) / total


def run(*, sizes: tuple[int, ...] = PAPER_PACKET_SIZES, quiet: bool = False) -> E8Result:
    ipv4_overhead = IPV4_HEADER_SIZE + UDP_HEADER
    apna_overhead = HEADER_SIZE + SESSION_SEQ + AEAD_TAG + TRANSPORT_HEADER_SIZE
    deployed_overhead = apna_overhead + ENCAP_OVERHEAD
    nonce_overhead = deployed_overhead + (HEADER_SIZE_WITH_NONCE - HEADER_SIZE)

    points = [
        OverheadPoint(
            size=size,
            ipv4_goodput=_goodput(size, ipv4_overhead),
            apna_native_goodput=_goodput(size, apna_overhead),
            apna_deployed_goodput=_goodput(size, deployed_overhead),
            apna_nonce_goodput=_goodput(size, nonce_overhead),
        )
        for size in sizes
    ]
    result = E8Result(
        points=points,
        apna_fixed_overhead=apna_overhead,
        deployed_fixed_overhead=deployed_overhead,
    )
    if not quiet:
        report(result)
    return result


def report(result: E8Result) -> None:
    print_header("E8: header & encapsulation overhead", "paper Fig. 7 + Section VII-D")
    print(
        f"APNA fixed overhead: {result.apna_fixed_overhead} B native "
        f"({HEADER_SIZE} header + {SESSION_SEQ} seq + {AEAD_TAG} tag + "
        f"{TRANSPORT_HEADER_SIZE} transport), "
        f"{result.deployed_fixed_overhead} B with GRE/IPv4 deployment"
    )
    rows = [
        (
            p.size,
            f"{100 * p.ipv4_goodput:.1f}%",
            f"{100 * p.apna_native_goodput:.1f}%",
            f"{100 * p.apna_deployed_goodput:.1f}%",
            f"{100 * p.apna_nonce_goodput:.1f}%",
        )
        for p in result.points
    ]
    print(
        format_table(
            ("size (B)", "IPv4+UDP", "APNA native", "APNA+GRE/IPv4", "+replay nonce"),
            rows,
        )
    )
    verdict = "HOLDS" if result.overhead_acceptable else "FAILS"
    print(f"\nshape claim (>90% goodput at MTU-size packets): {verdict}")


if __name__ == "__main__":
    run()
