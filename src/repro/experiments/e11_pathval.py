"""E11 — Path validation & the strengthened shutoff (paper Section VIII-C).

The paper: "there are proposals to encode the forwarding paths into the
packets (e.g., Packet Passport, ICING, OPT).  When such proposals are
combined with our architecture, the list of authorized entities can be
extended to include on-path ASes (or their routers), strengthening the
shut-off protocol."

Two measurements:

1. The data-plane cost of the combination — Passport stamping at the
   source AS and per-hop verification, plus OPT's chained PVF, as a
   function of path length.
2. The authorization matrix of the extended shutoff: who can now shut
   off a flow, and who still cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.autonomous_system import ApnaAutonomousSystem
from ..core.config import ApnaConfig
from ..core.rpki import RpkiDirectory, TrustAnchor
from ..crypto.rng import DeterministicRng
from ..metrics import format_table, time_loop
from ..netsim import Network
from ..pathval import (
    AsPairwiseKeys,
    OnPathShutoffRequest,
    OptSession,
    PassportStamper,
    PassportVerifier,
    upgrade_to_onpath,
)
from ..wire.apna import Endpoint
from .common import print_header


@dataclass
class E11Result:
    path_lengths: list[int]
    stamp_us: list[float]
    verify_us: list[float]
    opt_traverse_us: list[float]
    authorization: dict[str, str]  # requester -> outcome

    @property
    def extension_works(self) -> bool:
        """On-path ASes accepted, everything unauthorized still rejected."""
        return (
            self.authorization.get("recipient host") == "accepted"
            and self.authorization.get("on-path transit AS") == "accepted"
            and self.authorization.get("off-path AS") != "accepted"
            and self.authorization.get("on-path AS, rogue packet") != "accepted"
        )

    @property
    def stamping_scales_linearly(self) -> bool:
        """Stamp cost grows ~linearly with path length (one CMAC per AS)."""
        if len(self.stamp_us) < 2:
            return True
        per_as = [
            cost / length for cost, length in zip(self.stamp_us, self.path_lengths)
        ]
        return max(per_as) < 4 * min(per_as)


def build_chain(n_ases: int, *, seed: int = 111):
    rng = DeterministicRng(seed)
    network = Network()
    config = ApnaConfig()
    anchor = TrustAnchor(rng)
    rpki = RpkiDirectory(anchor.public_key, network.scheduler.clock())
    ases = [
        ApnaAutonomousSystem(
            100 * (i + 1), network, rpki, anchor, config=config, rng=rng
        )
        for i in range(n_ases)
    ]
    for left, right in zip(ases, ases[1:]):
        left.connect_to(right, latency=0.010)
    network.compute_routes()
    return network, rpki, ases


def run(
    *,
    path_lengths: tuple[int, ...] = (2, 4, 6, 8),
    iterations: int = 300,
    quiet: bool = False,
) -> E11Result:
    stamp_us: list[float] = []
    verify_us: list[float] = []
    opt_us: list[float] = []

    # -- 1. data-plane cost vs path length ------------------------------
    for length in path_lengths:
        network, rpki, ases = build_chain(length)
        source, last = ases[0], ases[-1]
        alice = source.attach_host("alice")
        bob = last.attach_host("bob")
        alice.bootstrap()
        bob.bootstrap()
        network.compute_routes()
        owned = alice.acquire_ephid_direct()
        peer = bob.acquire_ephid_direct()
        packet = alice.stack.make_packet(
            owned.ephid, Endpoint(last.aid, peer.ephid), b"x" * 512
        )
        downstream = [a.aid for a in ases[1:]]

        stamper = PassportStamper(
            AsPairwiseKeys(source.aid, source.keys.exchange, rpki)
        )
        stamp_us.append(
            time_loop(lambda: stamper.stamp(packet, downstream), repeat=iterations)
            / iterations
            * 1e6
        )

        transit = ases[1]
        verifier = PassportVerifier(
            AsPairwiseKeys(transit.aid, transit.keys.exchange, rpki)
        )
        passport = stamper.stamp(packet, downstream)
        verify_us.append(
            time_loop(lambda: verifier.verify(packet, passport), repeat=iterations)
            / iterations
            * 1e6
        )

        session = OptSession.for_endpoints(
            bytes(16), [a.keys.secret.master for a in ases]
        )
        opt_us.append(
            time_loop(lambda: session.traverse(packet), repeat=iterations)
            / iterations
            * 1e6
        )

    # -- 2. the authorization matrix ------------------------------------
    network, rpki, ases = build_chain(4)
    source, transit, offpath_neighbor, last = ases
    alice = source.attach_host("alice")
    bob = last.attach_host("bob")
    alice.bootstrap()
    bob.bootstrap()
    network.compute_routes()
    agent = upgrade_to_onpath(source)
    owned = alice.acquire_ephid_direct()
    peer = bob.acquire_ephid_direct()
    packet = alice.stack.make_packet(
        owned.ephid, Endpoint(last.aid, peer.ephid), b"unwanted"
    )
    stamper = PassportStamper(AsPairwiseKeys(source.aid, source.keys.exchange, rpki))
    passport = stamper.stamp(packet, [transit.aid, last.aid])

    authorization: dict[str, str] = {}

    request = bob.stack.build_shutoff_request(packet.to_wire(), peer)
    response = agent.handle_shutoff(request)
    authorization["recipient host"] = (
        "accepted" if response.accepted else response.reason
    )

    # Reset revocations between scenarios so each is judged independently.
    def fresh_packet():
        new_owned = alice.acquire_ephid_direct()
        new_packet = alice.stack.make_packet(
            new_owned.ephid, Endpoint(last.aid, peer.ephid), b"unwanted"
        )
        return new_owned, new_packet, stamper.stamp(new_packet, [transit.aid, last.aid])

    _owned2, packet2, passport2 = fresh_packet()
    onpath = OnPathShutoffRequest.build(
        packet2.to_wire(),
        transit.aid,
        passport2.mac_for(transit.aid),
        transit.keys.signing,
    )
    response = agent.handle_onpath_shutoff(onpath)
    authorization["on-path transit AS"] = (
        "accepted" if response.accepted else response.reason
    )

    # An AS that is not on the path has no stamp; it can only guess.
    _owned3, packet3, _passport3 = fresh_packet()
    offpath = OnPathShutoffRequest.build(
        packet3.to_wire(),
        offpath_neighbor.aid,
        b"\x00" * 8,
        offpath_neighbor.keys.signing,
    )
    response = agent.handle_onpath_shutoff(offpath)
    authorization["off-path AS"] = (
        "accepted" if response.accepted else response.reason
    )

    # An on-path AS fabricating traffic fails the kHA MAC check.
    from ..wire.apna import ApnaHeader, ApnaPacket

    rogue = ApnaPacket(
        ApnaHeader(source.aid, bytes(16), peer.ephid, last.aid), b"fabricated"
    )
    rogue_request = OnPathShutoffRequest.build(
        rogue.to_wire(),
        transit.aid,
        stamper.restamp_mac(rogue, transit.aid),
        transit.keys.signing,
    )
    response = agent.handle_onpath_shutoff(rogue_request)
    authorization["on-path AS, rogue packet"] = (
        "accepted" if response.accepted else response.reason
    )

    result = E11Result(
        path_lengths=list(path_lengths),
        stamp_us=stamp_us,
        verify_us=verify_us,
        opt_traverse_us=opt_us,
        authorization=authorization,
    )
    if not quiet:
        report(result)
    return result


def report(result: E11Result) -> None:
    print_header(
        "E11: path validation & strengthened shutoff", "paper Section VIII-C"
    )
    rows = [
        (length, f"{stamp:.1f}", f"{verify:.1f}", f"{opt:.1f}")
        for length, stamp, verify, opt in zip(
            result.path_lengths,
            result.stamp_us,
            result.verify_us,
            result.opt_traverse_us,
        )
    ]
    print(
        format_table(
            (
                "path length (ASes)",
                "passport stamp (us)",
                "per-hop verify (us)",
                "OPT full chain (us)",
            ),
            rows,
        )
    )
    print()
    print(
        format_table(
            ("shutoff requester", "outcome"),
            list(result.authorization.items()),
        )
    )
    verdict = "HOLDS" if result.extension_works else "FAILS"
    print(
        "\nshape claim (on-path ASes become authorized shutoff requesters, "
        f"everyone else stays unauthorized): {verdict}"
    )
    scaling = "HOLDS" if result.stamping_scales_linearly else "FAILS"
    print(f"shape claim (stamping cost ~ one symmetric MAC per on-path AS): {scaling}")


if __name__ == "__main__":
    run()
