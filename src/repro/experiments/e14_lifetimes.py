"""E14 — EphID expiration-time policy (paper Section VIII-G1).

"There are multiple factors to consider when deciding the expiration time
for EphIDs [...] it should be sufficiently long so that an EphID does not
expire before the communication that uses the EphID terminates.  At the
same time, it should be kept short so that EphID does not last long
beyond the end of the communication.  If EphIDs are used per flow, the
expiration time can be set to 15 minutes as 98% of the flows in the
Internet last less than 15 minutes.  Alternatively, the EphID Issuance
protocol can be extended to allow hosts to express their choice [...] an
AS may specify three categories (short-term, medium-term, long-term)."

This experiment draws flow durations from the synthetic trace (the same
dragonfly/tortoise mixture as E1) and scores every policy the paper
mentions on its own two axes:

* **renewals** — flows whose EphID expires mid-communication and must be
  re-issued (extra MS load, paper's "does not expire before ... ends");
* **exposure** — EphID validity lingering after the flow ends (paper's
  "does not last long beyond the end").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.config import ApnaConfig
from ..metrics import format_table
from ..workload.flows import TraceConfig, TraceGenerator
from .common import print_header


@dataclass
class PolicyScore:
    policy: str
    interrupted_fraction: float  # flows needing >= 1 renewal
    issuances_per_flow: float  # 1 + renewals
    mean_exposure_s: float  # validity lingering past the flow's end


@dataclass
class E14Result:
    scores: list[PolicyScore]
    paper_coverage_claim: float  # fraction of flows under 15 min

    def by_name(self, name: str) -> PolicyScore:
        return next(s for s in self.scores if s.policy == name)

    @property
    def fifteen_minutes_covers_most_flows(self) -> bool:
        """The paper's quoted statistic: ~98% of flows fit in 15 min."""
        return self.paper_coverage_claim >= 0.95

    @property
    def classes_beat_fixed(self) -> bool:
        """Lifetime classes cut exposure vs the long fixed lifetime while
        renewing less than the short one."""
        classes = self.by_name("three classes (VIII-G1)")
        long_fixed = self.by_name("fixed 3600 s")
        short_fixed = self.by_name("fixed 60 s")
        return (
            classes.mean_exposure_s < long_fixed.mean_exposure_s
            and classes.issuances_per_flow < short_fixed.issuances_per_flow
        )


def _score_fixed(durations: np.ndarray, lifetime: float, name: str) -> PolicyScore:
    issuances = np.ceil(durations / lifetime)
    exposure = issuances * lifetime - durations
    return PolicyScore(
        policy=name,
        interrupted_fraction=float(np.mean(issuances > 1)),
        issuances_per_flow=float(np.mean(issuances)),
        mean_exposure_s=float(np.mean(exposure)),
    )


def _score_classes(
    durations: np.ndarray, classes: tuple[float, ...], name: str
) -> PolicyScore:
    """Hosts pick the smallest class covering their duration estimate.

    The estimate is noisy (log-normal, x0.5..x2 typical): applications
    know roughly, not exactly, how long a transfer runs.
    """
    rng = np.random.default_rng(14)
    estimates = durations * rng.lognormal(mean=0.0, sigma=0.5, size=durations.size)
    chosen = np.full(durations.size, classes[-1])
    for lifetime in sorted(classes, reverse=True):
        chosen = np.where(estimates <= lifetime, lifetime, chosen)
    issuances = np.ceil(durations / chosen)
    exposure = issuances * chosen - durations
    return PolicyScore(
        policy=name,
        interrupted_fraction=float(np.mean(issuances > 1)),
        issuances_per_flow=float(np.mean(issuances)),
        mean_exposure_s=float(np.mean(exposure)),
    )


def run(
    *,
    hosts: int = 2_000,
    trace_duration: float = 21_600.0,
    config: ApnaConfig | None = None,
    quiet: bool = False,
) -> E14Result:
    config = config or ApnaConfig()
    generator = TraceGenerator(TraceConfig(hosts=hosts, duration=trace_duration))
    durations = generator.generate_arrays()["duration"]

    scores = [
        _score_fixed(durations, 60.0, "fixed 60 s"),
        _score_fixed(durations, config.data_ephid_lifetime, "fixed 900 s (paper)"),
        _score_fixed(durations, 3600.0, "fixed 3600 s"),
        _score_classes(
            durations, config.lifetime_classes, "three classes (VIII-G1)"
        ),
    ]
    result = E14Result(
        scores=scores,
        paper_coverage_claim=float(np.mean(durations <= 900.0)),
    )
    if not quiet:
        report(result, flows=durations.size)
    return result


def report(result: E14Result, *, flows: int | None = None) -> None:
    print_header("E14: EphID expiration-time policy", "paper Section VIII-G1")
    if flows is not None:
        print(
            f"{flows:,} flows; {result.paper_coverage_claim:.1%} last under "
            "15 minutes (paper quotes 98%)"
        )
    rows = [
        (
            score.policy,
            f"{score.interrupted_fraction:.2%}",
            f"{score.issuances_per_flow:.3f}",
            f"{score.mean_exposure_s:,.0f}",
        )
        for score in result.scores
    ]
    print(
        format_table(
            (
                "policy",
                "flows interrupted",
                "issuances/flow",
                "mean exposure (s)",
            ),
            rows,
        )
    )
    coverage = "HOLDS" if result.fifteen_minutes_covers_most_flows else "FAILS"
    print(f"\nshape claim (15-minute EphIDs cover ~98% of flows): {coverage}")
    classes = "HOLDS" if result.classes_beat_fixed else "FAILS"
    print(
        "shape claim (VIII-G1 lifetime classes beat fixed lifetimes on the "
        f"renewal/exposure trade-off): {classes}"
    )


if __name__ == "__main__":
    run()
