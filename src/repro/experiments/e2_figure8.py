"""E2/E3 — Border router forwarding performance (paper Fig. 8a and 8b).

Paper setup: a DPDK border router on 2x Xeon E5-2680 with 6 dual-port
10 GbE NICs (120 Gbps) fed by a Spirent generator at packet sizes
{128, 256, 512, 1024, 1518}.  Result: measured throughput matches the
theoretical line-rate maximum at every size — the APNA checks (EphID
decrypt + table lookups + MAC verify) add no throughput penalty.

Reproduction: the same pipeline in pure Python, with the 120 Gbps
hardware replaced by a *calibrated virtual line rate* — the capacity is
chosen so that, like the paper's AES-NI router, the CPU is never the
bottleneck.  We report:

* Fig. 8(a): packet rate vs packet size (measured == theoretical),
* Fig. 8(b): bit rate vs packet size (saturating the virtual capacity),
* honest raw CPU-bound rates for the APNA pipeline and a plain-IPv4
  baseline, which show the pure-Python cost the calibration hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.plain_ip import PlainIpRouter, RoutingTable
from ..core.border_router import Action
from ..metrics import Timer, format_table, rate
from ..wire import gre
from ..wire.apna import ApnaPacket
from ..workload.packets import PAPER_PACKET_SIZES, build_apna_pool, build_ipv4_pool
from .common import build_bench_world, print_header

PAPER_CAPACITY_GBPS = 120.0

#: Per-frame wire overhead (Ethernet preamble 8 B + IFG 12 B + CRC 4 B):
#: this is why the paper's Fig. 8(b) rises with packet size before
#: saturating — small packets waste a larger share of the wire.
FRAME_OVERHEAD = 24


@dataclass
class SizePoint:
    size: int
    apna_cpu_pps: float
    ipv4_cpu_pps: float
    line_pps: float
    measured_pps: float
    measured_gbps: float


@dataclass
class E2Result:
    points: list[SizePoint]
    virtual_capacity_bps: float

    @property
    def no_penalty(self) -> bool:
        """The paper's headline: measured == theoretical at every size."""
        return all(
            abs(p.measured_pps - p.line_pps) / p.line_pps < 1e-9 for p in self.points
        )


def _measure_apna_pps(world, pool) -> float:
    """The full egress path: parse wire bytes, run Fig. 4 checks, keep the
    GRE/IPv4 encapsulation step (what the paper's router also performs)."""
    br = world.as_a.br
    frames = pool.wire_frames
    with Timer() as timer:
        for frame in frames:
            packet = ApnaPacket.from_wire(frame)
            verdict = br.process_outgoing(packet)
            if verdict.action is Action.FORWARD_INTER:
                gre.encapsulate(frame, src_ip=100, dst_ip=verdict.next_aid)
    return rate(len(frames), timer.elapsed)


def _measure_ipv4_pps(pool) -> float:
    routes = RoutingTable()
    routes.add(0, 0, "peer")
    router = PlainIpRouter(routes)
    frames = pool.wire_frames
    with Timer() as timer:
        for frame in frames:
            router.process(frame)
    return rate(len(frames), timer.elapsed)


def run(
    *,
    packets_per_size: int = 300,
    hosts: int = 4,
    sizes: tuple[int, ...] = PAPER_PACKET_SIZES,
    quiet: bool = False,
) -> E2Result:
    world = build_bench_world(seed=2, hosts_per_as=hosts)

    apna_cpu: dict[int, float] = {}
    ipv4_cpu: dict[int, float] = {}
    for size in sizes:
        pool = build_apna_pool(
            world.as_a, world.hosts_a, size=size, count=packets_per_size, dst_aid=200
        )
        apna_cpu[size] = _measure_apna_pps(world, pool)
        ipv4_cpu[size] = _measure_ipv4_pps(build_ipv4_pool(size=size, count=packets_per_size))

    # Calibrate the virtual line rate: the largest capacity at which the
    # CPU out-runs the wire at EVERY size (x0.9 safety margin), mirroring
    # the paper where AES-NI processing out-runs 120 Gbps.
    capacity = 0.9 * min(
        apna_cpu[size] * (size + FRAME_OVERHEAD) * 8 for size in sizes
    )

    points = []
    for size in sizes:
        line_pps = capacity / ((size + FRAME_OVERHEAD) * 8)
        measured_pps = min(line_pps, apna_cpu[size])
        points.append(
            SizePoint(
                size=size,
                apna_cpu_pps=apna_cpu[size],
                ipv4_cpu_pps=ipv4_cpu[size],
                line_pps=line_pps,
                measured_pps=measured_pps,
                measured_gbps=measured_pps * size * 8 / 1e9,
            )
        )
    result = E2Result(points=points, virtual_capacity_bps=capacity)
    if not quiet:
        report(result)
    return result


def report(result: E2Result) -> None:
    print_header(
        "E2/E3: border-router forwarding throughput", "paper Fig. 8(a) and 8(b)"
    )
    capacity_mbps = result.virtual_capacity_bps / 1e6
    print(
        f"virtual line capacity: {capacity_mbps:,.2f} Mbps "
        f"(stands in for the paper's {PAPER_CAPACITY_GBPS:,.0f} Gbps testbed; "
        "calibrated so processing, like AES-NI in the paper, is never the bottleneck)"
    )
    rows = []
    for p in result.points:
        rows.append(
            (
                p.size,
                f"{p.apna_cpu_pps:,.0f}",
                f"{p.ipv4_cpu_pps:,.0f}",
                f"{p.line_pps:,.0f}",
                f"{p.measured_pps:,.0f}",
                f"{1e3 * p.measured_gbps:,.2f}",
                f"{100 * p.measured_pps / p.line_pps:.1f}%",
            )
        )
    print(
        format_table(
            (
                "size (B)",
                "APNA cpu pps",
                "IPv4 cpu pps",
                "line-rate pps",
                "measured pps",
                "measured Mbps",
                "of theoretical",
            ),
            rows,
        )
    )
    print(
        "\nFig 8(a) shape: measured packet rate ~ 1/size  |  "
        "Fig 8(b) shape: bit rate saturates capacity at large sizes"
    )
    verdict = "HOLDS" if result.no_penalty else "FAILS"
    print(f"shape claim (APNA processing adds no throughput penalty): {verdict}")
    overhead = [
        p.ipv4_cpu_pps / p.apna_cpu_pps for p in result.points
    ]
    print(
        f"raw cost: APNA pipeline is {min(overhead):.1f}-{max(overhead):.1f}x "
        "slower than plain IPv4 forwarding in pure Python "
        "(the paper hides this behind AES-NI + DPDK)"
    )


if __name__ == "__main__":
    run()
