"""E15 — Receive-only EphIDs vs shutoff-DoS on published services (§VII-A).

"Publishing certificates to the DNS raises a problem: a shutoff request
against a published EphID would terminate any ongoing communication
sessions that use this EphID.  A naive solution is to update the DNS
entry with a new EphID whenever the published EphID becomes invalid.
However, this would become burdensome for the DNS infrastructure if
attackers continuously issue shutoff requests against a domain.  Our
solution is to define receive-only EphIDs [...] Since they are never
used as the source identifier, they cannot become the target of shutoff
requests."

This experiment stages the attack against both designs:

* **naive** — the server publishes an ordinary EphID and also serves
  with it.  A malicious client that receives one response packet holds
  valid Fig. 5 shutoff evidence against the *published* EphID.
* **receive-only (the paper's design)** — the published EphID never
  sources a packet; each client is served from a dedicated serving
  EphID, so a malicious client's evidence only ever implicates its own
  serving EphID.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.certs import FLAG_RECEIVE_ONLY
from ..dns.server import DnsZone
from ..metrics import format_table
from ..scenarios import build as build_scenario
from ..wire.apna import ApnaPacket
from .common import print_header


@dataclass
class DesignOutcome:
    design: str
    shutoff_accepted: bool
    benign_sessions_broken: int
    benign_sessions_total: int
    dns_updates_forced: int
    published_ephid_survives: bool


@dataclass
class E15Result:
    naive: DesignOutcome
    receive_only: DesignOutcome
    attack_rounds: int

    @property
    def mitigation_works(self) -> bool:
        return (
            self.naive.benign_sessions_broken == self.naive.benign_sessions_total
            and self.naive.dns_updates_forced >= self.attack_rounds
            and self.receive_only.benign_sessions_broken == 0
            and self.receive_only.dns_updates_forced == 0
            and self.receive_only.published_ephid_survives
        )


def _capture_frames(host) -> list[bytes]:
    captured: list[bytes] = []
    original = host.handle_frame

    def wrapper(frame_bytes, *, from_node):
        captured.append(frame_bytes)
        original(frame_bytes, from_node=from_node)

    host.handle_frame = wrapper
    return captured


def _serve_echo(server) -> None:
    server.listen(
        80,
        lambda session, transport, data: server.send_data(
            session, b"OK " + data, dst_port=transport.src_port
        ),
    )


def _probe_sessions(world, clients, sessions) -> int:
    """How many benign sessions still deliver server responses."""
    alive = 0
    for client, session in zip(clients, sessions):
        before = len(client.inbox)
        client.send_data(session, b"still there?", dst_port=80)
        world.network.run()
        if len(client.inbox) > before:
            alive += 1
    return alive


def _run_naive(n_clients: int, attack_rounds: int) -> DesignOutcome:
    world = build_scenario("fig1", seed="e15-naive")
    server = world.attach_host("server", at="b")
    zone = DnsZone(world.rng)
    _serve_echo(server)

    published = server.acquire_ephid_direct()
    zone.register("shop.example", published.cert)
    baseline_updates = zone.updates

    clients = [world.attach_host(f"client-{i}", at="a") for i in range(n_clients)]
    sessions = []
    for client in clients:
        session = client.connect(published.cert, early_data=b"hello", dst_port=80)
        sessions.append(session)
    world.network.run()

    attacker = world.attach_host("attacker", at="a")
    accepted = False
    for _round in range(attack_rounds):
        captured = _capture_frames(attacker)
        attacker.connect(published.cert, early_data=b"hi", dst_port=80)
        world.network.run()
        # Evidence: the last packet the attacker received from the
        # published EphID (the server's response).
        evidence = next(
            ApnaPacket.from_wire(frame)
            for frame in reversed(captured)
            if ApnaPacket.from_wire(frame).header.src_ephid == published.ephid
        )
        signer = attacker.owned[evidence.header.dst_ephid]
        request = attacker.stack.build_shutoff_request(evidence.to_wire(), signer)
        response = world.as_b.aa.handle_shutoff(request)
        accepted = accepted or response.accepted
        # The naive recovery: mint a fresh EphID, update DNS.
        published = server.acquire_ephid_direct()
        zone.register("shop.example", published.cert)

    alive = _probe_sessions(world, clients, sessions)
    return DesignOutcome(
        design="naive (publish a normal EphID)",
        shutoff_accepted=accepted,
        benign_sessions_broken=n_clients - alive,
        benign_sessions_total=n_clients,
        dns_updates_forced=zone.updates - baseline_updates,
        published_ephid_survives=False,
    )


def _run_receive_only(n_clients: int, attack_rounds: int) -> DesignOutcome:
    world = build_scenario("fig1", seed="e15-ro")
    server = world.attach_host("server", at="b")
    zone = DnsZone(world.rng)
    _serve_echo(server)

    published = server.acquire_ephid_direct(flags=FLAG_RECEIVE_ONLY)
    zone.register("shop.example", published.cert)
    baseline_updates = zone.updates

    clients = [world.attach_host(f"client-{i}", at="a") for i in range(n_clients)]
    sessions = []
    for client in clients:
        client.connect(published.cert, early_data=b"hello", dst_port=80)
        world.network.run()
        # The VII-A flow: the client's live session is the serving one.
        serving_session = next(
            session
            for (src, _dst), session in client.sessions.items()
            if session.peer_cert.ephid != published.ephid
        )
        sessions.append(serving_session)

    attacker = world.attach_host("attacker", at="a")
    accepted = False
    for _round in range(attack_rounds):
        captured = _capture_frames(attacker)
        attacker.connect(published.cert, early_data=b"hi", dst_port=80)
        world.network.run()
        # The attacker never sees a packet sourced from the published
        # EphID — only from its private serving EphID.
        assert not any(
            ApnaPacket.from_wire(f).header.src_ephid == published.ephid
            for f in captured
        )
        evidence = ApnaPacket.from_wire(captured[-1])
        signer = attacker.owned[evidence.header.dst_ephid]
        request = attacker.stack.build_shutoff_request(evidence.to_wire(), signer)
        response = world.as_b.aa.handle_shutoff(request)
        accepted = accepted or response.accepted

    alive = _probe_sessions(world, clients, sessions)
    return DesignOutcome(
        design="receive-only (the paper's design)",
        shutoff_accepted=accepted,
        benign_sessions_broken=n_clients - alive,
        benign_sessions_total=n_clients,
        dns_updates_forced=zone.updates - baseline_updates,
        published_ephid_survives=True,
    )


def run(
    *, n_clients: int = 4, attack_rounds: int = 3, quiet: bool = False
) -> E15Result:
    result = E15Result(
        naive=_run_naive(n_clients, attack_rounds),
        receive_only=_run_receive_only(n_clients, attack_rounds),
        attack_rounds=attack_rounds,
    )
    if not quiet:
        report(result)
    return result


def report(result: E15Result) -> None:
    print_header(
        "E15: receive-only EphIDs vs shutoff-DoS", "paper Section VII-A"
    )
    rows = [
        (
            outcome.design,
            "yes" if outcome.shutoff_accepted else "no",
            f"{outcome.benign_sessions_broken}/{outcome.benign_sessions_total}",
            outcome.dns_updates_forced,
            "yes" if outcome.published_ephid_survives else "no",
        )
        for outcome in (result.naive, result.receive_only)
    ]
    print(
        format_table(
            (
                "design",
                "attacker shutoff accepted",
                "benign sessions broken",
                "DNS updates forced",
                "published EphID survives",
            ),
            rows,
        )
    )
    verdict = "HOLDS" if result.mitigation_works else "FAILS"
    print(
        "\nshape claim (receive-only EphIDs cannot be shutoff targets; the "
        f"DNS churn and collateral damage of the naive design disappear): {verdict}"
    )


if __name__ == "__main__":
    run()
