"""The scenario-matrix evaluation runner.

:class:`EvaluationRunner` fixes the deployment knobs once (population
scale, seed, shard count, chaos composition) and executes any subset of
the registered adversarial cases, returning an
:class:`~repro.evaluation.report.EvaluationReport`::

    >>> from repro.evaluation import EvaluationRunner
    >>> runner = EvaluationRunner(scale=1_000, seed=7, nshards=2)
    >>> report = runner.run_all()
    >>> report.passed
    True

Every case builds its preset's world with a sharded, columnar-state
configuration (the §V-A3 data plane the invariants are about), drives
synthetic population traffic through the world's own shard pool, and
judges the run against the declared invariants — see
:mod:`repro.evaluation.cases` and :mod:`repro.evaluation.invariants`.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import ApnaConfig
from .cases import CaseContext
from .cases import cases as _case_names
from .cases import run_case as _run_case
from .report import EvaluationReport, ScenarioReport

__all__ = ["EvaluationRunner"]


class EvaluationRunner:
    """Run registered scenario cases under one fixed deployment."""

    def __init__(
        self,
        *,
        scale: int = 1_000,
        seed: int = 7,
        nshards: int = 2,
        chaos: bool = False,
        burst_size: int = 64,
        max_sources: int = 256,
        latency_budget: float = 0.5,
        stream_flows: int = 0,
        config: "ApnaConfig | None" = None,
    ) -> None:
        if scale < 1:
            raise ValueError("scale must be at least 1")
        if nshards < 2:
            raise ValueError(
                "the evaluation runner exercises the sharded data plane; "
                "nshards must be >= 2"
            )
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        base = config or ApnaConfig()
        #: Chaos-grade supervision (mirrors the fault suite's policy):
        #: quick hang detection, an effectively unlimited restart budget
        #: and minimal backoff, so storms exercise recovery rather than
        #: degradation.
        self.config = replace(
            base,
            forwarding_shards=nshards,
            state_backend="columnar",
            shard_reply_timeout=0.4,
            shard_max_restarts=10_000,
            shard_restart_backoff=0.001,
        )
        self.context = CaseContext(
            scale=scale,
            seed=seed,
            nshards=nshards,
            chaos=chaos,
            burst_size=burst_size,
            max_sources=max_sources,
            latency_budget=latency_budget,
            stream_flows=stream_flows,
            config=self.config,
        )

    @staticmethod
    def case_names() -> "list[str]":
        """The registered case names (== their scenario preset names)."""
        return _case_names()

    def run(self, name: str) -> ScenarioReport:
        """Execute one case; ``name`` is a registered preset name."""
        return _run_case(name, self.context)

    def run_all(self, names: "list[str] | None" = None) -> EvaluationReport:
        """Execute the whole matrix (or the named subset), in order."""
        selected = names if names is not None else self.case_names()
        return EvaluationReport([self.run(name) for name in selected])
