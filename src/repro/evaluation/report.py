"""Report objects for the scenario-matrix evaluation runner.

Three layers, smallest first:

* :class:`InvariantResult` — one pass/fail check with a human-readable
  detail line (what was measured, against what bound);
* :class:`ScenarioReport` — one preset run: traffic tallies, the
  per-``DropReason`` ledger, the latency snapshot and every invariant
  verdict;
* :class:`EvaluationReport` — the whole matrix, renderable as JSON (for
  machines/snapshots) or a plain-text table (for humans).

Reports never decide anything — :mod:`repro.evaluation.invariants`
produces the verdicts; these classes only carry and render them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..metrics import format_table

__all__ = ["EvaluationReport", "InvariantResult", "ScenarioReport"]


@dataclass(frozen=True)
class InvariantResult:
    """One declared invariant's verdict for one scenario run."""

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        line = f"[{mark}] {self.name}"
        return f"{line}: {self.detail}" if self.detail else line


@dataclass
class ScenarioReport:
    """Everything one preset run produced, verdicts included."""

    preset: str
    population: int
    sources: int
    seed: int
    nshards: int
    chaos: bool
    packets: int = 0
    delivered: int = 0
    dropped: int = 0
    #: ``DropReason.value`` -> count, exact accounting for every drop.
    drop_reasons: dict[str, int] = field(default_factory=dict)
    #: :meth:`repro.metrics.LatencyHistogram.snapshot` of burst latency.
    latency: dict[str, float] = field(default_factory=dict)
    invariants: list[InvariantResult] = field(default_factory=list)
    #: Free-form scenario facts (revoked counts, accepted shutoffs, ...).
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True iff every declared invariant held."""
        return all(result.passed for result in self.invariants)

    def failures(self) -> list[InvariantResult]:
        return [result for result in self.invariants if not result.passed]

    def to_dict(self) -> dict:
        return {
            "preset": self.preset,
            "population": self.population,
            "sources": self.sources,
            "seed": self.seed,
            "nshards": self.nshards,
            "chaos": self.chaos,
            "packets": self.packets,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
            "latency": self.latency,
            "passed": self.passed,
            "invariants": [
                {"name": r.name, "passed": r.passed, "detail": r.detail}
                for r in self.invariants
            ],
            "notes": {key: self.notes[key] for key in sorted(self.notes)},
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_text(self) -> str:
        lines = [
            f"scenario {self.preset}  "
            f"(population={self.population}, sources={self.sources}, "
            f"shards={self.nshards}, seed={self.seed}"
            f"{', chaos' if self.chaos else ''})",
            f"  packets={self.packets} delivered={self.delivered} "
            f"dropped={self.dropped}",
        ]
        if self.drop_reasons:
            ledger = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.drop_reasons.items())
            )
            lines.append(f"  drops: {ledger}")
        if self.latency:
            lines.append(
                "  latency: p50={p50_ms:.3f}ms p99={p99_ms:.3f}ms "
                "max={max_ms:.3f}ms over {samples:.0f} bursts".format(
                    **self.latency
                )
            )
        for name in sorted(self.notes):
            lines.append(f"  {name}: {self.notes[name]}")
        for result in self.invariants:
            lines.append(f"  {result.render()}")
        return "\n".join(lines)


@dataclass
class EvaluationReport:
    """The full scenario matrix: one :class:`ScenarioReport` per preset."""

    reports: list[ScenarioReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(report.passed for report in self.reports)

    def report_for(self, preset: str) -> ScenarioReport:
        for report in self.reports:
            if report.preset == preset or report.preset.split(":")[0] == preset:
                return report
        raise KeyError(f"no report for preset {preset!r}")

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "scenarios": [report.to_dict() for report in self.reports],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_text(self) -> str:
        rows = []
        for report in self.reports:
            rows.append(
                (
                    report.preset,
                    report.packets,
                    report.delivered,
                    report.dropped,
                    "{p99_ms:.3f}".format(**report.latency)
                    if report.latency
                    else "-",
                    "ok" if report.passed else "FAIL",
                )
            )
        table = format_table(
            ("scenario", "packets", "delivered", "dropped", "p99 ms", "verdict"),
            rows,
        )
        sections = [table]
        for report in self.reports:
            sections.append("")
            sections.append(report.render_text())
        return "\n".join(sections)
