"""Invariant-checked evaluation of adversarial and churn scenarios.

The robustness counterpart of :mod:`repro.experiments`: where the
experiment scripts reproduce the paper's *performance* figures, this
package proves the deployment keeps its *correctness* promises while
being attacked, revoked, migrated and crash-stormed.  One runner
(:class:`EvaluationRunner`) executes a matrix of scenario presets
against declared pass/fail invariants and emits per-scenario JSON/text
reports.

Preset matrix (each name is a :mod:`repro.scenarios` preset; ``N``
takes ``k``/``M`` suffixes and sets the bulk-registered population):

===================  =====================================================
``flash-crowd:N``    every cold source transmits at once through the
                     sharded border (§V-B verification budget); optional
                     ``TrafficProfile(stream=True)`` protocol-level arm
``revocation-wave:N``  rolling slices of sources revoked between bursts
                     that keep using them (§IV-D shutoff end state)
``migration:N``      sources deregistered at one AS and re-admitted at
                     the peer (§V-A2 registry lifecycle under churn)
``shutoff-storm:N``  a transit AS floods Fig. 5 on-path shutoff
                     complaints via :mod:`repro.pathval.shutoff_ext`
``churn:N``          flash-crowd traffic with a
                     :func:`repro.faults.crash_storm_plan` armed on the
                     data plane — the fault-composition layer
===================  =====================================================

Invariants (see :mod:`repro.evaluation.invariants`):

* **no-false-drops** — every delivered verdict equals the
  single-process oracle router's; nominal runs lose nothing at all;
* **exact-accounting** — delivered + failed == offered, with the
  plane's ledger charging exactly the failed packets to
  ``DropReason.SHARD_FAILURE``;
* **bounded-latency** — p99 per-burst wall latency under the scenario
  budget (:class:`repro.metrics.LatencyHistogram`);
* **convergence** — after a storm ends, a probe round is failure-free
  and oracle-exact again;
* plus per-scenario exactness checks (revocation/migration/shutoff
  arithmetic derived from first principles).

Adding a preset
---------------

1. Register the topology shape in :mod:`repro.scenarios` with
   ``@scenarios.register("name", description=...)``.
2. Register the driver here with ``@cases.case("name")`` — build the
   world via ``scenarios.build(f"name:{ctx.scale}", ...)``, drive the
   plane, return a :class:`ScenarioReport` whose ``invariants`` list is
   filled (reuse ``_core_invariants`` for the shared families).
3. Reference the preset name in a test — the ``scenario-coverage``
   analysis rule fails any registered preset no test exercises.
4. Give it a benchmark arm in ``benchmarks/bench_evaluation.py``.

CLI: ``python -m repro.evaluation --scale 10k flash-crowd churn``.
"""

from .cases import CaseContext, ScenarioCase, case, cases, run_case
from .report import EvaluationReport, InvariantResult, ScenarioReport
from .runner import EvaluationRunner

__all__ = [
    "CaseContext",
    "EvaluationReport",
    "EvaluationRunner",
    "InvariantResult",
    "ScenarioCase",
    "ScenarioReport",
    "case",
    "cases",
    "run_case",
]
