"""The declared pass/fail invariants of the evaluation runner.

Each helper reduces a scenario's raw tallies to one
:class:`~repro.evaluation.report.InvariantResult`, with the measurement
spelled out in the detail line so a failing report is diagnosable
without rerunning.  The four families (ISSUE archetype: robustness):

* **no-false-drops** — every delivered verdict equals the single-process
  oracle's, and nominal runs lose nothing at all;
* **exact-accounting** — delivered + failed == offered, and the plane's
  ``stats()`` ledger charges exactly the failed ones to
  ``DropReason.SHARD_FAILURE``;
* **bounded-latency** — the p99 of per-burst wall latency stays under
  the scenario's budget (measured with
  :class:`repro.metrics.LatencyHistogram`, conservative upper edges);
* **convergence** — after the churn/storm ends, a probe round is
  failure-free and oracle-exact again.
"""

from __future__ import annotations

from ..core.border_router import DropReason
from ..metrics import LatencyHistogram
from .report import InvariantResult

__all__ = [
    "bounded_latency",
    "convergence",
    "exact_accounting",
    "expected_drops",
    "no_false_drops",
]


def no_false_drops(
    mismatches: int, delivered: int, failures: int, *, chaos: bool
) -> InvariantResult:
    """Delivered verdicts match the oracle; nominal runs lose nothing."""
    passed = mismatches == 0 and (chaos or failures == 0)
    detail = (
        f"{delivered} delivered verdicts, {mismatches} diverged from the "
        f"oracle, {failures} lost to shard failures"
        f"{' (chaos run: losses allowed, divergence not)' if chaos else ''}"
    )
    return InvariantResult("no-false-drops", passed, detail)


def exact_accounting(
    total: int, delivered: int, failures: int, stats: dict
) -> InvariantResult:
    """Every offered packet is either delivered or charged to the ledger."""
    charged = stats.get(DropReason.SHARD_FAILURE.value, 0)
    dropped = stats.get("dropped_packets", 0)
    passed = delivered + failures == total and charged == failures and (
        dropped == failures
    )
    detail = (
        f"{total} offered = {delivered} delivered + {failures} failed; "
        f"ledger charged {charged} shard-failure drops "
        f"({dropped} dropped_packets)"
    )
    return InvariantResult("exact-accounting", passed, detail)


def expected_drops(
    name: str, drop_reasons: dict, expected: dict
) -> InvariantResult:
    """The per-reason drop ledger matches the scenario's own arithmetic.

    ``expected`` maps :class:`DropReason` (or its ``.value``) to the
    count the scenario computed from first principles (how many sources
    it revoked, migrated, ...).  Reasons absent from ``expected`` must
    not appear in the ledger at all.
    """
    want = {
        (key.value if isinstance(key, DropReason) else key): count
        for key, count in expected.items()
    }
    got = {reason: count for reason, count in drop_reasons.items() if count}
    passed = got == {reason: count for reason, count in want.items() if count}
    detail = f"expected {want or '{}'}, ledger shows {got or '{}'}"
    return InvariantResult(name, passed, detail)


def bounded_latency(
    histogram: LatencyHistogram, budget: float
) -> InvariantResult:
    """p99 of per-burst wall latency stays under ``budget`` seconds."""
    p99 = histogram.p99
    passed = histogram.count > 0 and p99 <= budget
    detail = (
        f"p99 {p99 * 1e3:.3f}ms vs budget {budget * 1e3:.0f}ms over "
        f"{histogram.count} bursts"
    )
    return InvariantResult("bounded-latency", passed, detail)


def convergence(
    probe_mismatches: int, probe_failures: int, probe_packets: int
) -> InvariantResult:
    """After the storm, a probe round is loss-free and oracle-exact."""
    passed = (
        probe_packets > 0 and probe_mismatches == 0 and probe_failures == 0
    )
    detail = (
        f"post-churn probe of {probe_packets} packets: "
        f"{probe_failures} shard failures, {probe_mismatches} oracle "
        "divergences"
    )
    return InvariantResult("convergence", passed, detail)
