"""Command line front end: ``python -m repro.evaluation``.

Runs the scenario matrix (or a named subset) and prints the text
report; ``--json PATH`` also writes the machine-readable report.  Exit
status 0 iff every invariant of every selected scenario held.
"""

from __future__ import annotations

import argparse
import sys

from ..scenarios import TopologyError, _scale_int
from .runner import EvaluationRunner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description=(
            "Scenario-matrix evaluation: adversarial/churn presets "
            "against declared invariants."
        ),
    )
    parser.add_argument(
        "presets",
        nargs="*",
        default=None,
        help="case names to run (default: the whole registered matrix)",
    )
    parser.add_argument(
        "--scale",
        default="1k",
        help="population per AS, k/M suffixes allowed (default: 1k)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="arm a crash storm on every scenario's data plane",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered cases and exit"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        for name in EvaluationRunner.case_names():
            print(name)
        return 0
    try:
        scale = _scale_int(args.scale, "--scale N (e.g. 10k, 1M)")
        runner = EvaluationRunner(
            scale=scale, seed=args.seed, nshards=args.shards, chaos=args.chaos
        )
        report = runner.run_all(args.presets or None)
    except (TopologyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render_text())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
