"""Scenario case drivers: one registered driver per adversarial preset.

A *case* binds a :mod:`repro.scenarios` preset to the traffic/fault
pattern that gives the preset its name, drives it through the world's
own sharded data plane against a single-process oracle router sharing
the same host database and revocation list, and returns a
:class:`~repro.evaluation.report.ScenarioReport` with every invariant
verdict filled in.

Population traffic is synthesized directly: population hosts are
registry rows, not simulated nodes, so each source gets an EphID sealed
by the AS codec (IVs from the shard-pinned allocator) and packets are
MAC'd with the host's registered kHA packet subkey — byte-identical to
what :meth:`repro.core.host.HostStack.make_packet` would emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import scenarios
from ..core.border_router import Action, BorderRouter, DropReason
from ..core.config import ApnaConfig
from ..core.hostdb import HostRecord
from ..core.keys import HostAsKeys
from ..crypto.cmac import Cmac
from ..faults import crash_storm_plan
from ..metrics import LatencyHistogram, Timer
from ..pathval import (
    AsPairwiseKeys,
    OnPathShutoffRequest,
    PassportStamper,
    upgrade_to_onpath,
)
from ..wire.apna import ApnaHeader, ApnaPacket, Endpoint
from . import invariants
from .report import InvariantResult, ScenarioReport

__all__ = ["CaseContext", "ScenarioCase", "case", "cases", "run_case"]


@dataclass(frozen=True)
class CaseContext:
    """Everything a case driver needs besides the preset name."""

    scale: int
    seed: int
    nshards: int
    chaos: bool
    burst_size: int
    max_sources: int
    latency_budget: float
    stream_flows: int
    config: ApnaConfig

    @property
    def source_count(self) -> int:
        """Traffic sources drawn from the (possibly larger) population."""
        return min(self.scale, self.max_sources)

    @property
    def latency_bound(self) -> float:
        """The p99 budget, stretched under chaos: a recovered fault
        legitimately costs up to a reply timeout plus the restart."""
        if not self.chaos:
            return self.latency_budget
        timeout = self.config.shard_reply_timeout or 0.0
        return self.latency_budget + 2.0 * timeout

    def storm_plan(self, bursts: int):
        plan = crash_storm_plan(
            self.nshards,
            bursts,
            seed=self.seed,
            rate=0.15,
            delay=0.002,
            spare_first=1,
        )
        if not len(plan):
            # Short runs must still storm: the probabilistic draw can
            # come up empty for tiny burst counts, so guarantee one
            # deterministic kill per shard on the second burst.
            for shard in range(self.nshards):
                plan.add(shard, 1, "kill")
        return plan


@dataclass(frozen=True)
class ScenarioCase:
    name: str
    description: str
    driver: Callable[[CaseContext], ScenarioReport]


_CASES: dict[str, ScenarioCase] = {}


def case(name: str, *, description: str = ""):
    """Decorator: register ``driver(ctx) -> ScenarioReport`` under a
    :mod:`repro.scenarios` preset name."""

    def _register(driver):
        if name in _CASES:
            raise ValueError(f"case {name!r} is already registered")
        if name not in scenarios.names():
            raise ValueError(
                f"case {name!r} has no matching scenarios preset"
            )
        _CASES[name] = ScenarioCase(name, description, driver)
        return driver

    return _register


def cases() -> list[str]:
    """All registered case names, sorted."""
    return sorted(_CASES)


def run_case(name: str, ctx: CaseContext) -> ScenarioReport:
    try:
        scenario_case = _CASES[name]
    except KeyError:
        raise ValueError(
            f"unknown case {name!r}; registered: {', '.join(cases())}"
        ) from None
    return scenario_case.driver(ctx)


# --------------------------------------------------------------------------
# Population traffic synthesis


@dataclass(frozen=True)
class _Source:
    """One population host able to emit authentic packets."""

    aid: int
    hid: int
    ephid: bytes
    mac: Cmac
    mac_size: int

    def packet(self, dst: Endpoint, payload: bytes) -> ApnaPacket:
        header = ApnaHeader(
            src_aid=self.aid,
            src_ephid=self.ephid,
            dst_ephid=dst.ephid,
            dst_aid=dst.aid,
        )
        tag = self.mac.tag(header.mac_input(payload), self.mac_size)
        return ApnaPacket(header.with_mac(tag), payload)


def _sources(asys, hids, count: int, config: ApnaConfig) -> "list[_Source]":
    exp_time = int(asys.clock() + config.data_ephid_lifetime)
    picked = list(hids[: max(1, count)])
    out = []
    for hid in picked:
        ephid = asys.codec.seal(
            hid=hid, exp_time=exp_time, iv=asys.ivs.next_iv_for(hid)
        )
        record = asys.hostdb.get(hid)
        out.append(
            _Source(
                aid=asys.aid,
                hid=hid,
                ephid=ephid,
                mac=Cmac(record.keys.packet_mac),
                mac_size=config.packet_mac_size,
            )
        )
    return out


def _oracle(asys, config: ApnaConfig) -> BorderRouter:
    """The single-process reference router over the same live state."""
    return BorderRouter(
        asys.aid,
        asys.codec,
        asys.hostdb,
        asys.revocations,
        asys.clock,
        packet_mac_size=config.packet_mac_size,
        replay_filter=None,
    )


@dataclass
class _Tally:
    """Verdict bookkeeping shared by every case driver."""

    offered: int = 0
    forwarded: int = 0
    failures: int = 0
    mismatches: int = 0
    drop_reasons: dict[str, int] = field(default_factory=dict)
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    def run_bursts(
        self,
        plane,
        oracle: BorderRouter,
        clock,
        packets: "list[ApnaPacket]",
        burst_size: int,
    ) -> "tuple[int, int]":
        """Push ``packets`` through in bursts; returns this call's
        ``(mismatches, failures)`` so probe rounds can be judged alone."""
        mismatches = failures = 0
        for start in range(0, len(packets), burst_size):
            burst = packets[start : start + burst_size]
            with Timer() as timer:
                verdicts = plane.process(
                    [p.to_wire() for p in burst],
                    [True] * len(burst),
                    clock(),
                )
            self.histogram.record(timer.elapsed)
            for packet, verdict in zip(burst, verdicts):
                self.offered += 1
                if verdict.reason is DropReason.SHARD_FAILURE:
                    failures += 1
                    self._count_drop(verdict.reason)
                    continue
                if verdict != oracle.process_outgoing(packet):
                    mismatches += 1
                if verdict.action is Action.DROP:
                    self._count_drop(verdict.reason)
                else:
                    self.forwarded += 1
        self.mismatches += mismatches
        self.failures += failures
        return mismatches, failures

    def _count_drop(self, reason) -> None:
        key = reason.value if reason is not None else "unspecified"
        self.drop_reasons[key] = self.drop_reasons.get(key, 0) + 1

    @property
    def dropped(self) -> int:
        return self.offered - self.forwarded

    def merge(self, other: "_Tally") -> "_Tally":
        self.offered += other.offered
        self.forwarded += other.forwarded
        self.failures += other.failures
        self.mismatches += other.mismatches
        for reason, count in other.drop_reasons.items():
            self.drop_reasons[reason] = (
                self.drop_reasons.get(reason, 0) + count
            )
        self.histogram.merge(other.histogram)
        return self


def _base_report(
    preset: str, ctx: CaseContext, tally: _Tally, sources: int
) -> ScenarioReport:
    return ScenarioReport(
        preset=preset,
        population=ctx.scale,
        sources=sources,
        seed=ctx.seed,
        nshards=ctx.nshards,
        chaos=ctx.chaos,
        packets=tally.offered,
        delivered=tally.forwarded,
        dropped=tally.dropped,
        drop_reasons=dict(tally.drop_reasons),
        latency=tally.histogram.snapshot(),
    )


def _core_invariants(
    ctx: CaseContext, tally: _Tally, stats: dict, *, chaos: "bool | None" = None
) -> "list[InvariantResult]":
    chaos = ctx.chaos if chaos is None else chaos
    return [
        invariants.no_false_drops(
            tally.mismatches,
            tally.offered - tally.failures,
            tally.failures,
            chaos=chaos,
        ),
        invariants.exact_accounting(
            tally.offered,
            tally.offered - tally.failures,
            tally.failures,
            stats,
        ),
        invariants.bounded_latency(tally.histogram, ctx.latency_bound),
    ]


def _maybe_arm_chaos(ctx: CaseContext, plane, bursts: int):
    if not ctx.chaos:
        return None
    plan = ctx.storm_plan(bursts)
    plane.install_faults(plan)
    return plan


def _bursts_for(n_packets: int, burst_size: int) -> int:
    return (n_packets + burst_size - 1) // burst_size


# --------------------------------------------------------------------------
# The five case drivers


@case(
    "flash-crowd",
    description="every cold source speaks at once; nothing may drop",
)
def _flash_crowd(ctx: CaseContext) -> ScenarioReport:
    world = scenarios.build(
        f"flash-crowd:{ctx.scale}", seed=ctx.seed, config=ctx.config
    )
    try:
        as_a = world.asys("a")
        plane = as_a.shard_pool
        sources = _sources(
            as_a, world.population("a"), ctx.source_count, ctx.config
        )
        dst = Endpoint(
            world.asys("b").aid,
            world.host("bob").acquire_ephid_direct().ephid,
        )
        packets = [source.packet(dst, b"flash") for source in sources]
        _maybe_arm_chaos(
            ctx, plane, _bursts_for(len(packets), ctx.burst_size)
        )
        tally = _Tally()
        tally.run_bursts(
            plane, _oracle(as_a, ctx.config), as_a.clock, packets,
            ctx.burst_size,
        )
        stats = plane.stats()
        report = _base_report("flash-crowd", ctx, tally, len(sources))
        report.invariants = _core_invariants(ctx, tally, stats)
        if not ctx.chaos:
            report.invariants.append(
                invariants.expected_drops(
                    "surge-exactness", tally.drop_reasons, {}
                )
            )
        if ctx.stream_flows:
            report.notes.update(_stream_arm(world, ctx))
            if not ctx.chaos:
                delivered = report.notes["stream_delivered"]
                offered = report.notes["stream_flows"]
                report.invariants.append(
                    InvariantResult(
                        "stream-delivery",
                        delivered == offered,
                        f"{delivered}/{offered} streamed flows delivered",
                    )
                )
        return report
    finally:
        world.close()


def _stream_arm(world, ctx: CaseContext) -> dict:
    """The TrafficProfile(stream=True) composition arm: protocol-level
    sessions through the same sharded plane the synthetic surge used."""
    from ..workload import TraceConfig, TrafficProfile

    profile = TrafficProfile(
        trace=TraceConfig(hosts=16, duration=600.0),
        clients=2,
        servers=1,
        client_at="a",
        server_at="b",
        max_flows=ctx.stream_flows,
        window=1.0,
        stream=True,
        host_prefix="eval",
    )
    traffic = profile.drive(world)
    return {
        "stream_flows": traffic.flows_offered,
        "stream_delivered": traffic.payloads_delivered,
    }


@case(
    "revocation-wave",
    description="rolling revocation slices racing live traffic",
)
def _revocation_wave(ctx: CaseContext) -> ScenarioReport:
    waves = 4
    world = scenarios.build(
        f"revocation-wave:{ctx.scale}", seed=ctx.seed, config=ctx.config
    )
    try:
        as_a = world.asys("a")
        plane = as_a.shard_pool
        sources = _sources(
            as_a, world.population("a"), ctx.source_count, ctx.config
        )
        dst = Endpoint(
            world.asys("b").aid,
            world.host("bob").acquire_ephid_direct().ephid,
        )
        rounds = waves + 1
        _maybe_arm_chaos(
            ctx,
            plane,
            rounds * _bursts_for(len(sources), ctx.burst_size),
        )
        oracle = _oracle(as_a, ctx.config)
        tally = _Tally()
        wave_size = max(1, len(sources) // waves)
        exp_time = int(as_a.clock() + ctx.config.data_ephid_lifetime)
        expected_revoked = revoked = 0
        for round_no in range(rounds):
            # Everyone keeps transmitting; the `revoked` sources so far
            # must drop as SRC_REVOKED, nobody else may.
            expected_revoked += revoked
            packets = [source.packet(dst, b"wave") for source in sources]
            tally.run_bursts(
                plane, oracle, as_a.clock, packets, ctx.burst_size
            )
            if round_no < waves:
                # Revoke the next slice through the authoritative list;
                # the on_add hook broadcasts to every shard before the
                # next burst is dispatched (ordered control pipe).
                wave = sources[
                    round_no * wave_size : (round_no + 1) * wave_size
                ]
                for source in wave:
                    as_a.revocations.add(source.ephid, exp_time)
                revoked += len(wave)
        stats = plane.stats()
        report = _base_report("revocation-wave", ctx, tally, len(sources))
        report.notes["revoked_sources"] = revoked
        report.invariants = _core_invariants(ctx, tally, stats)
        if not ctx.chaos:
            report.invariants.append(
                invariants.expected_drops(
                    "revocation-exactness",
                    tally.drop_reasons,
                    {DropReason.SRC_REVOKED: expected_revoked},
                )
            )
        return report
    finally:
        world.close()


@case(
    "migration",
    description="hosts deregister at one AS and re-admit at the peer",
)
def _migration(ctx: CaseContext) -> ScenarioReport:
    world = scenarios.build(
        f"migration:{ctx.scale}", seed=ctx.seed, config=ctx.config
    )
    try:
        as_a, as_b = world.asys("a"), world.asys("b")
        plane_a, plane_b = as_a.shard_pool, as_b.shard_pool
        sources = _sources(
            as_a, world.population("a"), ctx.source_count, ctx.config
        )
        movers = sources[: max(1, len(sources) // 3)]
        toward_b = Endpoint(
            as_b.aid, world.host("bob").acquire_ephid_direct().ephid
        )
        toward_a = Endpoint(
            as_a.aid, world.host("alice").acquire_ephid_direct().ephid
        )
        rounds_a = 2 * _bursts_for(len(sources), ctx.burst_size)
        _maybe_arm_chaos(ctx, plane_a, rounds_a)
        oracle_a = _oracle(as_a, ctx.config)
        oracle_b = _oracle(as_b, ctx.config)
        tally_a, tally_b = _Tally(), _Tally()

        # Phase 1: everyone still lives at "a" and forwards.
        tally_a.run_bursts(
            plane_a,
            oracle_a,
            as_a.clock,
            [source.packet(toward_b, b"pre") for source in sources],
            ctx.burst_size,
        )

        # Phase 2: the movers leave "a" (HID revoked — their EphIDs die
        # with it) and re-register at "b" with fresh key material; both
        # database hooks broadcast to the respective shard pools.
        arrivals: "list[_Source]" = []
        exp_time = int(as_b.clock() + ctx.config.data_ephid_lifetime)
        for source in movers:
            as_a.hostdb.revoke_hid(source.hid)
            hid = as_b.hostdb.allocate_hid()
            keys = HostAsKeys(as_b.rng.read(16), as_b.rng.read(16))
            as_b.hostdb.register(HostRecord(hid=hid, keys=keys))
            ephid = as_b.codec.seal(
                hid=hid, exp_time=exp_time, iv=as_b.ivs.next_iv_for(hid)
            )
            arrivals.append(
                _Source(
                    aid=as_b.aid,
                    hid=hid,
                    ephid=ephid,
                    mac=Cmac(keys.packet_mac),
                    mac_size=ctx.config.packet_mac_size,
                )
            )

        # Phase 3a: stale movers must drop at "a", stayers still forward.
        tally_a.run_bursts(
            plane_a,
            oracle_a,
            as_a.clock,
            [source.packet(toward_b, b"post") for source in sources],
            ctx.burst_size,
        )
        # Phase 3b: the arrivals' fresh EphIDs forward at "b" at once.
        tally_b.run_bursts(
            plane_b,
            oracle_b,
            as_b.clock,
            [arrival.packet(toward_a, b"home") for arrival in arrivals],
            ctx.burst_size,
        )

        stats_a, stats_b = plane_a.stats(), plane_b.stats()
        merged_stats = {
            key: stats_a.get(key, 0) + stats_b.get(key, 0)
            for key in set(stats_a) | set(stats_b)
        }
        tally = _Tally().merge(tally_a).merge(tally_b)
        report = _base_report("migration", ctx, tally, len(sources))
        report.notes["migrated"] = len(movers)
        report.invariants = _core_invariants(ctx, tally, merged_stats)
        if not ctx.chaos:
            report.invariants.append(
                invariants.expected_drops(
                    "migration-exactness",
                    tally.drop_reasons,
                    {DropReason.SRC_HID_INVALID: len(movers)},
                )
            )
        arrived = tally_b.forwarded
        report.invariants.append(
            InvariantResult(
                "arrivals-forward",
                arrived + tally_b.failures == len(arrivals)
                and tally_b.mismatches == 0,
                f"{arrived}/{len(arrivals)} re-admitted sources forwarded "
                f"at the new AS ({tally_b.failures} lost to injected "
                "faults)",
            )
        )
        return report
    finally:
        world.close()


@case(
    "churn",
    description="flash-crowd traffic under a crash storm, exactly accounted",
)
def _churn(ctx: CaseContext) -> ScenarioReport:
    traffic_rounds = 3
    world = scenarios.build(
        f"churn:{ctx.scale}", seed=ctx.seed, config=ctx.config
    )
    try:
        as_a = world.asys("a")
        plane = as_a.shard_pool
        sources = _sources(
            as_a, world.population("a"), ctx.source_count, ctx.config
        )
        dst = Endpoint(
            world.asys("b").aid,
            world.host("bob").acquire_ephid_direct().ephid,
        )
        bursts = traffic_rounds * _bursts_for(len(sources), ctx.burst_size)
        # Churn *is* the chaos composition: the storm is always on.
        plan = ctx.storm_plan(bursts)
        plane.install_faults(plan)
        oracle = _oracle(as_a, ctx.config)
        tally = _Tally()
        for _ in range(traffic_rounds):
            packets = [source.packet(dst, b"churn") for source in sources]
            tally.run_bursts(
                plane, oracle, as_a.clock, packets, ctx.burst_size
            )
        # Convergence: two warm rounds flush any straggler faults still
        # scheduled for lagging shard seqs, then one measured probe must
        # be loss-free and oracle-exact.
        probe = [
            source.packet(dst, b"probe")
            for source in sources[: ctx.burst_size]
        ]
        for _ in range(2):
            tally.run_bursts(
                plane, oracle, as_a.clock, probe, ctx.burst_size
            )
        probe_mismatches, probe_failures = tally.run_bursts(
            plane, oracle, as_a.clock, probe, ctx.burst_size
        )
        stats = plane.stats()
        report = _base_report("churn", ctx, tally, len(sources))
        report.notes["faults_injected"] = len(plan.injected)
        report.notes["restarts"] = stats.get("restarts", 0)
        report.notes["stale_replies"] = stats.get("stale_replies", 0)
        report.invariants = _core_invariants(ctx, tally, stats, chaos=True)
        report.invariants.append(
            invariants.convergence(
                probe_mismatches, probe_failures, len(probe)
            )
        )
        report.invariants.append(
            InvariantResult(
                "storm-activity",
                bool(plan.injected) and stats.get("degraded", 0) == 0,
                f"{len(plan.injected)} faults injected, "
                f"{stats.get('restarts', 0)} restarts, plane never "
                "degraded",
            )
        )
        return report
    finally:
        world.close()


@case(
    "shutoff-storm",
    description="on-path shutoff complaint storm through pathval.shutoff_ext",
)
def _shutoff_storm(ctx: CaseContext) -> ScenarioReport:
    world = scenarios.build(
        f"shutoff-storm:{ctx.scale}", seed=ctx.seed, config=ctx.config
    )
    try:
        as1, as2, as3 = (
            world.asys("as1"),
            world.asys("as2"),
            world.asys("as3"),
        )
        agent = upgrade_to_onpath(as1)
        plane = as1.shard_pool
        sources = _sources(
            as1, world.population("as1"), ctx.source_count, ctx.config
        )
        accused = sources[: max(1, min(len(sources) // 2, 32))]
        dst = Endpoint(
            as3.aid, world.host("dst").acquire_ephid_direct().ephid
        )
        stamper = PassportStamper(
            AsPairwiseKeys(as1.aid, as1.keys.exchange, world.rpki)
        )
        accepted = forged = unstamped = selfish = 0
        for i, source in enumerate(accused):
            offending = source.packet(dst, b"abuse")
            passport = stamper.stamp(offending, [as2.aid, as3.aid])
            stamp = passport.mac_for(as2.aid)
            assert stamp is not None
            valid = OnPathShutoffRequest.build(
                offending.to_wire(), as2.aid, stamp, as2.keys.signing
            )
            response = agent.handle_onpath_shutoff(valid)
            accepted += int(response.accepted)
            # Interleave adversarial complaints: each must bounce with
            # its own reject reason and revoke nobody.
            if i % 3 == 0:
                bad_sig = OnPathShutoffRequest.build(
                    offending.to_wire(), as2.aid, stamp, as3.keys.signing
                )
                forged += int(
                    not agent.handle_onpath_shutoff(bad_sig).accepted
                )
            elif i % 3 == 1:
                bad_stamp = OnPathShutoffRequest.build(
                    offending.to_wire(), as2.aid, bytes(8), as2.keys.signing
                )
                unstamped += int(
                    not agent.handle_onpath_shutoff(bad_stamp).accepted
                )
            else:
                own_goal = OnPathShutoffRequest.build(
                    offending.to_wire(), as1.aid, stamp, as1.keys.signing
                )
                selfish += int(
                    not agent.handle_onpath_shutoff(own_goal).accepted
                )

        _maybe_arm_chaos(
            ctx, plane, _bursts_for(len(sources), ctx.burst_size)
        )
        oracle = _oracle(as1, ctx.config)
        tally = _Tally()
        tally.run_bursts(
            plane,
            oracle,
            as1.clock,
            [source.packet(dst, b"after") for source in sources],
            ctx.burst_size,
        )
        stats = plane.stats()
        report = _base_report("shutoff-storm", ctx, tally, len(sources))
        report.notes["complaints_accepted"] = accepted
        report.notes["complaints_rejected"] = dict(sorted(agent.rejected.items()))
        report.invariants = _core_invariants(ctx, tally, stats)
        ledger_ok = (
            accepted == len(accused)
            and agent.onpath_accepted == len(accused)
            and agent.rejected.get("requester-signature-invalid", 0)
            == forged
            and agent.rejected.get("stamp-invalid", 0) == unstamped
            and agent.rejected.get("requester-is-self", 0) == selfish
            and forged + unstamped + selfish == len(accused)
        )
        report.invariants.append(
            InvariantResult(
                "shutoff-ledger",
                ledger_ok,
                f"{accepted}/{len(accused)} valid complaints revoked; "
                f"rejects: {forged} forged-signature, {unstamped} "
                f"bad-stamp, {selfish} self-requester",
            )
        )
        if not ctx.chaos:
            report.invariants.append(
                invariants.expected_drops(
                    "shutoff-enforcement",
                    tally.drop_reasons,
                    {DropReason.SRC_REVOKED: len(accused)},
                )
            )
        return report
    finally:
        world.close()
