"""Measurement helpers shared by the experiment runners."""

from .timing import Timer, format_table, rate, time_loop

__all__ = ["Timer", "format_table", "rate", "time_loop"]
