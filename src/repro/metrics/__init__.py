"""Measurement helpers shared by the experiment runners."""

from .timing import LatencyHistogram, Timer, format_table, rate, time_loop

__all__ = ["LatencyHistogram", "Timer", "format_table", "rate", "time_loop"]
