"""Wall-clock timing and table formatting for the experiment harness."""

from __future__ import annotations

import math
import time
from typing import Callable, Iterable, Sequence


class Timer:
    """A context-manager stopwatch."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_loop(fn: Callable[[], None], *, repeat: int) -> float:
    """Seconds to run ``fn`` ``repeat`` times."""
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return time.perf_counter() - start


def rate(count: int, seconds: float) -> float:
    """Operations per second (0 for degenerate timings)."""
    return count / seconds if seconds > 0 else 0.0


class LatencyHistogram:
    """Bounded-memory latency distribution with percentile queries.

    Samples land in logarithmically spaced buckets (~19% wide, from a
    1 µs floor), so memory is a few dozen counters regardless of sample
    count — the right shape for per-burst latencies recorded across a
    long run — and any percentile is answered to within one bucket's
    relative error.  The evaluation runner's bounded-p99 invariant reads
    :meth:`percentile` instead of an ad-hoc mean, because tail latency
    is where a sick data plane shows first.

    Samples are *durations passed in by the caller* (e.g. from
    :class:`Timer`); the histogram itself never reads a clock.
    """

    #: Resolution floor: everything at or below one microsecond shares
    #: bucket 0.
    _BASE = 1e-6
    #: Bucket growth factor: 2**0.25 per bucket, ~77 buckets per 1000x.
    _GROWTH = math.log(2.0) / 4.0

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one duration sample (negative clamps to the floor)."""
        if seconds <= self._BASE:
            index = 0
        else:
            index = 1 + int(math.log(seconds / self._BASE) / self._GROWTH)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += max(seconds, 0.0)
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's samples into this one."""
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)
        return self

    def percentile(self, p: float) -> float:
        """An upper bound on the ``p``-th percentile, in seconds.

        Returns the upper edge of the bucket where the cumulative count
        crosses ``p`` percent of the samples (0.0 when empty), so the
        answer errs *against* the caller — a latency budget checked with
        it can only be conservative.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be within [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        needed = max(1, math.ceil(self.count * p / 100.0))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= needed:
                if index == 0:
                    return self._BASE
                return min(
                    self._BASE * math.exp(index * self._GROWTH), self.max
                )
        return self.max  # pragma: no cover - cumulative always reaches count

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> "dict[str, float]":
        """The report-ready summary, in milliseconds where timed."""
        return {
            "samples": float(self.count),
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.p50 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "max_ms": self.max * 1e3,
        }

    def __repr__(self) -> str:
        return (
            f"<LatencyHistogram n={self.count} p50={self.p50 * 1e3:.3f}ms "
            f"p99={self.p99 * 1e3:.3f}ms max={self.max * 1e3:.3f}ms>"
        )


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain-text table matching the paper's row/series style."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
