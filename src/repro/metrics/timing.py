"""Wall-clock timing and table formatting for the experiment harness."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence


class Timer:
    """A context-manager stopwatch."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_loop(fn: Callable[[], None], *, repeat: int) -> float:
    """Seconds to run ``fn`` ``repeat`` times."""
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return time.perf_counter() - start


def rate(count: int, seconds: float) -> float:
    """Operations per second (0 for degenerate timings)."""
    return count / seconds if seconds > 0 else 0.0


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain-text table matching the paper's row/series style."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
