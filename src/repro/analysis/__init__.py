"""Static invariants — the rule-based AST analyzer for this codebase.

The hardest bugs this repo has shipped were *invariant* bugs invisible
to green tests: the ``==`` timing-oracle tag compare (PR 3), the
``iv % nshards`` linkage leak (PR 8), two separate unbounded-``recv``
hangs (PRs 6 and 8).  Each got a one-off AST audit after the fact; this
package turns those audits into a real analysis pass that runs in
tier-1, so the invariant classes stay closed *by construction* as the
codebase grows (sockets, async dispatch, the scenario pack).

Run it::

    python -m repro.analysis [--format text|json] [--rule NAME] [ROOT]
    repro-analyze            # console entry point (setup.py)

Exit 0 means every finding is suppressed or baselined; anything new
exits 1 (and fails ``tests/test_static_analysis.py``, which is tier-1).

Static invariants
=================

Every rule encodes an invariant this repo has already paid for or
depends on — the motivating bug/PR is part of the rule's definition:

``ct-compare`` (PR 3)
    Authentication tags are never compared with ``==``/``!=`` on
    secret-dependent paths; :func:`repro.crypto.util.ct_eq` only.  The
    PR 3 audit found a live non-constant-time passport MAC compare.
``shard-routing-mod`` (PR 8)
    Shard routing arithmetic (``% nshards``) exists only inside
    ``sharding/plan.py``; the keyed PRF map is the single router.  The
    residue shortcut it forbids leaked log2(nshards) cross-EphID
    linkage bits — exactly what the paper's domain-brokered privacy
    model (Sections IV, V-A1) rules out.
``secret-hygiene`` (paper IV/V-A1)
    ``master``/``kHA``/``kR``/key-material identifiers never flow into
    ``__repr__`` bodies, f-strings, logging calls or exception
    messages.  Secrets in diagnostics end up in tracebacks and logs —
    an unauditable secondary channel.
``determinism`` (every differential suite)
    No ``time.time()``, unseeded ``random.Random()``, module-level
    ``random.*``, ``os.urandom`` or ``secrets.*`` outside the
    sanctioned seams (``crypto/rng.py``'s ``SystemRng``,
    ``metrics/timing``, and ``benchmarks/`` which sits outside the
    tree).  Same-seed world equivalence is load-bearing for the
    sharding, crypto-backend, state-backend and chaos suites.
``bounded-wait`` (PRs 6 and 8)
    No ``Connection.recv_bytes`` in ``sharding/`` without a
    ``timeout=`` or a ``poll(timeout)`` guard in the same function —
    the dispatcher-wedged-forever hang class.  Intentionally-blocking
    worker request loops are annotated inline.
``pickle-free-wire`` (PR 5)
    Shard pipes carry packed wire frames only; ``Connection.send`` /
    ``recv`` (which pickle) are forbidden in ``sharding/``.
``wire-protocol-completeness`` (PRs 5/6)
    Every ``MSG_*`` kind in ``sharding/wire.py`` has an encoder, a
    decoder, and a dispatch arm on the side that receives it — the
    cross-module consistency a single-file audit cannot express.  A
    sent-but-undispatched kind desynchronises the reply stream.
``silent-except`` (recovery/teardown debugging)
    Broad ``except Exception:`` handlers must narrow the type, bind and
    use the exception, re-raise, or carry an inline justification.
``scenario-coverage`` (PR 10)
    Every ``@register("name")`` preset in ``scenarios.py`` is
    referenced by at least one test under ``tests/``.  The evaluation
    runner resolves worlds by preset name, so an unreferenced preset is
    an eval surface with zero regression protection.

Suppressions and the baseline
=============================

A finding is silenced in exactly two reviewable ways:

* **Inline**: ``# audit: allow(<rule>)`` on the flagged line or the
  line directly above, with the justification in the same comment —
  e.g. a worker's request loop that *should* block forever carries
  ``# audit: allow(bounded-wait)`` and says why.
* **Baseline**: ``src/repro/analysis/baseline.txt`` lists grandfathered
  ``rule:file:line`` keys.  New findings fail even while old ones burn
  down; the baseline may only ever shrink
  (``tests/test_repo_hygiene.py`` enforces it).

Adding a rule: subclass :class:`Rule` in a ``rules_*`` module, set
``name``/``title``/``motivation``/``scope``, decorate with
``@register``, import the module below, and give it a known-bad +
known-good fixture self-test in ``tests/test_static_analysis.py`` (the
detector must provably detect).
"""

from .engine import (
    DEFAULT_BASELINE,
    DEFAULT_ROOT,
    RULES,
    Finding,
    Report,
    Rule,
    load_baseline,
    register,
    run_analysis,
    write_baseline,
)
from .model import Module, Project

# Importing the rule modules is what populates the registry.
from . import rules_timing  # noqa: E402,F401  (ct-compare)
from . import rules_privacy  # noqa: E402,F401  (shard-routing-mod, secret-hygiene)
from . import rules_determinism  # noqa: E402,F401  (determinism)
from . import rules_ipc  # noqa: E402,F401  (bounded-wait, pickle-free-wire, wire-protocol-completeness)
from . import rules_exceptions  # noqa: E402,F401  (silent-except)
from . import rules_scenarios  # noqa: E402,F401  (scenario-coverage)

__all__ = [
    "DEFAULT_BASELINE",
    "DEFAULT_ROOT",
    "RULES",
    "Finding",
    "Module",
    "Project",
    "Report",
    "Rule",
    "load_baseline",
    "register",
    "run_analysis",
    "write_baseline",
]
