"""Timing-channel rules.

``ct-compare`` is the direct descendant of the PR 3 audit
(``tests/test_tag_comparison_audit.py``, now a thin wrapper): a naive
``==`` on a MAC/tag short-circuits at the first differing byte and
leaks the mismatch position through timing — the classic remote
timing-oracle forgery, found live in ``PassportVerifier.verify`` during
PR 3.  Every tag comparison on a secret-dependent path must go through
:func:`repro.crypto.util.ct_eq` (which delegates to
:func:`hmac.compare_digest`).
"""

from __future__ import annotations

import ast

from .engine import Finding, Rule, register
from .model import Module

#: Identifier substrings that mark a value as an authentication tag.
#: "expected"/"presented" catch the ``expected = cmac(...);
#: presented != expected`` idiom where neither local is named after the
#: tag itself.
TAG_TOKENS = ("tag", "mac", "digest", "expected", "presented")


def _is_tag_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        return False
    # Length checks and key-identity guards (e.g. ``enc_key == mac_key``)
    # compare non-secret-position values, not tags.
    if "length" in name or "size" in name or "key" in name:
        return False
    return any(token in name for token in TAG_TOKENS)


@register
class CtCompareRule(Rule):
    name = "ct-compare"
    title = "authentication tags must be compared in constant time"
    motivation = (
        "PR 3: non-constant-time passport MAC compare (timing-oracle "
        "forgery); guarded since by the tag-comparison audit"
    )
    #: Modules holding tag comparisons on secret-dependent hot paths.
    scope = (
        "crypto/*.py",
        "core/ephid.py",
        "core/border_router.py",
        "core/icmp_crypto.py",
        "pathval/opt.py",
        "pathval/passport.py",
        "pathval/shutoff_ext.py",
    )

    def check_module(self, module: Module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_tag_operand(operand) for operand in operands):
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    "authentication tag compared with ==/!= — use "
                    "repro.crypto.util.ct_eq (hmac.compare_digest)",
                )
