"""Privacy rules: linkage channels and secret-material leaks.

``shard-routing-mod`` is the PR 8 audit
(``tests/test_shard_routing_audit.py``, now a thin wrapper).  The
dispatcher used to route by the publicly computable ``iv % nshards``
residue, handing any on-path observer log2(nshards) bits of exactly the
cross-EphID linkage the paper's domain-brokered privacy model (Sections
IV, V-A1) forbids.  Routing arithmetic is allowed only inside
``sharding/plan.py``; everyone else goes through
``ShardPlan.owner_of_iv*`` / ``owners_of_iv_bytes``.

``secret-hygiene`` keeps key material out of every human-readable
surface: ``__repr__`` bodies, f-string interpolations, logging calls
and exception messages.  A secret that reaches a repr or an exception
string ends up in logs, tracebacks and crash reports — an
accountability system that leaks ``master``/``kHA``/``kR`` bytes
through its own diagnostics has no privacy story left to defend.
"""

from __future__ import annotations

import ast

from .engine import Finding, Rule, register
from .model import Module

# --------------------------------------------------------------------------
# shard-routing-mod

#: Identifier substrings that mark a modulus as a shard count.
SHARD_TOKENS = ("nshards", "num_shards", "shard_count", "n_shards")


def _names_shard_count(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        name = node.id.lower()
    elif isinstance(node, ast.Attribute):
        name = node.attr.lower()
    else:
        # Constants (``% 2**32`` wraparound) and calls are fine: the
        # leak class is specifically reduction modulo the shard count.
        return False
    return any(token in name for token in SHARD_TOKENS)


@register
class ShardRoutingModRule(Rule):
    name = "shard-routing-mod"
    title = "shard routing is computed only by ShardPlan"
    motivation = (
        "PR 8: iv %% nshards dispatch leaked log2(nshards) cross-EphID "
        "linkage bits to on-path observers; routing is now PRF-keyed "
        "and owned by sharding/plan.py alone"
    )
    #: Everything that sees clear IV bytes and a shard count.  plan.py
    #: is the one module allowed to turn one into the other.
    #: Deliberately *not* audited: state/view.py and state/columns.py
    #: use ``blk % nshards`` for HID-block ownership (which rows a
    #: shard stores) — keyed on the secret HID, not on clear packet
    #: bytes, and not a routing decision an observer can replay.
    scope = (
        "sharding/*.py",
        "core/ephid.py",
        "core/border_router.py",
        "core/autonomous_system.py",
    )
    exclude = ("sharding/plan.py",)

    def check_module(self, module: Module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if _names_shard_count(node.right):
                    yield Finding(
                        self.name,
                        module.rel,
                        node.lineno,
                        "shard-count modulo outside ShardPlan — route via "
                        "plan.owner_of_iv*/owners_of_iv_bytes instead",
                    )


# --------------------------------------------------------------------------
# secret-hygiene

#: Substrings/suffixes that mark an identifier as key material.
_SECRET_SUBSTRINGS = ("master", "secret", "kha", "k_ha", "key_material")
_SECRET_EXACT = ("kr", "key", "keys", "subkey", "kha")
_SECRET_SUFFIXES = ("_key", "_keys", "_secret", "_secrets")
#: Identifiers that merely describe secrets (sizes, names, ids) are not
#: themselves secret.
_INNOCENT = ("size", "len", "count", "name", "index", "id_", "error", "type")

_LOG_METHODS = (
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "exception",
    "critical",
    "log",
)


def _is_secret_name(name: str) -> bool:
    lowered = name.lower()
    if any(token in lowered for token in _INNOCENT):
        return False
    if lowered in _SECRET_EXACT:
        return True
    if any(lowered.endswith(suffix) for suffix in _SECRET_SUFFIXES):
        return True
    return any(token in lowered for token in _SECRET_SUBSTRINGS)


def _terminal_secret(node: ast.expr) -> "str | None":
    """The identifier, if ``node`` is a bare secret Name/Attribute.

    Only terminal names count: ``{len(key)}`` interpolates a length,
    not the key, so the operand there is the ``len`` call.
    """
    if isinstance(node, ast.Name) and _is_secret_name(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _is_secret_name(node.attr):
        return node.attr
    return None


def _is_logging_call(module: Module, call: ast.Call) -> bool:
    qual = module.qualname(call.func)
    if qual is None:
        return False
    if qual == "warnings.warn" or qual.startswith("logging."):
        return True
    if isinstance(call.func, ast.Attribute) and call.func.attr in _LOG_METHODS:
        head = qual.split(".", 1)[0].lower()
        return "log" in head or "log" in qual.rsplit(".", 2)[-2].lower()
    return False


@register
class SecretHygieneRule(Rule):
    name = "secret-hygiene"
    title = "key material stays out of reprs, f-strings, logs, exceptions"
    motivation = (
        "domain-brokered privacy (paper IV/V-A1): master/kHA/kR bytes in "
        "a repr, log line or exception message end up in tracebacks and "
        "crash reports — an unauditable secondary channel"
    )
    scope = ("**/*.py",)

    def check_module(self, module: Module):
        seen: set[tuple[int, str]] = set()

        def emit(node: ast.expr, name: str, context: str):
            key = (node.lineno, name)
            if key in seen:
                return None
            seen.add(key)
            return Finding(
                self.name,
                module.rel,
                node.lineno,
                f"secret-looking identifier {name!r} flows into {context} — "
                "redact (hex prefix, length, or omit) before formatting",
            )

        for node in ast.walk(module.tree):
            # f-string interpolation of a secret, anywhere.
            if isinstance(node, ast.JoinedStr):
                for value in node.values:
                    if isinstance(value, ast.FormattedValue):
                        name = _terminal_secret(value.value)
                        if name:
                            finding = emit(value.value, name, "an f-string")
                            if finding:
                                yield finding
            # Secrets handed straight to a logging call.
            elif isinstance(node, ast.Call) and _is_logging_call(module, node):
                for arg in node.args:
                    name = _terminal_secret(arg)
                    if name:
                        finding = emit(arg, name, "a logging call")
                        if finding:
                            yield finding
            # Secrets interpolated into a raised exception's arguments.
            elif isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
                for arg in node.exc.args:
                    name = _terminal_secret(arg)
                    if name:
                        finding = emit(arg, name, "an exception message")
                        if finding:
                            yield finding
            # Any secret identifier used inside a __repr__ body (except
            # as a len() argument — lengths are fine to print).
            elif (
                isinstance(node, ast.FunctionDef) and node.name == "__repr__"
            ):
                length_args: set[int] = set()
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "len"
                    ):
                        for arg in sub.args:
                            length_args.update(
                                id(inner) for inner in ast.walk(arg)
                            )
                for sub in ast.walk(node):
                    if id(sub) in length_args or not isinstance(
                        sub, (ast.Name, ast.Attribute)
                    ):
                        continue
                    name = _terminal_secret(sub)
                    if name:
                        finding = emit(sub, name, "__repr__")
                        if finding:
                            yield finding
