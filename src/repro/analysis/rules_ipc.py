"""IPC rules for the sharded data plane: waits, wire format, protocol.

``bounded-wait`` is the PR 6 / PR 8 hang class as a rule: an unbounded
``Connection.recv_bytes`` wedges the dispatcher forever the first time
a worker dies mid-reply (PR 6) or an MS issuance worker hangs (PR 8).
Every receive in ``sharding/`` must either pass a ``timeout=`` or sit
behind a ``poll(timeout)`` guard in the same function.  Worker-side
request loops that *intend* to block forever (EOF from the parent wakes
them) carry an ``# audit: allow(bounded-wait)`` with the justification.

``pickle-free-wire`` keeps the PR 5 contract: shard pipes carry packed
frames only, never pickled objects.  ``Connection.send``/``recv``
pickle silently — one stray call and the wire format, the cross-version
story and the "one burst = one message" accounting all quietly rot.

``wire-protocol-completeness`` is the cross-module invariant no
single-file AST audit can express: every ``MSG_*`` kind declared in
``sharding/wire.py`` must be encodable, decodable and dispatched.  A
constant with an encoder but no worker arm is a protocol extension that
silently desynchronises the reply stream the first time it is sent.
"""

from __future__ import annotations

import ast

from .engine import Finding, Rule, register
from .model import Module, Project

# --------------------------------------------------------------------------
# bounded-wait


def _timeout_kwarg(call: ast.Call) -> "ast.expr | None":
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            return keyword.value
    return None


@register
class BoundedWaitRule(Rule):
    name = "bounded-wait"
    title = "every shard-pipe receive is bounded"
    motivation = (
        "PR 6: dispatcher wedged forever on a dead worker's reply; "
        "PR 8: MS issuance hung on a wedged worker — both were an "
        "unbounded Connection.recv_bytes"
    )
    scope = ("sharding/*.py",)

    def check_module(self, module: Module):
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            poll_lines = [
                node.lineno
                for node in ast.walk(func)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "poll"
                and (node.args or node.keywords)
            ]
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "recv_bytes"
                ):
                    continue
                timeout = _timeout_kwarg(node)
                if timeout is not None and not (
                    isinstance(timeout, ast.Constant) and timeout.value is None
                ):
                    continue  # caller passes a live timeout through
                if any(line <= node.lineno for line in poll_lines):
                    continue  # poll(timeout) guard in the same function
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    "unbounded recv_bytes — pass timeout= or guard with "
                    "poll(timeout) (the PR 6/PR 8 hang class)",
                )


# --------------------------------------------------------------------------
# pickle-free-wire


@register
class PickleFreeWireRule(Rule):
    name = "pickle-free-wire"
    title = "shard pipes carry packed frames, never pickles"
    motivation = (
        "PR 5 contract: one burst = one packed message; "
        "Connection.send/recv pickle objects silently and break the "
        "wire format, accounting and resync story"
    )
    scope = ("sharding/*.py",)

    def check_module(self, module: Module):
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("send", "recv")
            ):
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    f".{node.func.attr}() pickles its payload — use "
                    "send_bytes/recv_bytes with packed wire frames",
                )


# --------------------------------------------------------------------------
# wire-protocol-completeness

_WIRE = "sharding/wire.py"
#: Modules that run inside worker processes (produce replies).
_WORKER_SIDE = ("sharding/worker.py", "sharding/issuance.py")
#: Modules that run in the dispatcher/supervisor (produce requests).
_DISPATCHER_SIDE = ("sharding/pool.py", "sharding/supervisor.py")


def _msg_names(tree: ast.AST) -> "set[str]":
    found = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id.startswith("MSG_"):
            found.add(node.id)
        elif isinstance(node, ast.Attribute) and node.attr.startswith("MSG_"):
            found.add(node.attr)
    return found


def _callee(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _WireModel:
    """What ``wire.py`` declares: kinds, encoders, decoders."""

    def __init__(self, module: Module) -> None:
        self.constants: dict[str, int] = {}
        self.encoders: dict[str, set[str]] = {}
        self.decoders: list[str] = []
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id.startswith(
                        "MSG_"
                    ):
                        self.constants[target.id] = node.lineno
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("encode_"):
                self.encoders[node.name] = _msg_names(node) & set(
                    self.constants
                )
            elif node.name.startswith("decode_"):
                self.decoders.append(node.name)

    def kinds_of_encoder(self, name: str) -> "set[str]":
        return self.encoders.get(name, set())

    def kinds_of_decoder(self, name: str) -> "set[str]":
        # decode_x yields whatever its encode_x twin packs.
        return self.kinds_of_encoder("encode_" + name[len("decode_") :])


def _module_usage(module: Module, wire: _WireModel):
    """(produced, consumed) MSG kinds for one non-wire module.

    Produced: kinds packed raw (``bytes([MSG_X])`` / ``*.pack(MSG_X,
    ...)``) or via a ``wire.encode_*`` call.  Consumed: kinds compared
    against (``msg[0] == MSG_X`` dispatch) or reached via a
    ``wire.decode_*`` call.
    """
    produced: set[str] = set()
    consumed: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare):
            consumed |= _msg_names(node)
        elif isinstance(node, ast.Call):
            callee = _callee(node.func)
            if callee in ("bytes", "bytearray"):
                for arg in node.args:
                    produced |= _msg_names(arg)
            elif callee == "pack":
                for arg in node.args:
                    produced |= _msg_names(arg)
            elif callee and callee.startswith("encode_"):
                produced |= wire.kinds_of_encoder(callee)
            elif callee and callee.startswith("decode_"):
                consumed |= wire.kinds_of_decoder(callee)
    return produced, consumed


@register
class WireProtocolRule(Rule):
    name = "wire-protocol-completeness"
    title = "every MSG_* kind has an encoder, a decoder and a dispatch arm"
    motivation = (
        "the reply-stream alignment invariant (PR 5/6): a kind that is "
        "sent but not dispatched, or produced but never decoded, "
        "desynchronises verdict pairing the first time it crosses a pipe"
    )
    scope = ("sharding/*.py",)
    project_wide = True

    def check_project(self, project: Project):
        wire_module = project.module(_WIRE)
        if wire_module is None:
            return
        wire = _WireModel(wire_module)

        def usage(rels: "tuple[str, ...]"):
            produced: set[str] = set()
            consumed: set[str] = set()
            for rel in rels:
                module = project.module(rel)
                if module is not None:
                    p, c = _module_usage(module, wire)
                    produced |= p
                    consumed |= c
            return produced, consumed

        dispatcher_sends, dispatcher_consumes = usage(_DISPATCHER_SIDE)
        worker_sends, worker_consumes = usage(_WORKER_SIDE)
        produced_anywhere = dispatcher_sends | worker_sends
        consumed_anywhere = dispatcher_consumes | worker_consumes

        # Encoder/decoder name symmetry inside wire.py.
        decoder_names = set(wire.decoders)
        for encoder in wire.encoders:
            twin = "decode_" + encoder[len("encode_") :]
            if twin not in decoder_names:
                yield Finding(
                    self.name,
                    _WIRE,
                    wire_module.tree.body[0].lineno,
                    f"{encoder} has no matching {twin}",
                )
        for decoder in decoder_names:
            twin = "encode_" + decoder[len("decode_") :]
            if twin not in wire.encoders:
                yield Finding(
                    self.name,
                    _WIRE,
                    wire_module.tree.body[0].lineno,
                    f"{decoder} has no matching {twin}",
                )

        for kind, lineno in sorted(wire.constants.items()):
            if kind not in produced_anywhere:
                yield Finding(
                    self.name,
                    _WIRE,
                    lineno,
                    f"{kind} is never encoded or sent by any sharding "
                    "module (dead or unfinished protocol kind)",
                )
                continue
            specific = False
            if kind in dispatcher_sends and kind not in worker_consumes:
                specific = True
                yield Finding(
                    self.name,
                    _WIRE,
                    lineno,
                    f"{kind} is sent to workers but no worker dispatch "
                    "arm handles it",
                )
            if kind in worker_sends and kind not in dispatcher_consumes:
                specific = True
                yield Finding(
                    self.name,
                    _WIRE,
                    lineno,
                    f"{kind} is sent by workers but the dispatcher never "
                    "decodes it",
                )
            if kind not in consumed_anywhere and not specific:
                yield Finding(
                    self.name,
                    _WIRE,
                    lineno,
                    f"{kind} is never dispatched or decoded by any "
                    "sharding module",
                )
