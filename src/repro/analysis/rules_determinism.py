"""Determinism rule: same seed, same world — everywhere.

Every differential suite in this repo (sharding equivalence, crypto
backends, state backends, fault storms) works by building two worlds
from one seed and asserting bit-identical behaviour.  That only holds
if nothing in the simulation path reads ambient entropy or the wall
clock.  The sanctioned seams are:

* :class:`repro.crypto.rng.SystemRng` — the one place allowed to touch
  ``os.urandom`` (real deployments opt in by constructing it);
* :mod:`repro.metrics.timing` — wall-clock measurement for the
  experiment harness (``perf_counter`` timing, never simulation state);
* ``benchmarks/`` — outside the analysed tree entirely.

Everything else must draw randomness from an explicitly seeded
generator (``DeterministicRng``, ``random.Random(seed)``) and time from
the simulated clock.
"""

from __future__ import annotations

import ast

from .engine import Finding, Rule, register
from .model import Module

#: Fully-qualified calls that read ambient entropy or wall-clock time.
_BANNED_CALLS = {
    "time.time": "wall-clock read (use the simulated clock)",
    "time.time_ns": "wall-clock read (use the simulated clock)",
    "os.urandom": "ambient entropy (use crypto.rng: SystemRng is the seam)",
    "os.getrandom": "ambient entropy (use crypto.rng: SystemRng is the seam)",
    "uuid.uuid4": "ambient entropy (derive ids from the seeded rng)",
}

#: ``random``'s module-level functions share one unseeded global RNG.
_MODULE_RNG = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.getrandbits",
    "random.gauss",
    "random.seed",
    "random.randbytes",
}


@register
class DeterminismRule(Rule):
    name = "determinism"
    title = "no ambient entropy or wall-clock reads outside sanctioned seams"
    motivation = (
        "same-seed world equivalence is load-bearing for every "
        "differential suite (sharding, crypto backends, state backends, "
        "chaos storms); one stray time.time()/os.urandom breaks them all"
    )
    scope = ("**/*.py",)
    exclude = ("crypto/rng.py", "metrics/timing.py")

    def check_module(self, module: Module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = module.qualname(node.func)
            if qual is None:
                continue
            if qual in _BANNED_CALLS:
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    f"{qual}(): {_BANNED_CALLS[qual]}",
                )
            elif qual.startswith("secrets."):
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    f"{qual}(): ambient entropy (use crypto.rng seams)",
                )
            elif qual in _MODULE_RNG:
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    f"{qual}(): module-level RNG is unseeded global state "
                    "(use random.Random(seed) or DeterministicRng)",
                )
            elif qual == "random.Random" and not node.args and not node.keywords:
                yield Finding(
                    self.name,
                    module.rel,
                    node.lineno,
                    "random.Random() without a seed draws from ambient "
                    "entropy — pass an explicit seed",
                )
