"""Command line front end: ``python -m repro.analysis`` / ``repro-analyze``.

Exit status is the contract CI relies on: 0 when every finding is
suppressed or baselined, 1 when anything new fires.  ``--format json``
emits the full machine-readable report (the tier-1 driver test parses
it); ``--rule`` narrows the run; ``--write-baseline`` grandfathers the
current findings (use only when introducing a rule, never to absorb a
regression — the baseline may only shrink afterwards).
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import (
    DEFAULT_BASELINE,
    DEFAULT_ROOT,
    RULES,
    run_analysis,
    write_baseline,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static-invariant analysis for the repro codebase.",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help=f"tree to analyse (default: the installed repro package, "
        f"{DEFAULT_ROOT})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"findings baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings into the baseline file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.name:28s} {rule.title}")
        return 0
    try:
        report = run_analysis(
            args.root, rules=args.rule, baseline=args.baseline
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.write_baseline:
        path = args.baseline or DEFAULT_BASELINE
        write_baseline(report.findings, path)
        print(f"wrote {len(report.findings)} finding(s) to {path}")
        return 0
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            marker = " (baselined)" if finding.key in report.baseline else ""
            print(finding.render() + marker)
        for entry in report.stale_baseline:
            print(f"stale baseline entry (no longer fires): {entry}")
        print(
            f"{len(report.rules)} rule(s) over {report.checked_files} "
            f"file(s): {len(report.new)} new, {len(report.baselined)} "
            f"baselined, {len(report.suppressed)} suppressed"
        )
    return 1 if report.new else 0
