"""The shared AST model: one parse per file, for every rule.

Each analysed file becomes a :class:`Module` — parsed exactly once,
with the two pieces of derived structure every rule ends up wanting:

* a **qualified-name table** built from the module's imports, so a rule
  can ask "what does this call resolve to?" and get ``"time.time"``
  whether the source said ``time.time()``, ``from time import time``
  or ``import time as t; t.time()``;
* the **inline suppressions**: ``# audit: allow(<rule>[, <rule>...])``
  comments, collected with :mod:`tokenize` (so a ``#`` inside a string
  literal can never fake one), keyed by line.  A suppression on the
  flagged line or the line directly above it silences that rule there
  — and only there, which is what keeps every ``allow`` reviewable
  next to the code it excuses.

A :class:`Project` is the set of modules under one root (normally
``src/repro``).  Rules that check a single file at a time get handed
modules one by one; cross-module rules (the wire-protocol check) get
the whole project.  Tests build synthetic projects from in-memory
sources, which is how every rule ships with known-bad/known-good
fixture self-tests.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from fnmatch import fnmatch
from pathlib import Path

#: ``# audit: allow(rule-a, rule-b)`` — the one suppression syntax.
_ALLOW_RE = re.compile(r"#\s*audit:\s*allow\(\s*([a-z0-9_\-\s,]+?)\s*\)", re.I)


def _suppressions(source: str) -> "dict[int, frozenset[str]]":
    """Map line number -> rule names allowed on that line."""
    allowed: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            names = frozenset(
                name.strip().lower()
                for name in match.group(1).split(",")
                if name.strip()
            )
            line = tok.start[0]
            allowed[line] = allowed.get(line, frozenset()) | names
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        pass
    return allowed


def _import_table(tree: ast.Module) -> "dict[str, str]":
    """Local name -> dotted origin, from every import in the module."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # ``import os.path`` binds ``os``; ``import numpy as np``
                # binds ``np`` to the full dotted name.
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            # Relative imports keep their dots: rules match absolute
            # stdlib names, so package-internal imports can never
            # collide with e.g. ``random.Random``.
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return table


class Module:
    """One parsed source file plus its derived lookup structure."""

    def __init__(self, rel: str, source: str) -> None:
        self.rel = rel
        self.source = source
        self.tree = ast.parse(source, filename=rel)
        self.imports = _import_table(self.tree)
        self.suppressions = _suppressions(source)

    @classmethod
    def from_source(cls, source: str, rel: str = "fixture.py") -> "Module":
        """Build a module from an in-memory snippet (rule self-tests)."""
        return cls(rel, source)

    def allowed(self, rule: str, line: int) -> bool:
        """Is ``rule`` suppressed at ``line`` (same line or line above)?"""
        for candidate in (line, line - 1):
            names = self.suppressions.get(candidate)
            if names and rule in names:
                return True
        return False

    def qualname(self, node: ast.expr) -> "str | None":
        """The dotted origin of a Name/Attribute chain, or ``None``.

        ``self.x.y`` resolves through the unresolvable head to
        ``"self.x.y"`` — useful for attribute-shape matching even when
        the receiver is dynamic.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.imports.get(node.id, node.id)
        return ".".join([head, *reversed(parts)])


class Project:
    """All modules under one root, parsed lazily and exactly once."""

    def __init__(
        self,
        root: "Path | None" = None,
        sources: "dict[str, str] | None" = None,
    ) -> None:
        if (root is None) == (sources is None):
            raise ValueError("pass exactly one of root= or sources=")
        self.root = root
        self._modules: dict[str, Module] = {}
        if sources is not None:
            for rel, source in sources.items():
                self._modules[rel] = Module(rel, source)
            self._rels = sorted(self._modules)
        else:
            assert root is not None
            self._rels = sorted(
                path.relative_to(root).as_posix()
                for path in root.rglob("*.py")
            )

    def rels(self) -> "list[str]":
        """Every analysable path, repo-stable sorted order."""
        return list(self._rels)

    def module(self, rel: str) -> "Module | None":
        if rel not in self._modules:
            if self.root is None or rel not in self._rels:
                return None
            path = self.root / rel
            self._modules[rel] = Module(rel, path.read_text())
        return self._modules.get(rel)


def scope_match(rel: str, patterns: "tuple[str, ...]") -> bool:
    """Does ``rel`` fall under any of the scope glob ``patterns``?"""
    for pattern in patterns:
        if pattern == "**/*.py" or rel == pattern or fnmatch(rel, pattern):
            return True
    return False
