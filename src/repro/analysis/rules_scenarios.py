"""Scenario-registry coverage: every preset is exercised by a test.

``scenario-coverage`` closes the gap the evaluation pack (PR 10) made
visible: a preset registered in :mod:`repro.scenarios` but referenced
by no test is a scenario the suite silently stopped defending — its
topology factory, arg parsing and population wiring can rot without a
single red test.  The registry *is* the evaluation surface (the runner
builds worlds by preset name), so registration and test coverage must
move together.

The rule parses ``scenarios.py`` for ``@register("name", ...)``
decorators and greps the sibling ``tests/`` tree for the quoted preset
name (bare ``"name"`` or arg-taking ``"name:``).  It is project-wide
because the evidence lives outside the analysis root: the tests
directory is resolved relative to the project root (``src/repro`` →
repo root → ``tests/``); when no tests directory exists — synthetic
in-memory projects — the rule stays silent rather than flagging every
preset.
"""

from __future__ import annotations

import ast
import re

from .engine import Finding, Rule, register
from .model import Project

_SCENARIOS = "scenarios.py"


def _registered_presets(tree: ast.AST) -> "list[tuple[str, int]]":
    """``(preset_name, lineno)`` for every ``@register("...")`` decorator."""
    presets: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for decorator in node.decorator_list:
            if not (
                isinstance(decorator, ast.Call)
                and isinstance(decorator.func, ast.Name)
                and decorator.func.id == "register"
                and decorator.args
            ):
                continue
            name = decorator.args[0]
            if isinstance(name, ast.Constant) and isinstance(name.value, str):
                presets.append((name.value, decorator.lineno))
    return presets


@register
class ScenarioCoverageRule(Rule):
    name = "scenario-coverage"
    title = "every registered scenario preset is exercised by a test"
    motivation = (
        "PR 10: the evaluation runner resolves worlds by preset name, so "
        "a preset no test references is an eval surface with zero "
        "regression protection"
    )
    scope = (_SCENARIOS,)
    project_wide = True

    def check_project(self, project: Project):
        module = project.module(_SCENARIOS)
        if module is None or project.root is None:
            return
        tests_dir = project.root.parent.parent / "tests"
        if not tests_dir.is_dir():
            return
        corpus = "\n".join(
            path.read_text(errors="replace")
            for path in sorted(tests_dir.glob("*.py"))
        )
        for preset, lineno in _registered_presets(module.tree):
            # The name as tests would spell it: a quoted "name" (or the
            # arg-taking "name:..." form).
            pattern = r"""["']""" + re.escape(preset) + r"""[:"']"""
            if re.search(pattern, corpus):
                continue
            yield Finding(
                self.name,
                _SCENARIOS,
                lineno,
                f"preset {preset!r} is registered but no test under "
                "tests/ references it — add one (or retire the preset)",
            )
