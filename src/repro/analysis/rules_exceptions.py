"""Exception-hygiene rule: no silent broad catches.

Every hard-to-diagnose distributed failure in this repo's history
started life as a swallowed exception: a supervisor retrying on a
mis-typed error, a teardown path eating the stats read that would have
named the dead shard.  ``except Exception:`` (or a bare ``except:``)
that neither binds the exception, uses it, nor re-raises leaves no
trace that anything happened — the failure is converted to silence at
the exact moment the information was cheapest to keep.

The rule flags broad handlers that

* do not bind the exception (``except Exception as exc`` signals the
  author kept the object — the supervisor's retry loops do this), and
* contain no ``raise`` (re-raising, even of a translated error, keeps
  the failure loud).

Sites where swallowing is the designed behaviour — a worker shipping
the traceback home as a ``MSG_ERROR`` frame instead of crashing its
pipe — carry ``# audit: allow(silent-except)`` with the justification
inline, which is exactly the reviewable artefact a silent ``except``
lacks.
"""

from __future__ import annotations

import ast

from .engine import Finding, Rule, register
from .model import Module

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Tuple):
        return any(_is_broad_type(el) for el in node.elts)
    return _is_broad_type(node)


def _is_broad_type(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    return False


@register
class SilentExceptRule(Rule):
    name = "silent-except"
    title = "broad except handlers must keep the failure visible"
    motivation = (
        "recovery/teardown paths that caught Exception and moved on hid "
        "the one line naming the real failure (worker death causes, "
        "stats reads) — narrow the type, bind and use the exception, "
        "re-raise, or annotate why silence is correct"
    )
    scope = ("**/*.py",)

    def check_module(self, module: Module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if node.name is not None:
                continue  # bound: the author kept the exception object
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue  # re-raised (possibly translated): stays loud
            yield Finding(
                self.name,
                module.rel,
                node.lineno,
                "broad except swallows the failure silently — narrow the "
                "exception type, bind/use it, re-raise, or "
                "# audit: allow(silent-except) with a justification",
            )
