"""The rule engine: registry, driver, suppressions, findings baseline.

A :class:`Rule` declares a **file scope** (glob patterns under the
analysis root) and checks either one module at a time
(:meth:`Rule.check_module`) or the whole project at once
(:meth:`Rule.check_project`, for cross-module invariants).  Rules
register themselves into :data:`RULES` at import; the driver runs every
registered rule (or a ``--rule`` subset) and post-processes raw
findings in two stages:

1. **Inline suppressions** — a finding whose line (or the line above)
   carries ``# audit: allow(<rule>)`` is recorded as suppressed, not
   reported.  Use these for sites where the flagged pattern is the
   point (a worker's intentionally unbounded request wait, say), with
   the justification in the same comment.
2. **Baseline** — a checked-in list of grandfathered finding keys
   (``rule:file:line``).  A finding in the baseline does not fail the
   run; anything *new* does.  The baseline may only ever shrink (a
   repo-hygiene test enforces this), so old debt burns down while new
   violations are stopped at the door.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, Iterator

from .model import Module, Project, scope_match

#: The tree the analyzer covers by default: the ``repro`` package.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: The checked-in grandfathered-findings file, shipped with the package.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.txt"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    file: str  # path relative to the analysis root, posix separators
    line: int
    message: str

    @property
    def key(self) -> str:
        """The stable identity used by baselines: ``rule:file:line``."""
        return f"{self.rule}:{self.file}:{self.line}"

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class: subclass, set the class attributes, ``@register``."""

    #: Registry key and the name ``# audit: allow(...)`` must use.
    name: str = ""
    #: One-line summary shown by ``--list-rules``.
    title: str = ""
    #: The bug/PR that motivated the rule (part of the contract: a rule
    #: with no incident or dependency behind it doesn't belong here).
    motivation: str = ""
    #: Glob patterns (relative to the root) the rule applies to.
    scope: "tuple[str, ...]" = ("**/*.py",)
    #: Patterns carved back out of ``scope``.
    exclude: "tuple[str, ...]" = ()
    #: Project-wide rules see every module at once (cross-module
    #: invariants); per-module rules are handed one file at a time.
    project_wide: bool = False

    def applies_to(self, rel: str) -> bool:
        if scope_match(rel, self.exclude):
            return False
        return scope_match(rel, self.scope)

    def check_module(self, module: Module) -> "Iterable[Finding]":
        return ()

    def check_project(self, project: Project) -> "Iterable[Finding]":
        return ()


#: Every registered rule, in registration order.
RULES: "dict[str, Rule]" = {}


def register(cls: "type[Rule]") -> "type[Rule]":
    """Class decorator: instantiate and add to :data:`RULES`."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if rule.name in RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULES[rule.name] = rule
    return cls


def load_baseline(path: "Path | str | None" = None) -> "set[str]":
    """The grandfathered finding keys (missing file = empty baseline)."""
    path = Path(path) if path is not None else DEFAULT_BASELINE
    if not path.is_file():
        return set()
    entries = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(findings: "Iterable[Finding]", path: "Path | str") -> None:
    """Grandfather the given findings (sorted, one key per line)."""
    entries = sorted({finding.key for finding in findings})
    header = (
        "# repro.analysis findings baseline — grandfathered violations.\n"
        "# This file may only shrink (tests/test_repo_hygiene.py enforces\n"
        "# it): fix or `# audit: allow(...)` a finding to remove its line,\n"
        "# never add new ones.  Keys are rule:file:line.\n"
    )
    Path(path).write_text(header + "".join(f"{entry}\n" for entry in entries))


@dataclasses.dataclass
class Report:
    """Everything one analysis run produced."""

    findings: "list[Finding]"  # unsuppressed, baseline-agnostic
    suppressed: "list[Finding]"
    baseline: "set[str]"
    checked_files: int
    rules: "list[str]"

    @property
    def new(self) -> "list[Finding]":
        """Findings not covered by the baseline — these fail the run."""
        return [f for f in self.findings if f.key not in self.baseline]

    @property
    def baselined(self) -> "list[Finding]":
        return [f for f in self.findings if f.key in self.baseline]

    @property
    def stale_baseline(self) -> "list[str]":
        """Baseline keys that no longer fire — ripe for deletion."""
        live = {f.key for f in self.findings}
        return sorted(key for key in self.baseline if key not in live)

    def to_json(self) -> dict:
        baseline = self.baseline
        return {
            "findings": [
                {
                    "rule": f.rule,
                    "file": f.file,
                    "line": f.line,
                    "message": f.message,
                    "baselined": f.key in baseline,
                }
                for f in self.findings
            ],
            "new": len(self.new),
            "baselined": len(self.baselined),
            "suppressed": len(self.suppressed),
            "stale_baseline": self.stale_baseline,
            "checked_files": self.checked_files,
            "rules": self.rules,
        }


def iter_rules(names: "Iterable[str] | None" = None) -> "Iterator[Rule]":
    if names is None:
        yield from RULES.values()
        return
    for name in names:
        if name not in RULES:
            known = ", ".join(sorted(RULES))
            raise KeyError(f"unknown rule {name!r} (known: {known})")
        yield RULES[name]


def run_analysis(
    root: "Path | str | None" = None,
    *,
    rules: "Iterable[str] | None" = None,
    baseline: "Path | str | set | None" = None,
    project: "Project | None" = None,
) -> Report:
    """Run the selected rules and return the full :class:`Report`.

    ``project`` overrides ``root`` (tests pass synthetic projects).
    ``baseline`` may be a path or a pre-loaded key set; the default is
    the checked-in :data:`DEFAULT_BASELINE`.
    """
    if project is None:
        project = Project(root=Path(root) if root is not None else DEFAULT_ROOT)
    if isinstance(baseline, set):
        baseline_keys = baseline
    else:
        baseline_keys = load_baseline(baseline)
    selected = list(iter_rules(rules))
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    checked: set[str] = set()
    for rule in selected:
        raw: list[Finding] = []
        if rule.project_wide:
            raw.extend(rule.check_project(project))
            checked.update(rel for rel in project.rels() if rule.applies_to(rel))
        else:
            for rel in project.rels():
                if not rule.applies_to(rel):
                    continue
                module = project.module(rel)
                if module is None:
                    continue
                checked.add(rel)
                raw.extend(rule.check_module(module))
        for finding in raw:
            module = project.module(finding.file)
            if module is not None and module.allowed(rule.name, finding.line):
                suppressed.append(finding)
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    suppressed.sort(key=lambda f: (f.file, f.line, f.rule))
    return Report(
        findings=findings,
        suppressed=suppressed,
        baseline=baseline_keys,
        checked_files=len(checked),
        rules=[rule.name for rule in selected],
    )
