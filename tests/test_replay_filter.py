"""Tests for in-network replay detection (Section VIII-D future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.border_router import Action, DropReason
from repro.core.config import ApnaConfig
from repro.core.replay_filter import BloomFilter, RotatingReplayFilter
from repro.wire.apna import Endpoint

from tests.conftest import build_world


class TestBloomFilter:
    def test_empty_contains_nothing(self):
        bloom = BloomFilter(1 << 10)
        assert b"anything" not in bloom
        assert bloom.fp_probability() == 0.0

    def test_added_items_are_found(self):
        bloom = BloomFilter(1 << 10)
        for i in range(100):
            bloom.add(f"item-{i}".encode())
        for i in range(100):
            assert f"item-{i}".encode() in bloom
        assert bloom.inserted == 100

    def test_check_and_add_semantics(self):
        bloom = BloomFilter(1 << 12)
        assert not bloom.check_and_add(b"first")
        assert bloom.check_and_add(b"first")
        assert bloom.inserted == 1

    def test_clear(self):
        bloom = BloomFilter(1 << 10)
        bloom.add(b"x")
        bloom.clear()
        assert b"x" not in bloom
        assert bloom.inserted == 0

    def test_memory_is_bits_over_eight(self):
        assert BloomFilter(1 << 20).memory_bytes == (1 << 20) // 8

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BloomFilter(1000)

    def test_rejects_bad_hash_count(self):
        with pytest.raises(ValueError):
            BloomFilter(1 << 10, hashes=0)

    def test_fp_probability_grows_with_load(self):
        bloom = BloomFilter(1 << 10, hashes=4)
        assert bloom.fp_probability(10) < bloom.fp_probability(1000)

    def test_measured_fp_rate_matches_model(self):
        # Insert n items, probe with fresh ones; the measured FP rate
        # should be within a small factor of the analytic estimate.
        bloom = BloomFilter(1 << 14, hashes=4)
        n = 2000
        for i in range(n):
            bloom.add(f"present-{i}".encode())
        false_positives = sum(
            f"absent-{i}".encode() in bloom for i in range(10_000)
        )
        measured = false_positives / 10_000
        predicted = bloom.fp_probability()
        assert measured <= max(4 * predicted, 0.02)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=50)
    def test_no_false_negatives(self, item):
        bloom = BloomFilter(1 << 10)
        bloom.add(item)
        assert item in bloom


class TestRotatingReplayFilter:
    def test_fresh_then_replay(self):
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        assert filt.observe(b"\x01" * 16, 1, now=0.0)
        assert not filt.observe(b"\x01" * 16, 1, now=1.0)
        assert filt.passed == 1
        assert filt.replays == 1

    def test_distinct_nonces_pass(self):
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 14)
        assert all(filt.observe(b"\x01" * 16, n, now=0.0) for n in range(100))

    def test_same_nonce_different_ephid_passes(self):
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        assert filt.observe(b"\x01" * 16, 7, now=0.0)
        assert filt.observe(b"\x02" * 16, 7, now=0.0)

    def test_remembered_across_one_rotation(self):
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        filt.observe(b"\x01" * 16, 1, now=0.0)
        # One window later the entry moved to the previous generation.
        assert not filt.observe(b"\x01" * 16, 1, now=10.5)
        assert filt.rotations == 1

    def test_forgotten_after_two_rotations(self):
        # The documented replay horizon: after two full windows the nonce
        # is forgotten (by then the EphID itself should have expired).
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        filt.observe(b"\x01" * 16, 1, now=0.0)
        filt.observe(b"\x02" * 16, 2, now=10.5)  # forces first rotation
        assert filt.observe(b"\x01" * 16, 1, now=21.0)  # second rotation

    def test_idle_gap_forgets_beyond_horizon(self):
        # Regression: a single rotation per observe() used to leave the
        # pre-gap generation populated after an idle gap >= 2 windows, so
        # a fresh nonce far beyond the documented two-window horizon was
        # wrongly dropped as a replay.
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        assert filt.observe(b"\x01" * 16, 1, now=5.0)
        # 35 s of silence — the nonce is more than two windows old and
        # must have been forgotten, exactly like the steady-traffic case
        # in test_forgotten_after_two_rotations.
        assert filt.observe(b"\x01" * 16, 1, now=40.0)

    def test_idle_gap_clears_both_generations(self):
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        filt.observe(b"\x01" * 16, 1, now=0.0)
        filt.observe(b"\x02" * 16, 2, now=10.5)  # 1 -> previous, 2 -> current
        # A jumped clock (NTP step, VM resume): both generations are now
        # beyond the horizon and neither nonce may be remembered.
        assert filt.observe(b"\x01" * 16, 1, now=1e9)
        assert filt.observe(b"\x02" * 16, 2, now=1e9)

    def test_short_idle_gap_keeps_previous_generation(self):
        # A gap in [window, 2*window) rotates once: the last generation's
        # entries are still inside the horizon and must be remembered.
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        filt.observe(b"\x01" * 16, 1, now=0.0)
        assert not filt.observe(b"\x01" * 16, 1, now=19.9)

    def test_first_packet_on_wall_clock_is_not_a_rotation(self):
        # Deployments feed wall-clock time; the first packet used to look
        # like a giant gap from the initial _rotated_at = 0.0 and counted
        # a bogus rotation.
        filt = RotatingReplayFilter(window=10.0, bits_per_generation=1 << 12)
        assert filt.observe(b"\x01" * 16, 1, now=1.7e9)
        assert filt.rotations == 0
        assert not filt.observe(b"\x01" * 16, 1, now=1.7e9 + 1.0)

    def test_memory_accounting(self):
        filt = RotatingReplayFilter(window=1.0, bits_per_generation=1 << 13)
        assert filt.memory_bytes == 2 * (1 << 13) // 8

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            RotatingReplayFilter(window=0.0)


class TestBorderRouterIntegration:
    @pytest.fixture()
    def replay_world(self):
        return build_world(
            config=ApnaConfig(
                replay_protection=True,
                in_network_replay_filter=True,
                replay_filter_window=900.0,
                replay_filter_bits=1 << 14,
            )
        )

    def _outgoing_packet(self, world, nonce=1):
        alice = world.hosts["alice"]
        bob = world.hosts["bob"]
        owned = alice.acquire_ephid_direct()
        peer = bob.acquire_ephid_direct()
        return alice.stack.make_packet(
            owned.ephid, Endpoint(200, peer.ephid), b"data", nonce=nonce
        )

    def test_assembly_builds_filter_from_config(self, replay_world):
        assert replay_world.as_a.br.replay_filter is not None

    def test_assembly_without_config_has_no_filter(self, world):
        assert world.as_a.br.replay_filter is None

    def test_first_copy_forwards_replay_drops(self, replay_world):
        packet = self._outgoing_packet(replay_world)
        br = replay_world.as_a.br
        assert br.process_outgoing(packet).action is Action.FORWARD_INTER
        verdict = br.process_outgoing(packet)
        assert verdict.dropped
        assert verdict.reason is DropReason.REPLAYED
        assert br.drops[DropReason.REPLAYED] == 1

    def test_replay_dropped_at_destination_ingress(self, replay_world):
        packet = self._outgoing_packet(replay_world)
        br_b = replay_world.as_b.br
        assert br_b.process_incoming(packet).action is Action.FORWARD_INTRA
        verdict = br_b.process_incoming(packet)
        assert verdict.dropped
        assert verdict.reason is DropReason.REPLAYED

    def test_transit_does_not_consume_filter(self, replay_world):
        # A transit AS forwards without replay bookkeeping: the check
        # protects the source and destination edges.
        import dataclasses

        packet = self._outgoing_packet(replay_world)
        transit_router = replay_world.as_a.br
        # Re-address the packet so AS A sees it as pure transit traffic.
        transit_header = dataclasses.replace(packet.header, dst_aid=999)
        transit_packet = dataclasses.replace(packet, header=transit_header)
        verdict = transit_router.process_incoming(transit_packet)
        assert verdict.action is Action.FORWARD_INTER
        assert transit_router.replay_filter.passed == 0

    def test_spoofed_packet_cannot_poison_filter(self, replay_world):
        # A packet with a bad MAC dies before the filter sees its nonce,
        # so an attacker cannot pre-burn a victim's nonces.
        packet = self._outgoing_packet(replay_world)
        import dataclasses

        spoofed = dataclasses.replace(
            packet, header=packet.header.with_mac(b"\xff" * 8)
        )
        br = replay_world.as_a.br
        assert br.process_outgoing(spoofed).reason is DropReason.BAD_MAC
        assert br.replay_filter.passed == 0
        assert br.process_outgoing(packet).action is Action.FORWARD_INTER

    def test_nonceless_deployment_never_consults_filter(self):
        # Filter enabled but nonces disabled: everything passes (the
        # mechanism requires the Section VIII-D header extension).
        world = build_world(
            config=ApnaConfig(
                replay_protection=False, in_network_replay_filter=True
            )
        )
        packet = self._outgoing_packet(world, nonce=None)
        br = world.as_a.br
        assert br.process_outgoing(packet).action is Action.FORWARD_INTER
        assert br.process_outgoing(packet).action is Action.FORWARD_INTER
        assert br.replay_filter.passed == 0

    def _outgoing_packet_nonceless(self, world):
        return self._outgoing_packet(world, nonce=None)
