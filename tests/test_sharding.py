"""The sharded data plane: plan, wire protocol, pool lifecycle, world
integration and the sharded E1 issuance runner.

Everything here is sized for the tier-1 pass: shard counts are clamped
to 2, bursts are small, and nothing asserts wall-clock speedups — the
worker processes are exercised for *correctness* on any core count (the
multi-core scaling claims live in ``benchmarks/bench_sharding.py``).  A
single lenient scaling sanity check runs only on multi-core hosts.
"""

import os

import pytest

from repro.core.border_router import Action, DropReason, Verdict
from repro.core.config import ApnaConfig
from repro.core.ephid import IvAllocator
from repro.core.errors import RevokedError, UnknownHostError
from repro.core.hostdb import FIRST_HOST_HID
from repro.crypto import backend as crypto_backend_module
from repro.sharding import (
    ShardError,
    ShardHostView,
    ShardPlan,
    ShardedDataPlane,
    split_requests,
)
from repro.sharding import wire
from repro.topology import WorldBuilder
from repro.workload import TrafficProfile
from repro.workload.packets import build_apna_pool

#: Tier-1 worlds always use two shards — enough to cross a shard
#: boundary, cheap enough for the 1-CPU CI container.
TIER1_SHARDS = 2

#: A fixed kR for plan-level tests (worlds derive theirs from the AS
#: secret).
_KR = bytes(range(16))


class TestShardPlan:
    def test_service_hids_live_on_shard_zero(self):
        plan = ShardPlan(4)
        assert {plan.owner_of(hid) for hid in range(1, 6)} == {0}

    def test_round_robin_over_host_hids(self):
        plan = ShardPlan(3)
        owners = [plan.owner_of(FIRST_HOST_HID + i) for i in range(6)]
        assert owners == [0, 1, 2, 0, 1, 2]

    def test_contiguous_blocks(self):
        plan = ShardPlan(2, block=3)
        owners = [plan.owner_of(FIRST_HOST_HID + i) for i in range(8)]
        assert owners == [0, 0, 0, 1, 1, 1, 0, 0]

    def test_residue_mode_routes_by_iv_residue(self):
        plan = ShardPlan(3, mode="residue")
        for iv in (0, 1, 2, 5, 2**32 - 1):
            ephid = bytes(8) + iv.to_bytes(4, "big") + bytes(4)
            assert plan.shard_of_ephid(ephid) == iv % 3 == plan.shard_of_iv(iv)

    def test_keyed_mode_routes_by_prf_not_residue(self):
        plan = ShardPlan(3, key=_KR)
        ivs = list(range(64))
        owners = [plan.owner_of_iv(iv) for iv in ivs]
        for iv, owner in zip(ivs, owners):
            ephid = bytes(8) + iv.to_bytes(4, "big") + bytes(4)
            assert plan.shard_of_ephid(ephid) == owner
            assert plan.owner_of_iv_bytes(iv.to_bytes(4, "big")) == owner
        # The bulk burst entry point agrees element-for-element.
        assert (
            plan.owners_of_iv_bytes([iv.to_bytes(4, "big") for iv in ivs])
            == owners
        )
        # The keyed map is not the public residue map, and it actually
        # spreads load over every shard.
        assert owners != [iv % 3 for iv in ivs]
        assert set(owners) == {0, 1, 2}

    def test_keyed_map_depends_on_kr(self):
        ivs = [iv.to_bytes(4, "big") for iv in range(128)]
        assert ShardPlan(4, key=_KR).owners_of_iv_bytes(ivs) != ShardPlan(
            4, key=bytes(16)
        ).owners_of_iv_bytes(ivs)

    def test_keyed_map_is_cmac(self):
        """The routing PRF is genuine AES-CMAC over the IV bytes: the
        RoutingKey single-AES-block shortcut (a 4-byte message is one
        incomplete CMAC block) must stay bit-identical to the generic
        CMAC, scalar and bulk."""
        from repro.crypto.cmac import Cmac

        cmac = Cmac(_KR)
        plan = ShardPlan(5, key=_KR)
        ivs = [iv.to_bytes(4, "big") for iv in (0, 1, 7, 2**31, 2**32 - 1)]
        expected = [
            int.from_bytes(cmac.tag(iv, 8), "big") % 5 for iv in ivs
        ]
        assert [plan.owner_of_iv_bytes(iv) for iv in ivs] == expected
        assert plan.owners_of_iv_bytes(ivs) == expected

    def test_keyed_routing_requires_kr(self):
        plan = ShardPlan(2)  # legal: ownership-only uses need no key
        assert plan.owner_of(FIRST_HOST_HID) == 0
        with pytest.raises(ValueError):
            plan.owner_of_iv(5)
        with pytest.raises(ValueError):
            plan.validate_routing()
        # A single shard routes trivially, key or not.
        assert ShardPlan(1).validate_routing().owner_of_iv(5) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardPlan(0)
        with pytest.raises(ValueError):
            ShardPlan(2, block=0)
        with pytest.raises(ValueError):
            ShardPlan(2, mode="hash")
        with pytest.raises(ValueError):
            ShardPlan(2, key=b"short")


class TestPinnedIvAllocation:
    @pytest.mark.parametrize(
        "plan",
        [ShardPlan(3, mode="residue"), ShardPlan(3, key=_KR)],
        ids=["residue", "keyed"],
    )
    def test_pinning_matches_plan_owner(self, plan):
        alloc = IvAllocator(start=12345, plan=plan)
        for hid in range(FIRST_HOST_HID, FIRST_HOST_HID + 9):
            iv = alloc.next_iv_for(hid)
            assert plan.owner_of_iv(iv) == plan.owner_of(hid)

    @pytest.mark.parametrize(
        "plan",
        [ShardPlan(2, mode="residue"), ShardPlan(2, key=_KR)],
        ids=["residue", "keyed"],
    )
    def test_pinned_ivs_stay_unique(self, plan):
        alloc = IvAllocator(start=7, plan=plan)
        ivs = [
            alloc.next_iv_for(FIRST_HOST_HID + (i % 4)) for i in range(200)
        ]
        assert len(set(ivs)) == len(ivs)
        assert alloc.issued == 200

    def test_unpinned_allocator_unchanged_by_hid_api(self):
        a = IvAllocator(start=99)
        b = IvAllocator(start=99)
        assert [a.next_iv() for _ in range(5)] == [
            b.next_iv_for(FIRST_HOST_HID + i) for i in range(5)
        ]

    def test_wraparound_stays_in_residue_class(self):
        # Residue mode stays bit-compatible with the pre-keyed stride
        # streams: from start 2^32-2, class 1's draws are exactly the
        # wrapped ascending enumeration the old allocator produced.
        plan = ShardPlan(3, mode="residue")
        alloc = IvAllocator(start=2**32 - 2, plan=plan)
        ivs = [alloc.next_iv_for(FIRST_HOST_HID + 1) for _ in range(3)]
        assert ivs == [1, 4, 7]

    def test_mixed_use_accounting_is_exact(self):
        plan = ShardPlan(3, key=_KR)
        alloc = IvAllocator(start=5, plan=plan)
        unattributed = [alloc.next_iv() for _ in range(4)]
        for hid in range(FIRST_HOST_HID, FIRST_HOST_HID + 6):
            alloc.next_iv_for(hid)
        # HID-less draws land on shard 0 (where all service HIDs live)
        # and are tallied both there and as unattributed.
        assert all(plan.owner_of_iv(iv) == 0 for iv in unattributed)
        assert alloc.issued == 10
        assert alloc.issued_unattributed == 4
        by_shard = alloc.issued_by_shard
        assert sum(by_shard.values()) == 10
        assert by_shard[0] >= 4


class TestDispatcherObserverLinkage:
    """The closed leak, from the on-path observer's seat.

    An observer sees only the EphID's four clear IV bytes.  Under the
    old residue map, two EphIDs of the same host *always* share
    ``iv % nshards`` — a perfect linkage oracle.  Under the keyed map
    the same statistic must behave like chance (≈ 1/nshards agreement),
    even though the AS-internal map still pins both EphIDs to the same
    owner shard.
    """

    NSHARDS = 4
    HOSTS = 120

    def _iv_pairs(self, plan):
        alloc = IvAllocator(start=0xACE5, plan=plan)
        hids = range(FIRST_HOST_HID, FIRST_HOST_HID + self.HOSTS)
        return [(hid, alloc.next_iv_for(hid), alloc.next_iv_for(hid)) for hid in hids]

    def test_residue_mode_is_a_linkage_oracle(self):
        pairs = self._iv_pairs(ShardPlan(self.NSHARDS, mode="residue"))
        matches = sum(1 for _, a, b in pairs if a % self.NSHARDS == b % self.NSHARDS)
        assert matches == len(pairs)  # the leak: 100% linkable

    def test_keyed_mode_leaks_nothing_beyond_chance(self):
        plan = ShardPlan(self.NSHARDS, key=_KR)
        pairs = self._iv_pairs(plan)
        # The observer's best public statistic on two clear IVs.
        matches = sum(1 for _, a, b in pairs if a % self.NSHARDS == b % self.NSHARDS)
        # Expected 1/nshards = 25%; anything approaching certainty means
        # the clear bytes correlate with the host again.  120 pairs put
        # chance-level agreement far below 50%.
        assert matches / len(pairs) < 0.5
        # And yet the AS-internal map still pins both EphIDs of a host
        # to its owner shard — routing works, only the observer lost.
        for hid, a, b in pairs:
            assert plan.owner_of_iv(a) == plan.owner_of_iv(b) == plan.owner_of(hid)


class TestWireCodecs:
    def test_burst_roundtrip(self):
        frames = [b"\x01" * 48, b"\x02" * 56, b""]
        directions = [wire.EGRESS, wire.INGRESS, wire.EGRESS]
        now, seq, out_frames, out_dirs = wire.decode_burst(
            wire.encode_burst(12.5, 41, frames, directions)
        )
        assert (now, seq, out_frames, out_dirs) == (12.5, 41, frames, directions)

    def test_verdict_roundtrip(self):
        verdicts = [
            Verdict(Action.FORWARD_INTER, next_aid=200),
            Verdict(Action.FORWARD_INTRA, hid=FIRST_HOST_HID),
            Verdict(Action.DROP, reason=DropReason.BAD_MAC),
            Verdict(Action.DROP, reason=DropReason.REPLAYED),
            # The full u32 range is legal for AIDs and HIDs: the extreme
            # values must survive (no in-band None sentinel).
            Verdict(Action.FORWARD_INTER, next_aid=2**32 - 1),
            Verdict(Action.FORWARD_INTRA, hid=2**32 - 1),
            Verdict(Action.FORWARD_INTRA, hid=0),
        ]
        # The echoed burst seq rides every verdict reply (duplicate and
        # stale-reply detection); it must round-trip alongside.
        assert wire.decode_verdicts(wire.encode_verdicts(7, verdicts)) == (
            7,
            verdicts,
        )

    def test_control_roundtrips(self):
        ephid = bytes(range(16))
        assert wire.decode_revoke_ephid(
            wire.encode_revoke_ephid(ephid, 900.0)
        ) == (ephid, 900.0)
        assert wire.decode_revoke_hid(wire.encode_revoke_hid(77)) == 77
        hid, owned, control, mac = wire.decode_register_host(
            wire.encode_register_host(
                9, owned=True, control=b"c" * 16, packet_mac=b"m" * 16
            )
        )
        assert (hid, owned, control, mac) == (9, True, b"c" * 16, b"m" * 16)
        # Non-owner announcements must not carry key material.
        _, owned, control, mac = wire.decode_register_host(
            wire.encode_register_host(
                9, owned=False, control=b"c" * 16, packet_mac=b"m" * 16
            )
        )
        assert not owned and control == bytes(16) and mac == bytes(16)

    def test_stats_roundtrip(self):
        counters = {field: i for i, field in enumerate(wire.STATS_FIELDS)}
        assert wire.decode_stats(wire.encode_stats(counters)) == counters


class TestShardHostView:
    def test_owned_vs_replicated_split(self):
        view = ShardHostView()
        view.add_owned(10, b"c" * 16, b"m" * 16)
        view.set_live(11)
        assert view.is_valid(10) and view.is_valid(11)
        assert view.get(10).keys.packet_mac == b"m" * 16
        with pytest.raises(UnknownHostError):
            view.get(11)  # liveness replicated, keys not owned here

    def test_revoke(self):
        view = ShardHostView()
        view.add_owned(10, b"c" * 16, b"m" * 16)
        view.revoke(10)
        assert not view.is_valid(10)
        with pytest.raises(RevokedError):
            view.get(10)


def build_sharded_world(*, seed=21, hosts=4, batch_size=8, shards=TIER1_SHARDS):
    builder = (
        WorldBuilder(seed=seed)
        .sharding(shards, batch_size=batch_size)
        .asys("a", aid=100)
        .asys("b", aid=200)
        .link("a", "b")
    )
    for i in range(hosts):
        builder.host(f"a{i}", at="a")
        builder.host(f"b{i}", at="b")
    return builder.build()


class TestSharded2ShardWorld:
    """The tier-1 sharded arm: a 2-shard world carrying real traffic."""

    def test_world_spawns_and_closes_pools(self):
        world = build_sharded_world(hosts=2)
        try:
            for name in ("a", "b"):
                pool = world.asys(name).shard_pool
                assert pool is not None and not pool.closed
                assert pool.nshards == TIER1_SHARDS
        finally:
            world.close()
        assert world.asys("a").shard_pool is None
        world.close()  # idempotent

    def test_traffic_flows_through_the_pool(self):
        with build_sharded_world(hosts=4) as world:
            report = TrafficProfile(clients=4, servers=2, max_flows=24).drive(world)
            assert report.payloads_delivered == report.flows_offered
            stats = world.asys("a").shard_pool.stats()
            # Data-plane verdicts really came from the workers.
            assert stats["forwarded_inter"] + stats["forwarded_intra"] > 0
            per_shard = world.asys("a").shard_pool.shard_stats()
            busy = [
                s
                for s in per_shard
                if s["forwarded_inter"] + s["forwarded_intra"] > 0
            ]
            # With 4 hosts round-robin over 2 shards, both shards work.
            assert len(busy) == TIER1_SHARDS

    def test_host_attached_after_build_is_reachable(self):
        with build_sharded_world(hosts=2) as world:
            late = world.attach_host("late", at="a")
            server = world.host("b0")
            serving = server.acquire_ephid_direct()
            session = late.connect(serving.cert, early_data=b"hello late")
            world.run()
            assert session is not None
            assert any(data == b"hello late" for _, _, data in server.inbox)

    def test_revocation_reaches_shards_before_next_burst(self):
        with build_sharded_world(hosts=2) as world:
            as_a = world.asys("a")
            client = world.host("a0")
            server = world.host("b0")
            serving = server.acquire_ephid_direct()
            src = client.acquire_ephid_direct()
            client.connect(serving.cert, early_data=b"ok", src_owned=src)
            world.run()
            before = as_a.shard_pool.stats()
            # Revoke through the assembly's list: the on_add hook must
            # broadcast to every worker before any later burst.
            as_a.revocations.add(src.ephid, 1e12)
            client.send_data(
                client.sessions[(src.ephid, serving.cert.ephid)], b"again"
            )
            world.run()
            after = as_a.shard_pool.stats()
            assert (
                after[DropReason.SRC_REVOKED.value]
                == before[DropReason.SRC_REVOKED.value] + 1
            )

    def test_hid_revocation_propagates(self):
        with build_sharded_world(hosts=2) as world:
            as_a = world.asys("a")
            client = world.host("a0")
            server = world.host("b0")
            serving = server.acquire_ephid_direct()
            src = client.acquire_ephid_direct()
            client.connect(serving.cert, early_data=b"ok", src_owned=src)
            world.run()
            record = as_a.hostdb.find_by_subscriber(client.subscriber_id)
            as_a.hostdb.revoke_hid(record.hid)
            client.send_data(
                client.sessions[(src.ephid, serving.cert.ephid)], b"again"
            )
            world.run()
            stats = as_a.shard_pool.stats()
            assert stats[DropReason.SRC_HID_INVALID.value] == 1


class TestMidTrafficTransitions:
    """Replay-filter history cannot cross a plane transition; switching
    mid-traffic must say so instead of silently reopening the window."""

    def test_start_after_traffic_warns(self):
        from tests.conftest import build_world

        world = build_world(
            config=ApnaConfig(
                replay_protection=True,
                in_network_replay_filter=True,
                forwarding_shards=2,
            ),
            host_names=("alice", "bob"),
        )
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        serving = bob.acquire_ephid_direct()
        alice.connect(serving.cert, early_data=b"pre-shard")
        world.network.run()  # traffic through the in-line router
        assert world.as_a.br.replay_filter.passed > 0
        with pytest.warns(RuntimeWarning, match="replay"):
            world.as_a.start_shard_pool()
        world.as_a.stop_shard_pool()

    def test_stop_after_traffic_warns(self):
        with build_sharded_world(hosts=2) as world:
            # No replay filter in this world: closing must stay silent.
            world.asys("a").stop_shard_pool()

        builder = (
            WorldBuilder(
                seed=5,
                config=ApnaConfig(
                    replay_protection=True, in_network_replay_filter=True
                ),
            )
            .sharding(2, batch_size=4)
            .asys("a", aid=100)
            .asys("b", aid=200)
            .link("a", "b")
            .host("alice", at="a")
            .host("bob", at="b")
        )
        world = builder.build()
        try:
            alice, bob = world.host("alice"), world.host("bob")
            serving = bob.acquire_ephid_direct()
            alice.connect(serving.cert, early_data=b"via shards")
            world.run()
            with pytest.warns(RuntimeWarning, match="replay"):
                world.asys("a").stop_shard_pool()
        finally:
            world.close()


class TestDispatcher:
    def test_transit_short_circuits_without_worker_roundtrip(self):
        with build_sharded_world(hosts=1) as world:
            as_b = world.asys("b")
            pool = build_apna_pool(
                world.asys("a"),
                [world.host("a0")],
                size=128,
                count=4,
                dst_aid=65000,
            )
            plane = as_b.shard_pool
            verdicts = plane.process(
                pool.wire_frames, [False] * 4, as_b.clock()
            )
            assert all(v.next_aid == 65000 for v in verdicts)
            assert plane.forwarded_inter == 4
            assert all(
                s["forwarded_inter"] == 0 for s in plane.shard_stats()
            )

    def test_out_of_order_collect_rejected(self):
        with build_sharded_world(hosts=1) as world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            t1 = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            t2 = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            with pytest.raises(ShardError):
                plane.collect(t2)
            plane.collect(t1)
            plane.collect(t2)

    def test_pool_requires_pinned_assembly(self, world):
        # tests/conftest worlds are unsharded: no IV pinning, so a
        # multi-shard pool must refuse to build.
        with pytest.raises(ValueError):
            ShardedDataPlane.for_assembly(world.as_a, 2)

    def test_runt_frame_rejected_at_dispatch(self):
        with build_sharded_world(hosts=1) as world:
            plane = world.asys("a").shard_pool
            with pytest.raises(ShardError):
                plane.process([b"\x00" * 8], [True], 0.0)

    def test_runt_rejection_is_nonce_aware(self):
        # With replay protection the wire header is 56 bytes: a 50-byte
        # frame must be rejected at dispatch (plane untouched), not
        # shipped to a worker whose parse failure would poison the pool.
        builder = (
            WorldBuilder(seed=9, config=ApnaConfig(replay_protection=True))
            .sharding(2, batch_size=4)
            .asys("a", aid=100)
            .host("h", at="a")
        )
        with builder.build() as world:
            plane = world.asys("a").shard_pool
            with pytest.raises(ShardError, match="56-byte"):
                plane.process([b"\x00" * 50], [True], 0.0)
            plane.shard_stats()  # still healthy

    def test_mismatched_direction_flags_rejected(self):
        with build_sharded_world(hosts=1) as world:
            plane = world.asys("a").shard_pool
            with pytest.raises(ShardError, match="direction flags"):
                plane.process([b"\x00" * 48, b"\x00" * 48], [True], 0.0)

    def test_sharding_one_reverts_all_overlays(self):
        # sharding(1) after sharding(4, batch_size=64) must restore the
        # scalar in-line pipeline, batch size included.
        builder = (
            WorldBuilder(seed=3)
            .sharding(4, batch_size=64, block=8)
            .sharding(1)
            .asys("a", aid=100)
        )
        world = builder.build()
        config = world.asys("a").config
        assert config.forwarding_shards == 0
        assert config.forwarding_batch_size == ApnaConfig().forwarding_batch_size
        assert config.shard_block == ApnaConfig().shard_block
        assert world.asys("a").shard_pool is None

    def test_control_error_held_until_next_reply(self):
        """A failing fire-and-forget message must not emit an unsolicited
        reply (that would desynchronise the verdict stream); the error is
        delivered in place of the next expected reply instead."""
        with build_sharded_world(hosts=1) as world:
            plane = world.asys("a").shard_pool
            plane._pool.send_bytes(0, bytes([99]))  # unknown message kind
            with pytest.raises(ShardError, match="unknown message kind"):
                plane.shard_stats()

    def test_lost_reply_recovers_with_drop_accounting(self):
        """A lost burst reply no longer poisons the plane: the owed
        verdicts are dropped-and-counted, the worker is restarted with a
        resync, and the very next burst flows normally."""
        with build_sharded_world(hosts=1) as world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            plane._pool.send_bytes(0, bytes([99]))  # breaks the next reply
            ticket = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            verdicts = plane.collect(ticket)
            assert all(
                v.action is Action.DROP
                and v.reason is DropReason.SHARD_FAILURE
                for v in verdicts
            )
            assert plane.supervisor.failures  # the cause was recorded
            # Recovered: real verdicts again, and the ledger shows it.
            verdicts = plane.process(pool.wire_frames, [True, True], as_a.clock())
            assert all(v.action is Action.FORWARD_INTER for v in verdicts)
            stats = plane.stats()
            assert stats["restarts"] == 1
            assert stats["dropped_bursts"] == 1
            assert stats["dropped_packets"] == 2
            assert stats[DropReason.SHARD_FAILURE.value] == 2
            assert stats["degraded"] == 0

    def test_worker_death_recovers_all_shards(self):
        with build_sharded_world(hosts=2) as world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a,
                [world.host("a0"), world.host("a1")],
                size=128,
                count=8,
                dst_aid=200,
            )
            plane = as_a.shard_pool
            frames = pool.wire_frames
            egress = [True] * len(frames)
            for proc in list(plane._pool._procs):
                proc.terminate()
                proc.join(timeout=5.0)
            # The massacre burst: every sub-burst dropped-and-counted.
            verdicts = plane.process(frames, egress, as_a.clock())
            assert {v.reason for v in verdicts} == {DropReason.SHARD_FAILURE}
            # Both workers restarted and resynced; traffic is back.
            verdicts = plane.process(frames, egress, as_a.clock())
            assert all(v.action is Action.FORWARD_INTER for v in verdicts)
            stats = plane.stats()
            assert stats["restarts"] == TIER1_SHARDS
            assert stats["dropped_packets"] == len(frames)
            assert stats["degraded"] == 0

    def test_resync_preserves_revocations_and_new_hosts(self):
        """State added *after* the pool spawned still survives a restart:
        the resync reads the authoritative hostdb/revocation list, not
        the construction-time snapshot."""
        with build_sharded_world(hosts=2) as world:
            as_a = world.asys("a")
            world.attach_host("late", at="a")
            pool = build_apna_pool(
                as_a, [world.host("late")], size=128, count=4, dst_aid=200
            )
            revoked = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            as_a.revocations.add(revoked.apna_packets[0].header.src_ephid, 2**31)
            # Kill every worker so each one must resync to serve again.
            for proc in list(plane._pool._procs):
                proc.terminate()
                proc.join(timeout=5.0)
            plane.process(
                pool.wire_frames, [True] * 4, as_a.clock()
            )  # absorbs the failure
            verdicts = plane.process(
                pool.wire_frames + revoked.wire_frames,
                [True] * 6,
                as_a.clock(),
            )
            assert all(
                v.action is Action.FORWARD_INTER for v in verdicts[:4]
            ), "post-spawn host must survive the resync"
            assert all(
                v.action is Action.DROP and v.reason is DropReason.SRC_REVOKED
                for v in verdicts[4:]
            ), "post-spawn revocation must survive the resync"

    def test_in_flight_cap_counts_verdicts(self):
        with build_sharded_world(hosts=1) as world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            plane.MAX_IN_FLIGHT_VERDICTS = 4  # instance override for the test
            tickets = [
                plane.submit(pool.wire_frames, [True, True], as_a.clock())
                for _ in range(2)
            ]
            with pytest.raises(ShardError, match="in flight"):
                plane.submit(pool.wire_frames, [True, True], as_a.clock())
            for ticket in tickets:
                plane.collect(ticket)
            # Draining frees the budget again.
            plane.collect(
                plane.submit(pool.wire_frames, [True, True], as_a.clock())
            )
            # A lone burst is exempt whatever its size: nothing else is
            # outstanding, so the reply always has an immediate reader
            # (this is what keeps forwarding_batch_size > cap working).
            big = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=6, dst_aid=200
            )
            plane.MAX_IN_FLIGHT_VERDICTS = 2
            verdicts = plane.process(
                big.wire_frames, [True] * 6, as_a.clock()
            )
            assert len(verdicts) == 6

    def test_control_requires_empty_ticket_queue(self):
        with build_sharded_world(hosts=1) as world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            ticket = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            with pytest.raises(ShardError, match="in flight"):
                plane.revoke_ephid(bytes(16), 1e12)
            plane.collect(ticket)
            plane.revoke_ephid(bytes(16), 1e12)  # fine once drained

    def test_rejected_burst_leaves_counters_untouched(self):
        with build_sharded_world(hosts=1) as world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=1, dst_aid=65000
            )
            plane = as_a.shard_pool
            transit = pool.wire_frames[0]
            with pytest.raises(ShardError):
                # Valid transit frame followed by a runt: the whole burst
                # is rejected before any counter moves.
                plane.process([transit, b"\x00" * 8], [False, False], 0.0)
            assert plane.forwarded_inter == 0
            verdicts = plane.process([transit], [False], as_a.clock())
            assert verdicts[0].next_aid == 65000
            assert plane.forwarded_inter == 1


def build_no_recovery_world(*, hosts=2):
    """A sharded world with supervision disabled: no restart budget, no
    degraded fallback — the PR-5 poisoning semantics, kept as a policy."""
    builder = (
        WorldBuilder(seed=21)
        .sharding(
            TIER1_SHARDS,
            batch_size=8,
            max_restarts=0,
            degraded_fallback=False,
            reply_timeout=10.0,
        )
        .asys("a", aid=100)
        .asys("b", aid=200)
        .link("a", "b")
    )
    for i in range(hosts):
        builder.host(f"a{i}", at="a")
        builder.host(f"b{i}", at="b")
    return builder.build()


@pytest.mark.parametrize(
    "backend", crypto_backend_module.available_backends()
)
class TestNoRecoveryPolicy:
    """With ``max_restarts=0`` and the fallback off, every failure path
    must refuse loudly (and cite its cause) rather than recover — the
    conservative policy for differential runs where a silent drop would
    invalidate the comparison.  Exercised under both crypto backends:
    the poisoning machinery sits above the backend, so behaviour must
    not vary with it."""

    def test_lost_reply_poisons_and_names_the_cause(self, backend):
        with crypto_backend_module.use_backend(backend):
            world = build_no_recovery_world()
        with world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            plane._pool.send_bytes(0, bytes([99]))  # poison pill
            ticket = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            with pytest.raises(ShardError, match="unknown message kind"):
                plane.collect(ticket)
            assert plane._broken is not None
            # Submit, control broadcasts and stats all refuse, citing the
            # original cause — nobody trips over a cryptic secondary error.
            with pytest.raises(ShardError, match="poisoned.*unknown message"):
                plane.submit(pool.wire_frames, [True, True], as_a.clock())
            with pytest.raises(ShardError, match="poisoned.*unknown message"):
                plane.revoke_ephid(bytes(16), 1e12)
            with pytest.raises(ShardError, match="poisoned.*unknown message"):
                plane.register_host(next(iter(as_a.hostdb.records())))
            with pytest.raises(ShardError, match="poisoned.*unknown message"):
                plane.stats()

    def test_worker_death_poisons(self, backend):
        with crypto_backend_module.use_backend(backend):
            world = build_no_recovery_world()
        with world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a,
                [world.host("a0"), world.host("a1")],
                size=128,
                count=8,
                dst_aid=200,
            )
            plane = as_a.shard_pool
            for proc in plane._pool._procs:
                proc.terminate()
                proc.join(timeout=5.0)
            with pytest.raises(ShardError):
                plane.process(
                    pool.wire_frames, [True] * len(pool.wire_frames), 0.0
                )
            assert plane._broken is not None
            with pytest.raises(ShardError, match="poisoned"):
                plane.process(
                    pool.wire_frames, [True] * len(pool.wire_frames), 0.0
                )

    def test_collect_on_stale_ticket_fails_cleanly(self, backend):
        """A ticket orphaned by poisoning must fail with the poisoned
        error, not hang on a reply that will never come or mispair."""
        with crypto_backend_module.use_backend(backend):
            world = build_no_recovery_world()
        with world:
            as_a = world.asys("a")
            pool = build_apna_pool(
                as_a, [world.host("a0")], size=128, count=2, dst_aid=200
            )
            plane = as_a.shard_pool
            stale = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            plane._pool.send_bytes(0, bytes([99]))
            doomed = plane.submit(pool.wire_frames, [True, True], as_a.clock())
            plane.collect(stale)  # still fine: its reply pre-dates the pill
            with pytest.raises(ShardError, match="unknown message kind"):
                plane.collect(doomed)
            with pytest.raises(ShardError, match="poisoned"):
                plane.collect(doomed)


class TestShardedIssuance:
    def test_split_requests_exact(self):
        assert split_requests(10, 4) == [3, 3, 2, 2]
        assert split_requests(7, 3) == [3, 2, 2]
        assert split_requests(2, 4) == [1, 1]  # zero chunks dropped
        assert split_requests(12, 4) == [3, 3, 3, 3]
        for requests, workers in ((10, 4), (7, 3), (1, 5), (9, 2)):
            assert sum(split_requests(requests, workers)) == requests

    def test_split_requests_validates(self):
        with pytest.raises(ValueError):
            split_requests(0, 2)
        with pytest.raises(ValueError):
            split_requests(4, 0)

    def test_parallel_rate_with_non_divisible_workers(self):
        from repro.experiments.e1_ms_performance import measure_parallel_rate

        # 7 % 3 != 0: the pre-fix code silently issued only 6 of 7
        # requests; now every request is performed (the runner raises
        # otherwise) and the duration is the slowest worker's loop.
        elapsed = measure_parallel_rate(7, 3)
        assert elapsed > 0

    def test_hung_worker_raises_shard_timeout(self, monkeypatch):
        """A wedged MS worker must surface as ShardTimeout, not hang the
        runner forever (the pre-fix ``recv_bytes`` had no timeout)."""
        import multiprocessing
        import time

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork start method to inherit the monkeypatch")
        from repro.sharding import run_issuance_shards
        from repro.sharding.pool import ShardTimeout
        import repro.experiments.e1_ms_performance as e1

        # Forked workers inherit this patched module: their deferred
        # import resolves from sys.modules, so the "issuance loop" wedges.
        monkeypatch.setattr(
            e1, "measure_issuance_rate", lambda *a, **k: time.sleep(3600)
        )
        start = time.monotonic()
        with pytest.raises(ShardTimeout):
            run_issuance_shards([1], reply_timeout=0.2)
        # The bound bit quickly and teardown reaped the hung process.
        assert time.monotonic() - start < 30.0


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="scaling sanity check needs at least two cores",
)
@pytest.mark.xfail(
    reason="wall-clock bound; an oversubscribed runner (shared cores, "
    "cgroup quota) pays full IPC cost on one effective core",
    strict=False,
)
def test_two_shards_not_slower_than_half_single_process():
    """Lenient multi-core liveness floor (the real curve is a benchmark):
    a 2-shard pipelined run must beat half the single-process batch rate."""
    import time

    with build_sharded_world(hosts=4, batch_size=32) as world:
        as_a = world.asys("a")
        pool = build_apna_pool(
            as_a, [world.host(f"a{i}") for i in range(4)], size=256, count=32, dst_aid=200
        )
        frames, packets = pool.wire_frames, pool.apna_packets
        plane = as_a.shard_pool
        now = as_a.clock()
        rounds = 30
        plane.process(frames, [True] * len(frames), now)  # warm-up
        start = time.perf_counter()
        tickets = [
            plane.submit(frames, [True] * len(frames), now)
            for _ in range(rounds)
        ]
        for ticket in tickets:
            plane.collect(ticket)
        sharded = time.perf_counter() - start
        as_a.br.process_batch(list(packets))  # warm the MAC cache
        start = time.perf_counter()
        for _ in range(rounds):
            as_a.br.process_batch(list(packets))
        single = time.perf_counter() - start
        assert sharded < single * 2.0
