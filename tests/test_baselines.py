"""Tests for the baseline systems (Section IX comparators)."""

import pytest

from repro.baselines import (
    AipHost,
    ApipDelegate,
    ApipSender,
    ApipVerifier,
    FlowDemuxer,
    PersonaNat,
    PersonaPacket,
    PlainIpRouter,
    RoutingTable,
    eid_of,
)
from repro.crypto.rng import DeterministicRng
from repro.wire.ipv4 import Ipv4Header, ip_to_int


class TestPlainIp:
    def make_router(self):
        routes = RoutingTable()
        routes.add(ip_to_int("10.0.0.0"), 8, "via-a")
        routes.add(ip_to_int("10.1.0.0"), 16, "via-b")
        routes.add(0, 0, "default")
        return PlainIpRouter(routes)

    def test_longest_prefix_match(self):
        router = self.make_router()
        packet = Ipv4Header(src=1, dst=ip_to_int("10.1.2.3"), protocol=17).pack()
        next_hop, _ = router.process(packet)
        assert next_hop == "via-b"
        packet = Ipv4Header(src=1, dst=ip_to_int("10.9.2.3"), protocol=17).pack()
        assert router.process(packet)[0] == "via-a"
        packet = Ipv4Header(src=1, dst=ip_to_int("8.8.8.8"), protocol=17).pack()
        assert router.process(packet)[0] == "default"

    def test_ttl_decremented_and_checksum_valid(self):
        router = self.make_router()
        packet = Ipv4Header(src=1, dst=ip_to_int("10.0.0.1"), protocol=17, ttl=5).pack()
        _, rewritten = router.process(packet)
        parsed = Ipv4Header.parse(rewritten)  # checksum re-verified here
        assert parsed.ttl == 4

    def test_expired_ttl_dropped(self):
        router = self.make_router()
        packet = Ipv4Header(src=1, dst=ip_to_int("10.0.0.1"), protocol=17, ttl=1).pack()
        assert router.process(packet) is None
        assert router.dropped == 1

    def test_no_route_dropped(self):
        routes = RoutingTable()
        routes.add(ip_to_int("10.0.0.0"), 8, "via-a")
        router = PlainIpRouter(routes)
        packet = Ipv4Header(src=1, dst=ip_to_int("8.8.8.8"), protocol=17).pack()
        assert router.process(packet) is None

    def test_bad_prefix_length(self):
        with pytest.raises(ValueError):
            RoutingTable().add(0, 33, "x")


class TestAip:
    def test_self_certifying_verification(self):
        rng = DeterministicRng(1)
        a = AipHost(100, rng)
        b = AipHost(200, rng)
        packet = a.send(b, b"hello")
        assert packet is not None
        assert b.verify_source(packet, a.public_key)
        assert not b.verify_source(packet, b.public_key)

    def test_all_flows_share_one_eid(self):
        # The privacy gap vs APNA: the EID is long-lived.
        rng = DeterministicRng(2)
        a, b = AipHost(100, rng), AipHost(200, rng)
        packets = [a.send(b, bytes([i])) for i in range(5)]
        assert len({p.src_eid for p in packets}) == 1

    def test_shutoff_enforced_at_nic(self):
        rng = DeterministicRng(3)
        a, b = AipHost(100, rng), AipHost(200, rng)
        offending = a.send(b, b"unwanted")
        victim_public, signature = b.request_shutoff(offending)
        assert a.nic.handle_shutoff(offending, victim_public, signature)
        assert a.send(b, b"more") is None
        assert a.nic.enforced_drops == 1

    def test_shutoff_requires_victim_ownership(self):
        rng = DeterministicRng(4)
        a, b, c = AipHost(100, rng), AipHost(200, rng), AipHost(300, rng)
        offending = a.send(b, b"x")
        # c (not the recipient) tries to shut off a->b traffic.
        with pytest.raises(ValueError):
            c.request_shutoff(offending)
        victim_public, signature = b.request_shutoff(offending)
        # A forged signature is refused.
        assert not a.nic.handle_shutoff(offending, c.public_key, signature)

    def test_eid_is_hash_of_key(self):
        rng = DeterministicRng(5)
        a = AipHost(1, rng)
        assert a.eid == eid_of(a.public_key)


class TestApip:
    def test_briefed_packets_verify(self):
        delegate = ApipDelegate(addr=9)
        sender = ApipSender(1, delegate, return_addr=42)
        verifier = ApipVerifier(delegate)
        packet = sender.send(dst_addr=7, flow_id=1, payload=b"data")
        assert verifier.process(packet)
        assert delegate.briefs_received == 1

    def test_unbriefed_first_packet_rejected(self):
        delegate = ApipDelegate(addr=9)
        sender = ApipSender(1, delegate, return_addr=42)
        verifier = ApipVerifier(delegate)
        packet = sender.send(dst_addr=7, flow_id=1, payload=b"x", brief=False)
        assert not verifier.process(packet)

    def test_whitelisting_hole(self):
        # The APNA paper's criticism: once whitelisted, unbriefed packets
        # sail through — they are unaccounted for.
        delegate = ApipDelegate(addr=9)
        sender = ApipSender(1, delegate, return_addr=42)
        verifier = ApipVerifier(delegate)
        first = sender.send(dst_addr=7, flow_id=5, payload=b"legit")
        assert verifier.process(first)
        sneaky = sender.send(dst_addr=7, flow_id=5, payload=b"unaccounted", brief=False)
        assert verifier.process(sneaky)  # passes!
        assert verifier.passed_unchecked == 1
        # APNA has no such hole: every packet carries its own MAC.

    def test_shutoff_via_delegate(self):
        delegate = ApipDelegate(addr=9)
        sender = ApipSender(1, delegate, return_addr=42)
        verifier = ApipVerifier(delegate)
        delegate.shutoff(flow_id=3)
        packet = sender.send(dst_addr=7, flow_id=3, payload=b"x")
        assert not verifier.process(packet)

    def test_return_address_hidden_from_header(self):
        delegate = ApipDelegate(addr=9)
        sender = ApipSender(1, delegate, return_addr=4242)
        packet = sender.send(dst_addr=7, flow_id=1, payload=b"x")
        # The network-visible source is the delegate, not the sender.
        assert packet.delegate_addr == 9
        assert packet.hidden_return == 4242

    def test_briefing_overhead_counted(self):
        delegate = ApipDelegate(addr=9)
        sender = ApipSender(1, delegate, return_addr=1)
        for i in range(10):
            sender.send(dst_addr=7, flow_id=i, payload=b"y")
        # One extra message to a third party per packet (vs zero in APNA).
        assert sender.briefs_sent == 10


class TestPersona:
    def test_rewriting_breaks_flow_demux(self):
        rng = DeterministicRng(6)
        nat = PersonaNat(pool=list(range(100, 164)), rng=rng)
        demux = FlowDemuxer()
        # One true flow of 20 packets.
        for i in range(20):
            packet = PersonaPacket(
                src_addr=1, dst_addr=9, src_port=5000, dst_port=80, payload=bytes([i])
            )
            demux.receive(nat.process(packet))
        # The receiver sees many spurious "flows".
        assert demux.flow_count > 1
        assert demux.demux_accuracy(true_flow_count=1) < 0.5

    def test_source_address_hidden(self):
        rng = DeterministicRng(7)
        nat = PersonaNat(pool=[500, 501], rng=rng)
        packet = PersonaPacket(src_addr=1, dst_addr=9, src_port=1, dst_port=2)
        rewritten = nat.process(packet)
        assert rewritten.src_addr in (500, 501)
        assert rewritten.src_addr != 1

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            PersonaNat(pool=[])
