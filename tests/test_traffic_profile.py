"""Tests for the TrafficProfile workload binding."""

import pytest

from repro import scenarios
from repro.topology import WorldBuilder
from repro.workload import TraceConfig, TrafficProfile


def small_profile(**overrides):
    defaults = dict(
        trace=TraceConfig(hosts=16, duration=120.0, peak_per_host=0.1),
        clients=3,
        servers=2,
        max_flows=25,
        window=1.0,
    )
    defaults.update(overrides)
    return TrafficProfile(**defaults)


class TestDrive:
    def test_every_offered_flow_opens_and_delivers(self):
        report = small_profile().drive(scenarios.build("fig1", seed=1))
        assert report.flows_offered > 0
        assert report.sessions_opened == report.flows_offered
        assert report.payloads_delivered == report.flows_offered
        assert report.delivery_ratio == 1.0

    def test_responses_come_back(self):
        report = small_profile().drive(scenarios.build("fig1", seed=2))
        assert report.responses_received >= report.flows_offered

    def test_silent_servers_when_respond_off(self):
        report = small_profile(respond=False).drive(scenarios.build("fig1", seed=3))
        assert report.payloads_delivered == report.flows_offered
        assert report.responses_received == 0

    def test_works_across_arbitrary_topologies(self):
        report = small_profile().drive(scenarios.build("chain:3", seed=4))
        assert report.delivery_ratio == 1.0
        assert report.sim_time <= 1.0 + 0.5  # window + in-flight tail

    def test_endpoint_placement_defaults_first_and_last_as(self):
        world = scenarios.build("chain:3", seed=5)
        small_profile().drive(world)
        assert world.host("traffic-c0").assembly.aid == 100
        assert world.host("traffic-s0").assembly.aid == 300

    def test_explicit_placement(self):
        world = scenarios.build("star:2", seed=6)
        report = small_profile(
            client_at=["leaf1"], server_at=["leaf2"], clients=2, servers=1
        ).drive(world)
        assert report.delivery_ratio == 1.0
        assert world.host("traffic-c1").assembly is world.asys("leaf1")
        assert world.host("traffic-s0").assembly is world.asys("leaf2")

    def test_bare_string_and_aid_refs_accepted(self):
        # A bare multi-letter name must not be iterated char by char.
        world = scenarios.build("star:2", seed=14)
        report = small_profile(
            client_at="leaf1", server_at=world.asys("hub"), clients=2, servers=1
        ).drive(world)
        assert report.delivery_ratio == 1.0
        assert world.host("traffic-c0").assembly is world.asys("leaf1")
        assert world.host("traffic-s0").assembly is world.asys("hub")

    def test_load_spread_over_servers(self):
        report = small_profile(servers=2).drive(scenarios.build("fig1", seed=7))
        assert set(report.by_server) == {"traffic-s0", "traffic-s1"}
        assert all(count > 0 for count in report.by_server.values())

    def test_deterministic_for_equal_seeds(self):
        one = small_profile().drive(scenarios.build("fig1", seed=8))
        two = small_profile().drive(scenarios.build("fig1", seed=8))
        assert one == two

    def test_max_flows_caps_the_trace(self):
        report = small_profile(max_flows=5).drive(scenarios.build("fig1", seed=9))
        assert report.flows_offered == 5

    def test_world_drive_delegates(self):
        world = scenarios.build("fig1", seed=10)
        report = world.drive(small_profile())
        assert report.sessions_opened == report.flows_offered

    def test_same_world_can_be_driven_twice(self):
        world = scenarios.build("fig1", seed=11)
        first = small_profile().drive(world)
        second = small_profile().drive(world)
        # Second run auto-bumps the prefix: fresh endpoints, same traffic.
        assert set(second.by_server) == {"traffic2-s0", "traffic2-s1"}
        assert second.flows_offered == first.flows_offered
        assert second.delivery_ratio == 1.0

    def test_colliding_manual_host_bumps_prefix(self):
        world = scenarios.build("fig1", seed=11)
        world.attach_host("traffic-c0", at="a")
        report = small_profile().drive(world)
        assert report.delivery_ratio == 1.0
        assert "traffic2-c0" in world.hosts
        assert world.host("traffic-c0").assembly.aid == 100  # untouched

    def test_invalid_parameters_rejected(self):
        world = scenarios.build("fig1", seed=12)
        with pytest.raises(ValueError):
            TrafficProfile(clients=0).drive(world)
        with pytest.raises(ValueError):
            TrafficProfile(window=0.0).drive(world)

    def test_single_as_world_carries_traffic(self):
        world = WorldBuilder(seed=13).asys("solo").build()
        report = small_profile(clients=2, servers=1).drive(world)
        assert report.delivery_ratio == 1.0
