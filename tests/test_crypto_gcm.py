"""AES-GCM tests pinned to the NIST GCM specification test cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AesGcm


def test_nist_case_1_empty():
    gcm = AesGcm(bytes(16))
    sealed = gcm.seal(bytes(12), b"")
    assert sealed.hex() == "58e2fccefa7e3061367f1d57a4e7455a"
    assert gcm.open(bytes(12), sealed) == b""


def test_nist_case_2_single_zero_block():
    gcm = AesGcm(bytes(16))
    sealed = gcm.seal(bytes(12), bytes(16))
    assert sealed[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
    assert sealed[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"


NIST_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
NIST_IV = bytes.fromhex("cafebabefacedbaddecaf888")
NIST_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a"
    "86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525"
    "b16aedf5aa0de657ba637b391aafd255"
)


def test_nist_case_3_four_blocks():
    gcm = AesGcm(NIST_KEY)
    sealed = gcm.seal(NIST_IV, NIST_PT)
    assert sealed[:64].hex() == (
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985"
    )
    assert sealed[64:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"


def test_nist_case_4_with_aad():
    gcm = AesGcm(NIST_KEY)
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    sealed = gcm.seal(NIST_IV, NIST_PT[:60], aad)
    assert sealed[:60].hex() == (
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091"
    )
    assert sealed[60:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    assert gcm.open(NIST_IV, sealed, aad) == NIST_PT[:60]


def test_open_rejects_wrong_aad():
    gcm = AesGcm(NIST_KEY)
    sealed = gcm.seal(NIST_IV, b"payload", b"aad-1")
    with pytest.raises(ValueError):
        gcm.open(NIST_IV, sealed, b"aad-2")


def test_open_rejects_truncated():
    gcm = AesGcm(bytes(16))
    with pytest.raises(ValueError):
        gcm.open(bytes(12), b"short")


def test_tag_size_bounds():
    with pytest.raises(ValueError):
        AesGcm(bytes(16), tag_size=3)
    with pytest.raises(ValueError):
        AesGcm(bytes(16), tag_size=17)


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(min_size=0, max_size=120),
    aad=st.binary(min_size=0, max_size=40),
)
def test_seal_open_roundtrip(key, nonce, plaintext, aad):
    gcm = AesGcm(key)
    assert gcm.open(nonce, gcm.seal(nonce, plaintext, aad), aad) == plaintext


@settings(max_examples=25, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=16),
    nonce=st.binary(min_size=12, max_size=12),
    plaintext=st.binary(min_size=1, max_size=60),
    flip=st.integers(min_value=0),
)
def test_ciphertext_tamper_detected(key, nonce, plaintext, flip):
    gcm = AesGcm(key)
    sealed = bytearray(gcm.seal(nonce, plaintext))
    sealed[flip % len(sealed)] ^= 0x01
    with pytest.raises(ValueError):
        gcm.open(nonce, bytes(sealed))
