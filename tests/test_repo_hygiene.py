"""Guard: build artifacts must never be committed.

PR 3 accidentally committed 29 ``__pycache__/*.pyc`` files; they were
removed and the patterns added to ``.gitignore``.  This test keeps the
tree clean — it fails the moment a compiled artifact is tracked again.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _tracked(patterns: list[str]) -> list[str]:
    if shutil.which("git") is None or not (ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    result = subprocess.run(
        ["git", "ls-files", "--", *patterns],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        pytest.skip(f"git ls-files failed: {result.stderr.strip()}")
    return [line for line in result.stdout.splitlines() if line.strip()]


def test_no_tracked_bytecode():
    tracked = _tracked(["*.pyc", "*.pyo", "**/__pycache__/**"])
    assert not tracked, (
        "compiled Python artifacts are tracked (add them to .gitignore and "
        "`git rm --cached` them):\n  " + "\n  ".join(tracked)
    )


def test_gitignore_covers_bytecode():
    gitignore = (ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.pyc", "*.egg-info/", ".pytest_cache/"):
        assert pattern in gitignore, f".gitignore is missing {pattern!r}"
