"""Guards on the repository itself (not the code it holds).

* Build artifacts must never be committed: PR 3 accidentally committed
  29 ``__pycache__/*.pyc`` files; they were removed and the patterns
  added to ``.gitignore``.
* The static-analysis findings baseline may only ever *shrink*: the
  grandfathered-debt list (``src/repro/analysis/baseline.txt``) exists
  so old violations burn down while new ones fail tier-1 — quietly
  adding entries would turn it into an amnesty machine.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _tracked(patterns: list[str]) -> list[str]:
    if shutil.which("git") is None or not (ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    result = subprocess.run(
        ["git", "ls-files", "--", *patterns],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        pytest.skip(f"git ls-files failed: {result.stderr.strip()}")
    return [line for line in result.stdout.splitlines() if line.strip()]


def test_no_tracked_bytecode():
    tracked = _tracked(["*.pyc", "*.pyo", "**/__pycache__/**"])
    assert not tracked, (
        "compiled Python artifacts are tracked (add them to .gitignore and "
        "`git rm --cached` them):\n  " + "\n  ".join(tracked)
    )


def test_gitignore_covers_bytecode():
    gitignore = (ROOT / ".gitignore").read_text()
    for pattern in ("__pycache__/", "*.pyc", "*.egg-info/", ".pytest_cache/"):
        assert pattern in gitignore, f".gitignore is missing {pattern!r}"


_BASELINE_REL = "src/repro/analysis/baseline.txt"


def _baseline_entries(text: str) -> set[str]:
    return {
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    }


def test_analysis_baseline_only_shrinks():
    """No new grandfathered findings may sneak in via baseline edits.

    Compares the working-tree baseline against the committed (HEAD)
    version: entries may be removed (debt burned down) but never added
    — a new violation must be fixed or carry an inline
    ``# audit: allow(...)`` justification instead.
    """
    path = ROOT / _BASELINE_REL
    assert path.is_file(), f"{_BASELINE_REL} missing — the analyzer needs it"
    current = _baseline_entries(path.read_text())
    if shutil.which("git") is None or not (ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    result = subprocess.run(
        ["git", "show", f"HEAD:{_BASELINE_REL}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return  # baseline not committed yet: nothing to compare against
    committed = _baseline_entries(result.stdout)
    added = sorted(current - committed)
    assert not added, (
        "findings baseline grew — fix the new violations or annotate them "
        "with `# audit: allow(<rule>)` instead of grandfathering:\n  "
        + "\n  ".join(added)
    )
