"""The Section VI security analysis as executable tests (E10).

Every adversary of the paper's threat model is run against the stack and
must fail; the granularity-dependent linkability adversary is scored to
show per-flow EphIDs deliver unlinkability and per-host EphIDs do not.
"""

import pytest

from repro.attacks import (
    EphIdMinter,
    EphIdSpoofer,
    FlowLinker,
    IdentityMinter,
    MitmAs,
    PfsBreaker,
    ShutoffAbuser,
)
from repro.core.keys import SigningKeyPair
from repro.core.session import Session, derive_session_key
from repro.wire.apna import Endpoint


class TestEphIdSpoofing:
    def test_sniffed_ephid_useless_without_kha(self, world):
        alice = world.hosts["alice"]
        bob = world.hosts["bob"]
        victim_ephid = alice.acquire_ephid_direct().ephid  # "sniffed"
        bob_owned = bob.acquire_ephid_direct()
        spoofer = EphIdSpoofer(world.as_a)
        for _ in range(20):
            assert not spoofer.spoof(victim_ephid, Endpoint(200, bob_owned.ephid))
        assert spoofer.successes == 0
        assert spoofer.attempts == 20


class TestEphIdMinting:
    def test_random_forgeries_rejected(self, world):
        minter = EphIdMinter(world.as_a)
        assert minter.mint_random(2000) == 0

    def test_malleated_forgeries_rejected(self, world):
        valid = world.hosts["alice"].acquire_ephid_direct().ephid
        minter = EphIdMinter(world.as_a)
        assert minter.mint_malleated(valid) == 0
        assert minter.attempts == 128


class TestIdentityMinting:
    def test_live_identities_never_exceed_one(self, world):
        minter = IdentityMinter(world.hosts["alice"])
        assert minter.mint(rounds=5) == 1


class TestMitm:
    def test_victim_detects_substituted_cert(self, world):
        # A malicious (non-source, non-destination) AS swaps Bob's cert.
        attacker = MitmAs(attacker_signer=SigningKeyPair.generate(world.rng))
        bob_owned = world.hosts["bob"].acquire_ephid_direct()
        alice = world.hosts["alice"]
        assert not attacker.attempt(alice, bob_owned.cert, world.rng)
        assert attacker.intercepted == 1
        assert attacker.successes == 0

    def test_colluding_as_is_out_of_model(self, world):
        # If the attacker somehow held the destination AS's signing key
        # (collusion, excluded by the threat model), the substitution
        # would succeed — documenting the boundary of the guarantee.
        attacker = MitmAs(attacker_signer=world.as_b.keys.signing)
        bob_owned = world.hosts["bob"].acquire_ephid_direct()
        alice = world.hosts["alice"]
        assert attacker.attempt(alice, bob_owned.cert, world.rng)


class TestShutoffAbuse:
    def test_dos_via_shutoff_fails(self, world):
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        alice_owned = alice.acquire_ephid_direct()
        bob_owned = bob.acquire_ephid_direct()
        victim_packet = alice.stack.make_packet(
            alice_owned.ephid, Endpoint(200, bob_owned.ephid), b"legit"
        )
        abuser = ShutoffAbuser(world.as_a)
        # Attack 1: a third party signs with its own (wrong) EphID.
        mallory_owned = bob.acquire_ephid_direct()
        request = bob.stack.build_shutoff_request(victim_packet.to_wire(), mallory_owned)
        assert not abuser.attempt(request)
        # Attack 2: fabricated packet "from" the victim.
        fake = alice.stack.make_packet(
            alice_owned.ephid, Endpoint(200, bob_owned.ephid), b"fake"
        )
        from repro.wire.apna import ApnaPacket

        doctored = ApnaPacket(fake.header.with_mac(bytes(8)), fake.payload)
        request = bob.stack.build_shutoff_request(doctored.to_wire(), bob_owned)
        assert not abuser.attempt(request)
        assert abuser.successes == 0
        # The victim's EphID is untouched.
        assert not world.as_a.revocations.contains(alice_owned.ephid)


class TestFlowLinkability:
    def run_workload(self, world, policy_name, flows=12):
        from repro.core.granularity import make_policy, FlowKey

        alice = world.hosts["alice"]
        policy = make_policy(
            policy_name,
            lambda flags, lifetime: alice.acquire_ephid_direct(flags, lifetime),
            world.network.scheduler.clock(),
        )
        linker = FlowLinker()
        for i in range(flows):
            flow = FlowKey(200, bytes([i]) * 16, 1000 + i, 80)
            owned = policy.ephid_for(flow=flow, app=f"app-{i % 3}")
            linker.observe(owned.ephid, true_host=1)
        return linker.linkage_score()

    def test_per_flow_gives_unlinkability(self, world):
        assert self.run_workload(world, "per-flow") == 0.0

    def test_per_host_gives_full_linkability(self, world):
        assert self.run_workload(world, "per-host") == 1.0

    def test_per_application_partial(self, world):
        score = self.run_workload(world, "per-application")
        assert 0.0 < score < 1.0


class TestPfs:
    def test_long_term_keys_do_not_decrypt_past_sessions(self, world):
        """The Section VI-B claim: compromise of every long-term secret
        (host keys, AS signing keys, even kA) does not yield a past
        session key."""
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        a_owned = alice.acquire_ephid_direct()
        b_owned = bob.acquire_ephid_direct()
        session = Session(a_owned, b_owned.cert)
        sealed = session.seal(b"recorded ciphertext")

        breaker = PfsBreaker()
        breaker.record(sealed)
        long_term = {
            "alice-K-H": alice.stack.keys.secret,
            "bob-K-H": bob.stack.keys.secret,
            "as-a-signing": world.as_a.keys.signing.secret,
            "as-a-exchange": world.as_a.keys.exchange.secret,
            "as-a-master-kA": world.as_a.keys.secret.master,
            "as-b-signing": world.as_b.keys.signing.secret,
        }
        assert not breaker.try_decrypt_with(
            a_owned.cert, b_owned.cert, long_term, sealed, session.key
        )

    def test_compromise_of_one_session_does_not_leak_another(self, world):
        alice, bob = world.hosts["alice"], world.hosts["bob"]
        s1 = Session(alice.acquire_ephid_direct(), bob.acquire_ephid_direct().cert)
        s2 = Session(alice.acquire_ephid_direct(), bob.acquire_ephid_direct().cert)
        assert s1.key != s2.key


class TestAnonymitySet:
    def test_header_reveals_only_the_as(self, world):
        """Host privacy: the anonymity set is the whole AS (Section III-B).
        The only cleartext identity information in a packet is the AID."""
        alice = world.hosts["alice"]
        owned = alice.acquire_ephid_direct()
        packet = alice.stack.make_packet(owned.ephid, Endpoint(200, bytes(16)), b"x")
        wire = packet.to_wire()
        # The AID is visible...
        assert int.from_bytes(wire[0:4], "big") == 100
        # ...but nothing in the packet decodes to the host without kA:
        # a foreign AS's codec rejects the EphID.
        from repro.core.errors import EphIdError

        with pytest.raises(EphIdError):
            world.as_b.codec.open(packet.header.src_ephid)
