"""Tier-1 smoke check for the benchmark suite.

Runs ``pytest benchmarks -q --smoke`` in a subprocess: every ``bench_*``
module is imported and every benchmark body executed exactly once with
no timing calibration (see ``benchmarks/conftest.py``), so API drift in
the benchmarks is caught by the normal test pass in seconds.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_benchmarks_run_in_smoke_mode():
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "-q", "--smoke", "-p", "no:cacheprovider"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"benchmark smoke run failed\n--- stdout ---\n{result.stdout[-4000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    summary = result.stdout.strip().splitlines()[-1]
    assert "passed" in summary, summary
