"""Tests for the Fig. 4 border-router pipelines (all verdict paths)."""

import pytest

from repro.core.border_router import Action, DropReason
from repro.wire.apna import ApnaPacket, Endpoint
from tests.conftest import build_world


@pytest.fixture()
def env(world):
    alice = world.hosts["alice"]
    bob = world.hosts["bob"]
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    return world, alice, bob, alice_owned, bob_owned


def make_outgoing(world, alice, alice_owned, bob_owned, payload=b"x" * 32):
    return alice.stack.make_packet(
        alice_owned.ephid, Endpoint(200, bob_owned.ephid), payload
    )


class TestOutgoing:
    def test_valid_packet_forwarded_inter(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_a.br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTER
        assert verdict.next_aid == 200
        assert world.as_a.br.forwarded_inter == 1

    def test_foreign_source_aid_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_b.br.process_outgoing(packet)  # wrong AS
        assert verdict.dropped
        assert verdict.reason is DropReason.NOT_LOCAL_SOURCE

    def test_forged_source_ephid_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        from dataclasses import replace

        forged = ApnaPacket(
            replace(packet.header, src_ephid=bytes(16)), packet.payload
        )
        verdict = world.as_a.br.process_outgoing(forged)
        assert verdict.reason is DropReason.SRC_FORGED

    def test_expired_source_ephid_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        stale = world.as_a.codec.seal(
            hid=record.hid, exp_time=5, iv=world.as_a.ivs.next_iv()
        )
        world.network.run_until(10.0)
        packet = alice.stack.make_packet(stale, Endpoint(200, bob_owned.ephid), b"p")
        verdict = world.as_a.br.process_outgoing(packet)
        assert verdict.reason is DropReason.SRC_EXPIRED

    def test_revoked_source_ephid_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        world.as_a.revocations.add(alice_owned.ephid, alice_owned.exp_time)
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_a.br.process_outgoing(packet)
        assert verdict.reason is DropReason.SRC_REVOKED

    def test_revoked_hid_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        world.as_a.hostdb.revoke_hid(record.hid)
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_a.br.process_outgoing(packet)
        assert verdict.reason is DropReason.SRC_HID_INVALID

    def test_bad_mac_dropped(self, env):
        # EphID spoofing (Section VI-A): a valid stolen EphID is useless
        # without kHA, because the per-packet MAC will not verify.
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        forged = ApnaPacket(packet.header.with_mac(bytes(8)), packet.payload)
        verdict = world.as_a.br.process_outgoing(forged)
        assert verdict.reason is DropReason.BAD_MAC

    def test_payload_tamper_invalidates_mac(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        tampered = ApnaPacket(packet.header, packet.payload[:-1] + b"\x00")
        verdict = world.as_a.br.process_outgoing(tampered)
        assert verdict.reason is DropReason.BAD_MAC

    def test_intra_as_packet_delivered_locally(self, world):
        # Both endpoints in AS-A: egress runs destination checks too.
        carol = world.as_a.attach_host("carol")
        carol.bootstrap()
        alice = world.hosts["alice"]
        alice_owned = alice.acquire_ephid_direct()
        carol_owned = carol.acquire_ephid_direct()
        packet = alice.stack.make_packet(
            alice_owned.ephid, Endpoint(100, carol_owned.ephid), b"local"
        )
        verdict = world.as_a.br.process_outgoing(packet)
        assert verdict.action is Action.FORWARD_INTRA
        record = world.as_a.hostdb.find_by_subscriber(carol.subscriber_id)
        assert verdict.hid == record.hid


class TestIncoming:
    def test_transit_forwarded_by_aid(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        # AS 300 is not the destination: pure transit, no crypto checks.
        from repro.core.autonomous_system import ApnaAutonomousSystem

        as_c = ApnaAutonomousSystem(300, world.network, world.rpki, world.anchor, rng=world.rng)
        verdict = as_c.br.process_incoming(packet)
        assert verdict.action is Action.FORWARD_INTER
        assert verdict.next_aid == 200

    def test_delivery_at_destination(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_b.br.process_incoming(packet)
        assert verdict.action is Action.FORWARD_INTRA
        record = world.as_b.hostdb.find_by_subscriber(bob.subscriber_id)
        assert verdict.hid == record.hid

    def test_forged_destination_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = alice.stack.make_packet(
            alice_owned.ephid, Endpoint(200, bytes(16)), b"p"
        )
        verdict = world.as_b.br.process_incoming(packet)
        assert verdict.reason is DropReason.DST_FORGED

    def test_expired_destination_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        record = world.as_b.hostdb.find_by_subscriber(bob.subscriber_id)
        stale = world.as_b.codec.seal(
            hid=record.hid, exp_time=5, iv=world.as_b.ivs.next_iv()
        )
        world.network.run_until(10.0)
        packet = alice.stack.make_packet(alice_owned.ephid, Endpoint(200, stale), b"p")
        verdict = world.as_b.br.process_incoming(packet)
        assert verdict.reason is DropReason.DST_EXPIRED

    def test_revoked_destination_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        world.as_b.revocations.add(bob_owned.ephid, bob_owned.exp_time)
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_b.br.process_incoming(packet)
        assert verdict.reason is DropReason.DST_REVOKED

    def test_revoked_destination_hid_dropped(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        record = world.as_b.hostdb.find_by_subscriber(bob.subscriber_id)
        world.as_b.hostdb.revoke_hid(record.hid)
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        verdict = world.as_b.br.process_incoming(packet)
        assert verdict.reason is DropReason.DST_HID_INVALID


class TestStats:
    def test_drop_counts_accumulate(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        forged = ApnaPacket(packet.header.with_mac(bytes(8)), packet.payload)
        for _ in range(3):
            world.as_a.br.process_outgoing(forged)
        assert world.as_a.br.drops[DropReason.BAD_MAC] == 3
        assert world.as_a.br.total_drops == 3
        assert world.as_a.br.drop_counts() == {"packet-mac-invalid": 3}

    def test_expired_revocations_pruned_on_processing(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        world.as_a.revocations.add(b"\x01" * 16, 5.0)
        assert len(world.as_a.revocations) == 1
        world.network.run_until(10.0)
        packet = make_outgoing(world, alice, alice_owned, bob_owned)
        world.as_a.br.process_outgoing(packet)
        assert len(world.as_a.revocations) == 0
