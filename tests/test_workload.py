"""Tests for the synthetic trace generator and analyzer (Section V-A3
substitute)."""

import numpy as np
import pytest

from repro.workload import (
    PAPER_HOSTS,
    PAPER_PEAK_RATE,
    TraceConfig,
    TraceGenerator,
    analyze,
    build_ipv4_pool,
    concurrent_flows,
    ephid_demand_per_second,
)


@pytest.fixture(scope="module")
def small_trace():
    # 1000 hosts over 2 simulated hours keeps the test fast.
    config = TraceConfig(hosts=1000, duration=7200.0, seed=99)
    generator = TraceGenerator(config)
    return config, generator.generate_arrays()


class TestGenerator:
    def test_deterministic_from_seed(self):
        config = TraceConfig(hosts=100, duration=600.0, seed=5)
        a = TraceGenerator(config).generate_arrays()
        b = TraceGenerator(config).generate_arrays()
        assert np.array_equal(a["start"], b["start"])
        assert np.array_equal(a["host_id"], b["host_id"])

    def test_starts_sorted_and_in_range(self, small_trace):
        config, trace = small_trace
        starts = trace["start"]
        assert np.all(np.diff(starts) >= 0)
        assert starts.min() >= 0
        assert starts.max() <= config.duration

    def test_host_ids_in_range(self, small_trace):
        config, trace = small_trace
        assert trace["host_id"].min() >= 0
        assert trace["host_id"].max() < config.hosts

    def test_duration_distribution_matches_paper_citation(self):
        # "98% of the flows in the Internet last less than 15 minutes".
        config = TraceConfig(hosts=2000, duration=7200.0, seed=3)
        trace = TraceGenerator(config).generate_arrays()
        under_15min = (trace["duration"] < 900.0).mean()
        assert 0.95 <= under_15min <= 0.995

    def test_https_fraction(self, small_trace):
        config, trace = small_trace
        fraction = trace["is_https"].mean()
        assert abs(fraction - 74 / 178) < 0.05

    def test_record_iterator_matches_arrays(self):
        config = TraceConfig(hosts=50, duration=300.0, seed=8)
        records = list(TraceGenerator(config).generate())
        arrays = TraceGenerator(config).generate_arrays()
        assert len(records) == len(arrays["start"])
        assert records[0].start == pytest.approx(float(arrays["start"][0]))
        assert records[-1].end >= records[-1].start

    def test_peak_rate_scales_with_hosts(self):
        # The per-host intensity calibration: peak rate ~ hosts * paper
        # ratio.  The measured peak (max over ~86k Poisson bins) sits a
        # few sigma above the intensity peak, so bound it from both sides.
        config = TraceConfig(hosts=20_000, duration=86_400.0, seed=11)
        trace = TraceGenerator(config).generate_arrays()
        stats = analyze(trace, duration=config.duration)
        expected_peak = PAPER_PEAK_RATE * config.hosts / PAPER_HOSTS
        sigma = expected_peak**0.5
        assert expected_peak <= stats.peak_sessions_per_second <= expected_peak + 6 * sigma


class TestAnalyzer:
    def test_stats_fields(self, small_trace):
        config, trace = small_trace
        stats = analyze(trace, duration=config.duration)
        assert stats.total_flows == len(trace["start"])
        assert 0 < stats.unique_hosts <= config.hosts
        assert stats.peak_sessions_per_second >= 1
        assert 0 <= stats.peak_second <= config.duration
        assert stats.p98_duration < 1000.0
        assert "flows from" in stats.summary()

    def test_empty_trace(self):
        stats = analyze({"start": np.array([]), "duration": np.array([]),
                         "host_id": np.array([]), "is_https": np.array([])})
        assert stats.total_flows == 0

    def test_concurrent_flows(self):
        trace = {
            "start": np.array([0.0, 10.0, 20.0]),
            "duration": np.array([15.0, 15.0, 15.0]),
            "host_id": np.array([1, 2, 3]),
            "is_https": np.array([True, False, True]),
        }
        assert concurrent_flows(trace, at=12.0) == 2  # flows 1 and 2
        assert concurrent_flows(trace, at=50.0) == 0

    def test_ephid_demand_equals_new_session_rate(self):
        trace = {
            "start": np.array([0.2, 0.7, 1.1, 1.5, 1.9]),
            "duration": np.ones(5),
            "host_id": np.arange(5),
            "is_https": np.ones(5, dtype=bool),
        }
        demand = ephid_demand_per_second(trace, horizon=3.0)
        assert demand[0] == 2 and demand[1] == 3


class TestPacketPools:
    def test_ipv4_pool_sizes(self):
        pool = build_ipv4_pool(size=128, count=10)
        assert all(len(f) == 128 for f in pool.wire_frames)

    def test_ipv4_pool_parses(self):
        from repro.wire.ipv4 import Ipv4Header

        pool = build_ipv4_pool(size=256, count=5)
        for frame in pool.wire_frames:
            Ipv4Header.parse(frame)

    def test_apna_pool_valid_at_border_router(self, world):
        from repro.core.border_router import Action
        from repro.workload.packets import build_apna_pool

        alice = world.hosts["alice"]
        pool = build_apna_pool(world.as_a, [alice], size=128, count=8, dst_aid=200)
        assert all(len(f) == 128 for f in pool.wire_frames)
        for packet in pool.apna_packets:
            verdict = world.as_a.br.process_outgoing(packet)
            assert verdict.action is Action.FORWARD_INTER

    def test_apna_pool_size_guard(self, world):
        from repro.workload.packets import build_apna_pool

        with pytest.raises(ValueError):
            build_apna_pool(world.as_a, [world.hosts["alice"]], size=40, count=1)
