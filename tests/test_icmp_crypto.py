"""Tests for encrypted ICMP (Section VIII-B future work)."""

import pytest

from repro.core import framing
from repro.core.icmp_crypto import (
    CertificateCache,
    EncryptedIcmpCodec,
    IcmpCryptoError,
    MODE_ENCRYPTED,
    MODE_PLAINTEXT,
)
from repro.core.session import ConnectionAccept, ConnectionRequest
from repro.wire.icmp import ECHO_REQUEST, IcmpMessage, TIME_EXCEEDED


@pytest.fixture()
def env(world):
    alice = world.hosts["alice"]
    bob = world.hosts["bob"]
    alice_owned = alice.acquire_ephid_direct()
    bob_owned = bob.acquire_ephid_direct()
    return world, alice, bob, alice_owned, bob_owned


class TestCertificateCache:
    def test_insert_get_roundtrip(self, env):
        world, _alice, _bob, alice_owned, _bob_owned = env
        cache = CertificateCache()
        cache.insert(alice_owned.cert)
        assert cache.get(alice_owned.ephid, now=0.0) is alice_owned.cert
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = CertificateCache()
        assert cache.get(b"\x00" * 16, now=0.0) is None
        assert cache.misses == 1

    def test_expired_certificates_are_dropped(self, env):
        world, _alice, _bob, alice_owned, _bob_owned = env
        cache = CertificateCache()
        cache.insert(alice_owned.cert)
        late = alice_owned.cert.exp_time + 1
        assert cache.get(alice_owned.ephid, now=late) is None
        assert len(cache) == 0

    def test_lru_eviction_bounds_storage(self, env):
        world, alice, _bob, _ao, _bo = env
        cache = CertificateCache(capacity=3)
        owned = [alice.acquire_ephid_direct() for _ in range(5)]
        for item in owned:
            cache.insert(item.cert)
        assert len(cache) == 3
        assert cache.evictions == 2
        # The oldest two are gone, the newest three remain.
        assert cache.get(owned[0].ephid, now=0.0) is None
        assert cache.get(owned[4].ephid, now=0.0) is not None

    def test_reinsert_refreshes_lru_position(self, env):
        world, alice, _bob, _ao, _bo = env
        cache = CertificateCache(capacity=2)
        first, second, third = (alice.acquire_ephid_direct() for _ in range(3))
        cache.insert(first.cert)
        cache.insert(second.cert)
        cache.insert(first.cert)  # refresh
        cache.insert(third.cert)  # evicts `second`, not `first`
        assert cache.get(first.ephid, now=0.0) is not None
        assert cache.get(second.ephid, now=0.0) is None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CertificateCache(capacity=0)

    def test_observes_connection_request(self, env):
        world, _alice, _bob, alice_owned, _bob_owned = env
        cache = CertificateCache()
        payload = framing.frame(
            framing.PT_CONN_REQUEST, ConnectionRequest(alice_owned.cert).pack()
        )
        assert cache.observe_payload(payload) == 1
        assert cache.get(alice_owned.ephid, now=0.0) is not None

    def test_observes_connection_accept(self, env):
        world, _alice, _bob, _ao, bob_owned = env
        cache = CertificateCache()
        payload = framing.frame(
            framing.PT_CONN_ACCEPT, ConnectionAccept(bob_owned.cert).pack()
        )
        assert cache.observe_payload(payload) == 1

    def test_ignores_data_frames(self):
        cache = CertificateCache()
        assert cache.observe_payload(framing.frame(framing.PT_DATA, b"x" * 64)) == 0
        assert len(cache) == 0

    def test_ignores_garbage(self):
        cache = CertificateCache()
        assert cache.observe_payload(b"") == 0
        assert cache.observe_payload(b"\xff garbage") == 0
        assert (
            cache.observe_payload(framing.frame(framing.PT_CONN_REQUEST, b"short"))
            == 0
        )


class TestEncryptedIcmp:
    def _codecs(self, env):
        """A router-side codec (alice's view) and the receiving host's."""
        world, alice, bob, alice_owned, bob_owned = env
        sender = EncryptedIcmpCodec(bob_owned)  # e.g. a router in AS B
        receiver = EncryptedIcmpCodec(alice_owned)
        return world, sender, receiver, alice_owned, bob_owned

    def test_encrypts_when_cert_cached(self, env):
        world, sender, receiver, alice_owned, _bo = self._codecs(env)
        sender.cache.insert(alice_owned.cert)
        message = IcmpMessage(TIME_EXCEEDED, payload=b"hop 3")
        wire = sender.seal(message, alice_owned.ephid, now=0.0)
        assert wire[0] == MODE_ENCRYPTED
        opened, encrypted = receiver.open(wire)
        assert encrypted
        assert opened == message
        assert sender.sealed == 1
        assert sender.encryption_rate == 1.0

    def test_plaintext_fallback_when_not_cached(self, env):
        world, sender, receiver, alice_owned, _bo = self._codecs(env)
        message = IcmpMessage(ECHO_REQUEST, identifier=7, sequence=1)
        wire = sender.seal(message, alice_owned.ephid, now=0.0)
        assert wire[0] == MODE_PLAINTEXT
        opened, encrypted = receiver.open(wire)
        assert not encrypted
        assert opened == message
        assert sender.plaintext_fallbacks == 1
        assert sender.encryption_rate == 0.0

    def test_payload_hidden_from_observer(self, env):
        world, sender, _receiver, alice_owned, _bo = self._codecs(env)
        sender.cache.insert(alice_owned.cert)
        secret = b"the offending packet's first bytes"
        wire = sender.seal(IcmpMessage(TIME_EXCEEDED, payload=secret), alice_owned.ephid, now=0.0)
        assert secret not in wire

    def test_tampered_message_rejected(self, env):
        world, sender, receiver, alice_owned, _bo = self._codecs(env)
        sender.cache.insert(alice_owned.cert)
        wire = sender.seal(IcmpMessage(TIME_EXCEEDED), alice_owned.ephid, now=0.0)
        tampered = wire[:-1] + bytes([wire[-1] ^ 1])
        with pytest.raises(IcmpCryptoError):
            receiver.open(tampered)

    def test_wrong_recipient_cannot_open(self, env):
        world, alice, bob, alice_owned, bob_owned = env
        sender = EncryptedIcmpCodec(bob_owned)
        sender.cache.insert(alice_owned.cert)
        wire = sender.seal(IcmpMessage(TIME_EXCEEDED), alice_owned.ephid, now=0.0)
        outsider = EncryptedIcmpCodec(bob.acquire_ephid_direct())
        with pytest.raises(IcmpCryptoError):
            outsider.open(wire)

    def test_receiver_can_verify_sender_cert(self, env):
        world, sender, receiver, alice_owned, bob_owned = self._codecs(env)
        sender.cache.insert(alice_owned.cert)
        wire = sender.seal(IcmpMessage(TIME_EXCEEDED), alice_owned.ephid, now=0.0)
        as_b_key = world.rpki.signing_key_of(200)
        message, encrypted = receiver.open(
            wire, as_public=as_b_key, now=world.network.now
        )
        assert encrypted

    def test_receiver_rejects_cert_from_wrong_as(self, env):
        from repro.core.errors import CertError

        world, sender, receiver, alice_owned, _bo = self._codecs(env)
        sender.cache.insert(alice_owned.cert)
        wire = sender.seal(IcmpMessage(TIME_EXCEEDED), alice_owned.ephid, now=0.0)
        wrong_key = world.rpki.signing_key_of(100)  # sender is in AS 200
        with pytest.raises(CertError):
            receiver.open(wire, as_public=wrong_key, now=world.network.now)

    def test_open_rejects_garbage(self, env):
        _world, _sender, receiver, _ao, _bo = self._codecs(env)
        with pytest.raises(IcmpCryptoError):
            receiver.open(b"")
        with pytest.raises(IcmpCryptoError):
            receiver.open(bytes([99]) + b"body")
        with pytest.raises(IcmpCryptoError):
            receiver.open(bytes([MODE_ENCRYPTED]) + b"short")

    def test_storage_stays_bounded_under_flow_churn(self, env):
        # The paper's worry: "store short-lived certificates of all flows
        # ... incurs a lot of storage overhead".  The LRU keeps memory
        # constant no matter how many flows pass.
        world, alice, _bob, _ao, bob_owned = env
        codec = EncryptedIcmpCodec(
            bob_owned, cache=CertificateCache(capacity=64)
        )
        for _ in range(300):
            owned = alice.acquire_ephid_direct()
            payload = framing.frame(
                framing.PT_CONN_REQUEST, ConnectionRequest(owned.cert).pack()
            )
            codec.cache.observe_payload(payload)
        assert len(codec.cache) == 64
        assert codec.cache.evictions == 300 - 64
