"""HMAC-SHA256 (RFC 4231) and HKDF (RFC 5869) vector tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.kdf import (
    derive_subkey,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    hmac_sha256,
)


def test_rfc4231_case_1():
    key = bytes([0x0B] * 20)
    assert hmac_sha256(key, b"Hi There").hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    )


def test_rfc4231_case_2():
    assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    )


def test_rfc4231_case_3_long_key_block():
    key = bytes([0xAA] * 20)
    data = bytes([0xDD] * 50)
    assert hmac_sha256(key, data).hex() == (
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    )


def test_rfc4231_case_6_oversize_key():
    key = bytes([0xAA] * 131)
    data = b"Test Using Larger Than Block-Size Key - Hash Key First"
    assert hmac_sha256(key, data).hex() == (
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    )


def test_rfc5869_case_1():
    ikm = bytes([0x0B] * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    prk = hkdf_extract(salt, ikm)
    assert prk.hex() == (
        "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    )
    okm = hkdf_expand(prk, info, 42)
    assert okm.hex() == (
        "3cb25f25faacd57a90434f64d0362f2a"
        "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865"
    )
    assert hkdf(ikm, salt=salt, info=info, length=42) == okm


def test_rfc5869_case_3_empty_salt_info():
    ikm = bytes([0x0B] * 22)
    okm = hkdf(ikm, length=42)
    assert okm.hex() == (
        "8da4e775a563c18f715f802a063c5a31"
        "b8a11f5c5ee1879ec3454e5f3c738d2d"
        "9d201395faa4b61a96c8"
    )


def test_hkdf_length_limit():
    with pytest.raises(ValueError):
        hkdf_expand(bytes(32), b"", 255 * 32 + 1)


def test_derive_subkey_domain_separation():
    master = bytes(range(32))
    enc = derive_subkey(master, "ephid-enc")
    mac = derive_subkey(master, "ephid-mac")
    assert enc != mac
    assert len(enc) == len(mac) == 16
    # Deterministic.
    assert derive_subkey(master, "ephid-enc") == enc


@settings(max_examples=40, deadline=None)
@given(
    ikm=st.binary(min_size=1, max_size=64),
    salt=st.binary(min_size=0, max_size=32),
    info=st.binary(min_size=0, max_size=32),
    length=st.integers(min_value=1, max_value=100),
)
def test_hkdf_output_length_and_prefix(ikm, salt, info, length):
    okm = hkdf(ikm, salt=salt, info=info, length=length)
    assert len(okm) == length
    # Expanding further yields a prefix-consistent stream.
    longer = hkdf(ikm, salt=salt, info=info, length=length + 16)
    assert longer[:length] == okm
