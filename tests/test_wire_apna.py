"""Tests for the APNA header/packet wire format (paper Fig. 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire.apna import (
    HEADER_SIZE,
    HEADER_SIZE_WITH_NONCE,
    ApnaHeader,
    ApnaPacket,
    Endpoint,
)
from repro.wire.errors import FieldError, ParseError


def make_header(**overrides):
    fields = dict(
        src_aid=0x0000AAAA,
        src_ephid=bytes(range(16)),
        dst_ephid=bytes(range(16, 32)),
        dst_aid=0x0000BBBB,
        mac=b"\xab" * 8,
    )
    fields.update(overrides)
    return ApnaHeader(**fields)


def test_header_is_48_bytes():
    # The paper's Fig. 7 sums the fields to 48 bytes.
    assert HEADER_SIZE == 48
    assert len(make_header().pack()) == 48


def test_header_with_nonce_is_56_bytes():
    assert HEADER_SIZE_WITH_NONCE == 56
    assert len(make_header(nonce=7).pack()) == 56


def test_field_layout_matches_figure_7():
    wire = make_header().pack()
    assert wire[0:4] == (0x0000AAAA).to_bytes(4, "big")  # Source AID
    assert wire[4:20] == bytes(range(16))  # Source EphID
    assert wire[20:36] == bytes(range(16, 32))  # Dest EphID
    assert wire[36:40] == (0x0000BBBB).to_bytes(4, "big")  # Dest AID
    assert wire[40:48] == b"\xab" * 8  # MAC


def test_parse_roundtrip():
    header = make_header()
    assert ApnaHeader.parse(header.pack()) == header


def test_parse_roundtrip_with_nonce():
    header = make_header(nonce=123456789)
    assert ApnaHeader.parse(header.pack(), with_nonce=True) == header


def test_parse_rejects_short_input():
    with pytest.raises(ParseError):
        ApnaHeader.parse(bytes(47))
    with pytest.raises(ParseError):
        ApnaHeader.parse(bytes(48), with_nonce=True)


@pytest.mark.parametrize(
    "overrides",
    [
        {"src_aid": -1},
        {"src_aid": 2**32},
        {"dst_aid": 2**32},
        {"src_ephid": bytes(15)},
        {"dst_ephid": bytes(17)},
        {"mac": bytes(7)},
        {"nonce": -1},
        {"nonce": 2**64},
    ],
)
def test_field_validation(overrides):
    with pytest.raises(FieldError):
        make_header(**overrides)


def test_mac_input_zeroes_mac_and_appends_payload():
    header = make_header()
    mac_input = header.mac_input(b"payload")
    assert mac_input[40:48] == bytes(8)
    assert mac_input[48:] == b"payload"
    # Everything else identical.
    assert mac_input[:40] == header.pack()[:40]


def test_with_mac():
    header = make_header(mac=bytes(8))
    stamped = header.with_mac(b"\x01" * 8)
    assert stamped.mac == b"\x01" * 8
    assert stamped.src_ephid == header.src_ephid


def test_reversed_swaps_endpoints():
    header = make_header(nonce=5)
    rev = header.reversed()
    assert rev.src_aid == header.dst_aid
    assert rev.dst_aid == header.src_aid
    assert rev.src_ephid == header.dst_ephid
    assert rev.dst_ephid == header.src_ephid
    assert rev.mac == bytes(8)
    assert rev.nonce == header.nonce


def test_packet_roundtrip():
    packet = ApnaPacket(make_header(), b"hello world")
    recovered = ApnaPacket.from_wire(packet.to_wire())
    assert recovered == packet
    assert recovered.wire_size == 48 + len(b"hello world")


def test_endpoint_validation():
    Endpoint(1, bytes(16))
    with pytest.raises(FieldError):
        Endpoint(2**32, bytes(16))
    with pytest.raises(FieldError):
        Endpoint(1, bytes(15))


def test_endpoint_str_redacts_ephid():
    text = str(Endpoint(7, bytes(16)))
    assert text.startswith("7:")
    assert len(text) < 20


@settings(max_examples=50, deadline=None)
@given(
    src_aid=st.integers(min_value=0, max_value=2**32 - 1),
    dst_aid=st.integers(min_value=0, max_value=2**32 - 1),
    src_ephid=st.binary(min_size=16, max_size=16),
    dst_ephid=st.binary(min_size=16, max_size=16),
    mac=st.binary(min_size=8, max_size=8),
    nonce=st.none() | st.integers(min_value=0, max_value=2**64 - 1),
    payload=st.binary(max_size=100),
)
def test_property_roundtrip(src_aid, dst_aid, src_ephid, dst_ephid, mac, nonce, payload):
    header = ApnaHeader(src_aid, src_ephid, dst_ephid, dst_aid, mac, nonce)
    packet = ApnaPacket(header, payload)
    recovered = ApnaPacket.from_wire(packet.to_wire(), with_nonce=nonce is not None)
    assert recovered == packet
