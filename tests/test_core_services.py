"""Tests for the Registry Service (Fig. 2) and Management Service (Fig. 3)."""

import pytest

from repro.core.errors import AuthError, CertError, IssuanceError
from repro.core.messages import BootstrapRequest, EphIdRequest
from repro.core.registry import credential_proof
from tests.conftest import build_world


class TestBootstrap:
    def test_host_bootstraps(self, world):
        alice = world.hosts["alice"]
        assert alice.stack.bootstrapped
        assert alice.stack.control_ephid is not None
        assert alice.stack.ms_cert is not None
        assert alice.stack.dns_cert is not None

    def test_host_and_as_agree_on_kha(self, world):
        alice = world.hosts["alice"]
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        assert record is not None
        assert record.keys == alice.stack.kha

    def test_control_ephid_decodes_to_host_hid(self, world):
        alice = world.hosts["alice"]
        info = world.as_a.codec.open(alice.stack.control_ephid)
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        assert info.hid == record.hid
        # Control EphIDs get the long (DHCP-lease-like) lifetime.
        assert info.exp_time == pytest.approx(
            world.config.control_ephid_lifetime, abs=2
        )

    def test_unknown_subscriber_rejected(self, world):
        alice = world.hosts["alice"]
        request = BootstrapRequest(
            subscriber_id=999_999,
            host_public=alice.stack.keys.public,
            proof=bytes(32),
        )
        with pytest.raises(AuthError):
            world.as_a.rs.bootstrap(request)

    def test_bad_proof_rejected(self, world):
        request = BootstrapRequest(
            subscriber_id=world.hosts["alice"].subscriber_id,
            host_public=bytes(32),
            proof=bytes(32),
        )
        with pytest.raises(AuthError):
            world.as_a.rs.bootstrap(request)
        assert world.as_a.rs.rejected >= 1

    def test_proof_binds_public_key(self, world):
        # A valid proof for one key must not authenticate a different key
        # (defence against key substitution at registration).
        alice = world.hosts["alice"]
        secret = world.as_a.rs._subscribers[alice.subscriber_id]
        proof = credential_proof(secret, alice.stack.keys.public)
        request = BootstrapRequest(
            subscriber_id=alice.subscriber_id,
            host_public=bytes(32),  # not the key the proof covers
            proof=proof,
        )
        with pytest.raises(AuthError):
            world.as_a.rs.bootstrap(request)

    def test_rebootstrap_revokes_previous_hid(self, world):
        # Identity minting defence (Section VI-A): one live HID per host.
        alice = world.hosts["alice"]
        old_record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        alice.bootstrap()  # second bootstrap
        new_record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        assert new_record.hid != old_record.hid
        assert not world.as_a.hostdb.is_valid(old_record.hid)
        assert world.as_a.hostdb.is_valid(new_record.hid)

    def test_forged_id_info_rejected_by_host(self, world):
        # The host verifies m2 against the AS key from RPKI.
        alice = world.hosts["alice"]
        request = alice.stack.build_bootstrap_request()
        reply = world.as_a.rs.bootstrap(request)
        from repro.core.messages import BootstrapReply, IdInfo

        forged = BootstrapReply(
            id_info=IdInfo(
                ephid=reply.id_info.ephid,
                exp_time=reply.id_info.exp_time + 1,  # tampered
                signature=reply.id_info.signature,
            ),
            ms_cert=reply.ms_cert,
            dns_cert=reply.dns_cert,
        )
        with pytest.raises(CertError):
            alice.stack.accept_bootstrap_reply(forged)

    def test_bootstrap_counts(self, world):
        assert world.as_a.rs.bootstraps == 1
        assert world.as_b.rs.bootstraps == 1


class TestIssuance:
    def test_issue_roundtrip(self, world):
        alice = world.hosts["alice"]
        owned = alice.acquire_ephid_direct()
        info = world.as_a.codec.open(owned.ephid)
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        assert info.hid == record.hid
        assert owned.cert.aid == 100
        assert owned.cert.aa_ephid == world.as_a.aa_identity.owned.ephid

    def test_default_lifetime_is_15_minutes(self, world):
        # Section VIII-G1: per-flow EphIDs live 15 minutes by default.
        owned = world.hosts["alice"].acquire_ephid_direct()
        now = world.network.now
        assert owned.cert.exp_time == pytest.approx(now + 900.0, abs=2)

    def test_requested_lifetime_clamped(self, world):
        owned = world.hosts["alice"].acquire_ephid_direct(lifetime=10**9)
        now = world.network.now
        assert owned.cert.exp_time <= now + world.config.max_ephid_lifetime + 1

    def test_each_ephid_is_unique(self, world):
        alice = world.hosts["alice"]
        ephids = {alice.acquire_ephid_direct().ephid for _ in range(10)}
        assert len(ephids) == 10

    def test_request_with_forged_source_ephid_rejected(self, world):
        alice = world.hosts["alice"]
        _, sealed = alice.stack.build_ephid_request()
        with pytest.raises(IssuanceError):
            world.as_a.ms.handle_request(bytes(16), sealed)

    def test_request_with_expired_control_ephid_rejected(self, world):
        alice = world.hosts["alice"]
        _, sealed = alice.stack.build_ephid_request()
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        expired = world.as_a.codec.seal(
            hid=record.hid, exp_time=5, iv=world.as_a.ivs.next_iv()
        )
        world.network.run_until(10.0)  # advance past the expiry
        with pytest.raises(IssuanceError):
            world.as_a.ms.handle_request(expired, sealed)

    def test_request_from_revoked_hid_rejected(self, world):
        alice = world.hosts["alice"]
        _, sealed = alice.stack.build_ephid_request()
        record = world.as_a.hostdb.find_by_subscriber(alice.subscriber_id)
        world.as_a.hostdb.revoke_hid(record.hid)
        with pytest.raises(IssuanceError):
            world.as_a.ms.handle_request(alice.stack.control_ephid, sealed)

    def test_tampered_request_rejected(self, world):
        alice = world.hosts["alice"]
        _, sealed = alice.stack.build_ephid_request()
        tampered = bytearray(sealed)
        tampered[-1] ^= 0x01
        with pytest.raises(IssuanceError):
            world.as_a.ms.handle_request(alice.stack.control_ephid, bytes(tampered))
        assert world.as_a.ms.rejected >= 1

    def test_wrong_as_cannot_decrypt_request(self, world):
        # Bob's AS cannot serve Alice's request: her control EphID does not
        # decode under AS-B's secret.
        alice = world.hosts["alice"]
        _, sealed = alice.stack.build_ephid_request()
        with pytest.raises(IssuanceError):
            world.as_b.ms.handle_request(alice.stack.control_ephid, sealed)

    def test_reply_tampered_detected_by_host(self, world):
        alice = world.hosts["alice"]
        keypair, sealed = alice.stack.build_ephid_request()
        reply = world.as_a.ms.handle_request(alice.stack.control_ephid, sealed)
        tampered = bytearray(reply)
        tampered[20] ^= 0xFF
        from repro.core.errors import MacError

        with pytest.raises(MacError):
            alice.stack.accept_ephid_reply(keypair, bytes(tampered))

    def test_issuance_counter(self, world):
        start = world.as_a.ms.issued
        world.hosts["alice"].acquire_ephid_direct()
        assert world.as_a.ms.issued == start + 1

    def test_receive_only_flag_propagates(self, world):
        from repro.core.certs import FLAG_RECEIVE_ONLY

        owned = world.hosts["alice"].acquire_ephid_direct(flags=FLAG_RECEIVE_ONLY)
        assert owned.cert.receive_only


class TestIssuanceOverNetwork:
    def test_full_fig3_exchange(self, world):
        alice = world.hosts["alice"]
        got = []
        alice.acquire_ephid(callback=got.append)
        world.network.run()
        assert len(got) == 1
        info = world.as_a.codec.open(got[0].ephid)
        assert world.as_a.hostdb.is_valid(info.hid)

    def test_multiple_outstanding_requests(self, world):
        alice = world.hosts["alice"]
        got = []
        for _ in range(3):
            alice.acquire_ephid(callback=got.append)
        world.network.run()
        assert len(got) == 3
        assert len({o.ephid for o in got}) == 3
