"""Tests for hostdb, revocation management, infra bus, messages and
granularity policies."""

import pytest

from repro.core.errors import MacError, RevokedError, UnknownHostError
from repro.core.granularity import (
    FlowKey,
    PerApplicationPolicy,
    PerFlowPolicy,
    PerHostPolicy,
    PerPacketPolicy,
    make_policy,
)
from repro.core.hostdb import FIRST_HOST_HID, HostDatabase, HostRecord
from repro.core.infrabus import InfraBus
from repro.core.keys import AsSecret, HostAsKeys
from repro.core.messages import (
    BootstrapRequest,
    EphIdRequest,
    InfraUpdate,
    MessageError,
    RevocationPush,
    ShutoffResponse,
)
from repro.core.revocation import RevocationList, RevocationPolicy
from repro.crypto.rng import DeterministicRng


def make_keys(seed=1):
    rng = DeterministicRng(seed)
    return HostAsKeys(rng.read(16), rng.read(16))


class TestHostDatabase:
    def test_register_and_get(self):
        db = HostDatabase()
        hid = db.allocate_hid()
        assert hid == FIRST_HOST_HID
        db.register(HostRecord(hid=hid, keys=make_keys()))
        assert db.get(hid).hid == hid
        assert hid in db
        assert len(db) == 1

    def test_unknown_hid(self):
        db = HostDatabase()
        with pytest.raises(UnknownHostError):
            db.get(12345)
        assert not db.is_valid(12345)

    def test_revoked_hid(self):
        db = HostDatabase()
        hid = db.allocate_hid()
        db.register(HostRecord(hid=hid, keys=make_keys()))
        db.revoke_hid(hid)
        with pytest.raises(RevokedError):
            db.get(hid)
        assert not db.is_valid(hid)
        assert len(db) == 0
        assert db.total_registered == 1

    def test_duplicate_registration_rejected(self):
        db = HostDatabase()
        hid = db.allocate_hid()
        db.register(HostRecord(hid=hid, keys=make_keys()))
        with pytest.raises(UnknownHostError):
            db.register(HostRecord(hid=hid, keys=make_keys()))

    def test_hids_never_reused(self):
        db = HostDatabase()
        a = db.allocate_hid()
        b = db.allocate_hid()
        assert a != b

    def test_find_by_subscriber(self):
        db = HostDatabase()
        hid = db.allocate_hid()
        db.register(HostRecord(hid=hid, keys=make_keys(), subscriber_id=77))
        assert db.find_by_subscriber(77).hid == hid
        assert db.find_by_subscriber(78) is None
        db.revoke_hid(hid)
        assert db.find_by_subscriber(77) is None

    def test_find_by_subscriber_after_rebootstrap(self):
        # The registry revokes the old HID and registers a fresh one when
        # a subscriber re-bootstraps; the index must follow the new HID.
        db = HostDatabase()
        old = db.allocate_hid()
        db.register(HostRecord(hid=old, keys=make_keys(), subscriber_id=77))
        db.revoke_hid(old)
        new = db.allocate_hid()
        db.register(HostRecord(hid=new, keys=make_keys(2), subscriber_id=77))
        assert db.find_by_subscriber(77).hid == new

    def test_second_live_record_for_subscriber_rejected(self):
        # The index relies on the one-live-HID-per-host invariant; a
        # second live registration must be refused, not silently shadow
        # the first (the registry revokes the old HID before re-enrolling).
        db = HostDatabase()
        first = db.allocate_hid()
        db.register(HostRecord(hid=first, keys=make_keys(), subscriber_id=9))
        second = db.allocate_hid()
        with pytest.raises(UnknownHostError, match="already has live"):
            db.register(
                HostRecord(hid=second, keys=make_keys(2), subscriber_id=9)
            )
        assert db.find_by_subscriber(9).hid == first
        assert second not in db  # the rejected record was not registered

    def test_find_by_subscriber_heals_after_direct_mutation(self):
        # Flipping record.revoked without going through revoke_hid must
        # not let the index return a revoked record.
        db = HostDatabase()
        hid = db.allocate_hid()
        db.register(HostRecord(hid=hid, keys=make_keys(), subscriber_id=5))
        db.get(hid).revoked = True
        assert db.find_by_subscriber(5) is None
        assert db.find_by_subscriber(5) is None  # idempotent after healing

    def test_find_by_subscriber_is_indexed(self):
        # The lookup must not scan: register many, then check the index
        # content directly.
        db = HostDatabase()
        for sub in range(100):
            hid = db.allocate_hid()
            db.register(
                HostRecord(hid=hid, keys=make_keys(sub), subscriber_id=sub)
            )
        assert len(db._by_subscriber) == 100
        assert db.find_by_subscriber(42).subscriber_id == 42
        db.revoke_hid(db.find_by_subscriber(42).hid)
        assert 42 not in db._by_subscriber


class TestRevocationList:
    def test_add_contains(self):
        revs = RevocationList()
        revs.add(b"\x01" * 16, 100.0)
        assert revs.contains(b"\x01" * 16)
        assert b"\x01" * 16 in revs
        assert len(revs) == 1

    def test_duplicate_add_is_noop(self):
        revs = RevocationList()
        revs.add(b"\x01" * 16, 100.0)
        revs.add(b"\x01" * 16, 100.0)
        assert len(revs) == 1
        assert revs.total_added == 1

    def test_prune_removes_expired(self):
        revs = RevocationList()
        for i in range(10):
            revs.add(bytes([i]) * 16, float(i))
        assert revs.prune(now=5.0) == 5  # exp_times 0..4 are < 5
        assert len(revs) == 5
        assert not revs.contains(bytes([0]) * 16)
        assert revs.contains(bytes([9]) * 16)

    def test_auto_prune_flag(self):
        revs = RevocationList(auto_prune=False)
        revs.add(b"\x01" * 16, 1.0)
        assert revs.maybe_prune(now=100.0) == 0
        assert len(revs) == 1
        revs.auto_prune = True
        assert revs.maybe_prune(now=100.0) == 1


class TestRevocationPolicy:
    def test_threshold_trips(self):
        tripped = []
        policy = RevocationPolicy(3, on_hid_revoked=tripped.append)
        assert not policy.record(7)
        assert not policy.record(7)
        assert policy.record(7)
        assert tripped == [7]
        assert policy.count(7) == 3

    def test_counters_are_per_hid(self):
        policy = RevocationPolicy(2)
        policy.record(1)
        assert not policy.record(2)
        assert policy.record(1)

    def test_reset(self):
        policy = RevocationPolicy(2)
        policy.record(5)
        policy.reset(5)
        assert policy.count(5) == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            RevocationPolicy(0)


class TestInfraBus:
    def make_bus(self):
        secret = AsSecret.generate(DeterministicRng(9))
        return InfraBus(secret), secret

    def test_host_update_distributes(self):
        bus, _ = self.make_bus()
        db1, db2 = HostDatabase(), HostDatabase()
        bus.subscribe_hostdb(db1)
        bus.subscribe_hostdb(db2)
        keys = make_keys()
        bus.publish_host_update(
            InfraUpdate(hid=0x10000, control_key=keys.control, packet_mac_key=keys.packet_mac)
        )
        assert db1.get(0x10000).keys == keys
        assert db2.get(0x10000).keys == keys

    def test_tampered_host_update_rejected(self):
        bus, _ = self.make_bus()
        db = HostDatabase()
        bus.subscribe_hostdb(db)
        keys = make_keys()
        sealed = bytearray(
            bus.seal_host_update(
                InfraUpdate(0x10000, keys.control, keys.packet_mac)
            )
        )
        sealed[20] ^= 0xFF
        with pytest.raises(MacError):
            bus.deliver_host_update(bytes(sealed))
        assert not db.is_valid(0x10000)
        assert bus.updates_rejected == 1

    def test_update_from_wrong_as_rejected(self):
        bus_a, _ = self.make_bus()
        bus_b = InfraBus(AsSecret.generate(DeterministicRng(10)))
        keys = make_keys()
        sealed = bus_a.seal_host_update(InfraUpdate(0x10000, keys.control, keys.packet_mac))
        with pytest.raises(MacError):
            bus_b.deliver_host_update(sealed)

    def test_revocation_push_distributes(self):
        bus, _ = self.make_bus()
        revs = RevocationList()
        bus.subscribe_revocations(revs)
        bus.publish_revocation(b"\x05" * 16, 500)
        assert revs.contains(b"\x05" * 16)

    def test_tampered_revocation_rejected(self):
        bus, _ = self.make_bus()
        revs = RevocationList()
        bus.subscribe_revocations(revs)
        wire = bytearray(bus.seal_revocation(b"\x05" * 16, 500))
        wire[0] ^= 0x01
        with pytest.raises(MacError):
            bus.deliver_revocation(bytes(wire))
        assert len(revs) == 0

    def test_tap_sees_traffic(self):
        bus, _ = self.make_bus()
        seen = []
        bus.tap(lambda kind, data: seen.append(kind))
        keys = make_keys()
        bus.publish_host_update(InfraUpdate(0x10000, keys.control, keys.packet_mac))
        bus.publish_revocation(b"\x05" * 16, 1)
        assert seen == ["m1", "revoke"]


class TestMessageFormats:
    def test_bootstrap_request_roundtrip(self):
        msg = BootstrapRequest(subscriber_id=7, host_public=bytes(32), proof=bytes(32))
        assert BootstrapRequest.parse(msg.pack()) == msg

    def test_ephid_request_roundtrip(self):
        msg = EphIdRequest(dh_public=bytes(32), sig_public=b"\x01" * 32, flags=1, lifetime=60.0)
        assert EphIdRequest.parse(msg.pack()) == msg

    def test_infra_update_roundtrip(self):
        msg = InfraUpdate(hid=99, control_key=bytes(16), packet_mac_key=b"\x02" * 16)
        assert InfraUpdate.parse(msg.pack()) == msg

    def test_shutoff_response_roundtrip(self):
        msg = ShutoffResponse(accepted=False, reason="no particular reason")
        assert ShutoffResponse.parse(msg.pack()) == msg

    def test_revocation_push_roundtrip(self):
        msg = RevocationPush(ephid=bytes(16), exp_time=12345, mac=b"\x01" * 8)
        assert RevocationPush.parse(msg.pack()) == msg

    def test_truncation_raises(self):
        msg = BootstrapRequest(subscriber_id=7, host_public=bytes(32), proof=bytes(32))
        with pytest.raises(MessageError):
            BootstrapRequest.parse(msg.pack()[:-5])


class TestGranularityPolicies:
    def make_requester(self, world):
        alice = world.hosts["alice"]
        return lambda flags, lifetime: alice.acquire_ephid_direct(flags, lifetime)

    def test_per_host_reuses_one_ephid(self, world):
        policy = PerHostPolicy(self.make_requester(world), world.network.scheduler.clock())
        flow1 = FlowKey(200, b"\x01" * 16, 1, 80)
        flow2 = FlowKey(200, b"\x02" * 16, 2, 443)
        assert policy.ephid_for(flow1).ephid == policy.ephid_for(flow2).ephid
        assert policy.requests_made == 1

    def test_per_flow_distinct_per_flow(self, world):
        policy = PerFlowPolicy(self.make_requester(world), world.network.scheduler.clock())
        flow1 = FlowKey(200, b"\x01" * 16, 1, 80)
        flow2 = FlowKey(200, b"\x02" * 16, 2, 443)
        a = policy.ephid_for(flow1)
        b = policy.ephid_for(flow2)
        assert a.ephid != b.ephid
        assert policy.ephid_for(flow1).ephid == a.ephid  # stable per flow
        assert policy.requests_made == 2
        assert policy.active_count == 2

    def test_per_flow_requires_flow(self, world):
        policy = PerFlowPolicy(self.make_requester(world), world.network.scheduler.clock())
        with pytest.raises(ValueError):
            policy.ephid_for()

    def test_per_application(self, world):
        policy = PerApplicationPolicy(
            self.make_requester(world), world.network.scheduler.clock()
        )
        a = policy.ephid_for(app="browser")
        b = policy.ephid_for(app="mail")
        assert a.ephid != b.ephid
        assert policy.ephid_for(app="browser").ephid == a.ephid
        with pytest.raises(ValueError):
            policy.ephid_for()

    def test_per_packet_always_fresh(self, world):
        policy = PerPacketPolicy(self.make_requester(world), world.network.scheduler.clock())
        ephids = {policy.ephid_for().ephid for _ in range(5)}
        assert len(ephids) == 5
        assert policy.requests_made == 5

    def test_invalidate_forces_reissue(self, world):
        policy = PerFlowPolicy(self.make_requester(world), world.network.scheduler.clock())
        flow = FlowKey(200, b"\x01" * 16, 1, 80)
        first = policy.ephid_for(flow)
        policy.invalidate(first)
        second = policy.ephid_for(flow)
        assert first.ephid != second.ephid

    def test_expired_ephid_replaced(self, world):
        policy = PerHostPolicy(self.make_requester(world), world.network.scheduler.clock())
        first = policy.ephid_for()
        world.network.run_until(world.config.data_ephid_lifetime + 10)
        second = policy.ephid_for()
        assert first.ephid != second.ephid

    def test_make_policy_factory(self, world):
        requester = self.make_requester(world)
        clock = world.network.scheduler.clock()
        assert make_policy("per-host", requester, clock).name == "per-host"
        assert make_policy("per-flow", requester, clock).name == "per-flow"
        with pytest.raises(ValueError):
            make_policy("per-galaxy", requester, clock)
